//! smith85-serve: a networked simulation service for the Smith '85
//! cache-evaluation reproduction.
//!
//! The server speaks newline-delimited JSON over any [`transport`]
//! (TCP, a Unix socket on unix targets, or an in-process loopback hub).
//! On unix targets a poll-based event loop owns every connection — idle
//! connections cost a pollfd entry, not a thread — and expensive
//! requests (`simulate`, `sweep`) flow through a bounded work queue
//! with explicit admission control: a full queue answers `overloaded`
//! immediately instead of building an unbounded backlog. Every job runs
//! through an instrumented [`smith85_core::session::SimSession`]: trace
//! generation goes through the shared
//! [`smith85_core::trace_pool::TracePool`] (so concurrent requests for
//! the same workload materialize it once) and every job feeds the
//! session's metrics registry, exposed both as a `metrics` request and
//! as an optional Prometheus text endpoint
//! ([`ServeOptions::metrics_addr`]).
//!
//! For scale-out, [`RouterOptions`] turns a node into a shard router: a
//! consistent hash ring spreads `(workload, seed, config)` keys across
//! backend shards, a prober marks dead shards down and resurrects them,
//! per-shard in-flight budgets answer typed `overloaded` instead of
//! queueing, and a refused shard fails over to the next distinct shard
//! on the ring.
//!
//! Quick tour:
//!
//! ```no_run
//! use smith85_serve::{Client, Request, Server, ServeOptions};
//!
//! let server = Server::spawn(
//!     ServeOptions::builder()
//!         .addr("127.0.0.1:0")
//!         .build()
//!         .map_err(std::io::Error::other)?,
//! )?;
//! let mut client = Client::builder()
//!     .addr(server.addr().to_string())
//!     .connect()
//!     .map_err(std::io::Error::other)?;
//! let response = client.call(&Request::Catalog).map_err(std::io::Error::other)?;
//! println!("{}", response.encode());
//! let final_stats = server.stop()?;
//! println!("completed {} jobs", final_stats.completed);
//! # Ok::<(), std::io::Error>(())
//! ```
//!
//! The wire schema lives in [`protocol`]; `EXPERIMENTS.md` documents
//! it with copy-pasteable sessions.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
#[cfg(unix)]
pub(crate) mod event_loop;
pub mod exec;
pub mod json;
#[cfg(unix)]
pub(crate) mod poll;
pub mod protocol;
pub mod queue;
pub mod router;
pub mod server;
#[cfg(unix)]
pub mod signal;
pub mod stats;
pub mod transport;

#[allow(deprecated)]
pub use client::{call_with_retry, is_transient};
pub use client::{Client, ClientBuilder, ClientError, RetryPolicy, MAX_BACKOFF_MS};
pub use protocol::{
    CacheSpec, CatalogResult, ErrorBody, ErrorCode, Request, Response, RouterCounters,
    SimulateResult, SimulateSpec, StatsResult, SweepResult, SweepSpec, PROTOCOL_VERSION,
};
pub use router::RouterOptions;
pub use server::{
    ConfigError, RunningServer, ServeOptions, ServeOptionsBuilder, Server, ShutdownHandle,
};
pub use transport::{bind_unix, Endpoint, Listener, LoopbackHub, Transport};
pub use smith85_obs::RegistrySnapshot;
