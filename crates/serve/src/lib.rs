//! smith85-serve: a networked simulation service for the Smith '85
//! cache-evaluation reproduction.
//!
//! The server speaks newline-delimited JSON over TCP (and a Unix socket
//! on unix targets). Expensive requests (`simulate`, `sweep`) flow
//! through a bounded work queue with explicit admission control — a full
//! queue answers `overloaded` immediately instead of building an
//! unbounded backlog — and a worker pool that runs every job through an
//! instrumented [`smith85_core::session::SimSession`]: trace generation
//! goes through the shared [`smith85_core::trace_pool::TracePool`] (so
//! concurrent requests for the same workload materialize it once) and
//! every job feeds the session's metrics registry, exposed both as a
//! `metrics` request and as an optional Prometheus text endpoint
//! ([`ServeOptions::metrics_addr`]).
//!
//! Quick tour:
//!
//! ```no_run
//! use smith85_serve::{Client, Request, Server, ServeOptions};
//!
//! let server = Server::spawn(ServeOptions {
//!     addr: "127.0.0.1:0".to_string(),
//!     ..ServeOptions::default()
//! })?;
//! let mut client = Client::connect(&server.addr().to_string())?;
//! let response = client.call(&Request::Catalog)?;
//! println!("{}", response.encode());
//! let final_stats = server.stop()?;
//! println!("completed {} jobs", final_stats.completed);
//! # Ok::<(), std::io::Error>(())
//! ```
//!
//! The wire schema lives in [`protocol`]; `EXPERIMENTS.md` documents
//! it with copy-pasteable sessions.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod exec;
pub mod json;
pub mod protocol;
pub mod queue;
pub mod server;
#[cfg(unix)]
pub mod signal;
pub mod stats;

pub use client::{call_with_retry, is_transient, Client, RetryPolicy, MAX_BACKOFF_MS};
pub use protocol::{
    CacheSpec, CatalogResult, ErrorBody, ErrorCode, Request, Response, SimulateResult,
    SimulateSpec, StatsResult, SweepResult, SweepSpec, PROTOCOL_VERSION,
};
pub use server::{RunningServer, ServeOptions, Server, ShutdownHandle};
pub use smith85_obs::RegistrySnapshot;
