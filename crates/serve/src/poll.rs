//! Minimal poll(2) readiness multiplexing without a libc dependency
//! (unix only).
//!
//! The crate denies `unsafe_code`; like [`crate::signal`], this module
//! carries the one allowance because the syscall needs an `extern "C"`
//! declaration. The wrapper owns the only raw-pointer handoff — callers
//! work with a safe `&mut [PollFd]` slice — and `pollfd` is declared
//! `#[repr(C)]` to match the kernel ABI.

#![allow(unsafe_code)]

use std::io;
use std::os::unix::io::RawFd;

/// Readable data (or a pending accept on a listener).
pub const POLLIN: i16 = 0x001;
/// Writable without blocking.
pub const POLLOUT: i16 = 0x004;
/// Error condition (revents only).
pub const POLLERR: i16 = 0x008;
/// Peer hung up (revents only).
pub const POLLHUP: i16 = 0x010;
/// Invalid fd (revents only).
pub const POLLNVAL: i16 = 0x020;

/// One entry of a poll set, ABI-compatible with `struct pollfd`.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    fd: RawFd,
    events: i16,
    revents: i16,
}

impl PollFd {
    /// An entry watching `fd` for `events` (a mask of [`POLLIN`] /
    /// [`POLLOUT`]).
    pub fn new(fd: RawFd, events: i16) -> PollFd {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }

    /// Whether the kernel reported any of `mask` for this entry.
    pub fn ready(&self, mask: i16) -> bool {
        self.revents & mask != 0
    }

    /// Whether the kernel reported an error/hangup condition.
    pub fn broken(&self) -> bool {
        self.ready(POLLERR | POLLHUP | POLLNVAL)
    }
}

// `nfds_t` is `unsigned long` on Linux and `unsigned int` elsewhere on
// the unix targets we build for.
#[cfg(target_os = "linux")]
type NFds = u64;
#[cfg(not(target_os = "linux"))]
type NFds = u32;

extern "C" {
    fn poll(fds: *mut PollFd, nfds: NFds, timeout: i32) -> i32;
}

/// Blocks until at least one entry is ready, `timeout_ms` elapses
/// (`-1` blocks forever), or a signal arrives. Returns the number of
/// ready entries (0 on timeout); inspect each entry's `revents` via
/// [`PollFd::ready`].
///
/// # Errors
///
/// The syscall failure; `EINTR` is reported as `Interrupted` so the
/// caller can recheck its shutdown flag and continue.
pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    // SAFETY: the slice is a valid `pollfd` array for the duration of
    // the call (`PollFd` is repr(C) with the kernel's layout), and the
    // length is passed alongside it.
    let ready = unsafe { poll(fds.as_mut_ptr(), fds.len() as NFds, timeout_ms) };
    if ready < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(ready as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::os::unix::io::AsRawFd;
    use std::os::unix::net::UnixStream;
    use std::time::Instant;

    #[test]
    fn timeout_expires_with_nothing_ready() {
        let (a, _b) = UnixStream::pair().expect("socketpair");
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLIN)];
        let start = Instant::now();
        let ready = poll_fds(&mut fds, 25).expect("poll");
        assert_eq!(ready, 0);
        assert!(!fds[0].ready(POLLIN));
        assert!(start.elapsed().as_millis() >= 20, "must actually wait");
    }

    #[test]
    fn readable_end_reports_pollin() {
        let (a, mut b) = UnixStream::pair().expect("socketpair");
        b.write_all(b"x").expect("write");
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLIN)];
        let ready = poll_fds(&mut fds, 1_000).expect("poll");
        assert_eq!(ready, 1);
        assert!(fds[0].ready(POLLIN));
    }

    #[test]
    fn hangup_is_reported_on_peer_drop() {
        let (a, b) = UnixStream::pair().expect("socketpair");
        drop(b);
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLIN)];
        let ready = poll_fds(&mut fds, 1_000).expect("poll");
        assert_eq!(ready, 1);
        assert!(
            fds[0].ready(POLLIN) || fds[0].broken(),
            "peer close must wake the poll: {:?}",
            fds[0]
        );
    }

    #[test]
    fn idle_writable_socket_reports_pollout() {
        let (a, _b) = UnixStream::pair().expect("socketpair");
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLOUT)];
        let ready = poll_fds(&mut fds, 1_000).expect("poll");
        assert_eq!(ready, 1);
        assert!(fds[0].ready(POLLOUT));
    }
}
