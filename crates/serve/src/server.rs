//! The simulation server: listeners, connection handlers, worker pool.
//!
//! Architecture (all `std`, no async runtime — the offline shims
//! preclude tokio):
//!
//! ```text
//!  TCP accept loop ──┐                        ┌─ worker 0 ─┐
//!  Unix accept loop ─┼─ connection threads ──▶│ bounded    │──▶ TracePool
//!                    │  (1/conn, parse NDJSON)│ work queue │    (shared)
//!                    └──────────────────────  └─ worker N ─┘
//! ```
//!
//! * Cheap requests (`catalog`, `stats`, `ping`, `shutdown`) are answered
//!   inline on the connection thread.
//! * `simulate`/`sweep` go through the [`BoundedQueue`]; a full queue is
//!   an immediate typed `overloaded` response (admission control), never
//!   an unbounded backlog.
//! * Workers run jobs under `catch_unwind`, so a panicking job produces
//!   an `internal` error response instead of a dead worker.
//! * Graceful shutdown (SIGINT on unix, or a `shutdown` request): stop
//!   accepting, close the queue, drain already-admitted jobs, join every
//!   thread, then return the final stats snapshot.

use crate::exec;
use crate::protocol::{
    ErrorBody, ErrorCode, Request, Response, SimulateSpec, StatsResult, SweepSpec, MAX_LINE_BYTES,
};
use crate::queue::{BoundedQueue, PushError};
use crate::stats::ServerStats;
use smith85_core::session::SimSession;
use smith85_obs::MS_BOUNDS;
use smith85_tracelog::{
    self as tracelog, mint_trace_id, NdjsonWriter, Severity, SinkHandle, TraceContext,
};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::{Duration, Instant};

/// How often blocked reads and the accept loops recheck the shutdown
/// flag.
const POLL_INTERVAL: Duration = Duration::from_millis(100);

/// Upper bound a connection waits for a worker reply after admission;
/// a safety net against a lost reply, far above any legal job runtime.
const REPLY_TIMEOUT: Duration = Duration::from_secs(600);

/// Server construction parameters.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// TCP bind address, e.g. `"127.0.0.1:4085"` (port 0 for ephemeral).
    pub addr: String,
    /// Optional Unix-domain socket path (unix targets only; binding
    /// fails with an error elsewhere). An existing socket file at the
    /// path is replaced.
    pub unix_path: Option<PathBuf>,
    /// Worker threads executing `simulate`/`sweep` jobs.
    pub workers: usize,
    /// Work-queue capacity; submissions beyond it are rejected with
    /// `overloaded`.
    pub queue_capacity: usize,
    /// Default per-job deadline applied when a request carries none.
    pub default_deadline_ms: Option<u64>,
    /// The instrumented simulation session every job runs through.
    /// Pass a clone to share its trace pool and metrics registry with
    /// other components; the default is a fresh session with a fresh
    /// registry.
    pub session: SimSession,
    /// Optional bind address for the Prometheus text-exposition
    /// endpoint (`GET /metrics`); `None` disables it.
    pub metrics_addr: Option<String>,
    /// Optional NDJSON trace-journal path. When set, every worker
    /// records a per-request span tree (trace id minted at admission
    /// and echoed in the response) plus an access-log event into the
    /// file; `None` disables journaling at zero cost.
    pub journal: Option<PathBuf>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            addr: "127.0.0.1:4085".to_string(),
            unix_path: None,
            workers: smith85_core::sweep::default_threads(),
            queue_capacity: 64,
            default_deadline_ms: None,
            session: SimSession::default(),
            metrics_addr: None,
            journal: None,
        }
    }
}

enum JobKind {
    Simulate(SimulateSpec),
    Sweep(SweepSpec),
}

struct Job {
    kind: JobKind,
    reply: mpsc::SyncSender<Response>,
    admitted: Instant,
    deadline: Option<Instant>,
    /// Minted at admission, echoed in the response envelope and every
    /// journal record for this request.
    trace_id: String,
}

struct ServerState {
    queue: BoundedQueue<Job>,
    stats: ServerStats,
    shutdown: AtomicBool,
    workers: usize,
    default_deadline_ms: Option<u64>,
    session: SimSession,
    journal: SinkHandle,
}

impl ServerState {
    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.queue.close();
    }

    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    fn snapshot(&self) -> StatsResult {
        self.stats.snapshot(
            self.queue.depth(),
            self.queue.high_water(),
            self.workers,
            self.session.pool(),
            self.session.store().map(Arc::as_ref),
        )
    }
}

/// Requests a running server to shut down gracefully. Cloneable and
/// usable from any thread.
#[derive(Clone)]
pub struct ShutdownHandle {
    state: Arc<ServerState>,
}

impl ShutdownHandle {
    /// Begins graceful shutdown: stop accepting, drain in-flight jobs.
    pub fn shutdown(&self) {
        self.state.begin_shutdown();
    }
}

/// A bound (but not yet running) server.
pub struct Server {
    listener: TcpListener,
    #[cfg(unix)]
    unix_listener: Option<UnixListener>,
    unix_path: Option<PathBuf>,
    metrics_listener: Option<TcpListener>,
    state: Arc<ServerState>,
}

impl Server {
    /// Binds the TCP (and optional Unix) listeners.
    ///
    /// # Errors
    ///
    /// Returns the bind failure, or `Unsupported` for a Unix-socket path
    /// on a non-unix target.
    pub fn bind(opts: ServeOptions) -> io::Result<Server> {
        let listener = TcpListener::bind(&opts.addr)?;
        #[cfg(unix)]
        let unix_listener = match &opts.unix_path {
            None => None,
            Some(path) => {
                // A previous run's socket file would make bind fail with
                // AddrInUse; a fresh bind owns the path.
                if path.exists() {
                    std::fs::remove_file(path)?;
                }
                Some(UnixListener::bind(path)?)
            }
        };
        #[cfg(not(unix))]
        if opts.unix_path.is_some() {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "unix sockets are only available on unix targets",
            ));
        }
        let metrics_listener = match &opts.metrics_addr {
            None => None,
            Some(addr) => Some(TcpListener::bind(addr)?),
        };
        // Pre-register the serve-layer metrics so the Prometheus
        // exposition lists every family from the first scrape, before
        // any job has run.
        let registry = opts.session.registry();
        registry.counter("serve_deadline_misses_total");
        registry.gauge("serve_queue_depth");
        registry.histogram("serve_queue_wait_ms", MS_BOUNDS);
        registry.histogram("serve_exec_ms", MS_BOUNDS);
        let journal = match &opts.journal {
            None => SinkHandle::disabled(),
            Some(path) => SinkHandle::new(Arc::new(NdjsonWriter::create(path)?)),
        };
        Ok(Server {
            listener,
            #[cfg(unix)]
            unix_listener,
            unix_path: opts.unix_path.clone(),
            metrics_listener,
            state: Arc::new(ServerState {
                queue: BoundedQueue::new(opts.queue_capacity),
                stats: ServerStats::default(),
                shutdown: AtomicBool::new(false),
                workers: opts.workers.max(1),
                default_deadline_ms: opts.default_deadline_ms,
                session: opts.session,
                journal,
            }),
        })
    }

    /// The bound Prometheus endpoint address, when one was requested
    /// (useful after binding port 0).
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_listener
            .as_ref()
            .and_then(|l| l.local_addr().ok())
    }

    /// The bound TCP address (useful after binding port 0).
    ///
    /// # Errors
    ///
    /// Propagates the socket's `local_addr` failure.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that can stop this server from another thread.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            state: Arc::clone(&self.state),
        }
    }

    /// Runs until shutdown (SIGINT on unix, a `shutdown` request, or a
    /// [`ShutdownHandle`]), then drains and returns the final counters.
    ///
    /// # Errors
    ///
    /// Returns listener I/O failures; per-connection and per-job errors
    /// are handled internally and never abort the server.
    pub fn run(self) -> io::Result<StatsResult> {
        #[cfg(unix)]
        crate::signal::install_sigint_handler();

        let state = Arc::clone(&self.state);
        let mut workers = Vec::with_capacity(state.workers);
        for i in 0..state.workers {
            let state = Arc::clone(&state);
            workers.push(
                thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&state))?,
            );
        }

        #[cfg(unix)]
        let unix_accept = match self.unix_listener {
            None => None,
            Some(listener) => {
                let state = Arc::clone(&state);
                Some(
                    thread::Builder::new()
                        .name("serve-unix-accept".to_string())
                        .spawn(move || accept_loop_unix(&listener, &state))?,
                )
            }
        };

        let metrics_thread = match self.metrics_listener {
            None => None,
            Some(listener) => {
                let state = Arc::clone(&state);
                Some(
                    thread::Builder::new()
                        .name("serve-metrics".to_string())
                        .spawn(move || metrics_loop(&listener, &state))?,
                )
            }
        };

        self.listener.set_nonblocking(true)?;
        let mut connections: Vec<thread::JoinHandle<()>> = Vec::new();
        while !state.shutting_down() {
            #[cfg(unix)]
            if crate::signal::sigint_received() {
                state.begin_shutdown();
                break;
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let state = Arc::clone(&state);
                    match thread::Builder::new()
                        .name("serve-conn".to_string())
                        .spawn(move || handle_tcp_connection(stream, &state))
                    {
                        Ok(handle) => connections.push(handle),
                        Err(e) => eprintln!("smith85-serve: spawn failed: {e}"),
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    thread::sleep(POLL_INTERVAL);
                    connections.retain(|h| !h.is_finished());
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => {
                    // Transient accept failures (e.g. EMFILE) must not
                    // take the service down.
                    eprintln!("smith85-serve: accept failed: {e}");
                    thread::sleep(POLL_INTERVAL);
                }
            }
        }

        // Drain: the queue is closed, workers finish admitted jobs and
        // exit; connection threads notice the flag via their read
        // timeout and exit after their in-flight request is answered.
        state.begin_shutdown();
        for worker in workers {
            let _ = worker.join();
        }
        #[cfg(unix)]
        if let Some(handle) = unix_accept {
            let _ = handle.join();
        }
        if let Some(handle) = metrics_thread {
            let _ = handle.join();
        }
        for connection in connections {
            let _ = connection.join();
        }
        if let Some(path) = &self.unix_path {
            let _ = std::fs::remove_file(path);
        }
        Ok(state.snapshot())
    }

    /// Binds and runs the server on a background thread; the returned
    /// [`RunningServer`] exposes the bound address and a stop method.
    /// This is the entry point tests, the load generator and embedders
    /// use.
    ///
    /// # Errors
    ///
    /// Returns bind or spawn failures.
    pub fn spawn(opts: ServeOptions) -> io::Result<RunningServer> {
        let server = Server::bind(opts)?;
        let addr = server.local_addr()?;
        let metrics_addr = server.metrics_addr();
        let handle = server.shutdown_handle();
        let thread = thread::Builder::new()
            .name("serve-main".to_string())
            .spawn(move || server.run())?;
        Ok(RunningServer {
            addr,
            metrics_addr,
            handle,
            thread,
        })
    }
}

/// A server running on a background thread (see [`Server::spawn`]).
pub struct RunningServer {
    addr: SocketAddr,
    metrics_addr: Option<SocketAddr>,
    handle: ShutdownHandle,
    thread: thread::JoinHandle<io::Result<StatsResult>>,
}

impl RunningServer {
    /// The bound TCP address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound Prometheus endpoint address, when one was requested.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_addr
    }

    /// A shutdown handle usable from other threads.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        self.handle.clone()
    }

    /// Requests shutdown, waits for the drain, and returns the final
    /// counters.
    ///
    /// # Errors
    ///
    /// Returns the server's I/O error, or `Other` if its thread
    /// panicked.
    pub fn stop(self) -> io::Result<StatsResult> {
        self.handle.shutdown();
        self.thread
            .join()
            .map_err(|_| io::Error::other("server thread panicked"))?
    }
}

fn worker_loop(state: &ServerState) {
    while let Some(job) = state.queue.pop() {
        let probe = state.session.probe();
        probe.gauge("serve_queue_depth", state.queue.depth() as f64);
        let queue_wait = job.admitted.elapsed();
        let queue_ms = queue_wait.as_millis() as u64;
        probe.observe("serve_queue_wait_ms", queue_wait.as_secs_f64() * 1_000.0);
        let kind_name = match &job.kind {
            JobKind::Simulate(_) => "simulate",
            JobKind::Sweep(_) => "sweep",
        };
        // Root span for the whole request, under the trace id minted at
        // admission; entered thread-locally so the session kernels and
        // the pool record child spans into the same trace.
        let span = state.journal.enabled().then(|| {
            TraceContext::root_with_id(
                state.journal.clone(),
                &job.trace_id,
                "request",
                vec![("kind".to_string(), kind_name.into())],
            )
        });
        let _enter = span.as_ref().map(|s| tracelog::enter(s.ctx().clone()));
        if let Some(deadline) = job.deadline {
            if Instant::now() > deadline {
                ServerStats::bump(&state.stats.deadline_misses);
                probe.count("serve_deadline_misses_total", 1);
                access_log(&span, kind_name, "deadline_miss", queue_ms, 0);
                let _ = job.reply.send(Response::Error(ErrorBody::new(
                    ErrorCode::DeadlineExceeded,
                    format!("job waited {queue_ms} ms in queue, past its deadline"),
                )));
                // The gauge must track the queue on *every* exit path,
                // not just the next iteration's pop.
                probe.gauge("serve_queue_depth", state.queue.depth() as f64);
                continue;
            }
        }
        let start = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| match &job.kind {
            JobKind::Simulate(spec) => {
                exec::run_simulate(&state.session, spec).map(Response::Simulate)
            }
            JobKind::Sweep(spec) => exec::run_sweep(&state.session, spec).map(Response::Sweep),
        }));
        let exec_elapsed = start.elapsed();
        let exec_ms = exec_elapsed.as_millis() as u64;
        probe.observe("serve_exec_ms", exec_elapsed.as_secs_f64() * 1_000.0);
        let busy_counter = match &job.kind {
            JobKind::Simulate(_) => &state.stats.busy_ms_simulate,
            JobKind::Sweep(_) => &state.stats.busy_ms_sweep,
        };
        ServerStats::add_ms(busy_counter, exec_ms);
        let (response, outcome_name) = match outcome {
            Ok(Ok(mut response)) => {
                if job
                    .deadline
                    .is_some_and(|deadline| Instant::now() > deadline)
                {
                    ServerStats::bump(&state.stats.deadline_misses);
                    probe.count("serve_deadline_misses_total", 1);
                    (
                        Response::Error(ErrorBody::new(
                            ErrorCode::DeadlineExceeded,
                            format!("job finished after its deadline ({exec_ms} ms of work)"),
                        )),
                        "deadline_miss",
                    )
                } else {
                    match &mut response {
                        Response::Simulate(r) => {
                            r.queue_ms = queue_ms;
                            r.exec_ms = exec_ms;
                            r.trace_id = job.trace_id.clone();
                        }
                        Response::Sweep(r) => {
                            r.queue_ms = queue_ms;
                            r.exec_ms = exec_ms;
                            r.trace_id = job.trace_id.clone();
                            // Grid sweeps (points carrying `ways`) tally
                            // the one-pass engine's server-wide counters.
                            let grid_cells =
                                r.points.iter().filter(|p| p.ways.is_some()).count() as u64;
                            if grid_cells > 0 {
                                ServerStats::add(&state.stats.one_pass_refs, r.len as u64);
                                ServerStats::add(&state.stats.one_pass_grid_cells, grid_cells);
                            }
                        }
                        _ => {}
                    }
                    ServerStats::bump(&state.stats.completed);
                    (response, "ok")
                }
            }
            Ok(Err(error)) => {
                ServerStats::bump(&state.stats.protocol_errors);
                (Response::Error(error), "error")
            }
            Err(payload) => (
                Response::Error(ErrorBody::new(
                    ErrorCode::Internal,
                    format!(
                        "job panicked: {}",
                        smith85_core::sweep::panic_message(payload.as_ref())
                    ),
                )),
                "panic",
            ),
        };
        access_log(&span, kind_name, outcome_name, queue_ms, exec_ms);
        let _ = job.reply.send(response);
        probe.gauge("serve_queue_depth", state.queue.depth() as f64);
    }
    // Shutdown drain finished: whatever value the gauge last held, the
    // queue is empty now — report that, so a final scrape never shows a
    // stale nonzero depth.
    state
        .session
        .probe()
        .gauge("serve_queue_depth", state.queue.depth() as f64);
    state.journal.flush();
}

/// One per-request access-log event: kind, outcome, and the two wait
/// components, attached to the request's root span.
fn access_log(
    span: &Option<smith85_tracelog::SpanGuard>,
    kind: &str,
    outcome: &str,
    queue_ms: u64,
    exec_ms: u64,
) {
    let Some(span) = span else { return };
    let severity = if outcome == "ok" {
        Severity::Info
    } else {
        Severity::Error
    };
    span.ctx().event(
        severity,
        "access_log",
        vec![
            ("kind".to_string(), kind.into()),
            ("outcome".to_string(), outcome.into()),
            ("queue_ms".to_string(), queue_ms.into()),
            ("exec_ms".to_string(), exec_ms.into()),
        ],
    );
}

/// Accept loop for the Prometheus endpoint: a deliberately minimal
/// HTTP/1.1 responder (no routing beyond `GET`, no keep-alive) — the
/// offline toolchain has no HTTP dependency, and scrapers only ever
/// issue one-shot GETs.
fn metrics_loop(listener: &TcpListener, state: &Arc<ServerState>) {
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    while !state.shutting_down() {
        match listener.accept() {
            Ok((stream, _peer)) => serve_metrics_scrape(stream, state),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(POLL_INTERVAL),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => thread::sleep(POLL_INTERVAL),
        }
    }
}

fn serve_metrics_scrape(mut stream: TcpStream, state: &Arc<ServerState>) {
    // Read the request head (first line is enough to validate the
    // method); a short timeout keeps a stalled scraper from pinning
    // the loop.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let mut head = [0u8; 1024];
    let read = match stream.read(&mut head) {
        Ok(n) => n,
        Err(_) => return,
    };
    let request = String::from_utf8_lossy(&head[..read]);
    let response = if request.starts_with("GET ") {
        let body = state.session.registry().snapshot().to_prometheus();
        format!(
            "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
            body.len(),
            body
        )
    } else {
        let body = "metrics endpoint only answers GET\n";
        format!(
            "HTTP/1.1 405 Method Not Allowed\r\nContent-Type: text/plain\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
            body.len(),
            body
        )
    };
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.flush();
}

fn handle_tcp_connection(stream: TcpStream, state: &Arc<ServerState>) {
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let reader = match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    };
    serve_lines(reader, stream, state);
}

#[cfg(unix)]
fn handle_unix_connection(stream: UnixStream, state: &Arc<ServerState>) {
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let reader = match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    };
    serve_lines(reader, stream, state);
}

#[cfg(unix)]
fn accept_loop_unix(listener: &UnixListener, state: &Arc<ServerState>) {
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    let mut connections: Vec<thread::JoinHandle<()>> = Vec::new();
    while !state.shutting_down() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let state = Arc::clone(state);
                if let Ok(handle) = thread::Builder::new()
                    .name("serve-unix-conn".to_string())
                    .spawn(move || handle_unix_connection(stream, &state))
                {
                    connections.push(handle);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(POLL_INTERVAL);
                connections.retain(|h| !h.is_finished());
            }
            Err(_) => thread::sleep(POLL_INTERVAL),
        }
    }
    for connection in connections {
        let _ = connection.join();
    }
}

enum LineRead {
    /// One complete line (without the newline).
    Line(Vec<u8>),
    /// The line exceeded [`MAX_LINE_BYTES`]; the connection is beyond
    /// recovery (the rest of the line would have to be skipped
    /// unboundedly), so the caller answers and closes.
    Oversized,
    /// Clean end of stream.
    Eof,
    /// Server shutdown observed while idle.
    Shutdown,
}

/// Reads one newline-delimited line, polling the shutdown flag during
/// read timeouts. A final line without a trailing newline still counts.
fn read_line_bounded(
    reader: &mut BufReader<impl Read>,
    state: &ServerState,
) -> io::Result<LineRead> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let buffered = match reader.fill_buf() {
            Ok(buffered) => buffered,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut =>
            {
                if state.shutting_down() {
                    return Ok(LineRead::Shutdown);
                }
                continue;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        if buffered.is_empty() {
            return Ok(if line.is_empty() {
                LineRead::Eof
            } else {
                LineRead::Line(line)
            });
        }
        if let Some(pos) = buffered.iter().position(|&b| b == b'\n') {
            line.extend_from_slice(&buffered[..pos]);
            reader.consume(pos + 1);
            if line.len() > MAX_LINE_BYTES {
                return Ok(LineRead::Oversized);
            }
            return Ok(LineRead::Line(line));
        }
        let taken = buffered.len();
        line.extend_from_slice(buffered);
        reader.consume(taken);
        if line.len() > MAX_LINE_BYTES {
            return Ok(LineRead::Oversized);
        }
    }
}

fn serve_lines(reader: impl Read, mut writer: impl Write, state: &Arc<ServerState>) {
    let mut reader = BufReader::new(reader);
    loop {
        let line = match read_line_bounded(&mut reader, state) {
            Ok(LineRead::Line(line)) => line,
            Ok(LineRead::Oversized) => {
                ServerStats::bump(&state.stats.protocol_errors);
                let response = Response::Error(ErrorBody::new(
                    ErrorCode::Oversized,
                    format!("request line exceeds {MAX_LINE_BYTES} bytes"),
                ));
                let _ = write_response(&mut writer, &response);
                return;
            }
            Ok(LineRead::Eof | LineRead::Shutdown) | Err(_) => return,
        };
        let text = match std::str::from_utf8(&line) {
            Ok(text) => text,
            Err(_) => {
                ServerStats::bump(&state.stats.protocol_errors);
                let response = Response::Error(ErrorBody::new(
                    ErrorCode::BadRequest,
                    "request line is not valid UTF-8",
                ));
                if write_response(&mut writer, &response).is_err() {
                    return;
                }
                continue;
            }
        };
        if text.trim().is_empty() {
            continue;
        }
        let response = handle_request(text, state);
        if write_response(&mut writer, &response).is_err() {
            return;
        }
    }
}

fn write_response(writer: &mut impl Write, response: &Response) -> io::Result<()> {
    let mut line = response.encode();
    line.push('\n');
    writer.write_all(line.as_bytes())?;
    writer.flush()
}

fn handle_request(line: &str, state: &Arc<ServerState>) -> Response {
    let request = match Request::decode(line) {
        Ok(request) => request,
        Err(error) => {
            ServerStats::bump(&state.stats.protocol_errors);
            return Response::Error(error);
        }
    };
    match request {
        Request::Ping => Response::Pong,
        Request::Catalog => {
            ServerStats::bump(&state.stats.catalog_requests);
            Response::Catalog(exec::catalog_result())
        }
        Request::Stats => {
            ServerStats::bump(&state.stats.stats_requests);
            Response::Stats(state.snapshot())
        }
        Request::Metrics => Response::Metrics(state.session.registry().snapshot()),
        Request::Shutdown => {
            state.begin_shutdown();
            Response::Ok
        }
        Request::Simulate(spec) => {
            let deadline_ms = spec.deadline_ms.or(state.default_deadline_ms);
            submit_job(
                state,
                JobKind::Simulate(spec),
                deadline_ms,
                &state.stats.simulate_requests,
            )
        }
        Request::Sweep(spec) => {
            let deadline_ms = spec.deadline_ms.or(state.default_deadline_ms);
            submit_job(
                state,
                JobKind::Sweep(spec),
                deadline_ms,
                &state.stats.sweep_requests,
            )
        }
    }
}

fn submit_job(
    state: &Arc<ServerState>,
    kind: JobKind,
    deadline_ms: Option<u64>,
    admitted_counter: &std::sync::atomic::AtomicU64,
) -> Response {
    let admitted = Instant::now();
    let (reply, receive) = mpsc::sync_channel(1);
    let job = Job {
        kind,
        reply,
        admitted,
        deadline: deadline_ms.map(|ms| admitted + Duration::from_millis(ms)),
        trace_id: mint_trace_id(),
    };
    match state.queue.try_push(job) {
        Ok(()) => {}
        Err(PushError::Full(_)) => {
            ServerStats::bump(&state.stats.rejected_overload);
            return Response::Error(ErrorBody::new(
                ErrorCode::Overloaded,
                format!(
                    "work queue is full ({} jobs); retry later",
                    state.queue.depth()
                ),
            ));
        }
        Err(PushError::Closed(_)) => {
            return Response::Error(ErrorBody::new(
                ErrorCode::ShuttingDown,
                "server is draining and no longer admits work",
            ));
        }
    }
    ServerStats::bump(admitted_counter);
    state
        .session
        .probe()
        .gauge("serve_queue_depth", state.queue.depth() as f64);
    match receive.recv_timeout(REPLY_TIMEOUT) {
        Ok(response) => response,
        Err(_) => Response::Error(ErrorBody::new(
            ErrorCode::Internal,
            "worker did not reply in time",
        )),
    }
}
