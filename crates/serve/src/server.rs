//! The simulation server: listeners, connection handling, worker pool,
//! and the shard-router mode.
//!
//! Architecture (all `std`, no async runtime — the offline shims
//! preclude tokio):
//!
//! ```text
//!  poll event loop (unix) ─┐                   ┌─ worker 0 ─┐
//!   TCP + Unix listeners   ├─ NDJSON lines ──▶ │ bounded    │──▶ TracePool
//!   + every connection     │                   │ work queue │    (shared)
//!  loopback accept thread ─┘                   └─ worker N ─┘
//! ```
//!
//! * On unix targets a single poll(2)-driven thread ([`crate::event_loop`])
//!   owns the TCP/Unix listeners and every connection: idle connections
//!   cost one pollfd per iteration, and a new connection is admitted the
//!   instant the listener is readable instead of after the old accept
//!   loop's 100 ms sleep. `ServeOptions::event_loop = false` (or a
//!   non-unix target) falls back to the previous thread-per-connection
//!   model.
//! * Cheap requests (`catalog`, `stats`, `ping`, `shutdown`) are answered
//!   inline; `simulate`/`sweep` go through the [`BoundedQueue`]; a full
//!   queue is an immediate typed `overloaded` response (admission
//!   control), never an unbounded backlog.
//! * In router mode ([`RouterOptions`]) workers forward `simulate`/`sweep`
//!   to backend shards picked by consistent hashing instead of executing
//!   them locally; see [`crate::router`].
//! * Workers run jobs under `catch_unwind`, so a panicking job produces
//!   an `internal` error response instead of a dead worker.
//! * Graceful shutdown (SIGINT on unix, or a `shutdown` request): stop
//!   accepting, close the queue, drain already-admitted jobs, join every
//!   thread, then return the final stats snapshot.

use crate::exec;
use crate::protocol::{
    ErrorBody, ErrorCode, Request, Response, SimulateSpec, StatsResult, SweepSpec, MAX_LINE_BYTES,
};
use crate::queue::{BoundedQueue, PushError};
use crate::router::{RouterOptions, RouterState};
use crate::stats::ServerStats;
use crate::transport::{Listener, LoopbackHub, Transport};
use smith85_core::session::SimSession;
use smith85_obs::MS_BOUNDS;
use smith85_tracelog::{
    self as tracelog, mint_trace_id, NdjsonWriter, Severity, SinkHandle, TraceContext,
};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::UnixListener;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::{Duration, Instant};

/// How often blocked reads and the accept loops recheck the shutdown
/// flag.
const POLL_INTERVAL: Duration = Duration::from_millis(100);

/// Upper bound a connection waits for a worker reply after admission;
/// a safety net against a lost reply, far above any legal job runtime.
const REPLY_TIMEOUT: Duration = Duration::from_secs(600);

/// Server construction parameters.
///
/// Construct directly (every field is public and `Default` is sensible)
/// or through [`ServeOptions::builder`], which validates at `build()`
/// time. [`Server::bind`] re-validates either way, so an invalid combo
/// — router mode plus a persistent store, zero workers — is a typed
/// [`ConfigError`] before any socket is bound.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// TCP bind address, e.g. `"127.0.0.1:4085"` (port 0 for ephemeral).
    pub addr: String,
    /// Optional Unix-domain socket path (unix targets only; binding
    /// fails with an error elsewhere). An existing socket file at the
    /// path is replaced.
    pub unix_path: Option<PathBuf>,
    /// Worker threads executing `simulate`/`sweep` jobs (or, in router
    /// mode, forwarding them).
    pub workers: usize,
    /// Work-queue capacity; submissions beyond it are rejected with
    /// `overloaded`.
    pub queue_capacity: usize,
    /// Default per-job deadline applied when a request carries none.
    pub default_deadline_ms: Option<u64>,
    /// The instrumented simulation session every job runs through.
    /// Pass a clone to share its trace pool and metrics registry with
    /// other components; the default is a fresh session with a fresh
    /// registry.
    pub session: SimSession,
    /// Optional bind address for the Prometheus text-exposition
    /// endpoint (`GET /metrics`); `None` disables it.
    pub metrics_addr: Option<String>,
    /// Optional NDJSON trace-journal path. When set, every worker
    /// records a per-request span tree (trace id minted at admission —
    /// or adopted from the request envelope, so a router's id threads
    /// through to the backend journal) plus an access-log event into
    /// the file; `None` disables journaling at zero cost.
    pub journal: Option<PathBuf>,
    /// Optional in-process loopback hub to accept connections from
    /// (tests and embedders; served by a connection thread regardless
    /// of `event_loop`).
    pub loopback: Option<LoopbackHub>,
    /// Router mode: forward `simulate`/`sweep` to these backend shards
    /// instead of executing locally. Incompatible with a session store.
    pub router: Option<RouterOptions>,
    /// Use the poll event loop for TCP/Unix connections (unix targets;
    /// elsewhere the thread-per-connection fallback is always used).
    /// `false` forces the fallback — the worker-pool-only baseline the
    /// benchmarks compare against.
    pub event_loop: bool,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            addr: "127.0.0.1:4085".to_string(),
            unix_path: None,
            workers: smith85_core::sweep::default_threads(),
            queue_capacity: 64,
            default_deadline_ms: None,
            session: SimSession::default(),
            metrics_addr: None,
            journal: None,
            loopback: None,
            router: None,
            event_loop: true,
        }
    }
}

/// A [`ServeOptions`] combination the server refuses to run with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// The TCP bind address is empty.
    EmptyAddr,
    /// `workers` is zero: nothing would ever execute a job.
    ZeroWorkers,
    /// `queue_capacity` is zero: every job would be rejected.
    ZeroQueueCapacity,
    /// Router mode with a persistent store: the router holds no results
    /// of its own (the backends own their stores), so a store on the
    /// router could only serve stale or diverging data.
    RouterWithStore,
    /// Router mode with an empty backend list.
    RouterWithoutBackends,
    /// A per-shard in-flight budget of zero would reject every request.
    RouterZeroInflight,
    /// Zero virtual nodes per shard leaves the hash ring empty.
    RouterZeroReplicas,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::EmptyAddr => write!(f, "bind address is empty"),
            ConfigError::ZeroWorkers => write!(f, "workers must be at least 1"),
            ConfigError::ZeroQueueCapacity => write!(f, "queue capacity must be at least 1"),
            ConfigError::RouterWithStore => write!(
                f,
                "router mode is incompatible with a persistent store; \
                 configure the store on the backend shards instead"
            ),
            ConfigError::RouterWithoutBackends => {
                write!(f, "router mode needs at least one backend address")
            }
            ConfigError::RouterZeroInflight => {
                write!(f, "per-shard in-flight budget must be at least 1")
            }
            ConfigError::RouterZeroReplicas => {
                write!(f, "hash-ring replicas must be at least 1")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

impl ServeOptions {
    /// A validating builder starting from [`ServeOptions::default`].
    pub fn builder() -> ServeOptionsBuilder {
        ServeOptionsBuilder {
            opts: ServeOptions::default(),
        }
    }

    /// Checks the option combination; [`Server::bind`] calls this, so
    /// struct-literal construction is validated too.
    ///
    /// # Errors
    ///
    /// The first [`ConfigError`] found.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.addr.trim().is_empty() {
            return Err(ConfigError::EmptyAddr);
        }
        if self.workers == 0 {
            return Err(ConfigError::ZeroWorkers);
        }
        if self.queue_capacity == 0 {
            return Err(ConfigError::ZeroQueueCapacity);
        }
        if let Some(router) = &self.router {
            if self.session.store().is_some() {
                return Err(ConfigError::RouterWithStore);
            }
            if router.backends.is_empty() {
                return Err(ConfigError::RouterWithoutBackends);
            }
            if router.shard_inflight == 0 {
                return Err(ConfigError::RouterZeroInflight);
            }
            if router.replicas == 0 {
                return Err(ConfigError::RouterZeroReplicas);
            }
        }
        Ok(())
    }
}

/// Builder for [`ServeOptions`] (see [`ServeOptions::builder`]).
#[derive(Debug, Clone)]
pub struct ServeOptionsBuilder {
    opts: ServeOptions,
}

impl ServeOptionsBuilder {
    /// TCP bind address (port 0 for ephemeral).
    #[must_use]
    pub fn addr(mut self, addr: impl Into<String>) -> Self {
        self.opts.addr = addr.into();
        self
    }

    /// Unix-domain socket path (unix targets only).
    #[must_use]
    pub fn unix_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.opts.unix_path = Some(path.into());
        self
    }

    /// Worker threads executing (or forwarding) jobs.
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.opts.workers = workers;
        self
    }

    /// Work-queue capacity.
    #[must_use]
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.opts.queue_capacity = capacity;
        self
    }

    /// Default per-job deadline for requests that carry none.
    #[must_use]
    pub fn default_deadline_ms(mut self, ms: u64) -> Self {
        self.opts.default_deadline_ms = Some(ms);
        self
    }

    /// The simulation session jobs run through.
    #[must_use]
    pub fn session(mut self, session: SimSession) -> Self {
        self.opts.session = session;
        self
    }

    /// Bind address for the Prometheus exposition endpoint.
    #[must_use]
    pub fn metrics_addr(mut self, addr: impl Into<String>) -> Self {
        self.opts.metrics_addr = Some(addr.into());
        self
    }

    /// NDJSON trace-journal path.
    #[must_use]
    pub fn journal(mut self, path: impl Into<PathBuf>) -> Self {
        self.opts.journal = Some(path.into());
        self
    }

    /// In-process loopback hub to accept connections from.
    #[must_use]
    pub fn loopback(mut self, hub: LoopbackHub) -> Self {
        self.opts.loopback = Some(hub);
        self
    }

    /// Router mode: forward jobs to these backend shards.
    #[must_use]
    pub fn router(mut self, router: RouterOptions) -> Self {
        self.opts.router = Some(router);
        self
    }

    /// Toggles the poll event loop (unix targets).
    #[must_use]
    pub fn event_loop(mut self, enabled: bool) -> Self {
        self.opts.event_loop = enabled;
        self
    }

    /// Validates and returns the options.
    ///
    /// # Errors
    ///
    /// The first [`ConfigError`] in the combination.
    pub fn build(self) -> Result<ServeOptions, ConfigError> {
        self.opts.validate()?;
        Ok(self.opts)
    }
}

pub(crate) enum JobKind {
    Simulate(SimulateSpec),
    Sweep(SweepSpec),
    /// Router mode: forward the original request to a backend shard.
    Forward(Request),
}

/// Where a finished job's response goes: back to a blocked connection
/// thread, or onto the event loop's completion list.
pub(crate) enum ReplyTo {
    /// A connection thread blocked in `recv_timeout`.
    Channel(mpsc::SyncSender<Response>),
    /// The poll event loop: push the response and wake the poller.
    #[cfg(unix)]
    Event {
        conn_id: u64,
        completions: crate::event_loop::Completions,
        waker: crate::event_loop::Waker,
    },
}

impl ReplyTo {
    fn send(&self, response: Response) {
        match self {
            ReplyTo::Channel(reply) => {
                let _ = reply.send(response);
            }
            #[cfg(unix)]
            ReplyTo::Event {
                conn_id,
                completions,
                waker,
            } => {
                completions.lock().unwrap().push((*conn_id, response));
                waker.wake();
            }
        }
    }
}

pub(crate) struct Job {
    kind: JobKind,
    reply: ReplyTo,
    admitted: Instant,
    deadline: Option<Instant>,
    /// Minted at admission (or adopted from the request envelope, as a
    /// router's forwarded id is), echoed in the response envelope and
    /// every journal record for this request.
    trace_id: String,
    /// The sender's span id from the request envelope (0 = none): the
    /// request's root span opens with this as its parent, so a merged
    /// multi-journal report hangs this node's subtree under the
    /// sender's hop span.
    parent_span: u64,
}

pub(crate) struct ServerState {
    pub(crate) queue: BoundedQueue<Job>,
    pub(crate) stats: ServerStats,
    shutdown: AtomicBool,
    workers: usize,
    default_deadline_ms: Option<u64>,
    session: SimSession,
    journal: SinkHandle,
    router: Option<Arc<RouterState>>,
}

impl ServerState {
    /// The session this server executes jobs through (the event loop
    /// reads its metrics registry).
    pub(crate) fn session(&self) -> &SimSession {
        &self.session
    }

    /// The metrics view this node answers `metrics` and `/metrics`
    /// with: its own registry, federated with every shard's snapshot
    /// when running as a router.
    pub(crate) fn metrics_snapshot(&self) -> smith85_obs::RegistrySnapshot {
        match &self.router {
            Some(router) => router.federated_snapshot(),
            None => self.session.registry().snapshot(),
        }
    }

    pub(crate) fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.queue.close();
    }

    pub(crate) fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    fn snapshot(&self) -> StatsResult {
        self.stats.snapshot(
            self.queue.depth(),
            self.queue.high_water(),
            self.workers,
            self.session.pool(),
            self.session.store().map(Arc::as_ref),
            self.router.as_ref().map(|router| router.counters()),
        )
    }
}

/// Requests a running server to shut down gracefully. Cloneable and
/// usable from any thread.
#[derive(Clone)]
pub struct ShutdownHandle {
    state: Arc<ServerState>,
}

impl ShutdownHandle {
    /// Begins graceful shutdown: stop accepting, drain in-flight jobs.
    pub fn shutdown(&self) {
        self.state.begin_shutdown();
    }
}

/// A bound (but not yet running) server.
pub struct Server {
    listener: TcpListener,
    #[cfg(unix)]
    unix_listener: Option<UnixListener>,
    unix_path: Option<PathBuf>,
    metrics_listener: Option<TcpListener>,
    loopback: Option<LoopbackHub>,
    event_loop: bool,
    state: Arc<ServerState>,
}

impl Server {
    /// Validates the options and binds the TCP (and optional Unix)
    /// listeners.
    ///
    /// # Errors
    ///
    /// `InvalidInput` wrapping a [`ConfigError`] for a rejected option
    /// combination; otherwise the bind failure, or `Unsupported` for a
    /// Unix-socket path on a non-unix target.
    pub fn bind(opts: ServeOptions) -> io::Result<Server> {
        opts.validate()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
        let listener = TcpListener::bind(&opts.addr)?;
        #[cfg(unix)]
        let unix_listener = match &opts.unix_path {
            None => None,
            Some(path) => Some(crate::transport::bind_unix(path)?),
        };
        #[cfg(not(unix))]
        if opts.unix_path.is_some() {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "unix sockets are only available on unix targets",
            ));
        }
        let metrics_listener = match &opts.metrics_addr {
            None => None,
            Some(addr) => Some(TcpListener::bind(addr)?),
        };
        // Pre-register the serve-layer metrics so the Prometheus
        // exposition lists every family from the first scrape, before
        // any job has run.
        let registry = opts.session.registry();
        registry.counter("serve_deadline_misses_total");
        registry.gauge("serve_queue_depth");
        registry.histogram("serve_queue_wait_ms", MS_BOUNDS);
        registry.histogram("serve_exec_ms", MS_BOUNDS);
        let router = opts
            .router
            .clone()
            .map(|router_opts| Arc::new(RouterState::new(router_opts, registry.clone())));
        let journal = match &opts.journal {
            None => SinkHandle::disabled(),
            Some(path) => SinkHandle::new(Arc::new(NdjsonWriter::create(path)?)),
        };
        Ok(Server {
            listener,
            #[cfg(unix)]
            unix_listener,
            unix_path: opts.unix_path.clone(),
            metrics_listener,
            loopback: opts.loopback.clone(),
            event_loop: opts.event_loop,
            state: Arc::new(ServerState {
                queue: BoundedQueue::new(opts.queue_capacity),
                stats: ServerStats::default(),
                shutdown: AtomicBool::new(false),
                workers: opts.workers.max(1),
                default_deadline_ms: opts.default_deadline_ms,
                session: opts.session,
                journal,
                router,
            }),
        })
    }

    /// The bound Prometheus endpoint address, when one was requested
    /// (useful after binding port 0).
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_listener
            .as_ref()
            .and_then(|l| l.local_addr().ok())
    }

    /// The bound TCP address (useful after binding port 0).
    ///
    /// # Errors
    ///
    /// Propagates the socket's `local_addr` failure.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that can stop this server from another thread.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            state: Arc::clone(&self.state),
        }
    }

    /// Runs until shutdown (SIGINT on unix, a `shutdown` request, or a
    /// [`ShutdownHandle`]), then drains and returns the final counters.
    ///
    /// # Errors
    ///
    /// Returns listener I/O failures; per-connection and per-job errors
    /// are handled internally and never abort the server.
    pub fn run(mut self) -> io::Result<StatsResult> {
        #[cfg(unix)]
        crate::signal::install_sigint_handler();

        let state = Arc::clone(&self.state);
        let mut workers = Vec::with_capacity(state.workers);
        for i in 0..state.workers {
            let state = Arc::clone(&state);
            workers.push(
                thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&state))?,
            );
        }

        let prober = match &state.router {
            None => None,
            Some(router) => {
                let router = Arc::clone(router);
                let state = Arc::clone(&state);
                Some(
                    thread::Builder::new()
                        .name("serve-router-probe".to_string())
                        .spawn(move || prober_loop(&router, &state))?,
                )
            }
        };

        let metrics_thread = match self.metrics_listener.take() {
            None => None,
            Some(listener) => {
                let state = Arc::clone(&state);
                Some(
                    thread::Builder::new()
                        .name("serve-metrics".to_string())
                        .spawn(move || metrics_loop(&listener, &state))?,
                )
            }
        };

        let loopback_accept = match self.loopback.clone() {
            None => None,
            Some(hub) => {
                let state = Arc::clone(&state);
                Some(
                    thread::Builder::new()
                        .name("serve-loopback-accept".to_string())
                        .spawn(move || accept_loop_transport(&hub, &state))?,
                )
            }
        };

        #[cfg(unix)]
        {
            if self.event_loop {
                crate::event_loop::run(&self.listener, self.unix_listener.as_ref(), &state)?;
            } else {
                let unix_accept = match self.unix_listener.take() {
                    None => None,
                    Some(listener) => {
                        let state = Arc::clone(&state);
                        Some(
                            thread::Builder::new()
                                .name("serve-unix-accept".to_string())
                                .spawn(move || accept_loop_transport(&listener, &state))?,
                        )
                    }
                };
                threaded_accept_loop(&self.listener, &state);
                if let Some(handle) = unix_accept {
                    let _ = handle.join();
                }
            }
        }
        #[cfg(not(unix))]
        threaded_accept_loop(&self.listener, &state);

        // Drain: the queue is closed, workers finish admitted jobs and
        // exit; connection threads notice the flag via their read
        // timeout and exit after their in-flight request is answered.
        state.begin_shutdown();
        if let Some(hub) = &self.loopback {
            hub.close();
        }
        for worker in workers {
            let _ = worker.join();
        }
        if let Some(handle) = prober {
            let _ = handle.join();
        }
        if let Some(handle) = metrics_thread {
            let _ = handle.join();
        }
        if let Some(handle) = loopback_accept {
            let _ = handle.join();
        }
        if let Some(path) = &self.unix_path {
            let _ = std::fs::remove_file(path);
        }
        Ok(state.snapshot())
    }

    /// Binds and runs the server on a background thread; the returned
    /// [`RunningServer`] exposes the bound address and a stop method.
    /// This is the entry point tests, the load generator and embedders
    /// use.
    ///
    /// # Errors
    ///
    /// Returns bind or spawn failures.
    pub fn spawn(opts: ServeOptions) -> io::Result<RunningServer> {
        let server = Server::bind(opts)?;
        let addr = server.local_addr()?;
        let metrics_addr = server.metrics_addr();
        let handle = server.shutdown_handle();
        let thread = thread::Builder::new()
            .name("serve-main".to_string())
            .spawn(move || server.run())?;
        Ok(RunningServer {
            addr,
            metrics_addr,
            handle,
            thread,
        })
    }
}

/// A server running on a background thread (see [`Server::spawn`]).
pub struct RunningServer {
    addr: SocketAddr,
    metrics_addr: Option<SocketAddr>,
    handle: ShutdownHandle,
    thread: thread::JoinHandle<io::Result<StatsResult>>,
}

impl RunningServer {
    /// The bound TCP address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound Prometheus endpoint address, when one was requested.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_addr
    }

    /// A shutdown handle usable from other threads.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        self.handle.clone()
    }

    /// Requests shutdown, waits for the drain, and returns the final
    /// counters.
    ///
    /// # Errors
    ///
    /// Returns the server's I/O error, or `Other` if its thread
    /// panicked.
    pub fn stop(self) -> io::Result<StatsResult> {
        self.handle.shutdown();
        self.thread
            .join()
            .map_err(|_| io::Error::other("server thread panicked"))?
    }
}

/// The health-probe loop for router mode: one round per interval, with
/// the sleep sliced so shutdown is noticed promptly.
fn prober_loop(router: &RouterState, state: &ServerState) {
    while !state.shutting_down() {
        router.probe_round();
        let interval = router.probe_interval();
        let start = Instant::now();
        while start.elapsed() < interval && !state.shutting_down() {
            thread::sleep(Duration::from_millis(20).min(interval));
        }
    }
}

fn worker_loop(state: &ServerState) {
    while let Some(job) = state.queue.pop() {
        let probe = state.session.probe();
        probe.gauge("serve_queue_depth", state.queue.depth() as f64);
        let queue_wait = job.admitted.elapsed();
        let queue_ms = queue_wait.as_millis() as u64;
        probe.observe("serve_queue_wait_ms", queue_wait.as_secs_f64() * 1_000.0);
        let kind_name = match &job.kind {
            JobKind::Simulate(_) => "simulate",
            JobKind::Sweep(_) => "sweep",
            JobKind::Forward(_) => "forward",
        };
        // Root span for the whole request, under the trace id minted at
        // admission; entered thread-locally so the session kernels, the
        // pool, and the router's forward spans land in the same trace.
        // A router roots `router_request` (its hop spans nest below); a
        // shard receiving a forwarded request roots under the wire
        // `parent_span`, linking the journals into one tree.
        let root_name = if state.router.is_some() {
            "router_request"
        } else {
            "request"
        };
        let span = state.journal.enabled().then(|| {
            TraceContext::root_with_parent(
                state.journal.clone(),
                &job.trace_id,
                job.parent_span,
                root_name,
                vec![("kind".to_string(), kind_name.into())],
            )
        });
        let _enter = span.as_ref().map(|s| tracelog::enter(s.ctx().clone()));
        if let Some(deadline) = job.deadline {
            if Instant::now() > deadline {
                ServerStats::bump(&state.stats.deadline_misses);
                probe.count("serve_deadline_misses_total", 1);
                access_log(&span, kind_name, "deadline_miss", queue_ms, 0);
                job.reply.send(Response::Error(ErrorBody::new(
                    ErrorCode::DeadlineExceeded,
                    format!("job waited {queue_ms} ms in queue, past its deadline"),
                )));
                // The gauge must track the queue on *every* exit path,
                // not just the next iteration's pop.
                probe.gauge("serve_queue_depth", state.queue.depth() as f64);
                continue;
            }
        }
        let forwarded = matches!(&job.kind, JobKind::Forward(_));
        let start = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| match &job.kind {
            JobKind::Simulate(spec) => {
                exec::run_simulate(&state.session, spec).map(Response::Simulate)
            }
            JobKind::Sweep(spec) => exec::run_sweep(&state.session, spec).map(Response::Sweep),
            JobKind::Forward(request) => {
                let router = state
                    .router
                    .as_ref()
                    .expect("forward jobs exist only in router mode");
                router.forward(request, &job.trace_id).map(|outcome| {
                    let ctx = tracelog::current();
                    if ctx.enabled() {
                        ctx.event(
                            Severity::Info,
                            "router_route",
                            vec![
                                ("shard".to_string(), outcome.shard.clone().into()),
                                ("hedges".to_string(), outcome.hedges.into()),
                            ],
                        );
                    }
                    outcome.response
                })
            }
        }));
        let exec_elapsed = start.elapsed();
        let exec_ms = exec_elapsed.as_millis() as u64;
        probe.observe("serve_exec_ms", exec_elapsed.as_secs_f64() * 1_000.0);
        let busy_counter = match &job.kind {
            JobKind::Simulate(_) => Some(&state.stats.busy_ms_simulate),
            JobKind::Sweep(_) => Some(&state.stats.busy_ms_sweep),
            JobKind::Forward(_) => None,
        };
        if let Some(counter) = busy_counter {
            ServerStats::add_ms(counter, exec_ms);
        }
        let (response, outcome_name) = match outcome {
            Ok(Ok(mut response)) => {
                if job
                    .deadline
                    .is_some_and(|deadline| Instant::now() > deadline)
                {
                    ServerStats::bump(&state.stats.deadline_misses);
                    probe.count("serve_deadline_misses_total", 1);
                    (
                        Response::Error(ErrorBody::new(
                            ErrorCode::DeadlineExceeded,
                            format!("job finished after its deadline ({exec_ms} ms of work)"),
                        )),
                        "deadline_miss",
                    )
                } else {
                    // Forwarded responses pass through verbatim — their
                    // queue/exec times and trace id describe the backend
                    // that actually ran the job, which is what makes the
                    // router transparent (and bit-identical) to clients.
                    if !forwarded {
                        match &mut response {
                            Response::Simulate(r) => {
                                r.queue_ms = queue_ms;
                                r.exec_ms = exec_ms;
                                r.trace_id = job.trace_id.clone();
                            }
                            Response::Sweep(r) => {
                                r.queue_ms = queue_ms;
                                r.exec_ms = exec_ms;
                                r.trace_id = job.trace_id.clone();
                                // Grid sweeps (points carrying `ways`) tally
                                // the one-pass engine's server-wide counters.
                                let grid_cells =
                                    r.points.iter().filter(|p| p.ways.is_some()).count() as u64;
                                if grid_cells > 0 {
                                    ServerStats::add(&state.stats.one_pass_refs, r.len as u64);
                                    ServerStats::add(
                                        &state.stats.one_pass_grid_cells,
                                        grid_cells,
                                    );
                                }
                            }
                            _ => {}
                        }
                    }
                    ServerStats::bump(&state.stats.completed);
                    (response, "ok")
                }
            }
            Ok(Err(error)) => {
                // A shard at its budget (or an unreachable ring) is an
                // overload signal, not a protocol violation.
                if error.code == ErrorCode::Overloaded {
                    ServerStats::bump(&state.stats.rejected_overload);
                } else {
                    ServerStats::bump(&state.stats.protocol_errors);
                }
                (Response::Error(error), "error")
            }
            Err(payload) => (
                Response::Error(ErrorBody::new(
                    ErrorCode::Internal,
                    format!(
                        "job panicked: {}",
                        smith85_core::sweep::panic_message(payload.as_ref())
                    ),
                )),
                "panic",
            ),
        };
        access_log(&span, kind_name, outcome_name, queue_ms, exec_ms);
        job.reply.send(response);
        probe.gauge("serve_queue_depth", state.queue.depth() as f64);
    }
    // Shutdown drain finished: whatever value the gauge last held, the
    // queue is empty now — report that, so a final scrape never shows a
    // stale nonzero depth.
    state
        .session
        .probe()
        .gauge("serve_queue_depth", state.queue.depth() as f64);
    state.journal.flush();
}

/// One per-request access-log event: kind, outcome, and the two wait
/// components, attached to the request's root span.
fn access_log(
    span: &Option<smith85_tracelog::SpanGuard>,
    kind: &str,
    outcome: &str,
    queue_ms: u64,
    exec_ms: u64,
) {
    let Some(span) = span else { return };
    let severity = if outcome == "ok" {
        Severity::Info
    } else {
        Severity::Error
    };
    span.ctx().event(
        severity,
        "access_log",
        vec![
            ("kind".to_string(), kind.into()),
            ("outcome".to_string(), outcome.into()),
            ("queue_ms".to_string(), queue_ms.into()),
            ("exec_ms".to_string(), exec_ms.into()),
        ],
    );
}

/// Accept loop for the Prometheus endpoint: a deliberately minimal
/// HTTP/1.1 responder (no routing beyond `GET`, no keep-alive) — the
/// offline toolchain has no HTTP dependency, and scrapers only ever
/// issue one-shot GETs.
fn metrics_loop(listener: &TcpListener, state: &Arc<ServerState>) {
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    while !state.shutting_down() {
        match listener.accept() {
            Ok((stream, _peer)) => serve_metrics_scrape(stream, state),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(POLL_INTERVAL),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => thread::sleep(POLL_INTERVAL),
        }
    }
}

fn serve_metrics_scrape(mut stream: TcpStream, state: &Arc<ServerState>) {
    // Read the request head (first line is enough to validate the
    // method); a short timeout keeps a stalled scraper from pinning
    // the loop.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let mut head = [0u8; 1024];
    let read = match stream.read(&mut head) {
        Ok(n) => n,
        Err(_) => return,
    };
    let request = String::from_utf8_lossy(&head[..read]);
    let response = if request.starts_with("GET ") {
        // Router nodes answer with the federated fleet view; the scrape
        // runs on its own thread, so the bounded shard fetches never
        // stall request connections.
        let body = state.metrics_snapshot().to_prometheus();
        format!(
            "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
            body.len(),
            body
        )
    } else {
        let body = "metrics endpoint only answers GET\n";
        format!(
            "HTTP/1.1 405 Method Not Allowed\r\nContent-Type: text/plain\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
            body.len(),
            body
        )
    };
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.flush();
}

/// The thread-per-connection TCP accept loop (the pre-event-loop model;
/// still the `event_loop: false` baseline and the non-unix fallback).
fn threaded_accept_loop(listener: &TcpListener, state: &Arc<ServerState>) {
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    let mut connections: Vec<thread::JoinHandle<()>> = Vec::new();
    while !state.shutting_down() {
        #[cfg(unix)]
        if crate::signal::sigint_received() {
            state.begin_shutdown();
            break;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                let state = Arc::clone(state);
                match thread::Builder::new()
                    .name("serve-conn".to_string())
                    .spawn(move || handle_tcp_connection(stream, &state))
                {
                    Ok(handle) => connections.push(handle),
                    Err(e) => eprintln!("smith85-serve: spawn failed: {e}"),
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(POLL_INTERVAL);
                connections.retain(|h| !h.is_finished());
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => {
                // Transient accept failures (e.g. EMFILE) must not
                // take the service down.
                eprintln!("smith85-serve: accept failed: {e}");
                thread::sleep(POLL_INTERVAL);
            }
        }
    }
    state.begin_shutdown();
    for connection in connections {
        let _ = connection.join();
    }
}

/// Accept loop over any [`Listener`] (loopback hubs always; Unix
/// listeners in threaded mode), one connection thread per accept.
fn accept_loop_transport(listener: &dyn Listener, state: &Arc<ServerState>) {
    let _ = listener.set_nonblocking(true);
    let mut connections: Vec<thread::JoinHandle<()>> = Vec::new();
    while !state.shutting_down() {
        match listener.accept_transport() {
            Ok(stream) => {
                let state = Arc::clone(state);
                if let Ok(handle) = thread::Builder::new()
                    .name("serve-conn".to_string())
                    .spawn(move || handle_transport_connection(stream, &state))
                {
                    connections.push(handle);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(POLL_INTERVAL);
                connections.retain(|h| !h.is_finished());
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => thread::sleep(POLL_INTERVAL),
        }
    }
    for connection in connections {
        let _ = connection.join();
    }
}

fn handle_tcp_connection(stream: TcpStream, state: &Arc<ServerState>) {
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let reader = match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    };
    serve_lines(reader, stream, state);
}

fn handle_transport_connection(stream: Box<dyn Transport>, state: &Arc<ServerState>) {
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let reader = match stream.try_clone_transport() {
        Ok(clone) => clone,
        Err(_) => return,
    };
    serve_lines(reader, stream, state);
}

enum LineRead {
    /// One complete line (without the newline).
    Line(Vec<u8>),
    /// The line exceeded [`MAX_LINE_BYTES`]; the connection is beyond
    /// recovery (the rest of the line would have to be skipped
    /// unboundedly), so the caller answers and closes.
    Oversized,
    /// Clean end of stream.
    Eof,
    /// Server shutdown observed while idle.
    Shutdown,
}

/// Reads one newline-delimited line, polling the shutdown flag during
/// read timeouts. A final line without a trailing newline still counts.
fn read_line_bounded(
    reader: &mut BufReader<impl Read>,
    state: &ServerState,
) -> io::Result<LineRead> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let buffered = match reader.fill_buf() {
            Ok(buffered) => buffered,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut =>
            {
                if state.shutting_down() {
                    return Ok(LineRead::Shutdown);
                }
                continue;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        if buffered.is_empty() {
            return Ok(if line.is_empty() {
                LineRead::Eof
            } else {
                LineRead::Line(line)
            });
        }
        if let Some(pos) = buffered.iter().position(|&b| b == b'\n') {
            line.extend_from_slice(&buffered[..pos]);
            reader.consume(pos + 1);
            if line.len() > MAX_LINE_BYTES {
                return Ok(LineRead::Oversized);
            }
            return Ok(LineRead::Line(line));
        }
        let taken = buffered.len();
        line.extend_from_slice(buffered);
        reader.consume(taken);
        if line.len() > MAX_LINE_BYTES {
            return Ok(LineRead::Oversized);
        }
    }
}

fn serve_lines(reader: impl Read, mut writer: impl Write, state: &Arc<ServerState>) {
    let mut reader = BufReader::new(reader);
    loop {
        let line = match read_line_bounded(&mut reader, state) {
            Ok(LineRead::Line(line)) => line,
            Ok(LineRead::Oversized) => {
                ServerStats::bump(&state.stats.protocol_errors);
                let response = Response::Error(ErrorBody::new(
                    ErrorCode::Oversized,
                    format!("request line exceeds {MAX_LINE_BYTES} bytes"),
                ));
                let _ = write_response(&mut writer, &response);
                return;
            }
            Ok(LineRead::Eof | LineRead::Shutdown) | Err(_) => return,
        };
        let text = match std::str::from_utf8(&line) {
            Ok(text) => text,
            Err(_) => {
                ServerStats::bump(&state.stats.protocol_errors);
                let response = Response::Error(ErrorBody::new(
                    ErrorCode::BadRequest,
                    "request line is not valid UTF-8",
                ));
                if write_response(&mut writer, &response).is_err() {
                    return;
                }
                continue;
            }
        };
        if text.trim().is_empty() {
            continue;
        }
        let response = handle_request(text, state);
        if write_response(&mut writer, &response).is_err() {
            return;
        }
    }
}

fn write_response(writer: &mut impl Write, response: &Response) -> io::Result<()> {
    let mut line = response.encode();
    line.push('\n');
    writer.write_all(line.as_bytes())?;
    writer.flush()
}

/// How [`dispatch_request`] settled a request.
pub(crate) enum Handled {
    /// Answered without touching the worker pool.
    Inline(Box<Response>),
    /// Admitted to the queue; the response arrives via the [`ReplyTo`]
    /// the caller supplied.
    Admitted,
}

/// Parses and routes one request line. Cheap requests are answered
/// inline; `simulate`/`sweep` are admitted to the worker queue with a
/// reply destination built by `make_reply` (a blocking channel on the
/// threaded path, the completion list on the event loop).
pub(crate) fn dispatch_request(
    line: &str,
    state: &Arc<ServerState>,
    make_reply: impl FnOnce() -> ReplyTo,
) -> Handled {
    let (request, envelope) = match Request::decode_with_envelope(line) {
        Ok(decoded) => decoded,
        Err(error) => {
            ServerStats::bump(&state.stats.protocol_errors);
            return Handled::Inline(Box::new(Response::Error(error)));
        }
    };
    match request {
        Request::Ping => Handled::Inline(Box::new(Response::Pong)),
        Request::Catalog => {
            ServerStats::bump(&state.stats.catalog_requests);
            Handled::Inline(Box::new(Response::Catalog(exec::catalog_result())))
        }
        Request::Stats => {
            ServerStats::bump(&state.stats.stats_requests);
            Handled::Inline(Box::new(Response::Stats(state.snapshot())))
        }
        // On a router this federates the healthy shards' snapshots;
        // every fetch is bounded by the (short) connect timeout and
        // known-down shards are skipped outright, so the inline answer
        // stays fast even with a dead backend.
        Request::Metrics => Handled::Inline(Box::new(Response::Metrics(state.metrics_snapshot()))),
        Request::Shutdown => {
            state.begin_shutdown();
            Handled::Inline(Box::new(Response::Ok))
        }
        Request::Simulate(spec) => {
            let deadline_ms = spec.deadline_ms.or(state.default_deadline_ms);
            let kind = if state.router.is_some() {
                JobKind::Forward(Request::Simulate(spec))
            } else {
                JobKind::Simulate(spec)
            };
            submit_job(
                state,
                kind,
                deadline_ms,
                &state.stats.simulate_requests,
                envelope,
                make_reply,
            )
        }
        Request::Sweep(spec) => {
            let deadline_ms = spec.deadline_ms.or(state.default_deadline_ms);
            let kind = if state.router.is_some() {
                JobKind::Forward(Request::Sweep(spec))
            } else {
                JobKind::Sweep(spec)
            };
            submit_job(
                state,
                kind,
                deadline_ms,
                &state.stats.sweep_requests,
                envelope,
                make_reply,
            )
        }
    }
}

/// The threaded path: dispatch, then block for the worker's reply.
fn handle_request(line: &str, state: &Arc<ServerState>) -> Response {
    let mut receiver = None;
    let handled = dispatch_request(line, state, || {
        let (reply, receive) = mpsc::sync_channel(1);
        receiver = Some(receive);
        ReplyTo::Channel(reply)
    });
    match handled {
        Handled::Inline(response) => *response,
        Handled::Admitted => {
            let receive = receiver.expect("admitted jobs reply over the channel");
            match receive.recv_timeout(REPLY_TIMEOUT) {
                Ok(response) => response,
                Err(_) => Response::Error(ErrorBody::new(
                    ErrorCode::Internal,
                    "worker did not reply in time",
                )),
            }
        }
    }
}

fn submit_job(
    state: &Arc<ServerState>,
    kind: JobKind,
    deadline_ms: Option<u64>,
    admitted_counter: &std::sync::atomic::AtomicU64,
    envelope: crate::protocol::TraceEnvelope,
    make_reply: impl FnOnce() -> ReplyTo,
) -> Handled {
    let admitted = Instant::now();
    let job = Job {
        kind,
        reply: make_reply(),
        admitted,
        deadline: deadline_ms.map(|ms| admitted + Duration::from_millis(ms)),
        trace_id: envelope.trace_id.unwrap_or_else(mint_trace_id),
        parent_span: envelope.parent_span.unwrap_or(0),
    };
    match state.queue.try_push(job) {
        Ok(()) => {}
        Err(PushError::Full(_)) => {
            ServerStats::bump(&state.stats.rejected_overload);
            return Handled::Inline(Box::new(Response::Error(ErrorBody::new(
                ErrorCode::Overloaded,
                format!(
                    "work queue is full ({} jobs); retry later",
                    state.queue.depth()
                ),
            ))));
        }
        Err(PushError::Closed(_)) => {
            return Handled::Inline(Box::new(Response::Error(ErrorBody::new(
                ErrorCode::ShuttingDown,
                "server is draining and no longer admits work",
            ))));
        }
    }
    ServerStats::bump(admitted_counter);
    state
        .session
        .probe()
        .gauge("serve_queue_depth", state.queue.depth() as f64);
    Handled::Admitted
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_round_trips_and_validates() {
        let opts = ServeOptions::builder()
            .addr("127.0.0.1:0")
            .workers(2)
            .queue_capacity(8)
            .default_deadline_ms(250)
            .build()
            .expect("valid combination");
        assert_eq!(opts.addr, "127.0.0.1:0");
        assert_eq!(opts.workers, 2);
        assert_eq!(opts.queue_capacity, 8);
        assert_eq!(opts.default_deadline_ms, Some(250));
        assert!(opts.event_loop, "event loop is the default");
    }

    #[test]
    fn zero_workers_and_zero_queue_are_typed_errors() {
        assert_eq!(
            ServeOptions::builder().workers(0).build().unwrap_err(),
            ConfigError::ZeroWorkers
        );
        assert_eq!(
            ServeOptions::builder()
                .queue_capacity(0)
                .build()
                .unwrap_err(),
            ConfigError::ZeroQueueCapacity
        );
        assert_eq!(
            ServeOptions::builder().addr("  ").build().unwrap_err(),
            ConfigError::EmptyAddr
        );
    }

    #[test]
    fn router_combos_are_validated() {
        let backends = || RouterOptions {
            backends: vec!["127.0.0.1:1".to_string()],
            ..RouterOptions::default()
        };
        assert_eq!(
            ServeOptions::builder()
                .router(RouterOptions::default())
                .build()
                .unwrap_err(),
            ConfigError::RouterWithoutBackends
        );
        assert_eq!(
            ServeOptions::builder()
                .router(RouterOptions {
                    shard_inflight: 0,
                    ..backends()
                })
                .build()
                .unwrap_err(),
            ConfigError::RouterZeroInflight
        );
        assert_eq!(
            ServeOptions::builder()
                .router(RouterOptions {
                    replicas: 0,
                    ..backends()
                })
                .build()
                .unwrap_err(),
            ConfigError::RouterZeroReplicas
        );
        assert!(ServeOptions::builder().router(backends()).build().is_ok());
    }

    #[test]
    fn router_plus_store_is_rejected_before_binding() {
        let dir = std::env::temp_dir().join(format!(
            "smith85-serve-cfg-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let session = SimSession::builder()
            .store(dir.join("store"))
            .build()
            .expect("session with store");
        let err = ServeOptions::builder()
            .session(session)
            .router(RouterOptions {
                backends: vec!["127.0.0.1:1".to_string()],
                ..RouterOptions::default()
            })
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::RouterWithStore);
        assert!(err.to_string().contains("store"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bind_rejects_invalid_options_with_invalid_input() {
        let err = Server::bind(ServeOptions {
            addr: String::new(),
            ..ServeOptions::default()
        })
        .map(|_| ())
        .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }
}
