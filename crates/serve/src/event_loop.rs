//! Poll-based connection multiplexing (unix targets).
//!
//! One thread owns every socket: the listeners, a self-wake pipe, and
//! all client connections. Readiness drives the work — an idle
//! connection costs one `pollfd` entry per iteration and nothing else,
//! so thousands of mostly-idle clients no longer each pin a thread or
//! (worse, as before this module) wait out the accept loop's 100 ms
//! sleep. `simulate`/`sweep` still execute on the worker pool; a worker
//! finishing a job pushes the response onto the completion list and
//! writes one byte into the wake pipe, which pops the poll.
//!
//! Flow control: responses are buffered per connection and written when
//! the socket reports `POLLOUT`; while a connection's outbound buffer
//! is above [`WRITE_BUF_LIMIT`] (or a job is in flight for it), the
//! loop stops reading from it — TCP back-pressure propagates to the
//! client instead of growing an unbounded buffer.
//!
//! Observability: the loop publishes per-connection lifecycle counters
//! (`event_loop_conns_{accepted,closed,drained}_total`,
//! `event_loop_half_closes_total`), `event_loop_poll_wait_us` /
//! `event_loop_dispatch_us` histograms, and `event_loop_connections` /
//! `event_loop_busy_jobs` / `event_loop_write_buf_bytes` gauges into
//! the session registry. Request spans and `access_log` events come
//! from the shared worker pool, identical to the threaded path (pinned
//! by the journal-parity loopback test). Journal emission itself stays
//! gated on the sink, so a journal-less server pays nothing for spans.

use crate::poll::{poll_fds, PollFd, POLLIN, POLLOUT};
use crate::protocol::{ErrorBody, ErrorCode, Response, MAX_LINE_BYTES};
use crate::server::{dispatch_request, Handled, ReplyTo, ServerState};
use crate::stats::ServerStats;
use crate::transport::Transport;
use smith85_obs::Counter;
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::TcpListener;
use std::os::unix::io::{AsRawFd, RawFd};
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Poll timeout: how often the loop rechecks shutdown with no events.
const POLL_TIMEOUT_MS: i32 = 100;

/// Bucket bounds (microseconds) for the loop's poll-wait and dispatch
/// histograms: spans idle 100 ms poll timeouts down to hot sub-50 µs
/// dispatch rounds.
const US_BOUNDS: [f64; 8] = [
    50.0,
    100.0,
    500.0,
    1_000.0,
    5_000.0,
    25_000.0,
    100_000.0,
    500_000.0,
];

/// Outbound-buffer level above which the loop stops reading more
/// requests from a connection until writes drain.
const WRITE_BUF_LIMIT: usize = 256 * 1024;

/// Upper bound on the shutdown drain, mirroring the worker reply
/// timeout: past it, in-flight connections are dropped rather than
/// keeping the process alive forever on a lost reply.
const DRAIN_TIMEOUT: Duration = Duration::from_secs(600);

/// Completed jobs waiting to be written back, keyed by connection id.
pub(crate) type Completions = Arc<Mutex<Vec<(u64, Response)>>>;

/// Wakes the poll loop from another thread by writing one byte into the
/// self-wake pipe (the classic self-pipe trick, on a nonblocking
/// socketpair so a full pipe — wake already pending — never blocks).
#[derive(Clone)]
pub(crate) struct Waker {
    tx: Arc<UnixStream>,
}

impl Waker {
    pub(crate) fn wake(&self) {
        let _ = (&*self.tx).write(&[1u8]);
    }
}

/// One multiplexed connection.
struct Conn {
    stream: Box<dyn Transport>,
    fd: RawFd,
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
    write_pos: usize,
    /// One job in flight on the worker pool for this connection; the
    /// loop stops parsing further lines until it completes, preserving
    /// the one-request-at-a-time reply order of the threaded path.
    busy: bool,
    /// Flush the outbound buffer (and finish the in-flight job, if
    /// any), then close; set on unrecoverable input (oversized lines).
    /// Unlike `eof`, no further buffered input is parsed.
    closing: bool,
    /// The peer half-closed: parse what it already sent, answer it,
    /// flush, then close.
    eof: bool,
}

impl Conn {
    fn new(stream: Box<dyn Transport>) -> io::Result<Conn> {
        stream.set_nonblocking(true)?;
        let fd = stream.raw_fd().ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::Unsupported,
                "event loop needs an fd-backed transport",
            )
        })?;
        Ok(Conn {
            stream,
            fd,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            write_pos: 0,
            busy: false,
            closing: false,
            eof: false,
        })
    }

    fn pending_write(&self) -> usize {
        self.write_buf.len() - self.write_pos
    }

    /// The poll mask this connection currently cares about.
    fn interest(&self) -> i16 {
        let mut mask = 0;
        if !self.busy && !self.closing && !self.eof && self.pending_write() < WRITE_BUF_LIMIT {
            mask |= POLLIN;
        }
        if self.pending_write() > 0 {
            mask |= POLLOUT;
        }
        mask
    }

    fn enqueue(&mut self, response: &Response) {
        let mut line = response.encode();
        line.push('\n');
        self.write_buf.extend_from_slice(line.as_bytes());
    }

    /// Writes as much buffered output as the socket accepts. Returns
    /// `false` when the connection is finished (write failure, or a
    /// deferred close whose buffer just drained).
    fn flush(&mut self) -> bool {
        while self.pending_write() > 0 {
            match self.stream.write(&self.write_buf[self.write_pos..]) {
                Ok(0) => return false,
                Ok(n) => self.write_pos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
        if self.pending_write() == 0 {
            self.write_buf.clear();
            self.write_pos = 0;
            // A closing or half-closed connection dies once its buffer
            // drains — but not while a job is still in flight for it:
            // the reply is owed first. When `service` left `busy`
            // clear, every complete buffered line has been answered.
            if (self.closing || self.eof) && !self.busy {
                return false;
            }
        }
        true
    }

    /// Reads everything currently available. Returns `false` on a
    /// fatal read error; EOF marks the connection closing so already
    /// buffered requests (a peer that sent then half-closed) still get
    /// their responses before the slot is reclaimed.
    fn fill(&mut self) -> bool {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.eof = true;
                    return true;
                }
                Ok(n) => {
                    self.read_buf.extend_from_slice(&chunk[..n]);
                    if n < chunk.len() {
                        return true;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return true,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
    }
}

/// Parses and dispatches every complete buffered line (stopping at one
/// in-flight job), then flushes. Returns `false` when the connection is
/// finished.
fn service(
    conn: &mut Conn,
    id: u64,
    state: &Arc<ServerState>,
    completions: &Completions,
    waker: &Waker,
) -> bool {
    while !conn.busy && !conn.closing {
        let Some(pos) = conn.read_buf.iter().position(|&b| b == b'\n') else {
            if conn.read_buf.len() > MAX_LINE_BYTES {
                ServerStats::bump(&state.stats.protocol_errors);
                conn.enqueue(&Response::Error(ErrorBody::new(
                    ErrorCode::Oversized,
                    format!("request line exceeds {MAX_LINE_BYTES} bytes"),
                )));
                conn.closing = true;
            }
            break;
        };
        let mut line: Vec<u8> = conn.read_buf.drain(..=pos).collect();
        line.pop(); // the newline
        if line.len() > MAX_LINE_BYTES {
            ServerStats::bump(&state.stats.protocol_errors);
            conn.enqueue(&Response::Error(ErrorBody::new(
                ErrorCode::Oversized,
                format!("request line exceeds {MAX_LINE_BYTES} bytes"),
            )));
            conn.closing = true;
            break;
        }
        let text = match std::str::from_utf8(&line) {
            Ok(text) => text,
            Err(_) => {
                ServerStats::bump(&state.stats.protocol_errors);
                conn.enqueue(&Response::Error(ErrorBody::new(
                    ErrorCode::BadRequest,
                    "request line is not valid UTF-8",
                )));
                continue;
            }
        };
        if text.trim().is_empty() {
            continue;
        }
        let handled = dispatch_request(text, state, || ReplyTo::Event {
            conn_id: id,
            completions: Arc::clone(completions),
            waker: waker.clone(),
        });
        match handled {
            Handled::Inline(response) => conn.enqueue(&response),
            Handled::Admitted => conn.busy = true,
        }
    }
    conn.flush()
}

/// Accepts everything pending on a nonblocking listener.
fn accept_burst(
    accept: impl Fn() -> io::Result<Box<dyn Transport>>,
    conns: &mut HashMap<u64, Conn>,
    next_id: &mut u64,
    accepted: &Counter,
) {
    loop {
        match accept() {
            Ok(stream) => match Conn::new(stream) {
                Ok(conn) => {
                    let id = *next_id;
                    *next_id += 1;
                    conns.insert(id, conn);
                    accepted.inc();
                }
                Err(e) => eprintln!("smith85-serve: connection setup failed: {e}"),
            },
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => {
                // Transient accept failures (e.g. EMFILE) must not take
                // the service down; the listener stays in the poll set.
                eprintln!("smith85-serve: accept failed: {e}");
                break;
            }
        }
    }
}

/// Runs the event loop until shutdown, then drains: stops accepting,
/// lets in-flight jobs reply, flushes their responses, and returns.
pub(crate) fn run(
    listener: &TcpListener,
    unix_listener: Option<&UnixListener>,
    state: &Arc<ServerState>,
) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    if let Some(unix) = unix_listener {
        unix.set_nonblocking(true)?;
    }
    let (wake_rx, wake_tx) = UnixStream::pair()?;
    wake_rx.set_nonblocking(true)?;
    wake_tx.set_nonblocking(true)?;
    let waker = Waker {
        tx: Arc::new(wake_tx),
    };
    let completions: Completions = Arc::new(Mutex::new(Vec::new()));
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_id: u64 = 1;
    let mut drain_started: Option<Instant> = None;

    // Loop metric handles are resolved once here; the hot path only
    // touches relaxed atomics through them.
    let registry = state.session().registry();
    let accepted = registry.counter("event_loop_conns_accepted_total");
    let closed = registry.counter("event_loop_conns_closed_total");
    let half_closed = registry.counter("event_loop_half_closes_total");
    let drained_ctr = registry.counter("event_loop_conns_drained_total");
    let conns_gauge = registry.gauge("event_loop_connections");
    let busy_gauge = registry.gauge("event_loop_busy_jobs");
    let write_buf_gauge = registry.gauge("event_loop_write_buf_bytes");
    let poll_wait = registry.histogram("event_loop_poll_wait_us", &US_BOUNDS);
    let dispatch_hist = registry.histogram("event_loop_dispatch_us", &US_BOUNDS);

    loop {
        if crate::signal::sigint_received() {
            state.begin_shutdown();
        }
        let draining = state.shutting_down();
        if draining {
            let started = *drain_started.get_or_insert_with(Instant::now);
            // Idle connections are dropped immediately; connections
            // with a job in flight or unflushed output get the drain
            // window to finish.
            let before = conns.len();
            conns.retain(|_, conn| conn.busy || conn.pending_write() > 0);
            drained_ctr.add((before - conns.len()) as u64);
            if conns.is_empty() || started.elapsed() > DRAIN_TIMEOUT {
                conns_gauge.set(0.0);
                busy_gauge.set(0.0);
                write_buf_gauge.set(0.0);
                return Ok(());
            }
        }

        let mut fds = vec![PollFd::new(wake_rx.as_raw_fd(), POLLIN)];
        let mut tcp_index = None;
        let mut unix_index = None;
        if !draining {
            tcp_index = Some(fds.len());
            fds.push(PollFd::new(listener.as_raw_fd(), POLLIN));
            if let Some(unix) = unix_listener {
                unix_index = Some(fds.len());
                fds.push(PollFd::new(unix.as_raw_fd(), POLLIN));
            }
        }
        let conn_base = fds.len();
        let order: Vec<u64> = conns.keys().copied().collect();
        for &id in &order {
            let conn = &conns[&id];
            fds.push(PollFd::new(conn.fd, conn.interest()));
        }

        let poll_started = Instant::now();
        match poll_fds(&mut fds, POLL_TIMEOUT_MS) {
            Ok(_) => {}
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
        poll_wait.observe(poll_started.elapsed().as_micros() as f64);
        let dispatch_started = Instant::now();

        if fds[0].ready(POLLIN) {
            let mut sink = [0u8; 64];
            while matches!((&wake_rx).read(&mut sink), Ok(n) if n > 0) {}
        }

        // Worker completions first: they clear `busy`, which may let a
        // pipelined follow-up line in the read buffer dispatch below.
        let done: Vec<(u64, Response)> = std::mem::take(&mut *completions.lock().unwrap());
        let mut dead: Vec<u64> = Vec::new();
        for (id, response) in done {
            // A connection that died while its job ran simply has its
            // response dropped, like the threaded path's failed write.
            if let Some(conn) = conns.get_mut(&id) {
                conn.busy = false;
                conn.enqueue(&response);
                if !service(conn, id, state, &completions, &waker) {
                    dead.push(id);
                }
            }
        }

        if tcp_index.is_some_and(|i| fds[i].ready(POLLIN)) {
            accept_burst(
                || crate::transport::Listener::accept_transport(listener),
                &mut conns,
                &mut next_id,
                &accepted,
            );
        }
        if let (Some(i), Some(unix)) = (unix_index, unix_listener) {
            if fds[i].ready(POLLIN) {
                accept_burst(
                    || crate::transport::Listener::accept_transport(unix),
                    &mut conns,
                    &mut next_id,
                    &accepted,
                );
            }
        }

        for (slot, &id) in order.iter().enumerate() {
            let pfd = fds[conn_base + slot];
            let Some(conn) = conns.get_mut(&id) else {
                continue;
            };
            let mut alive = true;
            if pfd.ready(POLLOUT) {
                alive = conn.flush();
            }
            if alive && pfd.ready(POLLIN) {
                let was_eof = conn.eof;
                alive = conn.fill() && service(conn, id, state, &completions, &waker);
                if !was_eof && conn.eof {
                    half_closed.inc();
                }
            }
            if alive && conn.busy && pfd.broken() && !pfd.ready(POLLIN) {
                // Peer vanished while its job runs: no one will read
                // the reply, so reclaim the slot now.
                alive = false;
            }
            if !alive {
                dead.push(id);
            }
        }
        // A connection can land in `dead` twice (completion handling
        // then readiness handling); dedup so the counter stays exact.
        dead.sort_unstable();
        dead.dedup();
        for id in dead {
            if conns.remove(&id).is_some() {
                closed.inc();
            }
        }

        conns_gauge.set(conns.len() as f64);
        let (mut busy_jobs, mut buffered) = (0u64, 0u64);
        for conn in conns.values() {
            busy_jobs += u64::from(conn.busy);
            buffered += conn.pending_write() as u64;
        }
        busy_gauge.set(busy_jobs as f64);
        write_buf_gauge.set(buffered as f64);
        dispatch_hist.observe(dispatch_started.elapsed().as_micros() as f64);
    }
}
