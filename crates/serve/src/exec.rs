//! Request execution: workload resolution and the simulation kernels.
//!
//! Every job runs through a [`SimSession`], so trace generation goes
//! through the shared [`smith85_core::trace_pool::TracePool`] (concurrent
//! requests for the same `(workload, seed, len)` deduplicate into one
//! materialization) and every batch feeds the session's metrics registry
//! (`cachesim_refs_total`, `cachesim_batch_ms`, pool hit/miss counters…).
//! The kernels are the same ones the CLI and the experiment suite use,
//! so a served result is bit-identical to a direct library call — the
//! loopback integration tests assert exactly that.

use crate::protocol::{
    CatalogEntry, CatalogResult, ErrorBody, ErrorCode, Response, SimulateResult, SimulateSpec,
    SweepPoint, SweepResult, SweepSpec,
};
use smith85_cachesim::{CacheConfig, GridSpec, Mapping, PAPER_SIZES};
use smith85_core::experiments::Workload;
use smith85_core::session::SimSession;
use smith85_synth::catalog;

/// References a single request may ask for; keeps one malicious or
/// fat-fingered request from materializing gigabytes into the shared
/// pool.
pub const MAX_REQUEST_LEN: usize = 2_000_000;

/// A reserved diagnostic workload name that panics inside the worker's
/// `catch_unwind`. It exists so operators (and the loopback tests) can
/// exercise the panic path end to end — the `internal` response, the
/// access-log `outcome=panic` event, and the queue-depth gauge's
/// recovery — without a debug build or an environment variable.
pub const PANIC_WORKLOAD: &str = "__panic__";

/// Resolves a workload name against the catalog: single traces by name
/// (case-insensitive) or one of the Table 3 mixes by its display name.
/// A `seed` override replaces each profile's generator seed (mix members
/// XOR it with their index so they stay decorrelated).
///
/// # Errors
///
/// Returns an `unknown_workload` error naming the failed lookup.
pub fn resolve_workload(name: &str, seed: Option<u64>) -> Result<Workload, ErrorBody> {
    if let Some(spec) = catalog::by_name(name) {
        let mut profile = spec.profile().clone();
        if let Some(seed) = seed {
            profile.seed = seed;
        }
        return Ok(Workload::Single(profile));
    }
    for (mix_name, mut members) in catalog::table3_mixes() {
        if mix_name.eq_ignore_ascii_case(name) {
            if let Some(seed) = seed {
                for (i, member) in members.iter_mut().enumerate() {
                    member.seed = seed ^ (i as u64);
                }
            }
            return Ok(Workload::Mix {
                name: mix_name,
                members,
            });
        }
    }
    Err(ErrorBody::new(
        ErrorCode::UnknownWorkload,
        format!("no trace or mix named {name:?} (see the catalog request)"),
    ))
}

/// Canonical store key for a `simulate` result: every field that
/// determines the answer, prefixed with the digest-scheme and catalog
/// versions so stale artifacts miss cleanly after either changes.
fn simulate_result_key(spec: &SimulateSpec) -> String {
    format!(
        "v{}/c{}/result/simulate/{}/seed={:?}/len={}/size={}/line={}/ways={:?}/purge={:?}",
        smith85_store::KEY_SCHEMA_VERSION,
        catalog::CATALOG_VERSION,
        spec.workload,
        spec.seed,
        spec.len,
        spec.cache.size,
        spec.cache.line,
        spec.cache.ways,
        spec.cache.purge,
    )
}

/// Canonical store key for a `sweep` result (keyed on the *effective*
/// size list, after the paper-sizes default is applied). Grid sweeps
/// (non-empty `ways`) key the whole grid as one record, so a warm
/// restart answers a full sweep with a single store read.
fn sweep_result_key(spec: &SweepSpec, sizes: &[usize]) -> String {
    let sizes: Vec<String> = sizes.iter().map(|s| s.to_string()).collect();
    let ways: Vec<String> = spec.ways.iter().map(|w| w.to_string()).collect();
    format!(
        "v{}/c{}/result/sweep/{}/seed={:?}/len={}/line={}/sizes={}/ways={}",
        smith85_store::KEY_SCHEMA_VERSION,
        catalog::CATALOG_VERSION,
        spec.workload,
        spec.seed,
        spec.len,
        spec.line,
        sizes.join(","),
        ways.join(","),
    )
}

fn check_len(len: usize) -> Result<(), ErrorBody> {
    if len == 0 {
        return Err(ErrorBody::new(ErrorCode::BadRequest, "\"len\" must be > 0"));
    }
    if len > MAX_REQUEST_LEN {
        return Err(ErrorBody::new(
            ErrorCode::BadRequest,
            format!("\"len\" {len} exceeds the per-request cap of {MAX_REQUEST_LEN}"),
        ));
    }
    Ok(())
}

/// Runs one `simulate` job. Timing fields are left zero; the worker
/// fills them in.
///
/// # Errors
///
/// Returns a typed error for unknown workloads or invalid cache
/// configurations.
pub fn run_simulate(
    session: &SimSession,
    spec: &SimulateSpec,
) -> Result<SimulateResult, ErrorBody> {
    check_len(spec.len)?;
    if spec.workload == PANIC_WORKLOAD {
        panic!("diagnostic {PANIC_WORKLOAD} workload: injected worker panic");
    }
    let workload = resolve_workload(&spec.workload, spec.seed)?;
    let mapping = match spec.cache.ways {
        None => Mapping::FullyAssociative,
        Some(1) => Mapping::Direct,
        Some(n) => Mapping::SetAssociative(n),
    };
    // Validate the cache config before touching the session so invalid
    // requests never materialize traces into the shared pool.
    let config = CacheConfig::builder(spec.cache.size)
        .line_size(spec.cache.line)
        .mapping(mapping)
        .purge_interval(spec.cache.purge)
        .build()
        .map_err(|e| ErrorBody::new(ErrorCode::BadRequest, format!("invalid cache config: {e}")))?;
    // Only fully-validated requests consult the result cache: a stored
    // record short-circuits simulation (and pool materialization)
    // entirely. Records are CRC-checked by the store and re-parsed here,
    // so a damaged record degrades to a recompute, never a bad answer.
    let cache_key = session.store().map(|_| simulate_result_key(spec));
    if let (Some(store), Some(key)) = (session.store(), cache_key.as_deref()) {
        if let Some(json) = store.get_json(key) {
            if let Ok(Response::Simulate(cached)) = Response::decode(&json) {
                return Ok(cached);
            }
        }
    }
    let stats = session
        .simulate_workload(&workload, spec.len, config)
        .map_err(|e| ErrorBody::new(ErrorCode::BadRequest, format!("invalid cache config: {e}")))?;
    let result = SimulateResult {
        workload: spec.workload.clone(),
        len: spec.len,
        cache_bytes: spec.cache.size,
        refs: stats.total_refs(),
        misses: stats.total_misses(),
        miss_ratio: stats.miss_ratio(),
        instruction_miss_ratio: stats.instruction_miss_ratio(),
        data_miss_ratio: stats.data_miss_ratio(),
        traffic_bytes: stats.traffic_bytes(),
        queue_ms: 0,
        exec_ms: 0,
        trace_id: String::new(),
    };
    if let (Some(store), Some(key)) = (session.store(), cache_key.as_deref()) {
        // Best-effort: a persistence failure costs the next warm start,
        // never this response. Timing fields are stored as zero (the
        // worker stamps per-request values on the way out).
        let _ = store.put_json(key, &Response::Simulate(result.clone()).encode());
    }
    Ok(result)
}

/// Runs one `sweep` job. An empty `ways` list is the legacy sweep: one
/// stack-analysis pass, fully-associative miss ratio at every size. A
/// non-empty `ways` list runs the one-pass multi-configuration engine —
/// every realizable (size, ways) cell from a single trace traversal,
/// with traffic ratio and dirty-push fraction on every point. Timing
/// fields are left zero; the worker fills them in.
///
/// # Errors
///
/// Returns a typed error for unknown workloads, a bad line size, or a
/// grid the one-pass engine rejects.
pub fn run_sweep(session: &SimSession, spec: &SweepSpec) -> Result<SweepResult, ErrorBody> {
    check_len(spec.len)?;
    if spec.line == 0 || !spec.line.is_power_of_two() {
        return Err(ErrorBody::new(
            ErrorCode::BadRequest,
            "\"line\" must be a power of two",
        ));
    }
    let workload = resolve_workload(&spec.workload, spec.seed)?;
    let sizes: &[usize] = if spec.sizes.is_empty() {
        &PAPER_SIZES
    } else {
        &spec.sizes
    };
    // Validate grid specs before the store lookup so a bad request can
    // never be served from (or written to) the result cache.
    let grid_spec = if spec.ways.is_empty() {
        None
    } else {
        let mut grid = GridSpec::new(sizes.to_vec(), spec.ways.clone());
        grid.line_size = spec.line;
        smith85_cachesim::OnePassEngine::new(&grid)
            .map_err(|e| ErrorBody::new(ErrorCode::BadRequest, format!("invalid sweep grid: {e}")))?;
        Some(grid)
    };
    let cache_key = session.store().map(|_| sweep_result_key(spec, sizes));
    if let (Some(store), Some(key)) = (session.store(), cache_key.as_deref()) {
        if let Some(json) = store.get_json(key) {
            if let Ok(Response::Sweep(cached)) = Response::decode(&json) {
                return Ok(cached);
            }
        }
    }
    let points = match &grid_spec {
        None => {
            let profile = session.sweep_workload(&workload, spec.len, spec.line);
            sizes
                .iter()
                .map(|&size| SweepPoint {
                    size,
                    miss_ratio: profile.miss_ratio(size),
                    ways: None,
                    traffic_ratio: None,
                    dirty_push_fraction: None,
                })
                .collect()
        }
        Some(grid_spec) => {
            let grid = session
                .sweep_grid_workload(&workload, spec.len, grid_spec)
                .map_err(|e| {
                    ErrorBody::new(ErrorCode::BadRequest, format!("invalid sweep grid: {e}"))
                })?;
            grid.iter()
                .map(|(cell, stats)| SweepPoint {
                    size: cell.size_bytes,
                    miss_ratio: stats.miss_ratio(),
                    ways: Some(cell.ways),
                    traffic_ratio: Some(stats.traffic_ratio()),
                    dirty_push_fraction: Some(stats.dirty_push_fraction()),
                })
                .collect()
        }
    };
    let result = SweepResult {
        workload: spec.workload.clone(),
        len: spec.len,
        points,
        queue_ms: 0,
        exec_ms: 0,
        trace_id: String::new(),
    };
    if let (Some(store), Some(key)) = (session.store(), cache_key.as_deref()) {
        let _ = store.put_json(key, &Response::Sweep(result.clone()).encode());
    }
    Ok(result)
}

/// The `catalog` response: all 49 profiles plus the mix names.
pub fn catalog_result() -> CatalogResult {
    CatalogResult {
        profiles: catalog::all()
            .iter()
            .map(|spec| {
                let p = spec.profile();
                CatalogEntry {
                    name: spec.name().to_string(),
                    group: spec.group().to_string(),
                    arch: p.arch.to_string(),
                    language: p.language.to_string(),
                }
            })
            .collect(),
        mixes: catalog::table3_mixes()
            .into_iter()
            .map(|(name, _)| name)
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::CacheSpec;
    use smith85_cachesim::{Simulator, StackAnalyzer, UnifiedCache};

    fn session() -> SimSession {
        SimSession::builder().quick().build().unwrap()
    }

    fn simulate_spec(workload: &str, len: usize, size: usize) -> SimulateSpec {
        SimulateSpec {
            workload: workload.to_string(),
            len,
            seed: None,
            cache: CacheSpec {
                size,
                line: 16,
                ways: None,
                purge: None,
            },
            deadline_ms: None,
        }
    }

    #[test]
    fn simulate_matches_a_direct_library_run() {
        let session = session();
        let spec = simulate_spec("VCCOM", 5_000, 4_096);
        let served = run_simulate(&session, &spec).unwrap();

        let profile = catalog::by_name("VCCOM").unwrap().profile().clone();
        let trace = profile.generate(5_000);
        let config = CacheConfig::builder(4_096).line_size(16).build().unwrap();
        let mut cache = UnifiedCache::new(config).unwrap();
        cache.run_slice(trace.as_slice());
        assert_eq!(served.miss_ratio.to_bits(), cache.stats().miss_ratio().to_bits());
        assert_eq!(served.misses, cache.stats().total_misses());
        assert_eq!(served.refs, 5_000);
    }

    #[test]
    fn seed_override_changes_the_stream() {
        let session = session();
        let base = run_simulate(&session, &simulate_spec("ZGREP", 4_000, 1_024)).unwrap();
        let mut reseeded_spec = simulate_spec("ZGREP", 4_000, 1_024);
        reseeded_spec.seed = Some(12_345);
        let reseeded = run_simulate(&session, &reseeded_spec).unwrap();
        assert_ne!(base.miss_ratio.to_bits(), reseeded.miss_ratio.to_bits());
        assert_eq!(session.pool().stats().entries, 2, "distinct seeds pool separately");
    }

    #[test]
    fn mixes_resolve_by_display_name() {
        let w = resolve_workload("Z8000 - Assorted", None).unwrap();
        assert!(matches!(w, Workload::Mix { ref members, .. } if members.len() == 5));
        let session = session();
        let result = run_simulate(&session, &simulate_spec("Z8000 - Assorted", 3_000, 2_048));
        assert!(result.is_ok(), "{result:?}");
    }

    #[test]
    fn unknown_workload_is_typed() {
        let err = resolve_workload("NOPE", None).unwrap_err();
        assert_eq!(err.code, ErrorCode::UnknownWorkload);
        assert!(err.message.contains("NOPE"));
    }

    #[test]
    fn bad_lengths_and_configs_are_typed() {
        let session = session();
        let mut zero = simulate_spec("VCCOM", 0, 1_024);
        zero.len = 0;
        assert_eq!(run_simulate(&session, &zero).unwrap_err().code, ErrorCode::BadRequest);
        let huge = simulate_spec("VCCOM", MAX_REQUEST_LEN + 1, 1_024);
        assert_eq!(run_simulate(&session, &huge).unwrap_err().code, ErrorCode::BadRequest);
        let mut bad_cache = simulate_spec("VCCOM", 1_000, 1_000); // not a power of two
        bad_cache.cache.line = 16;
        assert_eq!(
            run_simulate(&session, &bad_cache).unwrap_err().code,
            ErrorCode::BadRequest
        );
        assert_eq!(
            session.pool().stats().entries,
            0,
            "invalid requests must not pool traces"
        );
    }

    #[test]
    fn sweep_matches_the_analyzer_and_defaults_to_paper_sizes() {
        let session = session();
        let spec = SweepSpec {
            workload: "ZGREP".to_string(),
            len: 5_000,
            seed: None,
            sizes: Vec::new(),
            ways: Vec::new(),
            line: 16,
            deadline_ms: None,
        };
        let served = run_sweep(&session, &spec).unwrap();
        assert_eq!(served.points.len(), PAPER_SIZES.len());

        let profile = catalog::by_name("ZGREP").unwrap().profile().clone();
        let trace = profile.generate(5_000);
        let mut analyzer = StackAnalyzer::with_line_size(16);
        for a in &trace {
            analyzer.observe(*a);
        }
        let direct = analyzer.finish();
        for point in &served.points {
            assert_eq!(
                point.miss_ratio.to_bits(),
                direct.miss_ratio(point.size).to_bits(),
                "size {}",
                point.size
            );
        }
    }

    #[test]
    fn grid_sweep_matches_per_config_simulation() {
        let session = session();
        let spec = SweepSpec {
            workload: "VCCOM".to_string(),
            len: 5_000,
            seed: None,
            sizes: vec![1_024, 4_096],
            ways: vec![1, 2, 4],
            line: 16,
            deadline_ms: None,
        };
        let served = run_sweep(&session, &spec).unwrap();
        assert_eq!(served.points.len(), 6, "2 sizes x 3 ways, all realizable");
        let profile = catalog::by_name("VCCOM").unwrap().profile().clone();
        let trace = profile.generate(5_000);
        for point in &served.points {
            let ways = point.ways.expect("grid points carry ways");
            let mapping = if ways == 1 { Mapping::Direct } else { Mapping::SetAssociative(ways) };
            let config = CacheConfig::builder(point.size)
                .line_size(16)
                .mapping(mapping)
                .build()
                .unwrap();
            let mut cache = UnifiedCache::new(config).unwrap();
            cache.run_slice(trace.as_slice());
            let direct = cache.stats();
            assert_eq!(
                point.miss_ratio.to_bits(),
                direct.miss_ratio().to_bits(),
                "{} B {}-way",
                point.size,
                ways
            );
            assert_eq!(
                point.traffic_ratio.unwrap().to_bits(),
                direct.traffic_ratio().to_bits()
            );
            assert_eq!(
                point.dirty_push_fraction.unwrap().to_bits(),
                direct.dirty_push_fraction().to_bits()
            );
        }
    }

    #[test]
    fn grid_sweep_rejects_bad_grids_with_typed_errors() {
        let session = session();
        let mut spec = SweepSpec {
            workload: "VCCOM".to_string(),
            len: 1_000,
            seed: None,
            sizes: vec![64],
            ways: vec![3],
            line: 16,
            deadline_ms: None,
        };
        // Non-power-of-two associativity.
        let err = run_sweep(&session, &spec).unwrap_err();
        assert_eq!(err.code, ErrorCode::BadRequest);
        // Every cell unrealizable: 64 B / 16 B lines = 4 lines < 8 ways.
        spec.ways = vec![8];
        let err = run_sweep(&session, &spec).unwrap_err();
        assert_eq!(err.code, ErrorCode::BadRequest);
        assert_eq!(
            session.pool().stats().entries,
            0,
            "invalid grid requests must not pool traces"
        );
    }

    #[test]
    fn catalog_lists_all_profiles_and_mixes() {
        let c = catalog_result();
        assert_eq!(c.profiles.len(), 49);
        assert_eq!(c.mixes.len(), 4);
        assert!(c.profiles.iter().any(|e| e.name == "VCCOM"));
        assert!(c.mixes.iter().any(|m| m == "Z8000 - Assorted"));
    }
}
