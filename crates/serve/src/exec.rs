//! Request execution: workload resolution and the simulation kernels.
//!
//! Every job runs through a [`SimSession`], so trace generation goes
//! through the shared [`smith85_core::trace_pool::TracePool`] (concurrent
//! requests for the same `(workload, seed, len)` deduplicate into one
//! materialization) and every batch feeds the session's metrics registry
//! (`cachesim_refs_total`, `cachesim_batch_ms`, pool hit/miss counters…).
//! The kernels are the same ones the CLI and the experiment suite use,
//! so a served result is bit-identical to a direct library call — the
//! loopback integration tests assert exactly that.

use crate::protocol::{
    CatalogEntry, CatalogResult, ErrorBody, ErrorCode, Response, SimulateResult, SimulateSpec,
    SweepPoint, SweepResult, SweepSpec,
};
use smith85_cachesim::{CacheConfig, GridSpec, Mapping, Replacement, PAPER_SIZES};
use smith85_core::experiments::{nearest_workload_name, resolve_named_workload, Workload};
use smith85_core::session::SimSession;
use smith85_synth::catalog;

/// References a single request may ask for; keeps one malicious or
/// fat-fingered request from materializing gigabytes into the shared
/// pool.
pub const MAX_REQUEST_LEN: usize = 2_000_000;

/// A reserved diagnostic workload name that panics inside the worker's
/// `catch_unwind`. It exists so operators (and the loopback tests) can
/// exercise the panic path end to end — the `internal` response, the
/// access-log `outcome=panic` event, and the queue-depth gauge's
/// recovery — without a debug build or an environment variable.
pub const PANIC_WORKLOAD: &str = "__panic__";

/// Resolves a workload name against every servable namespace: the 49
/// single traces (case-insensitive), the Table 3 mixes by display name,
/// and the storage/network family profiles. A `seed` override replaces
/// each profile's generator seed (mix members XOR it with their index so
/// they stay decorrelated).
///
/// # Errors
///
/// Returns an `unknown_workload` error naming the failed lookup and the
/// nearest catalog name by edit distance.
pub fn resolve_workload(name: &str, seed: Option<u64>) -> Result<Workload, ErrorBody> {
    resolve_named_workload(name, seed).ok_or_else(|| {
        let suggestion = match nearest_workload_name(name) {
            Some(nearest) => format!("; nearest catalog match is {nearest:?}"),
            None => String::new(),
        };
        ErrorBody::new(
            ErrorCode::UnknownWorkload,
            format!(
                "no trace, mix or family profile named {name:?}{suggestion} \
                 (see the catalog request)"
            ),
        )
    })
}

/// Parses the optional wire `policy` string (`None` means LRU, the
/// paper's policy and the only one pre-policy servers ever ran).
///
/// # Errors
///
/// Returns a `bad_request` error listing the accepted spellings.
fn parse_policy(policy: Option<&str>) -> Result<Replacement, ErrorBody> {
    match policy {
        None => Ok(Replacement::Lru),
        Some(text) => Replacement::parse(text).ok_or_else(|| {
            ErrorBody::new(
                ErrorCode::BadRequest,
                format!(
                    "unknown replacement policy {text:?} \
                     (expected lru, fifo, random, random:<seed> or plru)"
                ),
            )
        }),
    }
}

/// Canonical store key for a `simulate` result: every field that
/// determines the answer, prefixed with the digest-scheme and catalog
/// versions so stale artifacts miss cleanly after either changes. The
/// v3 key scheme adds the workload family and replacement policy; v2
/// records (keyed before either existed) miss cleanly instead of
/// aliasing an LRU CPU result.
fn simulate_result_key(spec: &SimulateSpec, family: &str, policy: Replacement) -> String {
    format!(
        "v{}/c{}/result/simulate/{}/family={}/seed={:?}/len={}/size={}/line={}/ways={:?}/purge={:?}/policy={}",
        smith85_store::KEY_SCHEMA_VERSION,
        catalog::CATALOG_VERSION,
        spec.workload,
        family,
        spec.seed,
        spec.len,
        spec.cache.size,
        spec.cache.line,
        spec.cache.ways,
        spec.cache.purge,
        policy.key_label(),
    )
}

/// Canonical store key for a `sweep` result (keyed on the *effective*
/// size list, after the paper-sizes default is applied). Grid sweeps
/// (non-empty `ways`) key the whole grid as one record, so a warm
/// restart answers a full sweep with a single store read. Family and
/// policy components as in [`simulate_result_key`].
fn sweep_result_key(
    spec: &SweepSpec,
    sizes: &[usize],
    family: &str,
    policy: Replacement,
) -> String {
    let sizes: Vec<String> = sizes.iter().map(|s| s.to_string()).collect();
    let ways: Vec<String> = spec.ways.iter().map(|w| w.to_string()).collect();
    format!(
        "v{}/c{}/result/sweep/{}/family={}/seed={:?}/len={}/line={}/sizes={}/ways={}/policy={}",
        smith85_store::KEY_SCHEMA_VERSION,
        catalog::CATALOG_VERSION,
        spec.workload,
        family,
        spec.seed,
        spec.len,
        spec.line,
        sizes.join(","),
        ways.join(","),
        policy.key_label(),
    )
}

fn check_len(len: usize) -> Result<(), ErrorBody> {
    if len == 0 {
        return Err(ErrorBody::new(ErrorCode::BadRequest, "\"len\" must be > 0"));
    }
    if len > MAX_REQUEST_LEN {
        return Err(ErrorBody::new(
            ErrorCode::BadRequest,
            format!("\"len\" {len} exceeds the per-request cap of {MAX_REQUEST_LEN}"),
        ));
    }
    Ok(())
}

/// Runs one `simulate` job. Timing fields are left zero; the worker
/// fills them in.
///
/// # Errors
///
/// Returns a typed error for unknown workloads or invalid cache
/// configurations.
pub fn run_simulate(
    session: &SimSession,
    spec: &SimulateSpec,
) -> Result<SimulateResult, ErrorBody> {
    check_len(spec.len)?;
    if spec.workload == PANIC_WORKLOAD {
        panic!("diagnostic {PANIC_WORKLOAD} workload: injected worker panic");
    }
    let workload = resolve_workload(&spec.workload, spec.seed)?;
    let policy = parse_policy(spec.policy.as_deref())?;
    let mapping = match spec.cache.ways {
        None => Mapping::FullyAssociative,
        Some(1) => Mapping::Direct,
        Some(n) => Mapping::SetAssociative(n),
    };
    // Validate the cache config before touching the session so invalid
    // requests never materialize traces into the shared pool.
    let config = CacheConfig::builder(spec.cache.size)
        .line_size(spec.cache.line)
        .mapping(mapping)
        .replacement(policy)
        .purge_interval(spec.cache.purge)
        .build()
        .map_err(|e| ErrorBody::new(ErrorCode::BadRequest, format!("invalid cache config: {e}")))?;
    // Only fully-validated requests consult the result cache: a stored
    // record short-circuits simulation (and pool materialization)
    // entirely. Records are CRC-checked by the store and re-parsed here,
    // so a damaged record degrades to a recompute, never a bad answer.
    let cache_key = session
        .store()
        .map(|_| simulate_result_key(spec, workload.family_name(), policy));
    if let (Some(store), Some(key)) = (session.store(), cache_key.as_deref()) {
        if let Some(json) = store.get_json(key) {
            if let Ok(Response::Simulate(cached)) = Response::decode(&json) {
                return Ok(cached);
            }
        }
    }
    let stats = session
        .simulate_workload(&workload, spec.len, config)
        .map_err(|e| ErrorBody::new(ErrorCode::BadRequest, format!("invalid cache config: {e}")))?;
    let result = SimulateResult {
        workload: spec.workload.clone(),
        len: spec.len,
        cache_bytes: spec.cache.size,
        refs: stats.total_refs(),
        misses: stats.total_misses(),
        miss_ratio: stats.miss_ratio(),
        instruction_miss_ratio: stats.instruction_miss_ratio(),
        data_miss_ratio: stats.data_miss_ratio(),
        traffic_bytes: stats.traffic_bytes(),
        queue_ms: 0,
        exec_ms: 0,
        trace_id: String::new(),
    };
    if let (Some(store), Some(key)) = (session.store(), cache_key.as_deref()) {
        // Best-effort: a persistence failure costs the next warm start,
        // never this response. Timing fields are stored as zero (the
        // worker stamps per-request values on the way out).
        let _ = store.put_json(key, &Response::Simulate(result.clone()).encode());
    }
    Ok(result)
}

/// Runs one `sweep` job. An empty `ways` list is the legacy sweep: one
/// stack-analysis pass, fully-associative miss ratio at every size. A
/// non-empty `ways` list runs the one-pass multi-configuration engine —
/// every realizable (size, ways) cell from a single trace traversal,
/// with traffic ratio and dirty-push fraction on every point. Timing
/// fields are left zero; the worker fills them in.
///
/// # Errors
///
/// Returns a typed error for unknown workloads, a bad line size, or a
/// grid the one-pass engine rejects.
pub fn run_sweep(session: &SimSession, spec: &SweepSpec) -> Result<SweepResult, ErrorBody> {
    check_len(spec.len)?;
    if spec.line == 0 || !spec.line.is_power_of_two() {
        return Err(ErrorBody::new(
            ErrorCode::BadRequest,
            "\"line\" must be a power of two",
        ));
    }
    let workload = resolve_workload(&spec.workload, spec.seed)?;
    let policy = parse_policy(spec.policy.as_deref())?;
    let sizes: &[usize] = if spec.sizes.is_empty() {
        &PAPER_SIZES
    } else {
        &spec.sizes
    };
    // Validate grid specs before the store lookup so a bad request can
    // never be served from (or written to) the result cache. Shape
    // validation (sizes, ways, line) is policy-independent, so it runs
    // against an LRU copy; the requested policy then decides the
    // execution path below.
    let grid_spec = if spec.ways.is_empty() {
        None
    } else {
        let mut grid = GridSpec::new(sizes.to_vec(), spec.ways.clone());
        grid.line_size = spec.line;
        grid.replacement = policy;
        let mut shape_check = grid.clone();
        shape_check.replacement = Replacement::Lru;
        smith85_cachesim::OnePassEngine::new(&shape_check)
            .map_err(|e| ErrorBody::new(ErrorCode::BadRequest, format!("invalid sweep grid: {e}")))?;
        Some(grid)
    };
    let cache_key = session
        .store()
        .map(|_| sweep_result_key(spec, sizes, workload.family_name(), policy));
    if let (Some(store), Some(key)) = (session.store(), cache_key.as_deref()) {
        if let Some(json) = store.get_json(key) {
            if let Ok(Response::Sweep(cached)) = Response::decode(&json) {
                return Ok(cached);
            }
        }
    }
    let points = match &grid_spec {
        None if policy == Replacement::Lru => {
            let profile = session.sweep_workload(&workload, spec.len, spec.line);
            sizes
                .iter()
                .map(|&size| SweepPoint {
                    size,
                    miss_ratio: profile.miss_ratio(size),
                    ways: None,
                    traffic_ratio: None,
                    dirty_push_fraction: None,
                })
                .collect()
        }
        None => {
            // Stack analysis is an LRU algorithm; non-LRU size sweeps
            // run the per-configuration fallback over the same
            // fully-associative design points.
            let mut grid = GridSpec::new(sizes.to_vec(), Vec::new());
            grid.line_size = spec.line;
            grid.replacement = policy;
            grid.include_fully_associative = true;
            let cells = session
                .sweep_policy_workload(&workload, spec.len, &grid)
                .map_err(|e| {
                    ErrorBody::new(ErrorCode::BadRequest, format!("invalid sweep grid: {e}"))
                })?;
            cells
                .iter()
                .map(|(cell, stats)| SweepPoint {
                    size: cell.size_bytes,
                    miss_ratio: stats.miss_ratio(),
                    ways: None,
                    traffic_ratio: None,
                    dirty_push_fraction: None,
                })
                .collect()
        }
        Some(grid_spec) if policy == Replacement::Lru => {
            let grid = session
                .sweep_grid_workload(&workload, spec.len, grid_spec)
                .map_err(|e| {
                    ErrorBody::new(ErrorCode::BadRequest, format!("invalid sweep grid: {e}"))
                })?;
            grid.iter()
                .map(|(cell, stats)| SweepPoint {
                    size: cell.size_bytes,
                    miss_ratio: stats.miss_ratio(),
                    ways: Some(cell.ways),
                    traffic_ratio: Some(stats.traffic_ratio()),
                    dirty_push_fraction: Some(stats.dirty_push_fraction()),
                })
                .collect()
        }
        Some(grid_spec) => {
            // Non-LRU grids are outside the one-pass engine's envelope
            // (it returns `OnePassUnsupported`); the per-configuration
            // fallback simulates each realizable cell directly.
            let cells = session
                .sweep_policy_workload(&workload, spec.len, grid_spec)
                .map_err(|e| {
                    ErrorBody::new(ErrorCode::BadRequest, format!("invalid sweep grid: {e}"))
                })?;
            cells
                .iter()
                .map(|(cell, stats)| SweepPoint {
                    size: cell.size_bytes,
                    miss_ratio: stats.miss_ratio(),
                    ways: Some(cell.ways),
                    traffic_ratio: Some(stats.traffic_ratio()),
                    dirty_push_fraction: Some(stats.dirty_push_fraction()),
                })
                .collect()
        }
    };
    let result = SweepResult {
        workload: spec.workload.clone(),
        len: spec.len,
        points,
        queue_ms: 0,
        exec_ms: 0,
        trace_id: String::new(),
    };
    if let (Some(store), Some(key)) = (session.store(), cache_key.as_deref()) {
        let _ = store.put_json(key, &Response::Sweep(result.clone()).encode());
    }
    Ok(result)
}

/// The `catalog` response: the 49 CPU profiles, the storage-I/O and
/// network-address family profiles, and the mix names.
pub fn catalog_result() -> CatalogResult {
    let mut profiles: Vec<CatalogEntry> = catalog::all()
        .iter()
        .map(|spec| {
            let p = spec.profile();
            CatalogEntry {
                name: spec.name().to_string(),
                group: spec.group().to_string(),
                arch: p.arch.to_string(),
                language: p.language.to_string(),
                family: "cpu".to_string(),
            }
        })
        .collect();
    for spec in smith85_families::catalog::all() {
        let group = match spec.family() {
            smith85_families::Family::Storage => "Storage I/O",
            smith85_families::Family::Network => "Network",
        };
        profiles.push(CatalogEntry {
            name: spec.name().to_string(),
            group: group.to_string(),
            arch: "-".to_string(),
            language: "-".to_string(),
            family: spec.family().name().to_string(),
        });
    }
    CatalogResult {
        profiles,
        mixes: catalog::table3_mixes()
            .into_iter()
            .map(|(name, _)| name)
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::CacheSpec;
    use smith85_cachesim::{Simulator, StackAnalyzer, UnifiedCache};

    fn session() -> SimSession {
        SimSession::builder().quick().build().unwrap()
    }

    fn simulate_spec(workload: &str, len: usize, size: usize) -> SimulateSpec {
        SimulateSpec {
            workload: workload.to_string(),
            len,
            seed: None,
            cache: CacheSpec {
                size,
                line: 16,
                ways: None,
                purge: None,
            },
            policy: None,
            deadline_ms: None,
        }
    }

    #[test]
    fn simulate_matches_a_direct_library_run() {
        let session = session();
        let spec = simulate_spec("VCCOM", 5_000, 4_096);
        let served = run_simulate(&session, &spec).unwrap();

        let profile = catalog::by_name("VCCOM").unwrap().profile().clone();
        let trace = profile.generate(5_000);
        let config = CacheConfig::builder(4_096).line_size(16).build().unwrap();
        let mut cache = UnifiedCache::new(config).unwrap();
        cache.run_slice(trace.as_slice());
        assert_eq!(served.miss_ratio.to_bits(), cache.stats().miss_ratio().to_bits());
        assert_eq!(served.misses, cache.stats().total_misses());
        assert_eq!(served.refs, 5_000);
    }

    #[test]
    fn seed_override_changes_the_stream() {
        let session = session();
        let base = run_simulate(&session, &simulate_spec("ZGREP", 4_000, 1_024)).unwrap();
        let mut reseeded_spec = simulate_spec("ZGREP", 4_000, 1_024);
        reseeded_spec.seed = Some(12_345);
        let reseeded = run_simulate(&session, &reseeded_spec).unwrap();
        assert_ne!(base.miss_ratio.to_bits(), reseeded.miss_ratio.to_bits());
        assert_eq!(session.pool().stats().entries, 2, "distinct seeds pool separately");
    }

    #[test]
    fn mixes_resolve_by_display_name() {
        let w = resolve_workload("Z8000 - Assorted", None).unwrap();
        assert!(matches!(w, Workload::Mix { ref members, .. } if members.len() == 5));
        let session = session();
        let result = run_simulate(&session, &simulate_spec("Z8000 - Assorted", 3_000, 2_048));
        assert!(result.is_ok(), "{result:?}");
    }

    #[test]
    fn unknown_workload_is_typed() {
        let err = resolve_workload("NOPE", None).unwrap_err();
        assert_eq!(err.code, ErrorCode::UnknownWorkload);
        assert!(err.message.contains("NOPE"));
    }

    #[test]
    fn bad_lengths_and_configs_are_typed() {
        let session = session();
        let mut zero = simulate_spec("VCCOM", 0, 1_024);
        zero.len = 0;
        assert_eq!(run_simulate(&session, &zero).unwrap_err().code, ErrorCode::BadRequest);
        let huge = simulate_spec("VCCOM", MAX_REQUEST_LEN + 1, 1_024);
        assert_eq!(run_simulate(&session, &huge).unwrap_err().code, ErrorCode::BadRequest);
        let mut bad_cache = simulate_spec("VCCOM", 1_000, 1_000); // not a power of two
        bad_cache.cache.line = 16;
        assert_eq!(
            run_simulate(&session, &bad_cache).unwrap_err().code,
            ErrorCode::BadRequest
        );
        assert_eq!(
            session.pool().stats().entries,
            0,
            "invalid requests must not pool traces"
        );
    }

    #[test]
    fn sweep_matches_the_analyzer_and_defaults_to_paper_sizes() {
        let session = session();
        let spec = SweepSpec {
            workload: "ZGREP".to_string(),
            len: 5_000,
            seed: None,
            sizes: Vec::new(),
            ways: Vec::new(),
            line: 16,
            policy: None,
            deadline_ms: None,
        };
        let served = run_sweep(&session, &spec).unwrap();
        assert_eq!(served.points.len(), PAPER_SIZES.len());

        let profile = catalog::by_name("ZGREP").unwrap().profile().clone();
        let trace = profile.generate(5_000);
        let mut analyzer = StackAnalyzer::with_line_size(16);
        for a in &trace {
            analyzer.observe(*a);
        }
        let direct = analyzer.finish();
        for point in &served.points {
            assert_eq!(
                point.miss_ratio.to_bits(),
                direct.miss_ratio(point.size).to_bits(),
                "size {}",
                point.size
            );
        }
    }

    #[test]
    fn grid_sweep_matches_per_config_simulation() {
        let session = session();
        let spec = SweepSpec {
            workload: "VCCOM".to_string(),
            len: 5_000,
            seed: None,
            sizes: vec![1_024, 4_096],
            ways: vec![1, 2, 4],
            line: 16,
            policy: None,
            deadline_ms: None,
        };
        let served = run_sweep(&session, &spec).unwrap();
        assert_eq!(served.points.len(), 6, "2 sizes x 3 ways, all realizable");
        let profile = catalog::by_name("VCCOM").unwrap().profile().clone();
        let trace = profile.generate(5_000);
        for point in &served.points {
            let ways = point.ways.expect("grid points carry ways");
            let mapping = if ways == 1 { Mapping::Direct } else { Mapping::SetAssociative(ways) };
            let config = CacheConfig::builder(point.size)
                .line_size(16)
                .mapping(mapping)
                .build()
                .unwrap();
            let mut cache = UnifiedCache::new(config).unwrap();
            cache.run_slice(trace.as_slice());
            let direct = cache.stats();
            assert_eq!(
                point.miss_ratio.to_bits(),
                direct.miss_ratio().to_bits(),
                "{} B {}-way",
                point.size,
                ways
            );
            assert_eq!(
                point.traffic_ratio.unwrap().to_bits(),
                direct.traffic_ratio().to_bits()
            );
            assert_eq!(
                point.dirty_push_fraction.unwrap().to_bits(),
                direct.dirty_push_fraction().to_bits()
            );
        }
    }

    #[test]
    fn grid_sweep_rejects_bad_grids_with_typed_errors() {
        let session = session();
        let mut spec = SweepSpec {
            workload: "VCCOM".to_string(),
            len: 1_000,
            seed: None,
            sizes: vec![64],
            ways: vec![3],
            line: 16,
            policy: None,
            deadline_ms: None,
        };
        // Non-power-of-two associativity.
        let err = run_sweep(&session, &spec).unwrap_err();
        assert_eq!(err.code, ErrorCode::BadRequest);
        // Every cell unrealizable: 64 B / 16 B lines = 4 lines < 8 ways.
        spec.ways = vec![8];
        let err = run_sweep(&session, &spec).unwrap_err();
        assert_eq!(err.code, ErrorCode::BadRequest);
        assert_eq!(
            session.pool().stats().entries,
            0,
            "invalid grid requests must not pool traces"
        );
    }

    #[test]
    fn catalog_lists_all_profiles_and_mixes() {
        let c = catalog_result();
        assert_eq!(c.profiles.len(), 49 + 10, "49 CPU + 5 storage + 5 network");
        assert_eq!(c.mixes.len(), 4);
        assert!(c.profiles.iter().any(|e| e.name == "VCCOM" && e.family == "cpu"));
        assert!(c.profiles.iter().any(|e| e.name == "S-KVSTORE" && e.family == "storage"));
        assert!(c.profiles.iter().any(|e| e.name == "N-LAN" && e.family == "network"));
        assert!(c.mixes.iter().any(|m| m == "Z8000 - Assorted"));
    }

    #[test]
    fn unknown_workload_suggests_the_nearest_catalog_name() {
        let err = resolve_workload("VCOM", None).unwrap_err();
        assert_eq!(err.code, ErrorCode::UnknownWorkload);
        assert!(err.message.contains("\"VCOM\""), "{}", err.message);
        assert!(err.message.contains("\"VCCOM\""), "{}", err.message);
        let err = resolve_workload("s-kvstor", None).unwrap_err();
        assert!(err.message.contains("\"S-KVSTORE\""), "{}", err.message);
    }

    #[test]
    fn family_workloads_simulate_and_sweep() {
        let session = session();
        let sim = run_simulate(&session, &simulate_spec("S-KVSTORE", 4_000, 2_048)).unwrap();
        assert!(sim.miss_ratio > 0.0 && sim.miss_ratio <= 1.0);
        let spec = SweepSpec {
            workload: "N-LAN".to_string(),
            len: 4_000,
            seed: None,
            sizes: vec![256, 1_024],
            ways: vec![2],
            line: 64,
            policy: None,
            deadline_ms: None,
        };
        let swept = run_sweep(&session, &spec).unwrap();
        assert_eq!(swept.points.len(), 2);
        assert!(swept.points[0].miss_ratio >= swept.points[1].miss_ratio);
    }

    #[test]
    fn bad_policy_spellings_are_typed() {
        let session = session();
        let mut spec = simulate_spec("VCCOM", 1_000, 1_024);
        spec.policy = Some("lifo".to_string());
        let err = run_simulate(&session, &spec).unwrap_err();
        assert_eq!(err.code, ErrorCode::BadRequest);
        assert!(err.message.contains("lifo"), "{}", err.message);
    }

    #[test]
    fn non_lru_grid_sweep_matches_per_config_simulation() {
        let session = session();
        let spec = SweepSpec {
            workload: "VCCOM".to_string(),
            len: 5_000,
            seed: None,
            sizes: vec![1_024, 4_096],
            ways: vec![2, 4],
            line: 16,
            policy: Some("fifo".to_string()),
            deadline_ms: None,
        };
        let served = run_sweep(&session, &spec).unwrap();
        assert_eq!(served.points.len(), 4);
        let profile = catalog::by_name("VCCOM").unwrap().profile().clone();
        let trace = profile.generate(5_000);
        for point in &served.points {
            let ways = point.ways.expect("grid points carry ways");
            let config = CacheConfig::builder(point.size)
                .line_size(16)
                .mapping(Mapping::SetAssociative(ways))
                .replacement(Replacement::Fifo)
                .build()
                .unwrap();
            let mut cache = UnifiedCache::new(config).unwrap();
            cache.run_slice(trace.as_slice());
            assert_eq!(
                point.miss_ratio.to_bits(),
                cache.stats().miss_ratio().to_bits(),
                "{} B {}-way fifo",
                point.size,
                ways
            );
        }
    }

    #[test]
    fn non_lru_size_sweep_uses_the_fully_associative_fallback() {
        let session = session();
        let spec = SweepSpec {
            workload: "ZGREP".to_string(),
            len: 4_000,
            seed: None,
            sizes: vec![512, 2_048],
            ways: Vec::new(),
            line: 16,
            policy: Some("random:7".to_string()),
            deadline_ms: None,
        };
        let served = run_sweep(&session, &spec).unwrap();
        assert_eq!(served.points.len(), 2);
        let profile = catalog::by_name("ZGREP").unwrap().profile().clone();
        let trace = profile.generate(4_000);
        for point in &served.points {
            assert!(point.ways.is_none(), "size sweeps report no ways column");
            let config = CacheConfig::builder(point.size)
                .line_size(16)
                .mapping(Mapping::FullyAssociative)
                .replacement(Replacement::Random { seed: 7 })
                .build()
                .unwrap();
            let mut cache = UnifiedCache::new(config).unwrap();
            cache.run_slice(trace.as_slice());
            assert_eq!(
                point.miss_ratio.to_bits(),
                cache.stats().miss_ratio().to_bits(),
                "{} B fully-associative random:7",
                point.size
            );
        }
    }

    #[test]
    fn v2_store_records_miss_under_the_v3_key_scheme() {
        // Regression guard for the key-schema bump: a record written
        // under the pre-policy v2 layout must never be served for a v3
        // request (it would alias an LRU CPU result onto a policy run).
        let dir = std::env::temp_dir().join(format!(
            "smith85-serve-v2-miss-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let session = SimSession::builder().quick().store(&dir).build().unwrap();
        let store = session.store().expect("store-backed session");
        let spec = simulate_spec("VCCOM", 2_000, 1_024);
        // Plant a decoy under the old v2 key layout (no family/policy
        // components, schema version 2).
        let v2_key = format!(
            "v2/c1/result/simulate/{}/seed={:?}/len={}/size={}/line={}/ways={:?}/purge={:?}",
            spec.workload,
            spec.seed,
            spec.len,
            spec.cache.size,
            spec.cache.line,
            spec.cache.ways,
            spec.cache.purge,
        );
        let decoy = Response::Simulate(SimulateResult {
            workload: spec.workload.clone(),
            len: spec.len,
            cache_bytes: spec.cache.size,
            refs: spec.len as u64,
            misses: 0,
            miss_ratio: -1.0,
            instruction_miss_ratio: 0.0,
            data_miss_ratio: 0.0,
            traffic_bytes: 0,
            queue_ms: 0,
            exec_ms: 0,
            trace_id: String::new(),
        });
        store.put_json(&v2_key, &decoy.encode()).unwrap();

        let served = run_simulate(&session, &spec).unwrap();
        assert!(
            served.miss_ratio >= 0.0,
            "v2 decoy must not be served: {}",
            served.miss_ratio
        );
        let v3_key = simulate_result_key(&spec, "cpu", Replacement::Lru);
        assert!(v3_key.starts_with("v3/c2/"), "{v3_key}");
        assert_ne!(v3_key, v2_key);
        assert!(store.get_json(&v3_key).is_some(), "fresh result cached under v3");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
