//! A minimal JSON value model, parser and writer.
//!
//! The workspace's `serde` resolves to a no-op offline shim (see
//! `shims/serde`), so the wire protocol cannot lean on a serializer
//! crate. This module implements exactly the JSON subset the protocol
//! needs, with two properties the service relies on:
//!
//! * **Bounded input** — the parser enforces a nesting-depth limit and
//!   the server caps line length before parsing, so a malicious client
//!   cannot make a worker recurse or allocate without bound;
//! * **Round-tripping floats** — `f64` values are written with Rust's
//!   shortest-round-trip `Display`, so a miss ratio survives
//!   encode/decode bit-identically (the loopback tests assert this).

use std::fmt;

/// Maximum nesting depth the parser accepts.
const MAX_DEPTH: usize = 32;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer that fits `u64` (the common protocol case:
    /// lengths, sizes, seeds — kept exact rather than via `f64`).
    Uint(u64),
    /// Any other number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

/// A parse failure: byte offset plus a short message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.at)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses one complete JSON value; trailing non-whitespace is an
    /// error.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] naming the offending byte offset.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(value)
    }

    /// Object field lookup (`None` for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// An unsigned integer (exact `Uint`, or a `Num` that is a whole
    /// non-negative number).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Uint(n) => Some(*n),
            Json::Num(f) if *f >= 0.0 && f.fract() == 0.0 && *f <= u64::MAX as f64 => {
                Some(*f as u64)
            }
            _ => None,
        }
    }

    /// [`as_u64`](Self::as_u64) narrowed to `usize`.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|n| usize::try_from(n).ok())
    }

    /// Any numeric payload as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Uint(n) => Some(*n as f64),
            Json::Num(f) => Some(*f),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Writes the value as compact single-line JSON.
    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Uint(n) => {
                let _ = fmt::Write::write_fmt(out, format_args!("{n}"));
            }
            Json::Num(f) if f.is_finite() => {
                // Rust's shortest form drops ".0" for whole values; keep
                // it so the value re-parses as a float, not an integer.
                let start = out.len();
                let _ = fmt::Write::write_fmt(out, format_args!("{f}"));
                if !out[start..].contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            }
            // JSON has no NaN/Infinity; the protocol never produces
            // them, but a defensive `null` beats invalid output.
            Json::Num(_) => out.push_str("null"),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, key);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write(&mut s);
        f.write_str(&s)
    }
}

/// Convenience constructor for object literals.
pub fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// Convenience constructor for string values.
pub fn s(value: impl Into<String>) -> Json {
    Json::Str(value.into())
}

fn write_escaped(out: &mut String, value: &str) {
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            at: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", byte as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected {text:?}")))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => out.push(self.unicode_escape()?),
                        other => {
                            return Err(self.err(format!(
                                "unknown escape \\{}",
                                other as char
                            )))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // bytes are valid UTF-8 by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("empty input"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let first = self.hex4()?;
        // Combine UTF-16 surrogate pairs; a lone surrogate becomes the
        // replacement character rather than an error.
        if (0xd800..0xdc00).contains(&first) {
            if self.bytes[self.pos..].starts_with(b"\\u") {
                let mark = self.pos;
                self.pos += 2;
                let second = self.hex4()?;
                if (0xdc00..0xe000).contains(&second) {
                    let combined =
                        0x10000 + ((first - 0xd800) << 10) + (second - 0xdc00);
                    return Ok(char::from_u32(combined).unwrap_or('\u{fffd}'));
                }
                self.pos = mark;
            }
            return Ok('\u{fffd}');
        }
        Ok(char::from_u32(first).unwrap_or('\u{fffd}'))
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        let digits = self
            .bytes
            .get(self.pos..end)
            .and_then(|b| std::str::from_utf8(b).ok())
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let value = u32::from_str_radix(digits, 16)
            .map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(value)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        // Exact unsigned integers stay exact; everything else is f64.
        if !text.is_empty() && text.bytes().all(|b| b.is_ascii_digit()) {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::Uint(n));
            }
        }
        match text.parse::<f64>() {
            Ok(f) if f.is_finite() => Ok(Json::Num(f)),
            _ => Err(JsonError {
                at: start,
                message: format!("invalid number {text:?}"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "42", "-2.5", "1e3", "\"hi\""] {
            let v = Json::parse(text).unwrap();
            let rendered = v.to_string();
            assert_eq!(Json::parse(&rendered).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn floats_round_trip_bit_identically() {
        for f in [0.123456789012345, 1.0 / 3.0, 2.5e-7, 0.0821] {
            let v = Json::Num(f);
            let parsed = Json::parse(&v.to_string()).unwrap();
            assert_eq!(parsed.as_f64().unwrap().to_bits(), f.to_bits(), "{f}");
        }
    }

    #[test]
    fn integers_stay_exact() {
        let big = u64::MAX;
        let parsed = Json::parse(&format!("{big}")).unwrap();
        assert_eq!(parsed, Json::Uint(big));
        assert_eq!(parsed.as_u64(), Some(big));
    }

    #[test]
    fn objects_preserve_fields() {
        let v = Json::parse(r#"{"a": 1, "b": [true, null], "c": {"d": "x"}}"#).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(1));
        assert_eq!(v.get("b").and_then(Json::as_arr).map(<[Json]>::len), Some(2));
        assert_eq!(
            v.get("c").and_then(|c| c.get("d")).and_then(Json::as_str),
            Some("x")
        );
        let round = Json::parse(&v.to_string()).unwrap();
        assert_eq!(round, v);
    }

    #[test]
    fn string_escapes_round_trip() {
        let tricky = "line\nbreak \"quote\" back\\slash tab\t\u{1} π";
        let rendered = Json::Str(tricky.to_string()).to_string();
        assert_eq!(Json::parse(&rendered).unwrap().as_str(), Some(tricky));
        assert_eq!(
            Json::parse(r#""😀""#).unwrap().as_str(),
            Some("\u{1f600}")
        );
        assert_eq!(Json::parse(r#""\ud800""#).unwrap().as_str(), Some("\u{fffd}"));
    }

    #[test]
    fn malformed_inputs_error_with_position() {
        for text in [
            "",
            "{",
            "{\"a\":}",
            "[1,]",
            "tru",
            "\"unterminated",
            "{\"a\" 1}",
            "1 2",
            "nan",
            "1e",
        ] {
            assert!(Json::parse(text).is_err(), "{text:?} should fail");
        }
    }

    #[test]
    fn depth_limit_stops_recursion() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        let err = Json::parse(&deep).unwrap_err();
        assert!(err.message.contains("deep"), "{err}");
    }

    #[test]
    fn whitespace_is_tolerated() {
        let v = Json::parse(" \t{ \"k\" : [ 1 , 2 ] }\r\n").unwrap();
        assert_eq!(v.get("k").and_then(Json::as_arr).map(<[Json]>::len), Some(2));
    }
}
