//! The wire protocol: newline-delimited JSON requests and responses.
//!
//! One request object per line, one response object per line, in order.
//! Every object carries a `"type"` discriminator. The full schema is
//! documented in `EXPERIMENTS.md`; the round-trip tests below pin every
//! variant.
//!
//! Design points:
//!
//! * **Typed errors, always** — malformed input never kills a worker or
//!   a connection; it produces an `{"type":"error","code":...}` response
//!   with a stable machine-readable code ([`ErrorCode`]).
//! * **Admission control is visible** — a full work queue answers
//!   `overloaded` immediately instead of queueing unboundedly, so a
//!   load generator can count rejections.
//! * **Exact floats** — miss ratios are written with shortest
//!   round-trip formatting; a client reads back the bit-identical `f64`
//!   the simulator produced.

use crate::json::{self, Json};
use smith85_obs::{
    BucketSnapshot, CounterSnapshot, GaugeSnapshot, HistogramSnapshot, RegistrySnapshot,
};
use std::fmt;

/// The wire protocol version this build speaks. Encoded requests carry
/// it as `"v"`; the server accepts requests with no `"v"` at all
/// (pre-versioning clients) or `"v"` equal to this value, and rejects
/// anything else with `bad_request`. Unknown request fields are always
/// ignored, so the envelope can grow without breaking old servers.
pub const PROTOCOL_VERSION: u64 = 1;

/// Hard cap on one request line; longer lines get an `oversized` error.
pub const MAX_LINE_BYTES: usize = 64 * 1024;

/// Default reference count for `simulate`/`sweep` when `len` is absent.
pub const DEFAULT_TRACE_LEN: usize = 100_000;

/// Default line size (bytes) for simulated caches, as in the paper.
pub const DEFAULT_LINE_BYTES: usize = 16;

/// A client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Run one cache configuration over one workload.
    Simulate(SimulateSpec),
    /// Miss ratio at several cache sizes in one stack-analysis pass.
    Sweep(SweepSpec),
    /// List the workload catalog (49 profiles + the 4 mixes).
    Catalog,
    /// Server counters: requests by type, queue depth, pool hit ratio…
    Stats,
    /// A snapshot of the metrics registry (counters, gauges,
    /// histograms with quantiles) — the JSON twin of the Prometheus
    /// endpoint.
    Metrics,
    /// Liveness probe.
    Ping,
    /// Begin graceful shutdown: stop accepting, drain in-flight jobs.
    Shutdown,
}

/// The cache configuration of a `simulate` request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheSpec {
    /// Cache capacity in bytes.
    pub size: usize,
    /// Line size in bytes.
    pub line: usize,
    /// Associativity: `None` is fully associative, `Some(1)` direct.
    pub ways: Option<usize>,
    /// Task-switch purge interval, if any.
    pub purge: Option<u64>,
}

/// Parameters of a `simulate` request.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulateSpec {
    /// Catalog trace, mix, or family-profile name.
    pub workload: String,
    /// References simulated.
    pub len: usize,
    /// Overrides the profile's generator seed (mix members are XORed).
    pub seed: Option<u64>,
    /// The cache to simulate.
    pub cache: CacheSpec,
    /// Replacement policy: `"lru"` (the default when absent), `"fifo"`,
    /// `"random"`, `"random:<seed>"` or `"plru"`. Optional in both
    /// directions: pre-policy clients never send it, pre-policy servers
    /// ignore it.
    pub policy: Option<String>,
    /// Per-request deadline, measured from admission.
    pub deadline_ms: Option<u64>,
}

/// Parameters of a `sweep` request.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Catalog trace, mix, or family-profile name.
    pub workload: String,
    /// References analyzed.
    pub len: usize,
    /// Overrides the profile's generator seed (mix members are XORed).
    pub seed: Option<u64>,
    /// Cache sizes evaluated; empty means the paper's size grid.
    pub sizes: Vec<usize>,
    /// Associativities crossed with every size. Empty keeps the
    /// legacy fully-associative stack-analysis sweep; non-empty runs
    /// the one-pass multi-configuration engine and the result carries
    /// one point per realizable (size, ways) cell.
    pub ways: Vec<usize>,
    /// Line size in bytes.
    pub line: usize,
    /// Replacement policy (same spellings as `simulate`). Non-LRU
    /// grids fall back from the one-pass engine to per-configuration
    /// simulation server-side. Optional in both directions.
    pub policy: Option<String>,
    /// Per-request deadline, measured from admission.
    pub deadline_ms: Option<u64>,
}

/// A server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Result of a `simulate` request.
    Simulate(SimulateResult),
    /// Result of a `sweep` request.
    Sweep(SweepResult),
    /// The workload catalog.
    Catalog(CatalogResult),
    /// Server counters.
    Stats(StatsResult),
    /// The metrics-registry snapshot.
    Metrics(RegistrySnapshot),
    /// Answer to `ping`.
    Pong,
    /// Shutdown acknowledged; the server drains and exits.
    Ok,
    /// Any failure, with a stable machine-readable code.
    Error(ErrorBody),
}

/// One simulated cache configuration's statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulateResult {
    /// Echo of the requested workload name.
    pub workload: String,
    /// Echo of the simulated reference count.
    pub len: usize,
    /// Echo of the cache capacity.
    pub cache_bytes: usize,
    /// References observed by the cache.
    pub refs: u64,
    /// Total misses.
    pub misses: u64,
    /// Overall miss ratio.
    pub miss_ratio: f64,
    /// Instruction-fetch miss ratio.
    pub instruction_miss_ratio: f64,
    /// Data miss ratio.
    pub data_miss_ratio: f64,
    /// Bus traffic in bytes.
    pub traffic_bytes: u64,
    /// Milliseconds spent queued before a worker picked the job up.
    pub queue_ms: u64,
    /// Milliseconds of worker execution.
    pub exec_ms: u64,
    /// Request trace id, minted at admission; matches this request's
    /// records in the server's trace journal (empty from pre-tracing
    /// servers).
    pub trace_id: String,
}

/// One point of a sweep curve.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Cache capacity in bytes.
    pub size: usize,
    /// Miss ratio at that capacity (fully-associative LRU for legacy
    /// sweeps; the cell's set-associative ratio for grid sweeps).
    pub miss_ratio: f64,
    /// Associativity of a grid-sweep cell; `None` on legacy
    /// fully-associative points (and from pre-grid servers).
    pub ways: Option<usize>,
    /// Bus traffic divided by demanded bytes; grid sweeps only.
    pub traffic_ratio: Option<f64>,
    /// Fraction of misses that pushed a dirty line; grid sweeps only.
    pub dirty_push_fraction: Option<f64>,
}

/// A sweep curve.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepResult {
    /// Echo of the requested workload name.
    pub workload: String,
    /// Echo of the analyzed reference count.
    pub len: usize,
    /// Miss ratio per size, in request order.
    pub points: Vec<SweepPoint>,
    /// Milliseconds spent queued before a worker picked the job up.
    pub queue_ms: u64,
    /// Milliseconds of worker execution.
    pub exec_ms: u64,
    /// Request trace id, minted at admission; matches this request's
    /// records in the server's trace journal (empty from pre-tracing
    /// servers).
    pub trace_id: String,
}

/// One catalog row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CatalogEntry {
    /// Trace name (the `workload` key for `simulate`/`sweep`).
    pub name: String,
    /// Workload group (the paper's §3.1 clusters, or the family's
    /// descriptive group for non-CPU profiles).
    pub group: String,
    /// Machine architecture (`"-"` for non-CPU family profiles).
    pub arch: String,
    /// Source language (`"-"` for non-CPU family profiles).
    pub language: String,
    /// Workload family: `"cpu"`, `"storage"` or `"network"`. Decoded as
    /// `"cpu"` when absent, so pre-family servers stay readable.
    pub family: String,
}

/// The `catalog` response payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CatalogResult {
    /// The single-trace profiles: the 49 CPU traces plus the
    /// storage-I/O and network family profiles.
    pub profiles: Vec<CatalogEntry>,
    /// The multiprogramming mix names (also valid `workload` keys).
    pub mixes: Vec<String>,
}

/// Trace-pool counters inside a `stats` response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolCounters {
    /// Distinct materialized workloads resident.
    pub entries: usize,
    /// Requests served from an existing entry.
    pub hits: u64,
    /// Requests that had to generate.
    pub misses: u64,
    /// Cumulative bytes ever materialized.
    pub materialized_bytes: u64,
    /// Bytes currently resident.
    pub resident_bytes: u64,
}

/// Persistent-store counters inside a `stats` response. Absent when the
/// server runs without `--store` (and from pre-store servers — the
/// decoder treats a missing object as `None`, keeping old and new
/// clients interoperable in both directions).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreCounters {
    /// Live objects in the store index.
    pub entries: u64,
    /// Bytes held by live objects.
    pub bytes: u64,
    /// Reads served from disk.
    pub hits: u64,
    /// Reads that found nothing usable.
    pub misses: u64,
    /// Records written.
    pub writes: u64,
    /// Files quarantined as corrupt (recovery scan included).
    pub corrupt_quarantined: u64,
    /// Objects evicted by the LRU collector.
    pub gc_evictions: u64,
}

/// One-pass grid-sweep counters inside a `stats` response. Absent from
/// pre-grid servers — the decoder treats a missing object as `None`,
/// keeping old and new clients interoperable in both directions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OnePassCounters {
    /// Trace references traversed by the one-pass engine.
    pub refs: u64,
    /// Grid cells (size × ways configurations) those passes produced.
    pub grid_cells: u64,
}

/// Shard-router counters inside a `stats` response. Present only when
/// the answering node runs in router mode; absent (and `None`) from
/// single-node servers and pre-router builds, in both directions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouterCounters {
    /// Backend shards configured on the ring.
    pub shards: u64,
    /// Shards currently passing health checks.
    pub healthy: u64,
    /// Requests forwarded to a backend (successful or not).
    pub forwarded: u64,
    /// Forwards that hedged to a fallback shard after a refused or
    /// failed primary.
    pub hedged: u64,
    /// Requests rejected because the target shard's in-flight budget
    /// was exhausted (reported to clients as typed `overloaded`).
    pub shard_overloads: u64,
    /// Health probes issued since start.
    pub health_probes: u64,
    /// Shard snapshots merged into federated `metrics`/`/metrics`
    /// answers since start. Decoded as 0 from pre-federation routers.
    pub federated_shards: u64,
    /// Shards skipped as down during federation (their series are
    /// marked stale instead of blocking the scrape). Decoded as 0 from
    /// pre-federation routers.
    pub stale_shards: u64,
}

/// The `stats` response payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatsResult {
    /// `simulate` requests admitted (including ones that later failed).
    pub simulate_requests: u64,
    /// `sweep` requests admitted.
    pub sweep_requests: u64,
    /// `catalog` requests answered.
    pub catalog_requests: u64,
    /// `stats` requests answered.
    pub stats_requests: u64,
    /// Jobs completed successfully by the worker pool.
    pub completed: u64,
    /// Jobs rejected by admission control (queue full).
    pub rejected_overload: u64,
    /// Requests that failed to parse or validate.
    pub protocol_errors: u64,
    /// Jobs whose deadline expired before or during execution.
    pub deadline_misses: u64,
    /// Jobs waiting in the queue right now.
    pub queue_depth: usize,
    /// Highest queue depth observed since start.
    pub queue_high_water: usize,
    /// Worker threads in the pool.
    pub workers: usize,
    /// Cumulative worker milliseconds spent in `simulate` jobs.
    pub busy_ms_simulate: u64,
    /// Cumulative worker milliseconds spent in `sweep` jobs.
    pub busy_ms_sweep: u64,
    /// Shared trace-pool counters.
    pub pool: PoolCounters,
    /// Persistent-store counters; `None` when no store is configured.
    pub store: Option<StoreCounters>,
    /// One-pass grid-sweep counters; `None` from pre-grid servers.
    pub one_pass: Option<OnePassCounters>,
    /// Shard-router counters; `None` from non-router nodes.
    pub router: Option<RouterCounters>,
}

/// Stable machine-readable failure codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The work queue is full; retry later (admission control).
    Overloaded,
    /// The request was syntactically or semantically invalid.
    BadRequest,
    /// The `"type"` discriminator is not a known request type.
    UnknownType,
    /// The named workload is not in the catalog.
    UnknownWorkload,
    /// The per-request deadline expired before a result was ready.
    DeadlineExceeded,
    /// A request line exceeded [`MAX_LINE_BYTES`].
    Oversized,
    /// The server is draining and no longer admits work.
    ShuttingDown,
    /// An unexpected server-side failure (e.g. a panicking job).
    Internal,
}

impl ErrorCode {
    /// The wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::UnknownType => "unknown_type",
            ErrorCode::UnknownWorkload => "unknown_workload",
            ErrorCode::DeadlineExceeded => "deadline_exceeded",
            ErrorCode::Oversized => "oversized",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::Internal => "internal",
        }
    }

    fn parse(text: &str) -> Option<ErrorCode> {
        Some(match text {
            "overloaded" => ErrorCode::Overloaded,
            "bad_request" => ErrorCode::BadRequest,
            "unknown_type" => ErrorCode::UnknownType,
            "unknown_workload" => ErrorCode::UnknownWorkload,
            "deadline_exceeded" => ErrorCode::DeadlineExceeded,
            "oversized" => ErrorCode::Oversized,
            "shutting_down" => ErrorCode::ShuttingDown,
            "internal" => ErrorCode::Internal,
            _ => return None,
        })
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A typed error response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErrorBody {
    /// The stable failure code.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

impl ErrorBody {
    /// Builds an error body.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        ErrorBody {
            code,
            message: message.into(),
        }
    }
}

impl fmt::Display for ErrorBody {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

/// The optional tracing fields of the request envelope: the trace id
/// the request should be admitted under and, when a caller in another
/// process already opened a span for this hop, that span's id. Both are
/// tolerated in both directions — a v-less or pre-tracing peer simply
/// never sends or reads them.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceEnvelope {
    /// Trace id (1–64 ASCII-alphanumeric bytes) or `None` to mint one.
    pub trace_id: Option<String>,
    /// Span id in the *sender's* journal that this request should hang
    /// under — the receiver roots its `request` span with this parent so
    /// a multi-journal `trace report` can stitch the hop. Only
    /// meaningful (and only decoded) together with `trace_id`.
    pub parent_span: Option<u64>,
}

impl Request {
    /// Encodes the request as one JSON line (no trailing newline),
    /// with the [`PROTOCOL_VERSION`] envelope (`"v":1`) leading.
    pub fn encode(&self) -> String {
        self.encode_with_trace(None)
    }

    /// Encodes like [`Request::encode`], adding a `trace_id` envelope
    /// field when one is given. A server admits the request under that
    /// id instead of minting one, so a router (or any caller) can
    /// correlate its own spans with the backend's journal. Servers
    /// without trace support ignore the field (unknown request fields
    /// are always ignored).
    pub fn encode_with_trace(&self, trace_id: Option<&str>) -> String {
        self.encode_with_envelope(&TraceEnvelope {
            trace_id: trace_id.map(str::to_string),
            parent_span: None,
        })
    }

    /// Encodes like [`Request::encode_with_trace`], additionally writing
    /// the `parent_span` envelope field when the envelope carries one
    /// (routers use it to link the shard's `request` span under their
    /// own forward span). Pre-tracing servers ignore both fields.
    pub fn encode_with_envelope(&self, envelope: &TraceEnvelope) -> String {
        let mut value = match self {
            Request::Simulate(spec) => {
                let mut fields = vec![
                    ("type", json::s("simulate")),
                    ("workload", json::s(&spec.workload)),
                    ("len", Json::Uint(spec.len as u64)),
                    ("size", Json::Uint(spec.cache.size as u64)),
                    ("line", Json::Uint(spec.cache.line as u64)),
                ];
                if let Some(ways) = spec.cache.ways {
                    fields.push(("ways", Json::Uint(ways as u64)));
                }
                if let Some(purge) = spec.cache.purge {
                    fields.push(("purge", Json::Uint(purge)));
                }
                if let Some(seed) = spec.seed {
                    fields.push(("seed", Json::Uint(seed)));
                }
                if let Some(policy) = &spec.policy {
                    fields.push(("policy", json::s(policy)));
                }
                if let Some(ms) = spec.deadline_ms {
                    fields.push(("deadline_ms", Json::Uint(ms)));
                }
                json::obj(fields)
            }
            Request::Sweep(spec) => {
                let mut fields = vec![
                    ("type", json::s("sweep")),
                    ("workload", json::s(&spec.workload)),
                    ("len", Json::Uint(spec.len as u64)),
                    ("line", Json::Uint(spec.line as u64)),
                ];
                if !spec.sizes.is_empty() {
                    fields.push((
                        "sizes",
                        Json::Arr(spec.sizes.iter().map(|&s| Json::Uint(s as u64)).collect()),
                    ));
                }
                if !spec.ways.is_empty() {
                    fields.push((
                        "ways",
                        Json::Arr(spec.ways.iter().map(|&w| Json::Uint(w as u64)).collect()),
                    ));
                }
                if let Some(seed) = spec.seed {
                    fields.push(("seed", Json::Uint(seed)));
                }
                if let Some(policy) = &spec.policy {
                    fields.push(("policy", json::s(policy)));
                }
                if let Some(ms) = spec.deadline_ms {
                    fields.push(("deadline_ms", Json::Uint(ms)));
                }
                json::obj(fields)
            }
            Request::Catalog => json::obj(vec![("type", json::s("catalog"))]),
            Request::Stats => json::obj(vec![("type", json::s("stats"))]),
            Request::Metrics => json::obj(vec![("type", json::s("metrics"))]),
            Request::Ping => json::obj(vec![("type", json::s("ping"))]),
            Request::Shutdown => json::obj(vec![("type", json::s("shutdown"))]),
        };
        if let Json::Obj(fields) = &mut value {
            fields.insert(0, ("v".to_string(), Json::Uint(PROTOCOL_VERSION)));
            if let Some(id) = &envelope.trace_id {
                fields.insert(1, ("trace_id".to_string(), json::s(id)));
                if let Some(parent) = envelope.parent_span {
                    fields.insert(2, ("parent_span".to_string(), Json::Uint(parent)));
                }
            }
        }
        value.to_string()
    }

    /// Decodes one request line.
    ///
    /// # Errors
    ///
    /// Returns a typed [`ErrorBody`] (`bad_request`, `unknown_type`) the
    /// server sends back verbatim.
    pub fn decode(line: &str) -> Result<Request, ErrorBody> {
        Self::decode_with_trace(line).map(|(request, _trace)| request)
    }

    /// Decodes one request line plus its optional `trace_id` envelope
    /// field (see [`Request::encode_with_trace`]). Servers use this to
    /// admit forwarded requests under the caller's trace id. Ids longer
    /// than 64 bytes or with non-alphanumeric characters are ignored
    /// rather than rejected — a hostile id must not break journaling.
    ///
    /// # Errors
    ///
    /// Same as [`Request::decode`].
    pub fn decode_with_trace(line: &str) -> Result<(Request, Option<String>), ErrorBody> {
        Self::decode_with_envelope(line).map(|(request, envelope)| (request, envelope.trace_id))
    }

    /// Decodes one request line plus its full [`TraceEnvelope`]:
    /// `trace_id` (as in [`Request::decode_with_trace`]) and the
    /// optional `parent_span` id. `parent_span` is only honoured
    /// alongside a valid `trace_id`, and a non-numeric or zero value is
    /// ignored rather than rejected — hostile envelopes must not break
    /// request handling.
    ///
    /// # Errors
    ///
    /// Same as [`Request::decode`].
    pub fn decode_with_envelope(line: &str) -> Result<(Request, TraceEnvelope), ErrorBody> {
        let value = Json::parse(line)
            .map_err(|e| ErrorBody::new(ErrorCode::BadRequest, format!("invalid JSON: {e}")))?;
        if !matches!(value, Json::Obj(_)) {
            return Err(ErrorBody::new(
                ErrorCode::BadRequest,
                "request must be a JSON object",
            ));
        }
        // Version envelope: absent means a pre-versioning client and is
        // accepted; present must match. Unknown fields elsewhere are
        // ignored, so only an explicit mismatch is an error.
        match value.get("v") {
            None => {}
            Some(v) if v.as_u64() == Some(PROTOCOL_VERSION) => {}
            Some(v) => {
                return Err(ErrorBody::new(
                    ErrorCode::BadRequest,
                    format!("unsupported protocol version {v} (this server speaks v{PROTOCOL_VERSION})"),
                ));
            }
        }
        let kind = value
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| ErrorBody::new(ErrorCode::BadRequest, "missing \"type\" field"))?;
        let trace = value
            .get("trace_id")
            .and_then(Json::as_str)
            .filter(|id| {
                !id.is_empty() && id.len() <= 64 && id.chars().all(|c| c.is_ascii_alphanumeric())
            })
            .map(str::to_string);
        let parent_span = if trace.is_some() {
            value
                .get("parent_span")
                .and_then(Json::as_u64)
                .filter(|&span| span != 0)
        } else {
            None
        };
        let request = match kind {
            "simulate" => Request::Simulate(SimulateSpec::from_json(&value)?),
            "sweep" => Request::Sweep(SweepSpec::from_json(&value)?),
            "catalog" => Request::Catalog,
            "stats" => Request::Stats,
            "metrics" => Request::Metrics,
            "ping" => Request::Ping,
            "shutdown" => Request::Shutdown,
            other => {
                return Err(ErrorBody::new(
                    ErrorCode::UnknownType,
                    format!("unknown request type {other:?}"),
                ))
            }
        };
        Ok((
            request,
            TraceEnvelope {
                trace_id: trace,
                parent_span,
            },
        ))
    }
}

/// An optional string field, defaulting to empty when absent (used for
/// keys newer than the peer, e.g. `trace_id` from a pre-tracing server).
fn opt_str(value: &Json, key: &str) -> String {
    value
        .get(key)
        .and_then(Json::as_str)
        .unwrap_or("")
        .to_string()
}

fn field_usize(value: &Json, key: &str, default: usize) -> Result<usize, ErrorBody> {
    match value.get(key) {
        None => Ok(default),
        Some(v) => v.as_usize().ok_or_else(|| {
            ErrorBody::new(
                ErrorCode::BadRequest,
                format!("\"{key}\" must be a non-negative integer"),
            )
        }),
    }
}

fn field_opt_u64(value: &Json, key: &str) -> Result<Option<u64>, ErrorBody> {
    match value.get(key) {
        None => Ok(None),
        Some(v) => v.as_u64().map(Some).ok_or_else(|| {
            ErrorBody::new(
                ErrorCode::BadRequest,
                format!("\"{key}\" must be a non-negative integer"),
            )
        }),
    }
}

fn field_workload(value: &Json) -> Result<String, ErrorBody> {
    value
        .get("workload")
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| ErrorBody::new(ErrorCode::BadRequest, "missing \"workload\" string"))
}

impl SimulateSpec {
    fn from_json(value: &Json) -> Result<SimulateSpec, ErrorBody> {
        let size = field_usize(value, "size", 0)?;
        if size == 0 {
            return Err(ErrorBody::new(
                ErrorCode::BadRequest,
                "missing \"size\" (cache capacity in bytes)",
            ));
        }
        Ok(SimulateSpec {
            workload: field_workload(value)?,
            len: field_usize(value, "len", DEFAULT_TRACE_LEN)?,
            seed: field_opt_u64(value, "seed")?,
            cache: CacheSpec {
                size,
                line: field_usize(value, "line", DEFAULT_LINE_BYTES)?,
                ways: match value.get("ways") {
                    None => None,
                    Some(Json::Str(s)) if s == "full" => None,
                    Some(v) => Some(v.as_usize().ok_or_else(|| {
                        ErrorBody::new(
                            ErrorCode::BadRequest,
                            "\"ways\" must be an integer or \"full\"",
                        )
                    })?),
                },
                purge: field_opt_u64(value, "purge")?,
            },
            policy: field_opt_policy(value)?,
            deadline_ms: field_opt_u64(value, "deadline_ms")?,
        })
    }
}

/// The optional `"policy"` string; `None` from pre-policy clients.
fn field_opt_policy(value: &Json) -> Result<Option<String>, ErrorBody> {
    match value.get("policy") {
        None => Ok(None),
        Some(v) => v.as_str().map(|s| Some(s.to_string())).ok_or_else(|| {
            ErrorBody::new(ErrorCode::BadRequest, "\"policy\" must be a string")
        }),
    }
}

/// An optional array of non-negative integers, empty when absent.
fn field_usize_array(value: &Json, key: &str) -> Result<Vec<usize>, ErrorBody> {
    match value.get(key) {
        None => Ok(Vec::new()),
        Some(v) => v
            .as_arr()
            .ok_or_else(|| {
                ErrorBody::new(ErrorCode::BadRequest, format!("\"{key}\" must be an array"))
            })?
            .iter()
            .map(|item| {
                item.as_usize().ok_or_else(|| {
                    ErrorBody::new(
                        ErrorCode::BadRequest,
                        format!("\"{key}\" entries must be non-negative integers"),
                    )
                })
            })
            .collect(),
    }
}

impl SweepSpec {
    fn from_json(value: &Json) -> Result<SweepSpec, ErrorBody> {
        Ok(SweepSpec {
            workload: field_workload(value)?,
            len: field_usize(value, "len", DEFAULT_TRACE_LEN)?,
            seed: field_opt_u64(value, "seed")?,
            sizes: field_usize_array(value, "sizes")?,
            ways: field_usize_array(value, "ways")?,
            line: field_usize(value, "line", DEFAULT_LINE_BYTES)?,
            policy: field_opt_policy(value)?,
            deadline_ms: field_opt_u64(value, "deadline_ms")?,
        })
    }
}

impl Response {
    /// Encodes the response as one JSON line (no trailing newline).
    pub fn encode(&self) -> String {
        let value = match self {
            Response::Simulate(r) => json::obj(vec![
                ("type", json::s("simulate_result")),
                ("workload", json::s(&r.workload)),
                ("len", Json::Uint(r.len as u64)),
                ("cache_bytes", Json::Uint(r.cache_bytes as u64)),
                ("refs", Json::Uint(r.refs)),
                ("misses", Json::Uint(r.misses)),
                ("miss_ratio", Json::Num(r.miss_ratio)),
                ("instruction_miss_ratio", Json::Num(r.instruction_miss_ratio)),
                ("data_miss_ratio", Json::Num(r.data_miss_ratio)),
                ("traffic_bytes", Json::Uint(r.traffic_bytes)),
                ("queue_ms", Json::Uint(r.queue_ms)),
                ("exec_ms", Json::Uint(r.exec_ms)),
                ("trace_id", json::s(&r.trace_id)),
            ]),
            Response::Sweep(r) => json::obj(vec![
                ("type", json::s("sweep_result")),
                ("workload", json::s(&r.workload)),
                ("len", Json::Uint(r.len as u64)),
                (
                    "points",
                    Json::Arr(
                        r.points
                            .iter()
                            .map(|p| {
                                let mut fields = vec![
                                    ("size", Json::Uint(p.size as u64)),
                                    ("miss_ratio", Json::Num(p.miss_ratio)),
                                ];
                                if let Some(w) = p.ways {
                                    fields.push(("ways", Json::Uint(w as u64)));
                                }
                                if let Some(t) = p.traffic_ratio {
                                    fields.push(("traffic_ratio", Json::Num(t)));
                                }
                                if let Some(d) = p.dirty_push_fraction {
                                    fields.push(("dirty_push_fraction", Json::Num(d)));
                                }
                                json::obj(fields)
                            })
                            .collect(),
                    ),
                ),
                ("queue_ms", Json::Uint(r.queue_ms)),
                ("exec_ms", Json::Uint(r.exec_ms)),
                ("trace_id", json::s(&r.trace_id)),
            ]),
            Response::Catalog(r) => json::obj(vec![
                ("type", json::s("catalog_result")),
                (
                    "profiles",
                    Json::Arr(
                        r.profiles
                            .iter()
                            .map(|e| {
                                json::obj(vec![
                                    ("name", json::s(&e.name)),
                                    ("group", json::s(&e.group)),
                                    ("arch", json::s(&e.arch)),
                                    ("language", json::s(&e.language)),
                                    ("family", json::s(&e.family)),
                                ])
                            })
                            .collect(),
                    ),
                ),
                (
                    "mixes",
                    Json::Arr(r.mixes.iter().map(json::s).collect()),
                ),
            ]),
            Response::Stats(r) => json::obj(vec![
                ("type", json::s("stats_result")),
                (
                    "requests",
                    json::obj(vec![
                        ("simulate", Json::Uint(r.simulate_requests)),
                        ("sweep", Json::Uint(r.sweep_requests)),
                        ("catalog", Json::Uint(r.catalog_requests)),
                        ("stats", Json::Uint(r.stats_requests)),
                    ]),
                ),
                ("completed", Json::Uint(r.completed)),
                ("rejected_overload", Json::Uint(r.rejected_overload)),
                ("protocol_errors", Json::Uint(r.protocol_errors)),
                ("deadline_misses", Json::Uint(r.deadline_misses)),
                (
                    "queue",
                    json::obj(vec![
                        ("depth", Json::Uint(r.queue_depth as u64)),
                        ("high_water", Json::Uint(r.queue_high_water as u64)),
                    ]),
                ),
                ("workers", Json::Uint(r.workers as u64)),
                (
                    "busy_ms",
                    json::obj(vec![
                        ("simulate", Json::Uint(r.busy_ms_simulate)),
                        ("sweep", Json::Uint(r.busy_ms_sweep)),
                    ]),
                ),
                (
                    "pool",
                    json::obj(vec![
                        ("entries", Json::Uint(r.pool.entries as u64)),
                        ("hits", Json::Uint(r.pool.hits)),
                        ("misses", Json::Uint(r.pool.misses)),
                        ("materialized_bytes", Json::Uint(r.pool.materialized_bytes)),
                        ("resident_bytes", Json::Uint(r.pool.resident_bytes)),
                    ]),
                ),
            ]
            .into_iter()
            .chain(r.store.as_ref().map(|s| {
                (
                    "store",
                    json::obj(vec![
                        ("entries", Json::Uint(s.entries)),
                        ("bytes", Json::Uint(s.bytes)),
                        ("hits", Json::Uint(s.hits)),
                        ("misses", Json::Uint(s.misses)),
                        ("writes", Json::Uint(s.writes)),
                        ("corrupt_quarantined", Json::Uint(s.corrupt_quarantined)),
                        ("gc_evictions", Json::Uint(s.gc_evictions)),
                    ]),
                )
            }))
            .chain(r.one_pass.as_ref().map(|o| {
                (
                    "one_pass",
                    json::obj(vec![
                        ("refs", Json::Uint(o.refs)),
                        ("grid_cells", Json::Uint(o.grid_cells)),
                    ]),
                )
            }))
            .chain(r.router.as_ref().map(|rt| {
                (
                    "router",
                    json::obj(vec![
                        ("shards", Json::Uint(rt.shards)),
                        ("healthy", Json::Uint(rt.healthy)),
                        ("forwarded", Json::Uint(rt.forwarded)),
                        ("hedged", Json::Uint(rt.hedged)),
                        ("shard_overloads", Json::Uint(rt.shard_overloads)),
                        ("health_probes", Json::Uint(rt.health_probes)),
                        ("federated_shards", Json::Uint(rt.federated_shards)),
                        ("stale_shards", Json::Uint(rt.stale_shards)),
                    ]),
                )
            }))
            .collect()),
            Response::Metrics(snapshot) => {
                // Sorted label pairs render as a `"labels"` object,
                // omitted when empty so pre-label payloads are
                // byte-identical to what old servers sent.
                let labels_field = |labels: &[(String, String)]| -> Option<(String, Json)> {
                    if labels.is_empty() {
                        return None;
                    }
                    Some((
                        "labels".to_string(),
                        Json::Obj(
                            labels
                                .iter()
                                .map(|(k, v)| (k.clone(), json::s(v)))
                                .collect(),
                        ),
                    ))
                };
                json::obj(vec![
                    ("type", json::s("metrics_result")),
                    (
                        "counters",
                        Json::Arr(
                            snapshot
                                .counters
                                .iter()
                                .map(|c| {
                                    let mut fields = vec![
                                        ("name".to_string(), json::s(&c.name)),
                                        ("value".to_string(), Json::Uint(c.value)),
                                    ];
                                    fields.extend(labels_field(&c.labels));
                                    Json::Obj(fields)
                                })
                                .collect(),
                        ),
                    ),
                    (
                        "gauges",
                        Json::Arr(
                            snapshot
                                .gauges
                                .iter()
                                .map(|g| {
                                    let mut fields = vec![
                                        ("name".to_string(), json::s(&g.name)),
                                        ("value".to_string(), Json::Num(g.value)),
                                    ];
                                    fields.extend(labels_field(&g.labels));
                                    Json::Obj(fields)
                                })
                                .collect(),
                        ),
                    ),
                    (
                        "histograms",
                        Json::Arr(
                            snapshot
                                .histograms
                                .iter()
                                .map(|h| {
                                    let mut fields = vec![
                                        ("name".to_string(), json::s(&h.name)),
                                        ("count".to_string(), Json::Uint(h.count)),
                                        ("sum".to_string(), Json::Num(h.sum)),
                                        ("overflow".to_string(), Json::Uint(h.overflow)),
                                        ("p50".to_string(), Json::Num(h.p50)),
                                        ("p95".to_string(), Json::Num(h.p95)),
                                        ("p99".to_string(), Json::Num(h.p99)),
                                        (
                                            "buckets".to_string(),
                                            Json::Arr(
                                                h.buckets
                                                    .iter()
                                                    .map(|b| {
                                                        json::obj(vec![
                                                            ("le", Json::Num(b.le)),
                                                            ("count", Json::Uint(b.count)),
                                                        ])
                                                    })
                                                    .collect(),
                                            ),
                                        ),
                                    ];
                                    fields.extend(labels_field(&h.labels));
                                    Json::Obj(fields)
                                })
                                .collect(),
                        ),
                    ),
                ])
            }
            Response::Pong => json::obj(vec![("type", json::s("pong"))]),
            Response::Ok => json::obj(vec![("type", json::s("ok"))]),
            Response::Error(e) => json::obj(vec![
                ("type", json::s("error")),
                ("code", json::s(e.code.as_str())),
                ("message", json::s(&e.message)),
            ]),
        };
        value.to_string()
    }

    /// Decodes one response line (the client side).
    ///
    /// # Errors
    ///
    /// Returns a description of what failed to parse.
    pub fn decode(line: &str) -> Result<Response, String> {
        let value = Json::parse(line).map_err(|e| format!("invalid JSON response: {e}"))?;
        let kind = value
            .get("type")
            .and_then(Json::as_str)
            .ok_or("response missing \"type\"")?;
        let need_u64 = |v: &Json, key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("response missing numeric \"{key}\""))
        };
        let need_f64 = |v: &Json, key: &str| -> Result<f64, String> {
            v.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("response missing numeric \"{key}\""))
        };
        let need_str = |v: &Json, key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("response missing string \"{key}\""))
        };
        match kind {
            "simulate_result" => Ok(Response::Simulate(SimulateResult {
                workload: need_str(&value, "workload")?,
                len: need_u64(&value, "len")? as usize,
                cache_bytes: need_u64(&value, "cache_bytes")? as usize,
                refs: need_u64(&value, "refs")?,
                misses: need_u64(&value, "misses")?,
                miss_ratio: need_f64(&value, "miss_ratio")?,
                instruction_miss_ratio: need_f64(&value, "instruction_miss_ratio")?,
                data_miss_ratio: need_f64(&value, "data_miss_ratio")?,
                traffic_bytes: need_u64(&value, "traffic_bytes")?,
                queue_ms: need_u64(&value, "queue_ms")?,
                exec_ms: need_u64(&value, "exec_ms")?,
                // Optional for compatibility with pre-tracing servers.
                trace_id: opt_str(&value, "trace_id"),
            })),
            "sweep_result" => {
                let points = value
                    .get("points")
                    .and_then(Json::as_arr)
                    .ok_or("sweep_result missing \"points\"")?
                    .iter()
                    .map(|p| {
                        Ok(SweepPoint {
                            size: need_u64(p, "size")? as usize,
                            miss_ratio: need_f64(p, "miss_ratio")?,
                            // Optional: absent from legacy points and
                            // pre-grid servers.
                            ways: p.get("ways").and_then(Json::as_u64).map(|w| w as usize),
                            traffic_ratio: p.get("traffic_ratio").and_then(Json::as_f64),
                            dirty_push_fraction: p
                                .get("dirty_push_fraction")
                                .and_then(Json::as_f64),
                        })
                    })
                    .collect::<Result<_, String>>()?;
                Ok(Response::Sweep(SweepResult {
                    workload: need_str(&value, "workload")?,
                    len: need_u64(&value, "len")? as usize,
                    points,
                    queue_ms: need_u64(&value, "queue_ms")?,
                    exec_ms: need_u64(&value, "exec_ms")?,
                    trace_id: opt_str(&value, "trace_id"),
                }))
            }
            "catalog_result" => {
                let profiles = value
                    .get("profiles")
                    .and_then(Json::as_arr)
                    .ok_or("catalog_result missing \"profiles\"")?
                    .iter()
                    .map(|e| {
                        Ok(CatalogEntry {
                            name: need_str(e, "name")?,
                            group: need_str(e, "group")?,
                            arch: need_str(e, "arch")?,
                            language: need_str(e, "language")?,
                            // Optional: pre-family servers only list
                            // CPU profiles.
                            family: match e.get("family").and_then(Json::as_str) {
                                Some(f) => f.to_string(),
                                None => "cpu".to_string(),
                            },
                        })
                    })
                    .collect::<Result<_, String>>()?;
                let mixes = value
                    .get("mixes")
                    .and_then(Json::as_arr)
                    .ok_or("catalog_result missing \"mixes\"")?
                    .iter()
                    .map(|m| m.as_str().map(str::to_string).ok_or("mix must be a string"))
                    .collect::<Result<_, _>>()?;
                Ok(Response::Catalog(CatalogResult { profiles, mixes }))
            }
            "stats_result" => {
                let requests = value.get("requests").ok_or("stats_result missing \"requests\"")?;
                let queue = value.get("queue").ok_or("stats_result missing \"queue\"")?;
                let busy = value.get("busy_ms").ok_or("stats_result missing \"busy_ms\"")?;
                let pool = value.get("pool").ok_or("stats_result missing \"pool\"")?;
                Ok(Response::Stats(StatsResult {
                    simulate_requests: need_u64(requests, "simulate")?,
                    sweep_requests: need_u64(requests, "sweep")?,
                    catalog_requests: need_u64(requests, "catalog")?,
                    stats_requests: need_u64(requests, "stats")?,
                    completed: need_u64(&value, "completed")?,
                    rejected_overload: need_u64(&value, "rejected_overload")?,
                    protocol_errors: need_u64(&value, "protocol_errors")?,
                    deadline_misses: need_u64(&value, "deadline_misses")?,
                    queue_depth: need_u64(queue, "depth")? as usize,
                    queue_high_water: need_u64(queue, "high_water")? as usize,
                    workers: need_u64(&value, "workers")? as usize,
                    busy_ms_simulate: need_u64(busy, "simulate")?,
                    busy_ms_sweep: need_u64(busy, "sweep")?,
                    pool: PoolCounters {
                        entries: need_u64(pool, "entries")? as usize,
                        hits: need_u64(pool, "hits")?,
                        misses: need_u64(pool, "misses")?,
                        materialized_bytes: need_u64(pool, "materialized_bytes")?,
                        resident_bytes: need_u64(pool, "resident_bytes")?,
                    },
                    // Optional: absent from store-less and pre-store
                    // servers.
                    store: match value.get("store") {
                        Some(store) => Some(StoreCounters {
                            entries: need_u64(store, "entries")?,
                            bytes: need_u64(store, "bytes")?,
                            hits: need_u64(store, "hits")?,
                            misses: need_u64(store, "misses")?,
                            writes: need_u64(store, "writes")?,
                            corrupt_quarantined: need_u64(store, "corrupt_quarantined")?,
                            gc_evictions: need_u64(store, "gc_evictions")?,
                        }),
                        None => None,
                    },
                    // Optional: absent from pre-grid servers.
                    one_pass: match value.get("one_pass") {
                        Some(one_pass) => Some(OnePassCounters {
                            refs: need_u64(one_pass, "refs")?,
                            grid_cells: need_u64(one_pass, "grid_cells")?,
                        }),
                        None => None,
                    },
                    // Optional: only router nodes report this block.
                    router: match value.get("router") {
                        Some(router) => Some(RouterCounters {
                            shards: need_u64(router, "shards")?,
                            healthy: need_u64(router, "healthy")?,
                            forwarded: need_u64(router, "forwarded")?,
                            hedged: need_u64(router, "hedged")?,
                            shard_overloads: need_u64(router, "shard_overloads")?,
                            health_probes: need_u64(router, "health_probes")?,
                            // Optional: absent from pre-federation routers.
                            federated_shards: router
                                .get("federated_shards")
                                .and_then(Json::as_u64)
                                .unwrap_or(0),
                            stale_shards: router
                                .get("stale_shards")
                                .and_then(Json::as_u64)
                                .unwrap_or(0),
                        }),
                        None => None,
                    },
                }))
            }
            "metrics_result" => {
                // Optional per-series label object; absent from
                // pre-label servers and unlabeled series alike.
                let opt_labels = |entry: &Json| -> Vec<(String, String)> {
                    let mut labels: Vec<(String, String)> = match entry.get("labels") {
                        Some(Json::Obj(fields)) => fields
                            .iter()
                            .filter_map(|(k, v)| {
                                v.as_str().map(|v| (k.clone(), v.to_string()))
                            })
                            .collect(),
                        _ => Vec::new(),
                    };
                    labels.sort();
                    labels
                };
                let counters = value
                    .get("counters")
                    .and_then(Json::as_arr)
                    .ok_or("metrics_result missing \"counters\"")?
                    .iter()
                    .map(|c| {
                        Ok(CounterSnapshot {
                            name: need_str(c, "name")?,
                            labels: opt_labels(c),
                            value: need_u64(c, "value")?,
                        })
                    })
                    .collect::<Result<_, String>>()?;
                let gauges = value
                    .get("gauges")
                    .and_then(Json::as_arr)
                    .ok_or("metrics_result missing \"gauges\"")?
                    .iter()
                    .map(|g| {
                        Ok(GaugeSnapshot {
                            name: need_str(g, "name")?,
                            labels: opt_labels(g),
                            value: need_f64(g, "value")?,
                        })
                    })
                    .collect::<Result<_, String>>()?;
                let histograms = value
                    .get("histograms")
                    .and_then(Json::as_arr)
                    .ok_or("metrics_result missing \"histograms\"")?
                    .iter()
                    .map(|h| {
                        let buckets = h
                            .get("buckets")
                            .and_then(Json::as_arr)
                            .ok_or("histogram missing \"buckets\"")?
                            .iter()
                            .map(|b| {
                                Ok(BucketSnapshot {
                                    le: need_f64(b, "le")?,
                                    count: need_u64(b, "count")?,
                                })
                            })
                            .collect::<Result<_, String>>()?;
                        Ok(HistogramSnapshot {
                            name: need_str(h, "name")?,
                            labels: opt_labels(h),
                            count: need_u64(h, "count")?,
                            sum: need_f64(h, "sum")?,
                            overflow: need_u64(h, "overflow")?,
                            p50: need_f64(h, "p50")?,
                            p95: need_f64(h, "p95")?,
                            p99: need_f64(h, "p99")?,
                            buckets,
                        })
                    })
                    .collect::<Result<_, String>>()?;
                Ok(Response::Metrics(RegistrySnapshot {
                    counters,
                    gauges,
                    histograms,
                }))
            }
            "pong" => Ok(Response::Pong),
            "ok" => Ok(Response::Ok),
            "error" => {
                let code_text = need_str(&value, "code")?;
                let code = ErrorCode::parse(&code_text)
                    .ok_or_else(|| format!("unknown error code {code_text:?}"))?;
                Ok(Response::Error(ErrorBody {
                    code,
                    message: need_str(&value, "message")?,
                }))
            }
            other => Err(format!("unknown response type {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request_round_trip(request: Request) {
        let line = request.encode();
        assert!(!line.contains('\n'), "encoded request must be one line");
        assert_eq!(Request::decode(&line).unwrap(), request, "{line}");
    }

    fn response_round_trip(response: Response) {
        let line = response.encode();
        assert!(!line.contains('\n'), "encoded response must be one line");
        assert_eq!(Response::decode(&line).unwrap(), response, "{line}");
    }

    #[test]
    fn every_request_variant_round_trips() {
        request_round_trip(Request::Catalog);
        request_round_trip(Request::Stats);
        request_round_trip(Request::Metrics);
        request_round_trip(Request::Ping);
        request_round_trip(Request::Shutdown);
        request_round_trip(Request::Simulate(SimulateSpec {
            workload: "VCCOM".into(),
            len: 25_000,
            seed: Some(u64::MAX),
            cache: CacheSpec {
                size: 16 * 1024,
                line: 32,
                ways: Some(4),
                purge: Some(20_000),
            },
            policy: Some("plru".into()),
            deadline_ms: Some(1_500),
        }));
        request_round_trip(Request::Simulate(SimulateSpec {
            workload: "Z8000 - Assorted".into(),
            len: DEFAULT_TRACE_LEN,
            seed: None,
            cache: CacheSpec {
                size: 1024,
                line: DEFAULT_LINE_BYTES,
                ways: None,
                purge: None,
            },
            policy: None,
            deadline_ms: None,
        }));
        request_round_trip(Request::Sweep(SweepSpec {
            workload: "ZGREP".into(),
            len: 5_000,
            seed: Some(7),
            sizes: vec![256, 1024, 65_536],
            ways: Vec::new(),
            line: 16,
            policy: None,
            deadline_ms: Some(100),
        }));
        request_round_trip(Request::Sweep(SweepSpec {
            workload: "MVS1".into(),
            len: DEFAULT_TRACE_LEN,
            seed: None,
            sizes: Vec::new(),
            ways: Vec::new(),
            line: DEFAULT_LINE_BYTES,
            policy: None,
            deadline_ms: None,
        }));
        // A grid sweep: ways crossed with sizes.
        request_round_trip(Request::Sweep(SweepSpec {
            workload: "VCCOM".into(),
            len: 50_000,
            seed: None,
            sizes: vec![1024, 16_384],
            ways: vec![1, 2, 4, 8],
            line: 16,
            policy: Some("random:85".into()),
            deadline_ms: None,
        }));
    }

    #[test]
    fn every_response_variant_round_trips() {
        response_round_trip(Response::Pong);
        response_round_trip(Response::Ok);
        response_round_trip(Response::Simulate(SimulateResult {
            workload: "VCCOM".into(),
            len: 25_000,
            cache_bytes: 16 * 1024,
            refs: 25_000,
            misses: 1_234,
            miss_ratio: 0.049_36,
            instruction_miss_ratio: 1.0 / 3.0,
            data_miss_ratio: 2.5e-7,
            traffic_bytes: 197_440,
            queue_ms: 3,
            exec_ms: 12,
            trace_id: "4f3a2b1c9d8e7f60".into(),
        }));
        response_round_trip(Response::Sweep(SweepResult {
            workload: "ZGREP".into(),
            len: 5_000,
            points: vec![
                SweepPoint {
                    size: 256,
                    miss_ratio: 0.25,
                    ways: None,
                    traffic_ratio: None,
                    dirty_push_fraction: None,
                },
                SweepPoint {
                    size: 65_536,
                    miss_ratio: 0.001_953_125,
                    ways: None,
                    traffic_ratio: None,
                    dirty_push_fraction: None,
                },
                // A grid-sweep cell with the extended fields.
                SweepPoint {
                    size: 65_536,
                    miss_ratio: 0.001_220_703_125,
                    ways: Some(4),
                    traffic_ratio: Some(0.312_5),
                    dirty_push_fraction: Some(1.0 / 3.0),
                },
            ],
            queue_ms: 0,
            exec_ms: 4,
            trace_id: "00ff00ff00ff00ff".into(),
        }));
        response_round_trip(Response::Catalog(CatalogResult {
            profiles: vec![
                CatalogEntry {
                    name: "VCCOM".into(),
                    group: "VAX".into(),
                    arch: "VAX".into(),
                    language: "C".into(),
                    family: "cpu".into(),
                },
                CatalogEntry {
                    name: "S-KVSTORE".into(),
                    group: "Storage I/O".into(),
                    arch: "-".into(),
                    language: "-".into(),
                    family: "storage".into(),
                },
            ],
            mixes: vec!["Z8000 - Assorted".into()],
        }));
        response_round_trip(Response::Stats(StatsResult {
            simulate_requests: 10,
            sweep_requests: 2,
            catalog_requests: 1,
            stats_requests: 5,
            completed: 11,
            rejected_overload: 3,
            protocol_errors: 4,
            deadline_misses: 1,
            queue_depth: 2,
            queue_high_water: 9,
            workers: 4,
            busy_ms_simulate: 812,
            busy_ms_sweep: 44,
            pool: PoolCounters {
                entries: 6,
                hits: 9,
                misses: 6,
                materialized_bytes: 1 << 24,
                resident_bytes: 1 << 22,
            },
            store: None,
            one_pass: None,
            router: None,
        }));
        // And again with store counters attached (the `--store` shape).
        response_round_trip(Response::Stats(StatsResult {
            simulate_requests: 1,
            sweep_requests: 0,
            catalog_requests: 0,
            stats_requests: 1,
            completed: 1,
            rejected_overload: 0,
            protocol_errors: 0,
            deadline_misses: 0,
            queue_depth: 0,
            queue_high_water: 1,
            workers: 2,
            busy_ms_simulate: 5,
            busy_ms_sweep: 0,
            pool: PoolCounters {
                entries: 1,
                hits: 0,
                misses: 1,
                materialized_bytes: 4096,
                resident_bytes: 4096,
            },
            store: Some(StoreCounters {
                entries: 3,
                bytes: 123_456,
                hits: 7,
                misses: 2,
                writes: 3,
                corrupt_quarantined: 1,
                gc_evictions: 4,
            }),
            one_pass: Some(OnePassCounters {
                refs: 250_000,
                grid_cells: 54,
            }),
            router: Some(RouterCounters {
                shards: 3,
                healthy: 2,
                forwarded: 120,
                hedged: 4,
                shard_overloads: 7,
                health_probes: 90,
                federated_shards: 6,
                stale_shards: 1,
            }),
        }));
        for code in [
            ErrorCode::Overloaded,
            ErrorCode::BadRequest,
            ErrorCode::UnknownType,
            ErrorCode::UnknownWorkload,
            ErrorCode::DeadlineExceeded,
            ErrorCode::Oversized,
            ErrorCode::ShuttingDown,
            ErrorCode::Internal,
        ] {
            response_round_trip(Response::Error(ErrorBody::new(
                code,
                format!("detail for {code}"),
            )));
        }
    }

    #[test]
    fn metrics_response_round_trips() {
        response_round_trip(Response::Metrics(RegistrySnapshot::default()));
        response_round_trip(Response::Metrics(RegistrySnapshot {
            counters: vec![CounterSnapshot {
                name: "pool_hits_total".into(),
                labels: Vec::new(),
                value: 42,
            }],
            gauges: vec![GaugeSnapshot {
                name: "serve_queue_depth".into(),
                labels: Vec::new(),
                value: 3.0,
            }],
            histograms: vec![HistogramSnapshot {
                name: "sweep_job_ms".into(),
                labels: Vec::new(),
                count: 7,
                sum: 123.5,
                overflow: 1,
                p50: 4.0,
                p95: 16.0,
                p99: 64.0,
                buckets: vec![
                    BucketSnapshot { le: 0.25, count: 2 },
                    BucketSnapshot { le: 1.0, count: 4 },
                ],
            }],
        }));
    }

    #[test]
    fn labeled_metrics_round_trip_and_pre_label_payloads_decode() {
        let labels = vec![("shard".to_string(), "127.0.0.1:4090".to_string())];
        response_round_trip(Response::Metrics(RegistrySnapshot {
            counters: vec![CounterSnapshot {
                name: "router_forwarded_total".into(),
                labels: labels.clone(),
                value: 9,
            }],
            gauges: vec![GaugeSnapshot {
                name: "router_shard_up".into(),
                labels: labels.clone(),
                value: 1.0,
            }],
            histograms: vec![HistogramSnapshot {
                name: "request_ms".into(),
                labels,
                count: 1,
                sum: 0.5,
                overflow: 0,
                p50: 1.0,
                p95: 1.0,
                p99: 1.0,
                buckets: vec![BucketSnapshot { le: 1.0, count: 1 }],
            }],
        }));
        // A pre-label server's payload (no "labels" keys) decodes to
        // empty label sets, and an unlabeled series encodes without the
        // key at all.
        let line = "{\"type\":\"metrics_result\",\
                    \"counters\":[{\"name\":\"c\",\"value\":1}],\
                    \"gauges\":[],\"histograms\":[]}";
        match Response::decode(line).unwrap() {
            Response::Metrics(snapshot) => {
                assert_eq!(snapshot.counters[0].labels, Vec::new());
            }
            other => panic!("wrong variant: {other:?}"),
        }
        let unlabeled = Response::Metrics(RegistrySnapshot {
            counters: vec![CounterSnapshot {
                name: "c".into(),
                labels: Vec::new(),
                value: 1,
            }],
            gauges: Vec::new(),
            histograms: Vec::new(),
        });
        assert!(!unlabeled.encode().contains("labels"));
    }

    #[test]
    fn parent_span_rides_the_envelope_and_filters_junk() {
        let line = Request::Ping.encode_with_envelope(&TraceEnvelope {
            trace_id: Some("4f3a2b1c9d8e7f60".into()),
            parent_span: Some(17),
        });
        let (request, envelope) = Request::decode_with_envelope(&line).unwrap();
        assert_eq!(request, Request::Ping);
        assert_eq!(envelope.trace_id.as_deref(), Some("4f3a2b1c9d8e7f60"));
        assert_eq!(envelope.parent_span, Some(17));
        // No trace id → the parent is meaningless and dropped.
        let (_, envelope) =
            Request::decode_with_envelope("{\"type\":\"ping\",\"parent_span\":17}").unwrap();
        assert_eq!(envelope, TraceEnvelope::default());
        // Zero and non-numeric parents are ignored, never fatal.
        for junk in ["0", "\"seventeen\"", "-3", "{}"] {
            let line = format!(
                "{{\"type\":\"ping\",\"trace_id\":\"abc\",\"parent_span\":{junk}}}"
            );
            let (request, envelope) = Request::decode_with_envelope(&line).unwrap();
            assert_eq!(request, Request::Ping);
            assert_eq!(envelope.trace_id.as_deref(), Some("abc"));
            assert_eq!(envelope.parent_span, None, "parent {junk} must be ignored");
        }
        // A parent without a trace id is never encoded.
        let line = Request::Ping.encode_with_envelope(&TraceEnvelope {
            trace_id: None,
            parent_span: Some(17),
        });
        assert!(!line.contains("parent_span"));
        // v-less clients are untouched: plain encode has neither field.
        assert!(!Request::Ping.encode().contains("trace_id"));
    }

    #[test]
    fn version_envelope_is_optional_but_checked() {
        // Every encoded request carries the envelope.
        assert!(Request::Ping.encode().starts_with("{\"v\":1,"));
        // A v-less request (pre-versioning client) still decodes.
        assert_eq!(Request::decode("{\"type\":\"ping\"}").unwrap(), Request::Ping);
        // The current version decodes.
        assert_eq!(
            Request::decode("{\"v\":1,\"type\":\"ping\"}").unwrap(),
            Request::Ping
        );
        // A future version is a typed bad_request, not a parse panic.
        let future = Request::decode("{\"v\":2,\"type\":\"ping\"}").unwrap_err();
        assert_eq!(future.code, ErrorCode::BadRequest);
        assert!(future.message.contains("protocol version"), "{future}");
        let junk = Request::decode("{\"v\":\"one\",\"type\":\"ping\"}").unwrap_err();
        assert_eq!(junk.code, ErrorCode::BadRequest);
    }

    #[test]
    fn unknown_request_fields_are_ignored() {
        let parsed = Request::decode(
            "{\"type\":\"simulate\",\"workload\":\"VCCOM\",\"size\":1024,\"future_knob\":true}",
        )
        .unwrap();
        match parsed {
            Request::Simulate(spec) => {
                assert_eq!(spec.workload, "VCCOM");
                assert_eq!(spec.cache.size, 1024);
            }
            other => panic!("wrong variant: {other:?}"),
        }
        assert_eq!(
            Request::decode("{\"type\":\"stats\",\"extra\":[1,2,3]}").unwrap(),
            Request::Stats
        );
    }

    #[test]
    fn request_trace_envelope_round_trips_and_filters_junk() {
        let request = Request::Simulate(SimulateSpec {
            workload: "VCCOM".into(),
            len: 1_000,
            seed: None,
            cache: CacheSpec {
                size: 4_096,
                line: 16,
                ways: None,
                purge: None,
            },
            policy: None,
            deadline_ms: None,
        });
        let line = request.encode_with_trace(Some("4f3a2b1c9d8e7f60"));
        let (decoded, trace) = Request::decode_with_trace(&line).unwrap();
        assert_eq!(decoded, request);
        assert_eq!(trace.as_deref(), Some("4f3a2b1c9d8e7f60"));
        // Plain encode carries no trace and decodes to None.
        let (_, trace) = Request::decode_with_trace(&request.encode()).unwrap();
        assert_eq!(trace, None);
        // Hostile ids (too long, non-alphanumeric) are dropped, not fatal.
        let long = "a".repeat(65);
        for bad in [long.as_str(), "abc def", "x\"y", ""] {
            let line = format!(
                "{{\"type\":\"ping\",\"trace_id\":{}}}",
                crate::json::s(bad)
            );
            let (request, trace) = Request::decode_with_trace(&line).unwrap();
            assert_eq!(request, Request::Ping);
            assert_eq!(trace, None, "id {bad:?} must be ignored");
        }
    }

    #[test]
    fn result_without_trace_id_still_decodes() {
        // A pre-tracing server's result line carries no trace_id key.
        let line = "{\"type\":\"simulate_result\",\"workload\":\"W\",\"len\":1,\
                    \"cache_bytes\":1,\"refs\":1,\"misses\":0,\"miss_ratio\":0,\
                    \"instruction_miss_ratio\":0,\"data_miss_ratio\":0,\
                    \"traffic_bytes\":0,\"queue_ms\":0,\"exec_ms\":0}";
        match Response::decode(line).unwrap() {
            Response::Simulate(r) => assert_eq!(r.trace_id, ""),
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn miss_ratios_survive_the_wire_bit_identically() {
        let ratio = 1.0f64 / 7.0;
        let encoded = Response::Simulate(SimulateResult {
            workload: "W".into(),
            len: 1,
            cache_bytes: 1,
            refs: 1,
            misses: 1,
            miss_ratio: ratio,
            instruction_miss_ratio: ratio / 3.0,
            data_miss_ratio: ratio / 5.0,
            traffic_bytes: 0,
            queue_ms: 0,
            exec_ms: 0,
            trace_id: String::new(),
        })
        .encode();
        match Response::decode(&encoded).unwrap() {
            Response::Simulate(r) => {
                assert_eq!(r.miss_ratio.to_bits(), ratio.to_bits());
                assert_eq!(r.instruction_miss_ratio.to_bits(), (ratio / 3.0).to_bits());
                assert_eq!(r.data_miss_ratio.to_bits(), (ratio / 5.0).to_bits());
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn decode_rejects_malformed_requests_with_typed_errors() {
        let bad = Request::decode("{\"type\":\"simulate\"").unwrap_err();
        assert_eq!(bad.code, ErrorCode::BadRequest);
        let unknown = Request::decode("{\"type\":\"frobnicate\"}").unwrap_err();
        assert_eq!(unknown.code, ErrorCode::UnknownType);
        let no_type = Request::decode("{\"workload\":\"VCCOM\"}").unwrap_err();
        assert_eq!(no_type.code, ErrorCode::BadRequest);
        let no_size = Request::decode("{\"type\":\"simulate\",\"workload\":\"VCCOM\"}")
            .unwrap_err();
        assert_eq!(no_size.code, ErrorCode::BadRequest);
        assert!(no_size.message.contains("size"), "{no_size}");
        let not_object = Request::decode("[1,2,3]").unwrap_err();
        assert_eq!(not_object.code, ErrorCode::BadRequest);
        let bad_ways =
            Request::decode("{\"type\":\"simulate\",\"workload\":\"W\",\"size\":64,\"ways\":\"half\"}")
                .unwrap_err();
        assert_eq!(bad_ways.code, ErrorCode::BadRequest);
    }

    #[test]
    fn policy_and_family_are_optional_in_both_directions() {
        // A pre-policy client's simulate line decodes to policy: None.
        let parsed = Request::decode(
            "{\"type\":\"simulate\",\"workload\":\"VCCOM\",\"size\":1024}",
        )
        .unwrap();
        match parsed {
            Request::Simulate(spec) => assert_eq!(spec.policy, None),
            other => panic!("wrong variant: {other:?}"),
        }
        // A policy-carrying line round-trips the exact spelling.
        let parsed = Request::decode(
            "{\"type\":\"sweep\",\"workload\":\"S-SCAN\",\"policy\":\"fifo\"}",
        )
        .unwrap();
        match parsed {
            Request::Sweep(spec) => assert_eq!(spec.policy.as_deref(), Some("fifo")),
            other => panic!("wrong variant: {other:?}"),
        }
        // A non-string policy is a typed error, not a panic.
        let bad = Request::decode(
            "{\"type\":\"simulate\",\"workload\":\"W\",\"size\":64,\"policy\":7}",
        )
        .unwrap_err();
        assert_eq!(bad.code, ErrorCode::BadRequest);
        // A pre-family server's catalog entry defaults to the CPU family.
        let line = "{\"type\":\"catalog_result\",\"profiles\":[{\"name\":\"VCCOM\",                    \"group\":\"VAX\",\"arch\":\"VAX\",\"language\":\"C\"}],\"mixes\":[]}";
        match Response::decode(line).unwrap() {
            Response::Catalog(r) => assert_eq!(r.profiles[0].family, "cpu"),
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn ways_accepts_the_full_spelling() {
        let parsed = Request::decode(
            "{\"type\":\"simulate\",\"workload\":\"W\",\"size\":1024,\"ways\":\"full\"}",
        )
        .unwrap();
        match parsed {
            Request::Simulate(spec) => assert_eq!(spec.cache.ways, None),
            other => panic!("wrong variant: {other:?}"),
        }
    }
}
