//! One connection surface for every byte stream the service speaks.
//!
//! The server, router, client and tests all move NDJSON lines over a
//! [`Transport`]: TCP, Unix-domain sockets (unix targets), or the
//! in-process [`LoopbackHub`] that tests use to wire a client to a
//! server with no sockets at all. [`Endpoint`] names a connectable
//! destination; [`Listener`] is the accept side.
//!
//! Before this abstraction the server and client each carried their own
//! `TcpStream`/`UnixStream` match arms; every new transport meant
//! touching both. Now a stream is a `Box<dyn Transport>` everywhere.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::io::{AsRawFd, RawFd};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
#[cfg(unix)]
use std::path::Path;
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// A bidirectional byte stream carrying NDJSON request/response lines.
///
/// Implementations: [`TcpStream`], [`UnixStream`] (unix targets), and
/// the in-process loopback stream a [`LoopbackHub`] hands out.
pub trait Transport: Read + Write + Send {
    /// Sets the read timeout (`None` blocks forever).
    ///
    /// # Errors
    ///
    /// Propagates the socket-option failure.
    fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()>;

    /// Switches blocking/nonblocking mode.
    ///
    /// # Errors
    ///
    /// Propagates the socket-option failure.
    fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()>;

    /// An independently readable/writable handle to the same stream.
    ///
    /// # Errors
    ///
    /// Propagates the clone failure.
    fn try_clone_transport(&self) -> io::Result<Box<dyn Transport>>;

    /// A short human-readable peer description for logs.
    fn peer_label(&self) -> String;

    /// The raw file descriptor, when the stream is backed by one (the
    /// poll event loop only multiplexes fd-backed transports; loopback
    /// streams return `None` and are served by a connection thread).
    #[cfg(unix)]
    fn raw_fd(&self) -> Option<RawFd> {
        None
    }
}

impl Transport for TcpStream {
    fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        TcpStream::set_read_timeout(self, timeout)
    }

    fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        TcpStream::set_nonblocking(self, nonblocking)
    }

    fn try_clone_transport(&self) -> io::Result<Box<dyn Transport>> {
        Ok(Box::new(self.try_clone()?))
    }

    fn peer_label(&self) -> String {
        self.peer_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| "tcp:?".to_string())
    }

    #[cfg(unix)]
    fn raw_fd(&self) -> Option<RawFd> {
        Some(self.as_raw_fd())
    }
}

#[cfg(unix)]
impl Transport for UnixStream {
    fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        UnixStream::set_read_timeout(self, timeout)
    }

    fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        UnixStream::set_nonblocking(self, nonblocking)
    }

    fn try_clone_transport(&self) -> io::Result<Box<dyn Transport>> {
        Ok(Box::new(self.try_clone()?))
    }

    fn peer_label(&self) -> String {
        "unix".to_string()
    }

    fn raw_fd(&self) -> Option<RawFd> {
        Some(self.as_raw_fd())
    }
}

/// A connectable destination for [`crate::Client`] and the router.
#[derive(Clone)]
pub enum Endpoint {
    /// A TCP address, e.g. `"127.0.0.1:4085"`.
    Tcp(String),
    /// A Unix-domain socket path (unix targets only).
    #[cfg(unix)]
    Unix(PathBuf),
    /// An in-process loopback hub (no sockets; tests and embedders).
    Loopback(LoopbackHub),
}

impl std::fmt::Debug for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Tcp(addr) => write!(f, "tcp:{addr}"),
            #[cfg(unix)]
            Endpoint::Unix(path) => write!(f, "unix:{}", path.display()),
            Endpoint::Loopback(_) => write!(f, "loopback"),
        }
    }
}

impl Endpoint {
    /// Opens a fresh stream to this destination.
    ///
    /// # Errors
    ///
    /// Returns the connect failure; a closed loopback hub reports
    /// `ConnectionRefused`, matching a dead TCP server.
    pub fn connect(&self) -> io::Result<Box<dyn Transport>> {
        match self {
            Endpoint::Tcp(addr) => {
                let stream = TcpStream::connect(addr)?;
                stream.set_nodelay(true).ok();
                Ok(Box::new(stream))
            }
            #[cfg(unix)]
            Endpoint::Unix(path) => Ok(Box::new(UnixStream::connect(path)?)),
            Endpoint::Loopback(hub) => hub.connect(),
        }
    }
}

/// The accept side of a transport: TCP, Unix socket, or loopback.
pub trait Listener: Send {
    /// Accepts one pending connection.
    ///
    /// # Errors
    ///
    /// `WouldBlock` when nonblocking with nothing pending; otherwise
    /// the accept failure.
    fn accept_transport(&self) -> io::Result<Box<dyn Transport>>;

    /// Switches blocking/nonblocking accepts.
    ///
    /// # Errors
    ///
    /// Propagates the socket-option failure.
    fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()>;

    /// A short human-readable bind description for logs.
    fn local_label(&self) -> String;
}

impl Listener for TcpListener {
    fn accept_transport(&self) -> io::Result<Box<dyn Transport>> {
        let (stream, _peer) = self.accept()?;
        stream.set_nodelay(true).ok();
        Ok(Box::new(stream))
    }

    fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        TcpListener::set_nonblocking(self, nonblocking)
    }

    fn local_label(&self) -> String {
        self.local_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| "tcp:?".to_string())
    }
}

#[cfg(unix)]
impl Listener for UnixListener {
    fn accept_transport(&self) -> io::Result<Box<dyn Transport>> {
        let (stream, _peer) = self.accept()?;
        Ok(Box::new(stream))
    }

    fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        UnixListener::set_nonblocking(self, nonblocking)
    }

    fn local_label(&self) -> String {
        "unix".to_string()
    }
}

/// Binds a Unix-domain listener at `path`, replacing a stale socket
/// file from a previous run.
///
/// # Errors
///
/// Returns the remove or bind failure.
#[cfg(unix)]
pub fn bind_unix(path: &Path) -> io::Result<UnixListener> {
    if path.exists() {
        std::fs::remove_file(path)?;
    }
    UnixListener::bind(path)
}

// ---------------------------------------------------------------------
// In-process loopback
// ---------------------------------------------------------------------

/// One direction of a loopback stream: a bounded in-memory byte queue.
struct Pipe {
    state: Mutex<PipeState>,
    readable: Condvar,
    writable: Condvar,
}

struct PipeState {
    buf: VecDeque<u8>,
    closed: bool,
}

/// Per-direction capacity; a writer outrunning its reader blocks, the
/// same back-pressure a socket send buffer applies.
const PIPE_CAPACITY: usize = 1 << 20;

impl Pipe {
    fn new() -> Arc<Pipe> {
        Arc::new(Pipe {
            state: Mutex::new(PipeState {
                buf: VecDeque::new(),
                closed: false,
            }),
            readable: Condvar::new(),
            writable: Condvar::new(),
        })
    }

    fn close(&self) {
        let mut state = self.state.lock().unwrap();
        state.closed = true;
        self.readable.notify_all();
        self.writable.notify_all();
    }

    fn read(
        &self,
        out: &mut [u8],
        timeout: Option<Duration>,
        nonblocking: bool,
    ) -> io::Result<usize> {
        if out.is_empty() {
            return Ok(0);
        }
        let deadline = timeout.map(|t| Instant::now() + t);
        let mut state = self.state.lock().unwrap();
        loop {
            if !state.buf.is_empty() {
                let n = out.len().min(state.buf.len());
                for slot in out.iter_mut().take(n) {
                    *slot = state.buf.pop_front().unwrap_or(0);
                }
                self.writable.notify_all();
                return Ok(n);
            }
            if state.closed {
                return Ok(0); // EOF
            }
            if nonblocking {
                return Err(io::ErrorKind::WouldBlock.into());
            }
            state = match deadline {
                None => self.readable.wait(state).unwrap(),
                Some(deadline) => {
                    let now = Instant::now();
                    if now >= deadline {
                        return Err(io::ErrorKind::WouldBlock.into());
                    }
                    self.readable.wait_timeout(state, deadline - now).unwrap().0
                }
            };
        }
    }

    fn write(&self, data: &[u8], nonblocking: bool) -> io::Result<usize> {
        if data.is_empty() {
            return Ok(0);
        }
        let mut state = self.state.lock().unwrap();
        loop {
            if state.closed {
                return Err(io::ErrorKind::BrokenPipe.into());
            }
            let room = PIPE_CAPACITY.saturating_sub(state.buf.len());
            if room > 0 {
                let n = data.len().min(room);
                state.buf.extend(&data[..n]);
                self.readable.notify_all();
                return Ok(n);
            }
            if nonblocking {
                return Err(io::ErrorKind::WouldBlock.into());
            }
            state = self.writable.wait(state).unwrap();
        }
    }
}

/// Flags shared by clones of one loopback stream half (socket options
/// apply per stream, not per clone).
struct LoopbackFlags {
    read_timeout: Mutex<Option<Duration>>,
    nonblocking: std::sync::atomic::AtomicBool,
}

/// One half of an in-process duplex stream.
pub struct LoopbackStream {
    rx: Arc<Pipe>,
    tx: Arc<Pipe>,
    flags: Arc<LoopbackFlags>,
}

impl Drop for LoopbackStream {
    fn drop(&mut self) {
        // Last clone of this half gone: EOF the peer and unblock our
        // writers. `flags` is shared only among clones of this half, so
        // its count tracks live handles to the half.
        if Arc::strong_count(&self.flags) == 1 {
            self.tx.close();
            self.rx.close();
        }
    }
}

impl Read for LoopbackStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let timeout = *self.flags.read_timeout.lock().unwrap();
        let nonblocking = self.flags.nonblocking.load(std::sync::atomic::Ordering::Relaxed);
        self.rx.read(buf, timeout, nonblocking)
    }
}

impl Write for LoopbackStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let nonblocking = self.flags.nonblocking.load(std::sync::atomic::Ordering::Relaxed);
        self.tx.write(buf, nonblocking)
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl Transport for LoopbackStream {
    fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        *self.flags.read_timeout.lock().unwrap() = timeout;
        Ok(())
    }

    fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        self.flags
            .nonblocking
            .store(nonblocking, std::sync::atomic::Ordering::Relaxed);
        Ok(())
    }

    fn try_clone_transport(&self) -> io::Result<Box<dyn Transport>> {
        Ok(Box::new(LoopbackStream {
            rx: Arc::clone(&self.rx),
            tx: Arc::clone(&self.tx),
            flags: Arc::clone(&self.flags),
        }))
    }

    fn peer_label(&self) -> String {
        "loopback".to_string()
    }
}

/// Builds a connected pair of loopback stream halves.
fn loopback_pair() -> (LoopbackStream, LoopbackStream) {
    let a_to_b = Pipe::new();
    let b_to_a = Pipe::new();
    let make = |rx: &Arc<Pipe>, tx: &Arc<Pipe>| LoopbackStream {
        rx: Arc::clone(rx),
        tx: Arc::clone(tx),
        flags: Arc::new(LoopbackFlags {
            read_timeout: Mutex::new(None),
            nonblocking: std::sync::atomic::AtomicBool::new(false),
        }),
    };
    (make(&b_to_a, &a_to_b), make(&a_to_b, &b_to_a))
}

struct HubState {
    pending: VecDeque<LoopbackStream>,
    closed: bool,
}

/// An in-process rendezvous: `connect` on one side, accept on the
/// other, no sockets involved. Cloning shares the hub.
#[derive(Clone)]
pub struct LoopbackHub {
    state: Arc<(Mutex<HubState>, Condvar)>,
}

impl std::fmt::Debug for LoopbackHub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let pending = self.state.0.lock().map(|s| s.pending.len()).unwrap_or(0);
        f.debug_struct("LoopbackHub").field("pending", &pending).finish()
    }
}

impl Default for LoopbackHub {
    fn default() -> Self {
        LoopbackHub::new()
    }
}

impl LoopbackHub {
    /// A fresh hub with no pending connections.
    pub fn new() -> LoopbackHub {
        LoopbackHub {
            state: Arc::new((
                Mutex::new(HubState {
                    pending: VecDeque::new(),
                    closed: false,
                }),
                Condvar::new(),
            )),
        }
    }

    /// Opens a connection: the returned half is the client end, the
    /// server end becomes acceptable on the hub's [`Listener`].
    ///
    /// # Errors
    ///
    /// `ConnectionRefused` once the hub is closed.
    pub fn connect(&self) -> io::Result<Box<dyn Transport>> {
        let (lock, cond) = &*self.state;
        let mut state = lock.lock().unwrap();
        if state.closed {
            return Err(io::ErrorKind::ConnectionRefused.into());
        }
        let (client, server) = loopback_pair();
        state.pending.push_back(server);
        cond.notify_all();
        Ok(Box::new(client))
    }

    /// Stops accepting: later `connect` calls get `ConnectionRefused`.
    pub fn close(&self) {
        let (lock, cond) = &*self.state;
        lock.lock().unwrap().closed = true;
        cond.notify_all();
    }

    fn accept_inner(&self, timeout: Option<Duration>) -> io::Result<Box<dyn Transport>> {
        let (lock, cond) = &*self.state;
        let mut state = lock.lock().unwrap();
        loop {
            if let Some(stream) = state.pending.pop_front() {
                return Ok(Box::new(stream));
            }
            if state.closed {
                return Err(io::ErrorKind::ConnectionAborted.into());
            }
            match timeout {
                None => return Err(io::ErrorKind::WouldBlock.into()),
                Some(t) => {
                    let (next, result) = cond.wait_timeout(state, t).unwrap();
                    state = next;
                    if result.timed_out() && state.pending.is_empty() {
                        return Err(io::ErrorKind::WouldBlock.into());
                    }
                }
            }
        }
    }
}

impl Listener for LoopbackHub {
    /// Nonblocking accept: `WouldBlock` when nothing is pending (the
    /// server's accept loops poll, so a hub never needs blocking
    /// accepts; a short wait amortizes the poll interval).
    fn accept_transport(&self) -> io::Result<Box<dyn Transport>> {
        self.accept_inner(Some(Duration::from_millis(10)))
    }

    fn set_nonblocking(&self, _nonblocking: bool) -> io::Result<()> {
        Ok(())
    }

    fn local_label(&self) -> String {
        "loopback".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_round_trips_bytes_both_ways() {
        let hub = LoopbackHub::new();
        let mut client = hub.connect().expect("connect");
        let mut server = hub.accept_transport().expect("accept");
        client.write_all(b"hello\n").unwrap();
        let mut buf = [0u8; 6];
        server.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"hello\n");
        server.write_all(b"world\n").unwrap();
        let mut buf = [0u8; 6];
        client.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"world\n");
    }

    #[test]
    fn dropping_one_end_is_eof_for_the_peer() {
        let hub = LoopbackHub::new();
        let client = hub.connect().expect("connect");
        let mut server = hub.accept_transport().expect("accept");
        drop(client);
        let mut buf = [0u8; 4];
        assert_eq!(server.read(&mut buf).unwrap(), 0, "EOF after peer drop");
        assert_eq!(
            server.write(b"late").unwrap_err().kind(),
            io::ErrorKind::BrokenPipe
        );
    }

    #[test]
    fn clones_share_the_stream_and_keep_it_open() {
        let hub = LoopbackHub::new();
        let client = hub.connect().expect("connect");
        let mut reader = client.try_clone_transport().expect("clone");
        let mut server = hub.accept_transport().expect("accept");
        drop(client); // the clone still holds the half open
        server.write_all(b"x").unwrap();
        let mut buf = [0u8; 1];
        reader.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"x");
    }

    #[test]
    fn closed_hub_refuses_connections() {
        let hub = LoopbackHub::new();
        hub.close();
        assert_eq!(
            hub.connect().map(|_| ()).unwrap_err().kind(),
            io::ErrorKind::ConnectionRefused
        );
    }

    #[test]
    fn read_timeout_expires_as_would_block() {
        let hub = LoopbackHub::new();
        let mut client = hub.connect().expect("connect");
        let _server = hub.accept_transport().expect("accept");
        client
            .set_read_timeout(Some(Duration::from_millis(20)))
            .unwrap();
        let mut buf = [0u8; 1];
        let err = client.read(&mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
    }
}
