//! Live server counters behind the `stats` endpoint.
//!
//! Everything is a relaxed atomic: the counters are monotonic tallies
//! read for observability, not for synchronization, so the cheapest
//! ordering is the right one.

use crate::protocol::{OnePassCounters, PoolCounters, RouterCounters, StatsResult, StoreCounters};
use smith85_core::trace_pool::TracePool;
use smith85_store::Store;
use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic request/queue/worker counters, shared across threads.
#[derive(Default)]
pub struct ServerStats {
    /// `simulate` requests admitted.
    pub simulate_requests: AtomicU64,
    /// `sweep` requests admitted.
    pub sweep_requests: AtomicU64,
    /// `catalog` requests answered.
    pub catalog_requests: AtomicU64,
    /// `stats` requests answered.
    pub stats_requests: AtomicU64,
    /// Jobs completed successfully by workers.
    pub completed: AtomicU64,
    /// Jobs refused because the queue was full.
    pub rejected_overload: AtomicU64,
    /// Requests that failed to parse or validate.
    pub protocol_errors: AtomicU64,
    /// Jobs whose deadline expired.
    pub deadline_misses: AtomicU64,
    /// Worker milliseconds spent executing `simulate` jobs.
    pub busy_ms_simulate: AtomicU64,
    /// Worker milliseconds spent executing `sweep` jobs.
    pub busy_ms_sweep: AtomicU64,
    /// Trace references traversed by the one-pass grid engine.
    pub one_pass_refs: AtomicU64,
    /// Grid cells produced by one-pass sweeps.
    pub one_pass_grid_cells: AtomicU64,
}

impl ServerStats {
    /// Adds one to a counter.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n` to a tally counter.
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds `ms` to a busy-time counter.
    pub fn add_ms(counter: &AtomicU64, ms: u64) {
        counter.fetch_add(ms, Ordering::Relaxed);
    }

    /// A point-in-time snapshot joined with queue, pool, (when the
    /// server runs with `--store`) persistent-store state, and (in
    /// router mode) shard-router counters.
    pub fn snapshot(
        &self,
        queue_depth: usize,
        queue_high_water: usize,
        workers: usize,
        pool: &TracePool,
        store: Option<&Store>,
        router: Option<RouterCounters>,
    ) -> StatsResult {
        let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
        let pool_stats = pool.stats();
        StatsResult {
            simulate_requests: load(&self.simulate_requests),
            sweep_requests: load(&self.sweep_requests),
            catalog_requests: load(&self.catalog_requests),
            stats_requests: load(&self.stats_requests),
            completed: load(&self.completed),
            rejected_overload: load(&self.rejected_overload),
            protocol_errors: load(&self.protocol_errors),
            deadline_misses: load(&self.deadline_misses),
            queue_depth,
            queue_high_water,
            workers,
            busy_ms_simulate: load(&self.busy_ms_simulate),
            busy_ms_sweep: load(&self.busy_ms_sweep),
            pool: PoolCounters {
                entries: pool_stats.entries,
                hits: pool_stats.hits,
                misses: pool_stats.misses,
                materialized_bytes: pool_stats.materialized_bytes,
                resident_bytes: pool_stats.memory_bytes as u64,
            },
            store: store.map(|store| {
                let s = store.stats();
                StoreCounters {
                    entries: s.entries,
                    bytes: s.total_bytes,
                    hits: s.hits,
                    misses: s.misses,
                    writes: s.writes,
                    corrupt_quarantined: s.corrupt_quarantined,
                    gc_evictions: s.gc_evictions,
                }
            }),
            one_pass: Some(OnePassCounters {
                refs: load(&self.one_pass_refs),
                grid_cells: load(&self.one_pass_grid_cells),
            }),
            router,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_counters() {
        let stats = ServerStats::default();
        ServerStats::bump(&stats.simulate_requests);
        ServerStats::bump(&stats.simulate_requests);
        ServerStats::bump(&stats.rejected_overload);
        ServerStats::add_ms(&stats.busy_ms_simulate, 37);
        ServerStats::add(&stats.one_pass_refs, 5_000);
        ServerStats::add(&stats.one_pass_grid_cells, 54);
        let pool = TracePool::new();
        let snap = stats.snapshot(3, 9, 4, &pool, None, None);
        assert_eq!(snap.simulate_requests, 2);
        assert_eq!(snap.rejected_overload, 1);
        assert_eq!(snap.busy_ms_simulate, 37);
        assert_eq!(snap.queue_depth, 3);
        assert_eq!(snap.queue_high_water, 9);
        assert_eq!(snap.workers, 4);
        assert_eq!(snap.pool.entries, 0);
        let one_pass = snap.one_pass.expect("snapshot always carries one_pass");
        assert_eq!(one_pass.refs, 5_000);
        assert_eq!(one_pass.grid_cells, 54);
    }
}
