//! Minimal SIGINT handling without a libc dependency (unix only).
//!
//! The crate denies `unsafe_code`; this module carries the one allowance
//! because registering a signal handler requires an `extern "C"`
//! declaration. The handler only stores to an `AtomicBool` —
//! async-signal-safe by construction — and the accept loop polls the
//! flag.

#![allow(unsafe_code)]

use std::sync::atomic::{AtomicBool, Ordering};

static SIGINT: AtomicBool = AtomicBool::new(false);

const SIGINT_NUM: i32 = 2;

extern "C" {
    fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
}

extern "C" fn on_sigint(_signum: i32) {
    SIGINT.store(true, Ordering::SeqCst);
}

/// Installs the SIGINT → flag handler. Idempotent; safe to call from
/// multiple servers in one process.
pub fn install_sigint_handler() {
    // SAFETY: `signal(2)` with a handler that only performs an atomic
    // store is async-signal-safe; no other state is touched.
    unsafe {
        signal(SIGINT_NUM, on_sigint);
    }
}

/// Whether a SIGINT has arrived since the handler was installed.
pub fn sigint_received() -> bool {
    SIGINT.load(Ordering::SeqCst)
}
