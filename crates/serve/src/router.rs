//! Shard router: consistent-hash request fan-out across backend nodes.
//!
//! A router is a `smith85-serve` node whose workers forward instead of
//! simulate: `(workload, seed, config)` keys hash onto a ring of
//! virtual nodes, so every distinct request shape lands on a stable
//! backend — the backend's trace pool and result store see the same
//! keys every time, which is what makes sharding pay off (locality), and
//! adding a shard only remaps `1/n` of the key space.
//!
//! Resilience:
//!
//! * a health prober pings every shard on an interval and flips its
//!   up/down flag (published as `router_shard_up{shard="<addr>"}`
//!   gauges — one metric family, one labeled series per shard);
//! * per-shard in-flight budgets propagate back-pressure as typed
//!   `overloaded` errors instead of letting one hot shard absorb an
//!   unbounded backlog;
//! * a refused or failed forward marks the shard down and **hedges** to
//!   the next shard on the ring, so a killed backend degrades to
//!   slightly-colder caches, never to hung clients;
//! * the router's admission trace id — and the forward span's id as the
//!   envelope's `parent_span` — are forwarded with every request, so
//!   one id attributes the request in the router journal *and* the
//!   chosen backend's journal, and a multi-journal `trace report`
//!   stitches the shard's `request` span under the router's hop span;
//! * the router's `metrics` answer and `/metrics` exposition federate
//!   every healthy shard's snapshot (counters summed, histograms merged
//!   bucket-wise, per-shard series labeled `shard="<addr>"`); a down
//!   shard is marked stale (`router_shard_stale{shard=...} 1`) instead
//!   of blocking the scrape.

use crate::protocol::{
    ErrorBody, ErrorCode, Request, Response, RouterCounters, TraceEnvelope, MAX_LINE_BYTES,
};
use crate::transport::Transport;
use smith85_obs::{GaugeSnapshot, Registry, RegistrySnapshot};
use smith85_tracelog::{self as tracelog, FieldValue};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Router-mode configuration (see [`crate::ServeOptions`]).
#[derive(Debug, Clone)]
pub struct RouterOptions {
    /// Backend `smith85-serve` TCP addresses, one per shard.
    pub backends: Vec<String>,
    /// Virtual nodes per shard on the hash ring. More replicas smooth
    /// the key distribution at the cost of a larger ring.
    pub replicas: usize,
    /// Health-probe period.
    pub probe_interval_ms: u64,
    /// Per-shard in-flight forward budget; beyond it requests get a
    /// typed `overloaded` (back-pressure, deliberately not spilled onto
    /// other shards — spilling would defeat the budget).
    pub shard_inflight: usize,
    /// Backend TCP connect timeout.
    pub connect_timeout_ms: u64,
    /// Upper bound waiting for a backend's reply line.
    pub reply_timeout_ms: u64,
}

impl Default for RouterOptions {
    fn default() -> Self {
        RouterOptions {
            backends: Vec::new(),
            replicas: 64,
            probe_interval_ms: 500,
            shard_inflight: 32,
            connect_timeout_ms: 1_000,
            reply_timeout_ms: 600_000,
        }
    }
}

/// One backend on the ring.
pub(crate) struct Shard {
    pub(crate) addr: String,
    /// Optimistically up at start; the prober and failed forwards flip
    /// it, the prober flips it back.
    up: AtomicBool,
    inflight: AtomicUsize,
    forwarded: AtomicU64,
}

/// Shared router state: the ring, per-shard counters, global counters.
pub(crate) struct RouterState {
    shards: Vec<Arc<Shard>>,
    /// `(hash, shard index)` sorted by hash — the consistent-hash ring.
    ring: Vec<(u64, usize)>,
    opts: RouterOptions,
    registry: Registry,
    forwarded: AtomicU64,
    hedged: AtomicU64,
    shard_overloads: AtomicU64,
    health_probes: AtomicU64,
    federated_shards: AtomicU64,
    stale_shards: AtomicU64,
}

/// 64-bit FNV-1a over a byte stream; the same cheap stable hash the
/// retry jitter seeds use.
fn fnv64(bytes: impl IntoIterator<Item = u8>) -> u64 {
    bytes.into_iter().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3)
    })
}

/// The routing key of a request: every field that identifies the work
/// (mirroring the store's result keys), so identical requests always
/// hit the same shard and its warm pool/store.
fn route_key(request: &Request) -> String {
    match request {
        Request::Simulate(spec) => format!(
            "sim|{}|{:?}|{}|{}|{:?}|{:?}|{:?}|{}",
            spec.workload,
            spec.seed,
            spec.cache.size,
            spec.cache.line,
            spec.cache.ways,
            spec.cache.purge,
            spec.policy,
            spec.len,
        ),
        Request::Sweep(spec) => format!(
            "sweep|{}|{:?}|{:?}|{:?}|{}|{:?}|{}",
            spec.workload, spec.seed, spec.sizes, spec.ways, spec.line, spec.policy, spec.len,
        ),
        // Shard-agnostic requests (catalog is identical everywhere).
        other => format!("{other:?}"),
    }
}

/// What one forward actually did, for stats and the router span.
#[derive(Debug)]
pub(crate) struct ForwardOutcome {
    pub(crate) response: Response,
    pub(crate) shard: String,
    pub(crate) hedges: u64,
}

impl RouterState {
    pub(crate) fn new(opts: RouterOptions, registry: Registry) -> RouterState {
        let shards: Vec<Arc<Shard>> = opts
            .backends
            .iter()
            .map(|addr| {
                Arc::new(Shard {
                    addr: addr.clone(),
                    up: AtomicBool::new(true),
                    inflight: AtomicUsize::new(0),
                    forwarded: AtomicU64::new(0),
                })
            })
            .collect();
        let mut ring: Vec<(u64, usize)> = Vec::with_capacity(shards.len() * opts.replicas);
        for (index, shard) in shards.iter().enumerate() {
            for replica in 0..opts.replicas {
                let vnode = format!("{}#{replica}", shard.addr);
                ring.push((fnv64(vnode.bytes()), index));
            }
        }
        ring.sort_unstable();
        // Pre-register the gauges so a scrape before the first probe
        // still lists every shard (optimistically up). One family with
        // a `shard` label per backend, never per-index metric names.
        for shard in &shards {
            registry
                .gauge_with("router_shard_up", &[("shard", &shard.addr)])
                .set(1.0);
            registry
                .gauge_with("router_shard_inflight", &[("shard", &shard.addr)])
                .set(0.0);
        }
        registry.counter("router_forwarded_total");
        registry.counter("router_hedged_total");
        registry.counter("router_shard_overloads_total");
        RouterState {
            shards,
            ring,
            opts,
            registry,
            forwarded: AtomicU64::new(0),
            hedged: AtomicU64::new(0),
            shard_overloads: AtomicU64::new(0),
            health_probes: AtomicU64::new(0),
            federated_shards: AtomicU64::new(0),
            stale_shards: AtomicU64::new(0),
        }
    }

    pub(crate) fn probe_interval(&self) -> Duration {
        Duration::from_millis(self.opts.probe_interval_ms.max(10))
    }

    /// Shard candidates for `key`, primary first, then the ring order a
    /// hedge walks: the next *distinct* shards clockwise from the
    /// key's position.
    fn candidates(&self, key_hash: u64) -> Vec<usize> {
        let start = self
            .ring
            .partition_point(|&(hash, _)| hash < key_hash)
            .checked_rem(self.ring.len())
            .unwrap_or(0);
        let mut order = Vec::with_capacity(self.shards.len());
        for offset in 0..self.ring.len() {
            let (_, shard) = self.ring[(start + offset) % self.ring.len()];
            if !order.contains(&shard) {
                order.push(shard);
                if order.len() == self.shards.len() {
                    break;
                }
            }
        }
        order
    }

    /// Point-in-time router counters for `stats` responses.
    pub(crate) fn counters(&self) -> RouterCounters {
        RouterCounters {
            shards: self.shards.len() as u64,
            healthy: self
                .shards
                .iter()
                .filter(|s| s.up.load(Ordering::Relaxed))
                .count() as u64,
            forwarded: self.forwarded.load(Ordering::Relaxed),
            hedged: self.hedged.load(Ordering::Relaxed),
            shard_overloads: self.shard_overloads.load(Ordering::Relaxed),
            health_probes: self.health_probes.load(Ordering::Relaxed),
            federated_shards: self.federated_shards.load(Ordering::Relaxed),
            stale_shards: self.stale_shards.load(Ordering::Relaxed),
        }
    }

    fn mark(&self, index: usize, up: bool) {
        let shard = &self.shards[index];
        shard.up.store(up, Ordering::Relaxed);
        self.registry
            .gauge_with("router_shard_up", &[("shard", &shard.addr)])
            .set(if up { 1.0 } else { 0.0 });
    }

    /// One health-probe round: ping every shard, flip flags and gauges.
    pub(crate) fn probe_round(&self) {
        for (index, shard) in self.shards.iter().enumerate() {
            self.health_probes.fetch_add(1, Ordering::Relaxed);
            let was_up = shard.up.load(Ordering::Relaxed);
            let up = probe_shard(
                &shard.addr,
                Duration::from_millis(self.opts.connect_timeout_ms.max(1)),
            );
            if up != was_up {
                self.mark(index, up);
                eprintln!(
                    "smith85-serve: router shard {} ({}) marked {}",
                    index,
                    shard.addr,
                    if up { "up" } else { "down" }
                );
            } else {
                self.mark(index, up);
            }
        }
    }

    /// Routes and forwards one request, hedging along the ring on
    /// connection failures. Returns the backend's response verbatim, or
    /// a typed error when the budget rejects or every shard fails.
    pub(crate) fn forward(
        &self,
        request: &Request,
        trace_id: &str,
    ) -> Result<ForwardOutcome, ErrorBody> {
        let key_hash = fnv64(route_key(request).bytes());
        let candidates = self.candidates(key_hash);
        let mut hedges = 0u64;
        let mut last_failure: Option<String> = None;
        for (rank, &index) in candidates.iter().enumerate() {
            let shard = &self.shards[index];
            if !shard.up.load(Ordering::Relaxed) {
                // Known-down shards are skipped without burning a
                // connect timeout; the prober will resurrect them.
                continue;
            }
            // Per-shard budget: admission control at the router tier.
            let inflight = shard.inflight.fetch_add(1, Ordering::AcqRel);
            self.registry
                .gauge_with("router_shard_inflight", &[("shard", &shard.addr)])
                .set((inflight + 1) as f64);
            if inflight >= self.opts.shard_inflight {
                shard.inflight.fetch_sub(1, Ordering::AcqRel);
                self.shard_overloads.fetch_add(1, Ordering::Relaxed);
                self.registry.counter("router_shard_overloads_total").inc();
                return Err(ErrorBody::new(
                    ErrorCode::Overloaded,
                    format!(
                        "shard {} ({}) is at its in-flight budget ({}); retry later",
                        index, shard.addr, self.opts.shard_inflight
                    ),
                ));
            }
            let result = forward_once(
                &shard.addr,
                request,
                trace_id,
                Duration::from_millis(self.opts.connect_timeout_ms.max(1)),
                Duration::from_millis(self.opts.reply_timeout_ms.max(1)),
            );
            shard.inflight.fetch_sub(1, Ordering::AcqRel);
            self.registry
                .gauge_with("router_shard_inflight", &[("shard", &shard.addr)])
                .set(shard.inflight.load(Ordering::Relaxed) as f64);
            match result {
                Ok(response) => {
                    shard.forwarded.fetch_add(1, Ordering::Relaxed);
                    self.forwarded.fetch_add(1, Ordering::Relaxed);
                    self.registry.counter("router_forwarded_total").inc();
                    if rank > 0 || hedges > 0 {
                        self.hedged.fetch_add(1, Ordering::Relaxed);
                        self.registry.counter("router_hedged_total").inc();
                    }
                    return Ok(ForwardOutcome {
                        response,
                        shard: shard.addr.clone(),
                        hedges,
                    });
                }
                Err(err) => {
                    // Simulation requests are pure and idempotent, so
                    // any I/O failure — refused, reset mid-reply, timed
                    // out — is safe to hedge to the next shard.
                    self.mark(index, false);
                    hedges += 1;
                    last_failure = Some(format!("shard {} ({}): {err}", index, shard.addr));
                }
            }
        }
        Err(ErrorBody::new(
            ErrorCode::Overloaded,
            match last_failure {
                Some(failure) => format!("no backend shard reachable (last: {failure})"),
                None => "no backend shard is healthy; retry later".to_string(),
            },
        ))
    }

    /// The fleet-wide metrics view: the router's own registry plus every
    /// healthy shard's snapshot. Counters and histograms fold into the
    /// unlabeled aggregate series (exact sums / bucket-wise merges, so a
    /// scrape of the router equals the sum of its parts); each shard's
    /// snapshot is also appended verbatim under a `shard="<addr>"`
    /// label. A down or unreachable shard contributes only
    /// `router_shard_stale{shard=...} 1` — the scrape never blocks on a
    /// dead backend (known-down shards are skipped without a connect,
    /// and live fetches are bounded by the connect timeout).
    pub(crate) fn federated_snapshot(&self) -> RegistrySnapshot {
        let connect = Duration::from_millis(self.opts.connect_timeout_ms.max(1));
        // A scrape must stay fast even when a shard is sick: bound the
        // reply wait by the (short) connect timeout, not the (long)
        // forward reply timeout.
        let reply = connect.max(Duration::from_millis(250));
        let mut federated = self.registry.snapshot();
        for shard in &self.shards {
            let snapshot = if shard.up.load(Ordering::Relaxed) {
                fetch_shard_metrics(&shard.addr, connect, reply).ok()
            } else {
                None
            };
            let stale = GaugeSnapshot {
                name: "router_shard_stale".to_string(),
                labels: vec![("shard".to_string(), shard.addr.clone())],
                value: if snapshot.is_some() { 0.0 } else { 1.0 },
            };
            match snapshot {
                Some(snapshot) => {
                    self.federated_shards.fetch_add(1, Ordering::Relaxed);
                    federated.absorb_totals(&snapshot);
                    let mut labeled = snapshot.with_label("shard", &shard.addr);
                    labeled.gauges.push(stale);
                    federated.append(labeled);
                }
                None => {
                    self.stale_shards.fetch_add(1, Ordering::Relaxed);
                    federated.append(RegistrySnapshot {
                        gauges: vec![stale],
                        ..RegistrySnapshot::default()
                    });
                }
            }
        }
        federated
    }
}

/// TCP connect honoring a timeout (std's plain `connect` has none).
fn connect_timed(addr: &str, timeout: Duration) -> io::Result<TcpStream> {
    let mut last = None;
    for resolved in addr.to_socket_addrs()? {
        match TcpStream::connect_timeout(&resolved, timeout) {
            Ok(stream) => {
                stream.set_nodelay(true).ok();
                return Ok(stream);
            }
            Err(err) => last = Some(err),
        }
    }
    Err(last.unwrap_or_else(|| {
        io::Error::new(io::ErrorKind::AddrNotAvailable, "address resolved to nothing")
    }))
}

/// One liveness probe: connect + `ping`, bounded by `timeout`.
fn probe_shard(addr: &str, timeout: Duration) -> bool {
    let Ok(stream) = connect_timed(addr, timeout) else {
        return false;
    };
    let _ = stream.set_read_timeout(Some(timeout.max(Duration::from_millis(250))));
    let mut stream = stream;
    if stream.write_all(b"{\"type\":\"ping\"}\n").is_err() {
        return false;
    }
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    matches!(reader.read_line(&mut line), Ok(n) if n > 0)
        && matches!(Response::decode(line.trim_end()), Ok(Response::Pong))
}

/// One bounded metrics fetch against one shard: connect + `metrics`,
/// decode the snapshot. Any failure (connect, timeout, bad payload)
/// just reports the shard stale for this scrape.
fn fetch_shard_metrics(
    addr: &str,
    connect_timeout: Duration,
    reply_timeout: Duration,
) -> io::Result<RegistrySnapshot> {
    let mut stream = connect_timed(addr, connect_timeout)?;
    stream.set_read_timeout(Some(reply_timeout))?;
    let mut line = Request::Metrics.encode();
    line.push('\n');
    stream.write_all(line.as_bytes())?;
    let mut reader = BufReader::new(stream);
    let mut reply = String::new();
    if reader.read_line(&mut reply)? == 0 {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "shard closed the connection before answering metrics",
        ));
    }
    match Response::decode(reply.trim_end()) {
        Ok(Response::Metrics(snapshot)) => Ok(snapshot),
        Ok(other) => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("shard answered metrics with {other:?}"),
        )),
        Err(e) => Err(io::Error::new(io::ErrorKind::InvalidData, e)),
    }
}

/// One forward attempt against one backend: fresh connection, request
/// with the forwarded trace id and the hop span's id as `parent_span`
/// (so the shard roots its `request` span under this hop in a merged
/// report; hedged retries each open their own hop span and therefore
/// land as siblings), one reply line.
fn forward_once(
    addr: &str,
    request: &Request,
    trace_id: &str,
    connect_timeout: Duration,
    reply_timeout: Duration,
) -> io::Result<Response> {
    let span = {
        let ctx = tracelog::current();
        ctx.enabled().then(|| {
            ctx.child(
                "router_forward",
                vec![("shard".to_string(), FieldValue::from(addr))],
            )
        })
    };
    let parent_span = span.as_ref().map(|s| s.ctx().span_id()).filter(|&id| id != 0);
    let stream = connect_timed(addr, connect_timeout)?;
    stream.set_read_timeout(Some(reply_timeout))?;
    let mut writer: Box<dyn Transport> = Box::new(stream);
    let mut line = request.encode_with_envelope(&TraceEnvelope {
        trace_id: Some(trace_id.to_string()),
        parent_span,
    });
    line.push('\n');
    writer.write_all(line.as_bytes())?;
    writer.flush()?;
    let mut reader = BufReader::new(writer.try_clone_transport()?);
    let mut reply = String::new();
    let cap = MAX_LINE_BYTES * 8;
    loop {
        let before = reply.len();
        let n = reader
            .by_ref()
            .take((cap - before) as u64)
            .read_line(&mut reply)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "backend closed the connection mid-reply",
            ));
        }
        if reply.ends_with('\n') {
            break;
        }
        if reply.len() >= cap {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "backend reply exceeds the router line cap",
            ));
        }
    }
    Response::decode(reply.trim_end())
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{CacheSpec, SimulateSpec};

    fn options(backends: &[&str]) -> RouterOptions {
        RouterOptions {
            backends: backends.iter().map(|s| s.to_string()).collect(),
            ..RouterOptions::default()
        }
    }

    fn state(backends: &[&str]) -> RouterState {
        RouterState::new(options(backends), Registry::new())
    }

    fn simulate(workload: &str, size: usize) -> Request {
        Request::Simulate(SimulateSpec {
            workload: workload.to_string(),
            len: 10_000,
            seed: None,
            cache: CacheSpec {
                size,
                line: 16,
                ways: None,
                purge: None,
            },
            policy: None,
            deadline_ms: None,
        })
    }

    #[test]
    fn identical_requests_route_to_the_same_shard() {
        let state = state(&["10.0.0.1:1", "10.0.0.2:1", "10.0.0.3:1"]);
        let request = simulate("VCCOM", 4_096);
        let first = state.candidates(fnv64(route_key(&request).bytes()));
        for _ in 0..10 {
            let again = state.candidates(fnv64(route_key(&request).bytes()));
            assert_eq!(first, again, "routing must be deterministic");
        }
        assert_eq!(first.len(), 3, "every shard appears once in hedge order");
    }

    #[test]
    fn distinct_keys_spread_across_shards() {
        let state = state(&["10.0.0.1:1", "10.0.0.2:1", "10.0.0.3:1", "10.0.0.4:1"]);
        let mut hits = vec![0usize; 4];
        for size_log in 8..16 {
            for (i, workload) in ["VCCOM", "ZGREP", "PL0", "MUL8", "S-KVSTORE"].iter().enumerate() {
                let request = simulate(workload, (1usize << size_log) + i);
                let primary = state.candidates(fnv64(route_key(&request).bytes()))[0];
                hits[primary] += 1;
            }
        }
        let populated = hits.iter().filter(|&&n| n > 0).count();
        assert!(
            populated >= 3,
            "40 distinct keys must not pile onto fewer than 3 of 4 shards: {hits:?}"
        );
    }

    #[test]
    fn config_and_seed_are_part_of_the_key() {
        let base = simulate("VCCOM", 4_096);
        let bigger = simulate("VCCOM", 65_536);
        assert_ne!(route_key(&base), route_key(&bigger));
        let mut seeded = base.clone();
        if let Request::Simulate(spec) = &mut seeded {
            spec.seed = Some(7);
        }
        assert_ne!(route_key(&base), route_key(&seeded));
    }

    #[test]
    fn down_shards_are_skipped_and_no_healthy_is_typed() {
        let state = state(&["127.0.0.1:1"]); // port 1: nothing listens
        state.mark(0, false);
        let err = state
            .forward(&simulate("VCCOM", 4_096), "0123456789abcdef")
            .unwrap_err();
        assert_eq!(err.code, ErrorCode::Overloaded, "{err}");
        assert!(err.message.contains("healthy"), "{err}");
    }

    #[test]
    fn budget_exhaustion_is_a_typed_overloaded() {
        let mut opts = options(&["127.0.0.1:1"]);
        opts.shard_inflight = 0;
        // shard_inflight = 0 is rejected by ServeOptions validation, but
        // the router itself must still behave: every forward is over
        // budget by definition.
        let state = RouterState::new(opts, Registry::new());
        let err = state
            .forward(&simulate("VCCOM", 4_096), "0123456789abcdef")
            .unwrap_err();
        assert_eq!(err.code, ErrorCode::Overloaded, "{err}");
        assert!(err.message.contains("budget"), "{err}");
        assert_eq!(state.counters().shard_overloads, 1);
    }

    #[test]
    fn unreachable_shard_fails_over_to_the_next() {
        // Two shards, neither listening: the forward must try both,
        // mark both down, and return a typed error naming the failure.
        let state = state(&["127.0.0.1:1", "127.0.0.1:2"]);
        let err = state
            .forward(&simulate("VCCOM", 4_096), "0123456789abcdef")
            .unwrap_err();
        assert_eq!(err.code, ErrorCode::Overloaded, "{err}");
        let counters = state.counters();
        assert_eq!(counters.healthy, 0, "both shards must be marked down");
    }
}
