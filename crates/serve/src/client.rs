//! A blocking NDJSON client for the serve protocol.
//!
//! One request per [`Client::call`]; responses come back in order, so a
//! single connection is also a valid way to issue a request sequence.

use crate::protocol::{ErrorCode, Request, Response, MAX_LINE_BYTES};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;
#[cfg(unix)]
use std::path::Path;
use std::time::Duration;

/// Ceiling for one backoff delay, whatever the attempt count.
pub const MAX_BACKOFF_MS: u64 = 5_000;

/// Capped exponential backoff with deterministic jitter, for retrying
/// *transient* failures: a typed `overloaded` response (the server's
/// admission queue is full) or a refused connection (the server is
/// restarting). Permanent failures — bad requests, unknown workloads,
/// protocol errors — are never retried.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Additional attempts after the first (0 = fail fast).
    pub retries: u32,
    /// Base delay before the first retry; attempt `n` waits roughly
    /// `backoff_ms << n`, capped at [`MAX_BACKOFF_MS`].
    pub backoff_ms: u64,
}

impl RetryPolicy {
    /// No retries: a single attempt, fail fast.
    pub const NONE: RetryPolicy = RetryPolicy {
        retries: 0,
        backoff_ms: 0,
    };

    /// The delay before retry number `attempt` (0-based): exponential
    /// growth capped at [`MAX_BACKOFF_MS`], minus up to half of itself as
    /// deterministic jitter seeded by `seed` — so a fleet of scripted
    /// clients hitting the same overloaded server spreads out instead of
    /// retrying in lockstep.
    pub fn delay_ms(&self, attempt: u32, seed: u64) -> u64 {
        let exp = self
            .backoff_ms
            .saturating_mul(1u64 << attempt.min(16))
            .min(MAX_BACKOFF_MS);
        if exp == 0 {
            return 0;
        }
        // splitmix64, same mix the fault injectors use.
        let mut z = seed
            .wrapping_add(u64::from(attempt))
            .wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        let jitter = (z ^ (z >> 31)) % (exp / 2 + 1);
        exp - jitter
    }
}

/// Whether a call outcome is worth retrying: a typed `overloaded`
/// response or a refused connection. Everything else — including other
/// typed errors and other I/O failures — is permanent.
pub fn is_transient(result: &io::Result<Response>) -> bool {
    match result {
        Ok(Response::Error(body)) => body.code == ErrorCode::Overloaded,
        Err(err) => err.kind() == io::ErrorKind::ConnectionRefused,
        Ok(_) => false,
    }
}

/// Issues `request` with retries per `policy`: reconnect via `connect`
/// each attempt (a refused connection is one of the retryable failures),
/// sleeping through `sleep` between attempts. Returns the final outcome,
/// transient or not, once the budget is exhausted.
///
/// # Errors
///
/// Whatever the last attempt returned.
pub fn call_with_retry(
    mut connect: impl FnMut() -> io::Result<Client>,
    request: &Request,
    policy: RetryPolicy,
    mut sleep: impl FnMut(Duration),
) -> io::Result<Response> {
    // Jitter seed: stable per request shape, so reruns are reproducible,
    // but different requests in a sweep spread their retries.
    let encoded = request.encode();
    let seed = encoded
        .bytes()
        .fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3)
        });
    let mut attempt = 0;
    loop {
        let result = connect().and_then(|mut client| client.call(request));
        if !is_transient(&result) || attempt >= policy.retries {
            return result;
        }
        sleep(Duration::from_millis(policy.delay_ms(attempt, seed)));
        attempt += 1;
    }
}

enum Transport {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

/// A connected client (TCP, or Unix socket on unix targets).
pub struct Client {
    reader: BufReader<Transport>,
    writer: Transport,
}

impl io::Read for Transport {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Transport::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Transport::Unix(s) => s.read(buf),
        }
    }
}

impl io::Write for Transport {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Transport::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Transport::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Transport::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Transport::Unix(s) => s.flush(),
        }
    }
}

impl Client {
    /// Connects over TCP, e.g. `Client::connect("127.0.0.1:4085")`.
    ///
    /// # Errors
    ///
    /// Returns the connect or clone failure.
    pub fn connect(addr: &str) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let reader = Transport::Tcp(stream.try_clone()?);
        Ok(Client {
            reader: BufReader::new(reader),
            writer: Transport::Tcp(stream),
        })
    }

    /// Connects to a Unix-domain socket (unix targets only).
    ///
    /// # Errors
    ///
    /// Returns the connect or clone failure.
    #[cfg(unix)]
    pub fn connect_unix(path: &Path) -> io::Result<Client> {
        let stream = UnixStream::connect(path)?;
        let reader = Transport::Unix(stream.try_clone()?);
        Ok(Client {
            reader: BufReader::new(reader),
            writer: Transport::Unix(stream),
        })
    }

    /// Sets a read timeout for responses (None = block forever).
    ///
    /// # Errors
    ///
    /// Propagates the socket option failure.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        match self.reader.get_ref() {
            Transport::Tcp(s) => s.set_read_timeout(timeout),
            #[cfg(unix)]
            Transport::Unix(s) => s.set_read_timeout(timeout),
        }
    }

    /// Sends one request and reads its response.
    ///
    /// # Errors
    ///
    /// Returns I/O failures, a closed connection (`UnexpectedEof`), or an
    /// undecodable response line (`InvalidData`).
    pub fn call(&mut self, request: &Request) -> io::Result<Response> {
        self.send_raw_line(&request.encode())
    }

    /// Sends an arbitrary line (no newline) and reads one response.
    /// This is the hook the malformed-input tests use to put invalid
    /// bytes on the wire.
    ///
    /// # Errors
    ///
    /// Same as [`Client::call`].
    pub fn send_raw_line(&mut self, line: &str) -> io::Result<Response> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        self.read_response()
    }

    fn read_response(&mut self) -> io::Result<Response> {
        let mut line = String::new();
        // Responses can legitimately exceed the *request* line cap (the
        // catalog lists 49 profiles), so allow a generous multiple.
        let cap = MAX_LINE_BYTES * 8;
        loop {
            let before = line.len();
            let n = self
                .reader
                .by_ref()
                .take((cap - before) as u64)
                .read_line(&mut line)?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ));
            }
            if line.ends_with('\n') {
                break;
            }
            if line.len() >= cap {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "response line exceeds the client cap",
                ));
            }
        }
        Response::decode(line.trim_end())
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::ErrorBody;

    #[test]
    fn delay_grows_exponentially_and_caps() {
        let policy = RetryPolicy {
            retries: 10,
            backoff_ms: 100,
        };
        // Jitter subtracts at most half, so each delay sits in
        // [ceil(exp/2), exp] for exp = min(100 << n, 5000).
        for (attempt, exp) in [(0u32, 100u64), (1, 200), (2, 400), (6, 5_000), (16, 5_000)] {
            let d = policy.delay_ms(attempt, 42);
            assert!(
                d >= exp / 2 && d <= exp,
                "attempt {attempt}: delay {d} outside [{}, {exp}]",
                exp / 2
            );
        }
        // Huge attempt counts must not overflow the shift.
        let _ = policy.delay_ms(u32::MAX, 42);
    }

    #[test]
    fn delay_is_deterministic_per_seed() {
        let policy = RetryPolicy {
            retries: 3,
            backoff_ms: 250,
        };
        assert_eq!(policy.delay_ms(2, 7), policy.delay_ms(2, 7));
        // Zero base means zero wait, jitter included.
        let eager = RetryPolicy {
            retries: 3,
            backoff_ms: 0,
        };
        assert_eq!(eager.delay_ms(5, 7), 0);
    }

    #[test]
    fn transient_classification() {
        let overloaded: io::Result<Response> = Ok(Response::Error(ErrorBody::new(
            ErrorCode::Overloaded,
            "queue full",
        )));
        assert!(is_transient(&overloaded));
        let refused: io::Result<Response> =
            Err(io::Error::new(io::ErrorKind::ConnectionRefused, "refused"));
        assert!(is_transient(&refused));
        let bad: io::Result<Response> = Ok(Response::Error(ErrorBody::new(
            ErrorCode::BadRequest,
            "nope",
        )));
        assert!(!is_transient(&bad));
        let eof: io::Result<Response> =
            Err(io::Error::new(io::ErrorKind::UnexpectedEof, "closed"));
        assert!(!is_transient(&eof));
        assert!(!is_transient(&Ok(Response::Pong)));
    }

    #[test]
    fn retry_exhausts_budget_on_refused_connections() {
        let mut attempts = 0u32;
        let mut sleeps: Vec<u64> = Vec::new();
        let policy = RetryPolicy {
            retries: 3,
            backoff_ms: 10,
        };
        let result = call_with_retry(
            || {
                attempts += 1;
                Err(io::Error::new(io::ErrorKind::ConnectionRefused, "refused"))
            },
            &Request::Ping,
            policy,
            |d| sleeps.push(d.as_millis() as u64),
        );
        assert_eq!(attempts, 4, "1 initial try + 3 retries");
        assert_eq!(sleeps.len(), 3, "sleeps only between attempts");
        assert_eq!(result.unwrap_err().kind(), io::ErrorKind::ConnectionRefused);
        // Backoff must not shrink below the jittered floor of the base.
        assert!(sleeps.iter().all(|&ms| ms <= MAX_BACKOFF_MS));
    }

    #[test]
    fn permanent_failures_do_not_retry() {
        let mut attempts = 0u32;
        let policy = RetryPolicy {
            retries: 5,
            backoff_ms: 10,
        };
        let result = call_with_retry(
            || {
                attempts += 1;
                Err(io::Error::new(io::ErrorKind::PermissionDenied, "denied"))
            },
            &Request::Ping,
            policy,
            |_| panic!("must not sleep on a permanent failure"),
        );
        assert_eq!(attempts, 1);
        assert_eq!(result.unwrap_err().kind(), io::ErrorKind::PermissionDenied);
    }
}
