//! A blocking NDJSON client for the serve protocol.
//!
//! The supported surface is [`Client::builder`]: pick an [`Endpoint`]
//! (TCP, Unix socket, or in-process loopback), optionally attach a
//! default deadline, a [`RetryPolicy`] and a trace id, then
//! [`ClientBuilder::connect`]. [`Client::call`] returns a typed
//! [`ClientError`] — a server-side [`ErrorBody`] is `Err(Server(..))`,
//! not a response the caller has to pattern-match for failure.
//!
//! One request per call; responses come back in order, so a single
//! connection is also a valid way to issue a request sequence.

use crate::protocol::{ErrorBody, ErrorCode, Request, Response, MAX_LINE_BYTES};
use crate::transport::{Endpoint, LoopbackHub, Transport};
use std::io::{self, BufRead, BufReader, Read, Write};
#[cfg(unix)]
use std::path::Path;
use std::path::PathBuf;
use std::time::Duration;

/// Ceiling for one backoff delay, whatever the attempt count.
pub const MAX_BACKOFF_MS: u64 = 5_000;

/// Capped exponential backoff with deterministic jitter, for retrying
/// *transient* failures: a typed `overloaded` response (the server's
/// admission queue is full) or a refused connection (the server is
/// restarting). Permanent failures — bad requests, unknown workloads,
/// protocol errors — are never retried.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Additional attempts after the first (0 = fail fast).
    pub retries: u32,
    /// Base delay before the first retry; attempt `n` waits roughly
    /// `backoff_ms << n`, capped at [`MAX_BACKOFF_MS`].
    pub backoff_ms: u64,
}

impl RetryPolicy {
    /// No retries: a single attempt, fail fast.
    pub const NONE: RetryPolicy = RetryPolicy {
        retries: 0,
        backoff_ms: 0,
    };

    /// The delay before retry number `attempt` (0-based): exponential
    /// growth capped at [`MAX_BACKOFF_MS`], minus up to half of itself as
    /// deterministic jitter seeded by `seed` — so a fleet of scripted
    /// clients hitting the same overloaded server spreads out instead of
    /// retrying in lockstep.
    pub fn delay_ms(&self, attempt: u32, seed: u64) -> u64 {
        let exp = self
            .backoff_ms
            .saturating_mul(1u64 << attempt.min(16))
            .min(MAX_BACKOFF_MS);
        if exp == 0 {
            return 0;
        }
        // splitmix64, same mix the fault injectors use.
        let mut z = seed
            .wrapping_add(u64::from(attempt))
            .wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        let jitter = (z ^ (z >> 31)) % (exp / 2 + 1);
        exp - jitter
    }
}

/// What a [`Client::call`] can fail with, each failure mode typed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport-level failure: connect, write, read, or timeout.
    Io(io::Error),
    /// The server answered with a typed protocol error.
    Server(ErrorBody),
    /// The server's reply line did not decode.
    Protocol(String),
    /// The builder was misconfigured (e.g. an invalid trace id).
    Config(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Server(body) => write!(f, "server error: {body}"),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ClientError::Config(msg) => write!(f, "client configuration error: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl ClientError {
    /// The server-side error body, when that is what failed.
    pub fn server_error(&self) -> Option<&ErrorBody> {
        match self {
            ClientError::Server(body) => Some(body),
            _ => None,
        }
    }

    /// Whether this failure is worth retrying: a typed `overloaded`
    /// response or a refused connection.
    pub fn is_transient(&self) -> bool {
        match self {
            ClientError::Server(body) => body.code == ErrorCode::Overloaded,
            ClientError::Io(e) => e.kind() == io::ErrorKind::ConnectionRefused,
            _ => false,
        }
    }
}

/// Whether a call outcome is worth retrying: a typed `overloaded`
/// response or a refused connection. Everything else — including other
/// typed errors and other I/O failures — is permanent.
#[deprecated(note = "use Client::builder() with a retry_policy, or ClientError::is_transient")]
pub fn is_transient(result: &io::Result<Response>) -> bool {
    match result {
        Ok(Response::Error(body)) => body.code == ErrorCode::Overloaded,
        Err(err) => err.kind() == io::ErrorKind::ConnectionRefused,
        Ok(_) => false,
    }
}

/// Issues `request` with retries per `policy`: reconnect via `connect`
/// each attempt (a refused connection is one of the retryable failures),
/// sleeping through `sleep` between attempts. Returns the final outcome,
/// transient or not, once the budget is exhausted.
///
/// # Errors
///
/// Whatever the last attempt returned.
#[deprecated(note = "use Client::builder() with a retry_policy; retries now live on Client::call")]
pub fn call_with_retry(
    mut connect: impl FnMut() -> io::Result<Client>,
    request: &Request,
    policy: RetryPolicy,
    mut sleep: impl FnMut(Duration),
) -> io::Result<Response> {
    let seed = jitter_seed(&request.encode());
    let mut attempt = 0;
    loop {
        let result = connect().and_then(|mut client| client.call_raw(request));
        #[allow(deprecated)]
        let transient = is_transient(&result);
        if !transient || attempt >= policy.retries {
            return result;
        }
        sleep(Duration::from_millis(policy.delay_ms(attempt, seed)));
        attempt += 1;
    }
}

/// Jitter seed: stable per request shape, so reruns are reproducible,
/// but different requests in a sweep spread their retries.
fn jitter_seed(encoded: &str) -> u64 {
    encoded.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3)
    })
}

/// Configures and connects a [`Client`] (see [`Client::builder`]).
#[derive(Debug, Clone)]
pub struct ClientBuilder {
    endpoint: Endpoint,
    deadline_ms: Option<u64>,
    retry: RetryPolicy,
    trace_id: Option<String>,
    timeout: Option<Duration>,
}

impl ClientBuilder {
    /// Connect over TCP to `addr`.
    #[must_use]
    pub fn addr(mut self, addr: impl Into<String>) -> Self {
        self.endpoint = Endpoint::Tcp(addr.into());
        self
    }

    /// Connect to a Unix-domain socket (unix targets only).
    #[cfg(unix)]
    #[must_use]
    pub fn unix(mut self, path: impl Into<PathBuf>) -> Self {
        self.endpoint = Endpoint::Unix(path.into());
        self
    }

    /// Connect through an in-process loopback hub.
    #[must_use]
    pub fn loopback(mut self, hub: LoopbackHub) -> Self {
        self.endpoint = Endpoint::Loopback(hub);
        self
    }

    /// Connect to an explicit [`Endpoint`].
    #[must_use]
    pub fn endpoint(mut self, endpoint: Endpoint) -> Self {
        self.endpoint = endpoint;
        self
    }

    /// Default per-request deadline, attached to every `simulate`/`sweep`
    /// that does not already carry one.
    #[must_use]
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline_ms = Some(deadline.as_millis() as u64);
        self
    }

    /// Retry transient failures (typed `overloaded`, refused
    /// connections) with this policy; the default is fail-fast.
    #[must_use]
    pub fn retry_policy(mut self, policy: RetryPolicy) -> Self {
        self.retry = policy;
        self
    }

    /// Attach this trace id to every request envelope, so the server
    /// (and, through a router, the backend shard) journals the request
    /// under the caller's id. Must be 1–64 ASCII-alphanumeric bytes.
    #[must_use]
    pub fn trace_id(mut self, trace_id: impl Into<String>) -> Self {
        self.trace_id = Some(trace_id.into());
        self
    }

    /// Read timeout for responses (`None`, the default, blocks forever).
    #[must_use]
    pub fn timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// Validates the configuration and connects. A refused connection is
    /// retried per the builder's [`RetryPolicy`] (a restarting server is
    /// exactly the transient failure the policy describes); every other
    /// failure is immediate.
    ///
    /// # Errors
    ///
    /// [`ClientError::Config`] for an invalid trace id;
    /// [`ClientError::Io`] for the connect failure.
    pub fn connect(self) -> Result<Client, ClientError> {
        if let Some(id) = &self.trace_id {
            let valid =
                !id.is_empty() && id.len() <= 64 && id.bytes().all(|b| b.is_ascii_alphanumeric());
            if !valid {
                return Err(ClientError::Config(format!(
                    "trace id {id:?} must be 1-64 ASCII-alphanumeric bytes"
                )));
            }
        }
        let seed = jitter_seed(&format!("{:?}", self.endpoint));
        let mut attempt = 0;
        let stream = loop {
            match self.endpoint.connect() {
                Ok(stream) => break stream,
                Err(e)
                    if e.kind() == io::ErrorKind::ConnectionRefused
                        && attempt < self.retry.retries =>
                {
                    std::thread::sleep(Duration::from_millis(self.retry.delay_ms(attempt, seed)));
                    attempt += 1;
                }
                Err(e) => return Err(e.into()),
            }
        };
        if let Some(timeout) = self.timeout {
            stream.set_read_timeout(Some(timeout))?;
        }
        let reader = BufReader::new(stream.try_clone_transport()?);
        Ok(Client {
            reader,
            writer: stream,
            endpoint: self.endpoint,
            deadline_ms: self.deadline_ms,
            retry: self.retry,
            trace_id: self.trace_id,
            timeout: self.timeout,
        })
    }
}

/// A connected client over any [`Transport`].
///
/// The `Debug` form shows the endpoint and policy, not the stream.
pub struct Client {
    reader: BufReader<Box<dyn Transport>>,
    writer: Box<dyn Transport>,
    endpoint: Endpoint,
    deadline_ms: Option<u64>,
    retry: RetryPolicy,
    trace_id: Option<String>,
    timeout: Option<Duration>,
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client")
            .field("endpoint", &self.endpoint)
            .field("deadline_ms", &self.deadline_ms)
            .field("retry", &self.retry)
            .field("trace_id", &self.trace_id)
            .finish_non_exhaustive()
    }
}

impl Client {
    /// A builder defaulting to TCP against the default serve address,
    /// no deadline, no retries, no trace id.
    pub fn builder() -> ClientBuilder {
        ClientBuilder {
            endpoint: Endpoint::Tcp("127.0.0.1:4085".to_string()),
            deadline_ms: None,
            retry: RetryPolicy::NONE,
            trace_id: None,
            timeout: None,
        }
    }

    /// Connects over TCP, e.g. `Client::connect("127.0.0.1:4085")`.
    ///
    /// # Errors
    ///
    /// Returns the connect or clone failure.
    #[deprecated(note = "use Client::builder().addr(..).connect()")]
    pub fn connect(addr: &str) -> io::Result<Client> {
        Client::builder().addr(addr).connect().map_err(io_from)
    }

    /// Connects to a Unix-domain socket (unix targets only).
    ///
    /// # Errors
    ///
    /// Returns the connect or clone failure.
    #[cfg(unix)]
    #[deprecated(note = "use Client::builder().unix(..).connect()")]
    pub fn connect_unix(path: &Path) -> io::Result<Client> {
        Client::builder().unix(path).connect().map_err(io_from)
    }

    /// Sets a read timeout for responses (None = block forever).
    ///
    /// # Errors
    ///
    /// Propagates the socket option failure.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.timeout = timeout;
        self.reader.get_ref().set_read_timeout(timeout)
    }

    /// Sends one request and returns its typed outcome: deadline and
    /// trace id from the builder are attached, transient failures are
    /// retried per the builder's [`RetryPolicy`] (reconnecting when the
    /// connection itself failed), and a server-side error body comes
    /// back as [`ClientError::Server`].
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        let effective = self.with_deadline(request);
        let line = effective.encode_with_trace(self.trace_id.as_deref());
        let seed = jitter_seed(&line);
        let policy = self.retry;
        let mut attempt = 0;
        loop {
            let outcome = match self.exchange(&line) {
                Ok(Response::Error(body)) => Err(ClientError::Server(body)),
                Ok(response) => Ok(response),
                Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                    Err(ClientError::Protocol(e.to_string()))
                }
                Err(e) => Err(ClientError::Io(e)),
            };
            let transient = outcome.as_ref().err().is_some_and(ClientError::is_transient);
            if !transient || attempt >= policy.retries {
                return outcome;
            }
            std::thread::sleep(Duration::from_millis(policy.delay_ms(attempt, seed)));
            attempt += 1;
            // A refused connection means this stream is dead; transient
            // overloads keep the existing connection.
            if matches!(&outcome, Err(ClientError::Io(_))) {
                self.reconnect()?;
            }
        }
    }

    /// Sends one request and reads its raw response — no deadline or
    /// trace injection, no retries, server errors as `Ok(Error(..))`.
    /// The untyped surface [`call_with_retry`] and wire-level tests use.
    ///
    /// # Errors
    ///
    /// Returns I/O failures, a closed connection (`UnexpectedEof`), or an
    /// undecodable response line (`InvalidData`).
    pub fn call_raw(&mut self, request: &Request) -> io::Result<Response> {
        self.exchange(&request.encode())
    }

    /// Sends an arbitrary line (no newline) and reads one response.
    /// This is the hook the malformed-input tests use to put invalid
    /// bytes on the wire.
    ///
    /// # Errors
    ///
    /// Same as [`Client::call_raw`].
    pub fn send_raw_line(&mut self, line: &str) -> io::Result<Response> {
        self.exchange(line)
    }

    /// Attaches the builder's default deadline to a job request that
    /// carries none.
    fn with_deadline(&self, request: &Request) -> Request {
        let Some(default_ms) = self.deadline_ms else {
            return request.clone();
        };
        let mut request = request.clone();
        match &mut request {
            Request::Simulate(spec) if spec.deadline_ms.is_none() => {
                spec.deadline_ms = Some(default_ms);
            }
            Request::Sweep(spec) if spec.deadline_ms.is_none() => {
                spec.deadline_ms = Some(default_ms);
            }
            _ => {}
        }
        request
    }

    fn reconnect(&mut self) -> Result<(), ClientError> {
        let stream = self.endpoint.connect()?;
        if let Some(timeout) = self.timeout {
            stream.set_read_timeout(Some(timeout))?;
        }
        self.reader = BufReader::new(stream.try_clone_transport()?);
        self.writer = stream;
        Ok(())
    }

    fn exchange(&mut self, line: &str) -> io::Result<Response> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        self.read_response()
    }

    fn read_response(&mut self) -> io::Result<Response> {
        let mut line = String::new();
        // Responses can legitimately exceed the *request* line cap (the
        // catalog lists 49 profiles), so allow a generous multiple.
        let cap = MAX_LINE_BYTES * 8;
        loop {
            let before = line.len();
            let n = self
                .reader
                .by_ref()
                .take((cap - before) as u64)
                .read_line(&mut line)?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ));
            }
            if line.ends_with('\n') {
                break;
            }
            if line.len() >= cap {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "response line exceeds the client cap",
                ));
            }
        }
        Response::decode(line.trim_end())
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

/// Maps a [`ClientError`] back onto the deprecated io-flavored surface.
fn io_from(e: ClientError) -> io::Error {
    match e {
        ClientError::Io(e) => e,
        other => io::Error::other(other.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_grows_exponentially_and_caps() {
        let policy = RetryPolicy {
            retries: 10,
            backoff_ms: 100,
        };
        // Jitter subtracts at most half, so each delay sits in
        // [ceil(exp/2), exp] for exp = min(100 << n, 5000).
        for (attempt, exp) in [(0u32, 100u64), (1, 200), (2, 400), (6, 5_000), (16, 5_000)] {
            let d = policy.delay_ms(attempt, 42);
            assert!(
                d >= exp / 2 && d <= exp,
                "attempt {attempt}: delay {d} outside [{}, {exp}]",
                exp / 2
            );
        }
        // Huge attempt counts must not overflow the shift.
        let _ = policy.delay_ms(u32::MAX, 42);
    }

    #[test]
    fn delay_is_deterministic_per_seed() {
        let policy = RetryPolicy {
            retries: 3,
            backoff_ms: 250,
        };
        assert_eq!(policy.delay_ms(2, 7), policy.delay_ms(2, 7));
        // Zero base means zero wait, jitter included.
        let eager = RetryPolicy {
            retries: 3,
            backoff_ms: 0,
        };
        assert_eq!(eager.delay_ms(5, 7), 0);
    }

    #[test]
    fn transient_classification() {
        let overloaded = ClientError::Server(ErrorBody::new(ErrorCode::Overloaded, "queue full"));
        assert!(overloaded.is_transient());
        let refused =
            ClientError::Io(io::Error::new(io::ErrorKind::ConnectionRefused, "refused"));
        assert!(refused.is_transient());
        let bad = ClientError::Server(ErrorBody::new(ErrorCode::BadRequest, "nope"));
        assert!(!bad.is_transient());
        let eof = ClientError::Io(io::Error::new(io::ErrorKind::UnexpectedEof, "closed"));
        assert!(!eof.is_transient());
        assert!(!ClientError::Protocol("junk".to_string()).is_transient());
    }

    #[test]
    #[allow(deprecated)]
    fn retry_exhausts_budget_on_refused_connections() {
        let mut attempts = 0u32;
        let mut sleeps: Vec<u64> = Vec::new();
        let policy = RetryPolicy {
            retries: 3,
            backoff_ms: 10,
        };
        let result = call_with_retry(
            || {
                attempts += 1;
                Err(io::Error::new(io::ErrorKind::ConnectionRefused, "refused"))
            },
            &Request::Ping,
            policy,
            |d| sleeps.push(d.as_millis() as u64),
        );
        assert_eq!(attempts, 4, "1 initial try + 3 retries");
        assert_eq!(sleeps.len(), 3, "sleeps only between attempts");
        assert_eq!(result.unwrap_err().kind(), io::ErrorKind::ConnectionRefused);
        // Backoff must not shrink below the jittered floor of the base.
        assert!(sleeps.iter().all(|&ms| ms <= MAX_BACKOFF_MS));
    }

    #[test]
    #[allow(deprecated)]
    fn permanent_failures_do_not_retry() {
        let mut attempts = 0u32;
        let policy = RetryPolicy {
            retries: 5,
            backoff_ms: 10,
        };
        let result = call_with_retry(
            || {
                attempts += 1;
                Err(io::Error::new(io::ErrorKind::PermissionDenied, "denied"))
            },
            &Request::Ping,
            policy,
            |_| panic!("must not sleep on a permanent failure"),
        );
        assert_eq!(attempts, 1);
        assert_eq!(result.unwrap_err().kind(), io::ErrorKind::PermissionDenied);
    }

    #[test]
    fn builder_rejects_junk_trace_ids() {
        let err = Client::builder()
            .trace_id("has spaces!")
            .connect()
            .unwrap_err();
        assert!(matches!(err, ClientError::Config(_)), "{err}");
        let err = Client::builder().trace_id("").connect().unwrap_err();
        assert!(matches!(err, ClientError::Config(_)), "{err}");
    }

    #[test]
    fn deadline_is_attached_only_when_absent() {
        use crate::transport::Listener as _;
        let hub = LoopbackHub::new();
        let client = Client::builder()
            .loopback(hub.clone())
            .deadline(Duration::from_millis(750))
            .connect()
            .expect("loopback connect");
        let _server_end = hub.accept_transport().expect("accept");
        let bare = Request::Simulate(crate::protocol::SimulateSpec {
            workload: "VCCOM".to_string(),
            len: 1,
            seed: None,
            cache: crate::protocol::CacheSpec {
                size: 1024,
                line: 16,
                ways: None,
                purge: None,
            },
            policy: None,
            deadline_ms: None,
        });
        match client.with_deadline(&bare) {
            Request::Simulate(spec) => assert_eq!(spec.deadline_ms, Some(750)),
            other => panic!("unexpected: {other:?}"),
        }
        let mut explicit = bare.clone();
        if let Request::Simulate(spec) = &mut explicit {
            spec.deadline_ms = Some(10);
        }
        match client.with_deadline(&explicit) {
            Request::Simulate(spec) => assert_eq!(spec.deadline_ms, Some(10)),
            other => panic!("unexpected: {other:?}"),
        }
    }
}
