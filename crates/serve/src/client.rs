//! A blocking NDJSON client for the serve protocol.
//!
//! One request per [`Client::call`]; responses come back in order, so a
//! single connection is also a valid way to issue a request sequence.

use crate::protocol::{Request, Response, MAX_LINE_BYTES};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;
#[cfg(unix)]
use std::path::Path;
use std::time::Duration;

enum Transport {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

/// A connected client (TCP, or Unix socket on unix targets).
pub struct Client {
    reader: BufReader<Transport>,
    writer: Transport,
}

impl io::Read for Transport {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Transport::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Transport::Unix(s) => s.read(buf),
        }
    }
}

impl io::Write for Transport {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Transport::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Transport::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Transport::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Transport::Unix(s) => s.flush(),
        }
    }
}

impl Client {
    /// Connects over TCP, e.g. `Client::connect("127.0.0.1:4085")`.
    ///
    /// # Errors
    ///
    /// Returns the connect or clone failure.
    pub fn connect(addr: &str) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let reader = Transport::Tcp(stream.try_clone()?);
        Ok(Client {
            reader: BufReader::new(reader),
            writer: Transport::Tcp(stream),
        })
    }

    /// Connects to a Unix-domain socket (unix targets only).
    ///
    /// # Errors
    ///
    /// Returns the connect or clone failure.
    #[cfg(unix)]
    pub fn connect_unix(path: &Path) -> io::Result<Client> {
        let stream = UnixStream::connect(path)?;
        let reader = Transport::Unix(stream.try_clone()?);
        Ok(Client {
            reader: BufReader::new(reader),
            writer: Transport::Unix(stream),
        })
    }

    /// Sets a read timeout for responses (None = block forever).
    ///
    /// # Errors
    ///
    /// Propagates the socket option failure.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        match self.reader.get_ref() {
            Transport::Tcp(s) => s.set_read_timeout(timeout),
            #[cfg(unix)]
            Transport::Unix(s) => s.set_read_timeout(timeout),
        }
    }

    /// Sends one request and reads its response.
    ///
    /// # Errors
    ///
    /// Returns I/O failures, a closed connection (`UnexpectedEof`), or an
    /// undecodable response line (`InvalidData`).
    pub fn call(&mut self, request: &Request) -> io::Result<Response> {
        self.send_raw_line(&request.encode())
    }

    /// Sends an arbitrary line (no newline) and reads one response.
    /// This is the hook the malformed-input tests use to put invalid
    /// bytes on the wire.
    ///
    /// # Errors
    ///
    /// Same as [`Client::call`].
    pub fn send_raw_line(&mut self, line: &str) -> io::Result<Response> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        self.read_response()
    }

    fn read_response(&mut self) -> io::Result<Response> {
        let mut line = String::new();
        // Responses can legitimately exceed the *request* line cap (the
        // catalog lists 49 profiles), so allow a generous multiple.
        let cap = MAX_LINE_BYTES * 8;
        loop {
            let before = line.len();
            let n = self
                .reader
                .by_ref()
                .take((cap - before) as u64)
                .read_line(&mut line)?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ));
            }
            if line.ends_with('\n') {
                break;
            }
            if line.len() >= cap {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "response line exceeds the client cap",
                ));
            }
        }
        Response::decode(line.trim_end())
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}
