//! A bounded MPMC work queue with explicit admission control.
//!
//! The server's load-shedding policy lives here: [`BoundedQueue::try_push`]
//! never blocks and never grows the queue past its capacity — a full
//! queue returns [`PushError::Full`] and the connection handler turns
//! that into a typed `overloaded` response immediately. This keeps tail
//! latency bounded under overload instead of letting every client wait
//! on an ever-longer backlog.
//!
//! [`BoundedQueue::pop`] blocks workers until an item arrives; after
//! [`BoundedQueue::close`], pops drain whatever is still queued (the
//! graceful-shutdown contract: admitted work completes) and then return
//! `None` so workers can exit.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

/// Why [`BoundedQueue::try_push`] refused an item; the item comes back.
#[derive(Debug)]
pub enum PushError<T> {
    /// The queue is at capacity (admission control rejection).
    Full(T),
    /// The queue is closed (server draining).
    Closed(T),
}

/// A bounded thread-safe FIFO. Clones share the same queue.
pub struct BoundedQueue<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Clone for BoundedQueue<T> {
    fn clone(&self) -> Self {
        BoundedQueue {
            shared: Arc::clone(&self.shared),
        }
    }
}

struct Shared<T> {
    state: Mutex<State<T>>,
    available: Condvar,
    capacity: usize,
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
    high_water: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue admitting at most `capacity` items (min 1).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            shared: Arc::new(Shared {
                state: Mutex::new(State {
                    items: VecDeque::new(),
                    closed: false,
                    high_water: 0,
                }),
                available: Condvar::new(),
                capacity: capacity.max(1),
            }),
        }
    }

    /// Admits `item` if there is room; never blocks.
    ///
    /// # Errors
    ///
    /// Returns the item back inside [`PushError::Full`] when at capacity
    /// or [`PushError::Closed`] after [`close`](Self::close).
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut state = self.lock();
        if state.closed {
            return Err(PushError::Closed(item));
        }
        if state.items.len() >= self.shared.capacity {
            return Err(PushError::Full(item));
        }
        state.items.push_back(item);
        state.high_water = state.high_water.max(state.items.len());
        drop(state);
        self.shared.available.notify_one();
        Ok(())
    }

    /// Blocks until an item is available and returns it, or `None` once
    /// the queue is closed *and* drained.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.lock();
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self
                .shared
                .available
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Stops admission; queued items still drain through `pop`.
    pub fn close(&self) {
        self.lock().closed = true;
        self.shared.available.notify_all();
    }

    /// Items queued right now.
    pub fn depth(&self) -> usize {
        self.lock().items.len()
    }

    /// Highest depth ever observed.
    pub fn high_water(&self) -> usize {
        self.lock().high_water
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        self.shared.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn fifo_order_and_depth() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.depth(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.depth(), 0);
        assert_eq!(q.high_water(), 2);
    }

    #[test]
    fn full_queue_rejects_without_blocking() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        match q.try_push(3) {
            Err(PushError::Full(3)) => {}
            other => panic!("expected Full(3), got {other:?}"),
        }
        // Rejection must not count toward the high-water mark.
        assert_eq!(q.high_water(), 2);
    }

    #[test]
    fn close_drains_then_ends() {
        let q = BoundedQueue::new(4);
        q.try_push("job").unwrap();
        q.close();
        match q.try_push("late") {
            Err(PushError::Closed("late")) => {}
            other => panic!("expected Closed, got {other:?}"),
        }
        assert_eq!(q.pop(), Some("job"), "admitted work still drains");
        assert_eq!(q.pop(), None, "then pops return None");
    }

    #[test]
    fn pop_blocks_until_push() {
        let q = BoundedQueue::new(1);
        let q2 = q.clone();
        let handle = std::thread::spawn(move || q2.pop());
        std::thread::sleep(Duration::from_millis(20));
        q.try_push(42).unwrap();
        assert_eq!(handle.join().unwrap(), Some(42));
    }

    #[test]
    fn close_wakes_blocked_workers() {
        let q: BoundedQueue<u32> = BoundedQueue::new(1);
        let q2 = q.clone();
        let handle = std::thread::spawn(move || q2.pop());
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(handle.join().unwrap(), None);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let q = BoundedQueue::new(0);
        q.try_push(1).unwrap();
        assert!(matches!(q.try_push(2), Err(PushError::Full(2))));
    }
}
