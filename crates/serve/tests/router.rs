//! End-to-end acceptance tests for the shard router.
//!
//! Pinned guarantees: a routed answer is bit-identical to asking a
//! backend directly (the router forwards, it never recomputes or
//! rewrites); stats expose the shard counters; a supplied trace id
//! survives the extra hop; and when a backend dies mid-run every
//! outstanding request resolves to a typed error or a hedged success —
//! never a hang.

use smith85_serve::{
    CacheSpec, Client, ClientError, ErrorCode, Request, Response, RouterOptions, ServeOptions,
    Server, SimulateSpec,
};
use std::time::{Duration, Instant};

fn spawn_backend() -> smith85_serve::RunningServer {
    Server::spawn(
        ServeOptions::builder()
            .addr("127.0.0.1:0")
            .build()
            .expect("serve options"),
    )
    .expect("spawn backend")
}

fn spawn_router(backends: Vec<String>, probe_interval_ms: u64) -> smith85_serve::RunningServer {
    Server::spawn(
        ServeOptions::builder()
            .addr("127.0.0.1:0")
            .router(RouterOptions {
                backends,
                probe_interval_ms,
                ..RouterOptions::default()
            })
            .build()
            .expect("serve options"),
    )
    .expect("spawn router")
}

fn simulate_request(workload: &str, len: usize, size: usize) -> Request {
    Request::Simulate(SimulateSpec {
        workload: workload.to_string(),
        len,
        seed: None,
        cache: CacheSpec {
            size,
            line: 16,
            ways: None,
            purge: None,
        },
        policy: None,
        deadline_ms: None,
    })
}

/// A response with per-execution noise (queue/exec timing, trace id)
/// zeroed out, so two executions of the same deterministic request can
/// be compared byte for byte.
fn normalized(response: &Response) -> String {
    let mut response = response.clone();
    match &mut response {
        Response::Simulate(r) => {
            r.queue_ms = 0;
            r.exec_ms = 0;
            r.trace_id = String::new();
        }
        Response::Sweep(r) => {
            r.queue_ms = 0;
            r.exec_ms = 0;
            r.trace_id = String::new();
        }
        _ => {}
    }
    response.encode()
}

fn stats(client: &mut Client) -> smith85_serve::StatsResult {
    match client.call(&Request::Stats).expect("stats") {
        Response::Stats(s) => s,
        other => panic!("expected stats, got {}", other.encode()),
    }
}

#[test]
fn routed_answers_are_bit_identical_to_direct_backend_calls() {
    let backend_a = spawn_backend();
    let backend_b = spawn_backend();
    let router = spawn_router(
        vec![backend_a.addr().to_string(), backend_b.addr().to_string()],
        500,
    );

    let mut via_router = Client::builder()
        .addr(router.addr().to_string())
        .connect()
        .expect("connect router");
    let mut direct = Client::builder()
        .addr(backend_a.addr().to_string())
        .connect()
        .expect("connect backend");

    let workloads = ["MVS1", "VCCOM", "ZGREP", "TWOD"];
    for (i, workload) in workloads.iter().enumerate() {
        let request = simulate_request(workload, 2_000 + 500 * i, 4_096);
        let routed = via_router.call(&request).expect("routed call");
        let straight = direct.call(&request).expect("direct call");
        assert_eq!(
            normalized(&routed),
            normalized(&straight),
            "routed {workload} answer must be bit-identical to a direct call"
        );
    }

    let s = stats(&mut via_router);
    let counters = s.router.expect("router node must report shard counters");
    assert_eq!(counters.shards, 2);
    assert_eq!(counters.healthy, 2, "both backends are up");
    assert_eq!(
        counters.forwarded,
        workloads.len() as u64,
        "every simulate must have been forwarded, none answered locally"
    );
    assert_eq!(counters.shard_overloads, 0);

    // Control-plane requests are answered by the router itself and match
    // what any backend would say.
    let routed_catalog = via_router.call(&Request::Catalog).expect("catalog");
    let direct_catalog = direct.call(&Request::Catalog).expect("catalog");
    assert_eq!(routed_catalog.encode(), direct_catalog.encode());

    router.stop().unwrap();
    backend_a.stop().unwrap();
    backend_b.stop().unwrap();
}

#[test]
fn trace_ids_survive_the_router_hop() {
    let backend = spawn_backend();
    let router = spawn_router(vec![backend.addr().to_string()], 500);

    let mut client = Client::builder()
        .addr(router.addr().to_string())
        .trace_id("hop2hop77")
        .connect()
        .expect("connect");
    match client
        .call(&simulate_request("VCCOM", 2_000, 4_096))
        .expect("routed call")
    {
        Response::Simulate(r) => assert_eq!(
            r.trace_id, "hop2hop77",
            "the backend must echo the client's trace id through the router"
        ),
        other => panic!("expected simulate result, got {}", other.encode()),
    }

    router.stop().unwrap();
    backend.stop().unwrap();
}

#[test]
fn killed_backend_means_typed_errors_or_hedged_success_never_a_hang() {
    let backend_a = spawn_backend();
    let backend_b = spawn_backend();
    let router = spawn_router(
        vec![backend_a.addr().to_string(), backend_b.addr().to_string()],
        100,
    );
    let router_addr = router.addr().to_string();

    // Warm the ring with both backends alive.
    let mut client = Client::builder()
        .addr(router_addr.as_str())
        .timeout(Duration::from_secs(30))
        .connect()
        .expect("connect");
    client
        .call(&simulate_request("VCCOM", 2_000, 4_096))
        .expect("warm-up call");

    // Kill one backend mid-run: its listener closes, in-flight work is
    // torn down, future connects are refused.
    backend_b.stop().expect("stop backend b");

    // Every request issued from now on must resolve quickly: either a
    // hedged/direct success on the surviving shard or a typed error.
    let mut successes = 0u32;
    let mut typed_errors = 0u32;
    let workloads = ["MVS1", "FCOMP1", "VCCOM", "VSPICE", "ZGREP", "TWOD", "WATEX", "PL0"];
    for (i, workload) in workloads.iter().enumerate() {
        let started = Instant::now();
        let mut client = Client::builder()
            .addr(router_addr.as_str())
            .timeout(Duration::from_secs(30))
            .connect()
            .expect("connect");
        match client.call(&simulate_request(workload, 1_500 + 100 * i, 8_192)) {
            Ok(Response::Simulate(_)) => successes += 1,
            Ok(other) => panic!("unexpected success payload: {}", other.encode()),
            Err(ClientError::Server(body)) => {
                assert!(
                    matches!(body.code, ErrorCode::Overloaded | ErrorCode::Internal),
                    "degradation must be a typed transient error, got {:?}: {}",
                    body.code,
                    body.message
                );
                typed_errors += 1;
            }
            Err(other) => panic!("request must not fail untyped: {other}"),
        }
        assert!(
            started.elapsed() < Duration::from_secs(25),
            "request {i} must not hang (took {:?})",
            started.elapsed()
        );
    }
    assert_eq!(successes + typed_errors, workloads.len() as u32);
    assert!(
        successes > 0,
        "hedging to the surviving shard must rescue at least some requests"
    );

    // Once the prober has marked the dead shard down, everything lands
    // on the survivor and succeeds outright.
    std::thread::sleep(Duration::from_millis(400));
    let mut client = Client::builder()
        .addr(router_addr.as_str())
        .timeout(Duration::from_secs(30))
        .connect()
        .expect("connect");
    for workload in &workloads {
        match client.call(&simulate_request(workload, 1_200, 4_096)) {
            Ok(Response::Simulate(_)) => {}
            other => panic!("steady-state after failover must succeed, got {other:?}"),
        }
    }
    let s = stats(&mut client);
    let counters = s.router.expect("router counters");
    assert_eq!(counters.healthy, 1, "the dead shard must be marked down");
    assert!(counters.health_probes > 0, "the prober must be running");

    router.stop().unwrap();
    backend_a.stop().unwrap();
}
