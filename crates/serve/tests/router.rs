//! End-to-end acceptance tests for the shard router.
//!
//! Pinned guarantees: a routed answer is bit-identical to asking a
//! backend directly (the router forwards, it never recomputes or
//! rewrites); stats expose the shard counters; a supplied trace id
//! survives the extra hop; and when a backend dies mid-run every
//! outstanding request resolves to a typed error or a hedged success —
//! never a hang.

use smith85_serve::{
    CacheSpec, Client, ClientError, ErrorCode, Request, Response, RouterOptions, ServeOptions,
    Server, SimulateSpec,
};
use std::time::{Duration, Instant};

fn spawn_backend() -> smith85_serve::RunningServer {
    Server::spawn(
        ServeOptions::builder()
            .addr("127.0.0.1:0")
            .build()
            .expect("serve options"),
    )
    .expect("spawn backend")
}

fn spawn_router(backends: Vec<String>, probe_interval_ms: u64) -> smith85_serve::RunningServer {
    Server::spawn(
        ServeOptions::builder()
            .addr("127.0.0.1:0")
            .router(RouterOptions {
                backends,
                probe_interval_ms,
                ..RouterOptions::default()
            })
            .build()
            .expect("serve options"),
    )
    .expect("spawn router")
}

fn simulate_request(workload: &str, len: usize, size: usize) -> Request {
    Request::Simulate(SimulateSpec {
        workload: workload.to_string(),
        len,
        seed: None,
        cache: CacheSpec {
            size,
            line: 16,
            ways: None,
            purge: None,
        },
        policy: None,
        deadline_ms: None,
    })
}

/// A response with per-execution noise (queue/exec timing, trace id)
/// zeroed out, so two executions of the same deterministic request can
/// be compared byte for byte.
fn normalized(response: &Response) -> String {
    let mut response = response.clone();
    match &mut response {
        Response::Simulate(r) => {
            r.queue_ms = 0;
            r.exec_ms = 0;
            r.trace_id = String::new();
        }
        Response::Sweep(r) => {
            r.queue_ms = 0;
            r.exec_ms = 0;
            r.trace_id = String::new();
        }
        _ => {}
    }
    response.encode()
}

fn stats(client: &mut Client) -> smith85_serve::StatsResult {
    match client.call(&Request::Stats).expect("stats") {
        Response::Stats(s) => s,
        other => panic!("expected stats, got {}", other.encode()),
    }
}

#[test]
fn routed_answers_are_bit_identical_to_direct_backend_calls() {
    let backend_a = spawn_backend();
    let backend_b = spawn_backend();
    let router = spawn_router(
        vec![backend_a.addr().to_string(), backend_b.addr().to_string()],
        500,
    );

    let mut via_router = Client::builder()
        .addr(router.addr().to_string())
        .connect()
        .expect("connect router");
    let mut direct = Client::builder()
        .addr(backend_a.addr().to_string())
        .connect()
        .expect("connect backend");

    let workloads = ["MVS1", "VCCOM", "ZGREP", "TWOD"];
    for (i, workload) in workloads.iter().enumerate() {
        let request = simulate_request(workload, 2_000 + 500 * i, 4_096);
        let routed = via_router.call(&request).expect("routed call");
        let straight = direct.call(&request).expect("direct call");
        assert_eq!(
            normalized(&routed),
            normalized(&straight),
            "routed {workload} answer must be bit-identical to a direct call"
        );
    }

    let s = stats(&mut via_router);
    let counters = s.router.expect("router node must report shard counters");
    assert_eq!(counters.shards, 2);
    assert_eq!(counters.healthy, 2, "both backends are up");
    assert_eq!(
        counters.forwarded,
        workloads.len() as u64,
        "every simulate must have been forwarded, none answered locally"
    );
    assert_eq!(counters.shard_overloads, 0);

    // Control-plane requests are answered by the router itself and match
    // what any backend would say.
    let routed_catalog = via_router.call(&Request::Catalog).expect("catalog");
    let direct_catalog = direct.call(&Request::Catalog).expect("catalog");
    assert_eq!(routed_catalog.encode(), direct_catalog.encode());

    router.stop().unwrap();
    backend_a.stop().unwrap();
    backend_b.stop().unwrap();
}

#[test]
fn trace_ids_survive_the_router_hop() {
    let backend = spawn_backend();
    let router = spawn_router(vec![backend.addr().to_string()], 500);

    let mut client = Client::builder()
        .addr(router.addr().to_string())
        .trace_id("hop2hop77")
        .connect()
        .expect("connect");
    match client
        .call(&simulate_request("VCCOM", 2_000, 4_096))
        .expect("routed call")
    {
        Response::Simulate(r) => assert_eq!(
            r.trace_id, "hop2hop77",
            "the backend must echo the client's trace id through the router"
        ),
        other => panic!("expected simulate result, got {}", other.encode()),
    }

    router.stop().unwrap();
    backend.stop().unwrap();
}

fn fetch_metrics(client: &mut Client) -> smith85_obs::RegistrySnapshot {
    match client.call(&Request::Metrics).expect("metrics") {
        Response::Metrics(snapshot) => snapshot,
        other => panic!("expected metrics, got {}", other.encode()),
    }
}

fn counter_value(
    snapshot: &smith85_obs::RegistrySnapshot,
    name: &str,
    labels: &[(&str, &str)],
) -> u64 {
    snapshot
        .counters
        .iter()
        .find(|c| {
            c.name == name
                && c.labels.len() == labels.len()
                && labels
                    .iter()
                    .all(|(k, v)| c.labels.iter().any(|(lk, lv)| lk == k && lv == v))
        })
        .map(|c| c.value)
        .unwrap_or(0)
}

fn stale_flag(snapshot: &smith85_obs::RegistrySnapshot, shard: &str) -> Option<f64> {
    snapshot
        .gauges
        .iter()
        .find(|g| {
            g.name == "router_shard_stale"
                && g.labels
                    .iter()
                    .any(|(k, v)| k == "shard" && v == shard)
        })
        .map(|g| g.value)
}

#[test]
fn federated_metrics_sum_shards_exactly_and_mark_dead_shards_stale() {
    let backend_a = spawn_backend();
    let backend_b = spawn_backend();
    let addr_a = backend_a.addr().to_string();
    let addr_b = backend_b.addr().to_string();
    let router = Server::spawn(
        ServeOptions::builder()
            .addr("127.0.0.1:0")
            .metrics_addr("127.0.0.1:0")
            .router(RouterOptions {
                backends: vec![addr_a.clone(), addr_b.clone()],
                probe_interval_ms: 100,
                ..RouterOptions::default()
            })
            .build()
            .expect("serve options"),
    )
    .expect("spawn router");

    // Spread work across both shards, then quiesce: pool counters only
    // move on simulate traffic, so they are stable across the scrapes
    // below (health probes are pings and do not touch them).
    let mut via_router = Client::builder()
        .addr(router.addr().to_string())
        .connect()
        .expect("connect router");
    for (i, workload) in ["MVS1", "VCCOM", "ZGREP", "TWOD", "WATEX", "PL0"].iter().enumerate() {
        via_router
            .call(&simulate_request(workload, 1_500 + 100 * i, 4_096))
            .expect("routed call");
    }

    let mut direct_a = Client::builder().addr(addr_a.clone()).connect().expect("connect a");
    let mut direct_b = Client::builder().addr(addr_b.clone()).connect().expect("connect b");
    let snap_a = fetch_metrics(&mut direct_a);
    let snap_b = fetch_metrics(&mut direct_b);
    let federated = fetch_metrics(&mut via_router);

    // The unlabeled aggregate equals the exact sum of the per-shard
    // answers (the router itself runs no simulations), and the same
    // series reappear under shard labels.
    for name in ["pool_misses_total", "pool_materialized_bytes_total"] {
        let direct_sum = counter_value(&snap_a, name, &[]) + counter_value(&snap_b, name, &[]);
        assert!(direct_sum > 0, "{name} must have moved on the shards");
        assert_eq!(
            counter_value(&federated, name, &[]),
            direct_sum,
            "aggregate {name} must be the exact shard sum"
        );
        assert_eq!(
            counter_value(&federated, name, &[("shard", addr_a.as_str())])
                + counter_value(&federated, name, &[("shard", addr_b.as_str())]),
            direct_sum,
            "shard-labeled {name} series must add up to the same total"
        );
    }
    // Histograms federate bucket-wise: the aggregate count is the exact
    // sum of the shard counts plus the router's own contribution (its
    // worker pool observes serve_exec_ms once per forwarded job).
    let hist_count = |snap: &smith85_obs::RegistrySnapshot, labeled: bool| -> u64 {
        snap.histograms
            .iter()
            .filter(|h| h.name == "serve_exec_ms" && h.labels.is_empty() != labeled)
            .map(|h| h.count)
            .sum()
    };
    let direct_hist = hist_count(&snap_a, false) + hist_count(&snap_b, false);
    let forwarded = stats(&mut via_router)
        .router
        .expect("router counters")
        .forwarded;
    assert_eq!(
        hist_count(&federated, false),
        direct_hist + forwarded,
        "aggregate serve_exec_ms count must be shards + router's own forwards"
    );
    assert_eq!(
        hist_count(&federated, true),
        direct_hist,
        "shard-labeled serve_exec_ms counts must match the direct answers"
    );
    assert_eq!(stale_flag(&federated, &addr_a), Some(0.0));
    assert_eq!(stale_flag(&federated, &addr_b), Some(0.0));

    // The router's Prometheus endpoint serves the same federated view:
    // shard-labeled series present, every line exposition-parseable.
    let metrics_addr = router.metrics_addr().expect("metrics endpoint bound");
    let body = scrape(metrics_addr);
    assert!(
        body.contains("shard=\""),
        "federated exposition must carry shard labels:\n{body}"
    );
    for line in body.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (_, value) = line.rsplit_once(' ').unwrap_or_else(|| panic!("bad line {line:?}"));
        assert!(value.parse::<f64>().is_ok(), "unparseable value in {line:?}");
    }

    // Kill shard B. Once the prober notices, a scrape still succeeds:
    // B contributes only a stale marker, A keeps reporting, and the
    // aggregate no longer includes the dead shard's fresh values.
    backend_b.stop().expect("stop backend b");
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let s = stats(&mut via_router);
        if s.router.as_ref().expect("router counters").healthy == 1 {
            break;
        }
        assert!(Instant::now() < deadline, "prober never marked the dead shard down");
        std::thread::sleep(Duration::from_millis(50));
    }
    let after = fetch_metrics(&mut via_router);
    assert_eq!(stale_flag(&after, &addr_b), Some(1.0), "dead shard must read stale");
    assert_eq!(stale_flag(&after, &addr_a), Some(0.0), "live shard stays fresh");
    assert_eq!(
        counter_value(&after, "pool_misses_total", &[]),
        counter_value(&snap_a, "pool_misses_total", &[]),
        "aggregate must now be the live shard alone"
    );
    assert_eq!(
        counter_value(&after, "pool_misses_total", &[("shard", addr_b.as_str())]),
        0,
        "no fresh labeled series for a stale shard"
    );
    let s = stats(&mut via_router);
    let counters = s.router.expect("router counters");
    assert!(counters.federated_shards >= 3, "live-shard absorptions counted");
    assert!(counters.stale_shards >= 1, "stale shard counted");

    router.stop().unwrap();
    backend_a.stop().unwrap();
}

fn scrape(addr: std::net::SocketAddr) -> String {
    use std::io::{Read as _, Write as _};
    let mut stream = std::net::TcpStream::connect(addr).expect("scrape connect");
    stream
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: loopback\r\n\r\n")
        .expect("scrape request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("scrape response");
    assert!(raw.starts_with("HTTP/1.1 200 OK\r\n"), "{raw}");
    raw.split("\r\n\r\n").nth(1).expect("response body").to_string()
}

#[test]
fn hedged_request_renders_as_one_merged_span_tree_across_journals() {
    use smith85_tracelog::report;

    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let router_journal = dir.join(format!("smith85-router-journal-{pid}.ndjson"));
    let shard_journal = dir.join(format!("smith85-shard-journal-{pid}.ndjson"));
    let _ = std::fs::remove_file(&router_journal);
    let _ = std::fs::remove_file(&shard_journal);

    let backend = Server::spawn(
        ServeOptions::builder()
            .addr("127.0.0.1:0")
            .journal(shard_journal.clone())
            .build()
            .expect("serve options"),
    )
    .expect("spawn backend");
    let backend_b = spawn_backend();
    let router = Server::spawn(
        ServeOptions::builder()
            .addr("127.0.0.1:0")
            .journal(router_journal.clone())
            .router(RouterOptions {
                backends: vec![backend.addr().to_string(), backend_b.addr().to_string()],
                // Long probe period: the hedge below, not the prober,
                // must be what discovers the killed shard.
                probe_interval_ms: 60_000,
                ..RouterOptions::default()
            })
            .build()
            .expect("serve options"),
    )
    .expect("spawn router");
    let router_addr = router.addr().to_string();

    // Find a request key whose ring primary is shard B (its exec count
    // moves when the routed request lands there) — then kill B and
    // replay that exact key: the forward to B is refused, the router
    // hedges to the surviving shard, and both hop spans are journaled.
    let mut direct_b = Client::builder()
        .addr(backend_b.addr().to_string())
        .connect()
        .expect("connect b");
    let b_exec_count = |client: &mut Client| -> u64 {
        fetch_metrics(client)
            .histograms
            .iter()
            .find(|h| h.name == "serve_exec_ms")
            .map(|h| h.count)
            .unwrap_or(0)
    };
    let workloads = ["MVS1", "FCOMP1", "VCCOM", "VSPICE", "ZGREP", "TWOD", "WATEX", "PL0"];
    let mut primary_on_b: Option<(usize, &str)> = None;
    for (i, workload) in workloads.iter().enumerate() {
        let before = b_exec_count(&mut direct_b);
        let mut client = Client::builder()
            .addr(router_addr.as_str())
            .timeout(Duration::from_secs(30))
            .connect()
            .expect("connect");
        match client.call(&simulate_request(workload, 1_500 + 100 * i, 4_096)) {
            Ok(Response::Simulate(_)) => {}
            other => panic!("routed call must succeed, got {other:?}"),
        }
        if b_exec_count(&mut direct_b) > before {
            primary_on_b = Some((i, workload));
            break;
        }
    }
    let (i, workload) = primary_on_b
        .expect("one of eight distinct request keys must route primarily to shard B");
    drop(direct_b);
    backend_b.stop().expect("stop backend b");

    let hedged_trace = "hedgedhop1".to_string();
    let mut client = Client::builder()
        .addr(router_addr.as_str())
        .trace_id(hedged_trace.clone())
        .timeout(Duration::from_secs(30))
        .connect()
        .expect("connect");
    match client.call(&simulate_request(workload, 1_500 + 100 * i, 4_096)) {
        Ok(Response::Simulate(_)) => {}
        other => panic!("hedged replay must succeed on the survivor, got {other:?}"),
    }
    assert!(
        stats(&mut client).router.expect("router counters").hedged >= 1,
        "the replayed key must have hedged off the killed shard"
    );

    router.stop().unwrap();
    backend.stop().unwrap();

    // Merge the two process-local journals: the hedged request must be
    // ONE tree — router root, hedge hops as siblings, and the shard's
    // subtree hanging under the hop that reached it.
    let (_, router_events) = report::read_journal(&router_journal).expect("router journal");
    let (_, shard_events) = report::read_journal(&shard_journal).expect("shard journal");
    let merged = report::merge_journals(&[router_events, shard_events]);
    let trees = report::build_trees(&merged);
    let tree = trees
        .iter()
        .find(|t| t.trace_id == hedged_trace)
        .expect("tree for the hedged trace");
    assert_eq!(tree.roots.len(), 1, "exactly one linked root: {tree:?}");
    let root = &tree.roots[0];
    assert_eq!(root.name, "router_request");
    let hops: Vec<_> = root
        .children
        .iter()
        .filter(|c| c.name == "router_forward")
        .collect();
    assert_eq!(hops.len(), 2, "failed attempt and hedge are sibling hops: {root:?}");
    let winners: Vec<_> = hops
        .iter()
        .filter(|h| h.children.iter().any(|c| c.name == "request"))
        .collect();
    assert_eq!(winners.len(), 1, "exactly one hop reached the shard: {hops:?}");
    let shard_root = winners[0]
        .children
        .iter()
        .find(|c| c.name == "request")
        .expect("shard request span");
    assert!(
        shard_root.children.iter().any(|c| c.name == "simulate_workload"),
        "shard-side kernel span must nest under the merged tree: {shard_root:?}"
    );

    let _ = std::fs::remove_file(&router_journal);
    let _ = std::fs::remove_file(&shard_journal);
}

#[test]
fn killed_backend_means_typed_errors_or_hedged_success_never_a_hang() {
    let backend_a = spawn_backend();
    let backend_b = spawn_backend();
    let router = spawn_router(
        vec![backend_a.addr().to_string(), backend_b.addr().to_string()],
        100,
    );
    let router_addr = router.addr().to_string();

    // Warm the ring with both backends alive.
    let mut client = Client::builder()
        .addr(router_addr.as_str())
        .timeout(Duration::from_secs(30))
        .connect()
        .expect("connect");
    client
        .call(&simulate_request("VCCOM", 2_000, 4_096))
        .expect("warm-up call");

    // Kill one backend mid-run: its listener closes, in-flight work is
    // torn down, future connects are refused.
    backend_b.stop().expect("stop backend b");

    // Every request issued from now on must resolve quickly: either a
    // hedged/direct success on the surviving shard or a typed error.
    let mut successes = 0u32;
    let mut typed_errors = 0u32;
    let workloads = ["MVS1", "FCOMP1", "VCCOM", "VSPICE", "ZGREP", "TWOD", "WATEX", "PL0"];
    for (i, workload) in workloads.iter().enumerate() {
        let started = Instant::now();
        let mut client = Client::builder()
            .addr(router_addr.as_str())
            .timeout(Duration::from_secs(30))
            .connect()
            .expect("connect");
        match client.call(&simulate_request(workload, 1_500 + 100 * i, 8_192)) {
            Ok(Response::Simulate(_)) => successes += 1,
            Ok(other) => panic!("unexpected success payload: {}", other.encode()),
            Err(ClientError::Server(body)) => {
                assert!(
                    matches!(body.code, ErrorCode::Overloaded | ErrorCode::Internal),
                    "degradation must be a typed transient error, got {:?}: {}",
                    body.code,
                    body.message
                );
                typed_errors += 1;
            }
            Err(other) => panic!("request must not fail untyped: {other}"),
        }
        assert!(
            started.elapsed() < Duration::from_secs(25),
            "request {i} must not hang (took {:?})",
            started.elapsed()
        );
    }
    assert_eq!(successes + typed_errors, workloads.len() as u32);
    assert!(
        successes > 0,
        "hedging to the surviving shard must rescue at least some requests"
    );

    // Once the prober has marked the dead shard down, everything lands
    // on the survivor and succeeds outright.
    std::thread::sleep(Duration::from_millis(400));
    let mut client = Client::builder()
        .addr(router_addr.as_str())
        .timeout(Duration::from_secs(30))
        .connect()
        .expect("connect");
    for workload in &workloads {
        match client.call(&simulate_request(workload, 1_200, 4_096)) {
            Ok(Response::Simulate(_)) => {}
            other => panic!("steady-state after failover must succeed, got {other:?}"),
        }
    }
    let s = stats(&mut client);
    let counters = s.router.expect("router counters");
    assert_eq!(counters.healthy, 1, "the dead shard must be marked down");
    assert!(counters.health_probes > 0, "the prober must be running");

    router.stop().unwrap();
    backend_a.stop().unwrap();
}
