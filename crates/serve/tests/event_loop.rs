//! Acceptance tests for the poll-based event loop (unix targets).
//!
//! The headline guarantee: idle connections are free. A server holding
//! hundreds of open-but-quiet connections must answer a fresh client at
//! the same latency as an unloaded one — and faster than the
//! thread-per-connection fallback, whose accept cadence is the old
//! bottleneck. Also pinned here: pipelined requests on one connection
//! answer in order, and a client that sends-then-half-closes still gets
//! every answer (no data loss on EOF).

#![cfg(unix)]

use smith85_serve::{
    CacheSpec, Client, Request, Response, ServeOptions, Server, SimulateSpec,
};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn simulate_request(workload: &str, len: usize, size: usize) -> Request {
    Request::Simulate(SimulateSpec {
        workload: workload.to_string(),
        len,
        seed: None,
        cache: CacheSpec {
            size,
            line: 16,
            ways: None,
            purge: None,
        },
        policy: None,
        deadline_ms: None,
    })
}

fn spawn(event_loop: bool) -> smith85_serve::RunningServer {
    Server::spawn(
        ServeOptions::builder()
            .addr("127.0.0.1:0")
            .event_loop(event_loop)
            .build()
            .expect("serve options"),
    )
    .expect("spawn server")
}

/// Round-trip latency of a fresh connection issuing one ping.
fn fresh_connection_rtt(addr: &str) -> Duration {
    let start = Instant::now();
    let mut client = Client::builder().addr(addr).connect().expect("connect");
    let response = client.call(&Request::Ping).expect("ping");
    assert!(matches!(response, Response::Pong), "{response:?}");
    start.elapsed()
}

fn p99(mut samples: Vec<Duration>) -> Duration {
    samples.sort();
    let rank = ((samples.len() - 1) as f64 * 0.99).round() as usize;
    samples[rank]
}

#[test]
fn idle_connections_are_free_and_beat_the_threaded_baseline() {
    const IDLE: usize = 512;
    const SAMPLES: usize = 12;

    // Event-loop server saturated with idle connections.
    let server = spawn(true);
    let addr = server.addr().to_string();
    let idle: Vec<TcpStream> = (0..IDLE)
        .map(|i| {
            TcpStream::connect(&addr).unwrap_or_else(|e| panic!("idle connect {i}: {e}"))
        })
        .collect();
    // Give the loop a poll round to accept the whole burst.
    std::thread::sleep(Duration::from_millis(300));

    let event_rtts: Vec<Duration> = (0..SAMPLES).map(|_| fresh_connection_rtt(&addr)).collect();

    // The idle connections are still live, not silently dropped: one of
    // them can speak up and get an answer.
    let mut speak = idle.into_iter().next_back().expect("an idle connection");
    speak
        .write_all(b"{\"v\":1,\"type\":\"ping\"}\n")
        .expect("write on idle connection");
    let mut line = String::new();
    let mut reader = BufReader::new(speak.try_clone().expect("clone"));
    reader.read_line(&mut line).expect("idle connection answers");
    assert!(line.contains("pong"), "{line}");
    server.stop().expect("clean shutdown");

    // Thread-per-connection baseline with NO idle load at all.
    let baseline = spawn(false);
    let baseline_addr = baseline.addr().to_string();
    let baseline_rtts: Vec<Duration> =
        (0..SAMPLES).map(|_| fresh_connection_rtt(&baseline_addr)).collect();
    baseline.stop().expect("clean shutdown");

    let event_p99 = p99(event_rtts);
    let baseline_p99 = p99(baseline_rtts);
    assert!(
        event_p99 < baseline_p99,
        "event loop under {IDLE} idle connections (p99 {event_p99:?}) must beat \
         the unloaded threaded baseline (p99 {baseline_p99:?})"
    );
}

#[test]
fn pipelined_requests_answer_in_request_order() {
    let server = spawn(true);
    let addr = server.addr().to_string();

    // Five requests with distinct cache sizes, written as one burst
    // before any response is read.
    let sizes = [1 << 10, 1 << 12, 1 << 14, 1 << 11, 1 << 13];
    let mut stream = TcpStream::connect(&addr).expect("connect");
    let mut burst = String::new();
    for &size in &sizes {
        burst.push_str(&simulate_request("VCCOM", 2_000, size).encode());
        burst.push('\n');
    }
    stream.write_all(burst.as_bytes()).expect("write burst");

    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    for &size in &sizes {
        let mut line = String::new();
        reader.read_line(&mut line).expect("read response");
        match Response::decode(line.trim_end()).expect("decode response") {
            Response::Simulate(r) => {
                assert_eq!(r.cache_bytes, size, "responses must come back in order")
            }
            other => panic!("expected simulate result, got {other:?}"),
        }
    }
    server.stop().expect("clean shutdown");
}

/// The same end-to-end journal assertions, run against both connection
/// paths: a request served by the poll loop must be exactly as
/// attributable as one served by a connection thread — same root span,
/// same access-log fields, same nested kernel span.
#[test]
fn journal_parity_between_event_loop_and_threaded_paths() {
    use smith85_tracelog::report;

    for (mode, tag) in [(true, "event"), (false, "threaded")] {
        let journal_path = std::env::temp_dir().join(format!(
            "smith85-parity-journal-{tag}-{}.ndjson",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&journal_path);
        let server = Server::spawn(
            ServeOptions::builder()
                .addr("127.0.0.1:0")
                .journal(journal_path.clone())
                .event_loop(mode)
                .build()
                .expect("serve options"),
        )
        .expect("spawn server");

        let mut client = Client::builder()
            .addr(server.addr().to_string())
            .connect()
            .expect("connect");
        let trace_id = match client
            .call(&simulate_request("VCCOM", 8_000, 1 << 12))
            .expect("journaled job")
        {
            Response::Simulate(r) => r.trace_id,
            other => panic!("expected simulate result, got {other:?}"),
        };
        server.stop().expect("clean shutdown");

        let (_, events) = report::read_journal(&journal_path).expect("read journal");
        let ours: Vec<_> = events
            .iter()
            .filter(|e| &*e.trace_id == trace_id.as_str())
            .collect();
        assert!(
            ours.iter().any(|e| e.name == "request"),
            "[{tag}] request span missing for {trace_id}"
        );
        let access = ours
            .iter()
            .find(|e| e.name == "access_log")
            .unwrap_or_else(|| panic!("[{tag}] access_log missing for {trace_id}"));
        let field = |name: &str| {
            access
                .fields
                .iter()
                .find(|(k, _)| k == name)
                .unwrap_or_else(|| panic!("[{tag}] access_log field {name} missing"))
                .1
                .clone()
        };
        assert_eq!(field("outcome").as_str(), Some("ok"), "[{tag}]");
        assert_eq!(field("kind").as_str(), Some("simulate"), "[{tag}]");

        let trees = report::build_trees(&events);
        let tree = trees
            .iter()
            .find(|t| &*t.trace_id == trace_id.as_str())
            .expect("tree for our trace");
        assert_eq!(tree.root_name(), "request", "[{tag}]");
        let root = &tree.roots[0];
        assert!(root.closed, "[{tag}] request span must be closed");
        assert!(
            root.children.iter().any(|c| c.name == "simulate_workload"),
            "[{tag}] kernel span must nest under the request: {root:?}"
        );
        let _ = std::fs::remove_file(&journal_path);
    }
}

/// The loop's lifecycle instrumentation: accepted/half-close/closed
/// counters move with real connection events, the poll/dispatch
/// histograms record iterations, and the gauges are published.
#[test]
fn event_loop_lifecycle_metrics_track_connections() {
    let server = spawn(true);
    let addr = server.addr().to_string();

    // One full lifecycle including a half-close.
    let mut stream = TcpStream::connect(&addr).expect("connect");
    stream
        .write_all(b"{\"v\":1,\"type\":\"ping\"}\n")
        .expect("write ping");
    stream
        .shutdown(std::net::Shutdown::Write)
        .expect("half close");
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).expect("answer");
    assert!(line.contains("pong"), "{line}");
    let mut tail = String::new();
    assert_eq!(reader.read_line(&mut tail).expect("eof"), 0);
    // Give the loop an iteration to reclaim the slot and set gauges.
    std::thread::sleep(Duration::from_millis(200));

    let mut client = Client::builder().addr(addr).connect().expect("connect");
    let snapshot = match client.call(&Request::Metrics).expect("metrics") {
        Response::Metrics(s) => s,
        other => panic!("expected metrics, got {other:?}"),
    };
    let counter = |name: &str| {
        snapshot
            .counters
            .iter()
            .find(|c| c.name == name && c.labels.is_empty())
            .map(|c| c.value)
            .unwrap_or(0)
    };
    assert!(
        counter("event_loop_conns_accepted_total") >= 2,
        "raw conn + metrics client accepted: {snapshot:?}"
    );
    assert!(counter("event_loop_half_closes_total") >= 1, "{snapshot:?}");
    assert!(counter("event_loop_conns_closed_total") >= 1, "{snapshot:?}");
    let hist_count = |name: &str| {
        snapshot
            .histograms
            .iter()
            .find(|h| h.name == name && h.labels.is_empty())
            .map(|h| h.count)
            .unwrap_or(0)
    };
    assert!(hist_count("event_loop_poll_wait_us") > 0, "{snapshot:?}");
    assert!(hist_count("event_loop_dispatch_us") > 0, "{snapshot:?}");
    let gauge = |name: &str| {
        snapshot
            .gauges
            .iter()
            .find(|g| g.name == name && g.labels.is_empty())
            .map(|g| g.value)
    };
    assert!(
        gauge("event_loop_connections").is_some_and(|v| v >= 1.0),
        "the metrics client itself is an open connection: {snapshot:?}"
    );
    assert!(gauge("event_loop_busy_jobs").is_some(), "{snapshot:?}");
    assert!(gauge("event_loop_write_buf_bytes").is_some(), "{snapshot:?}");

    server.stop().expect("clean shutdown");
}

#[test]
fn half_close_after_sending_still_gets_every_answer() {
    let server = spawn(true);
    let addr = server.addr().to_string();

    let mut stream = TcpStream::connect(&addr).expect("connect");
    let mut burst = String::new();
    burst.push_str(&simulate_request("ZGREP", 2_000, 1 << 12).encode());
    burst.push('\n');
    burst.push_str(&Request::Ping.encode());
    burst.push('\n');
    stream.write_all(burst.as_bytes()).expect("write burst");
    // Half-close: we are done sending, but the answers are still owed.
    stream
        .shutdown(std::net::Shutdown::Write)
        .expect("half close");

    let mut reader = BufReader::new(stream);
    let mut first = String::new();
    reader.read_line(&mut first).expect("first answer");
    assert!(first.contains("simulate_result"), "{first}");
    let mut second = String::new();
    reader.read_line(&mut second).expect("second answer");
    assert!(second.contains("pong"), "{second}");
    // Then the server closes its side too.
    let mut tail = String::new();
    let n = reader.read_line(&mut tail).expect("clean EOF");
    assert_eq!(n, 0, "expected EOF after the final answer, got {tail:?}");
    server.stop().expect("clean shutdown");
}
