//! Acceptance tests for the poll-based event loop (unix targets).
//!
//! The headline guarantee: idle connections are free. A server holding
//! hundreds of open-but-quiet connections must answer a fresh client at
//! the same latency as an unloaded one — and faster than the
//! thread-per-connection fallback, whose accept cadence is the old
//! bottleneck. Also pinned here: pipelined requests on one connection
//! answer in order, and a client that sends-then-half-closes still gets
//! every answer (no data loss on EOF).

#![cfg(unix)]

use smith85_serve::{
    CacheSpec, Client, Request, Response, ServeOptions, Server, SimulateSpec,
};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn simulate_request(workload: &str, len: usize, size: usize) -> Request {
    Request::Simulate(SimulateSpec {
        workload: workload.to_string(),
        len,
        seed: None,
        cache: CacheSpec {
            size,
            line: 16,
            ways: None,
            purge: None,
        },
        policy: None,
        deadline_ms: None,
    })
}

fn spawn(event_loop: bool) -> smith85_serve::RunningServer {
    Server::spawn(
        ServeOptions::builder()
            .addr("127.0.0.1:0")
            .event_loop(event_loop)
            .build()
            .expect("serve options"),
    )
    .expect("spawn server")
}

/// Round-trip latency of a fresh connection issuing one ping.
fn fresh_connection_rtt(addr: &str) -> Duration {
    let start = Instant::now();
    let mut client = Client::builder().addr(addr).connect().expect("connect");
    let response = client.call(&Request::Ping).expect("ping");
    assert!(matches!(response, Response::Pong), "{response:?}");
    start.elapsed()
}

fn p99(mut samples: Vec<Duration>) -> Duration {
    samples.sort();
    let rank = ((samples.len() - 1) as f64 * 0.99).round() as usize;
    samples[rank]
}

#[test]
fn idle_connections_are_free_and_beat_the_threaded_baseline() {
    const IDLE: usize = 512;
    const SAMPLES: usize = 12;

    // Event-loop server saturated with idle connections.
    let server = spawn(true);
    let addr = server.addr().to_string();
    let idle: Vec<TcpStream> = (0..IDLE)
        .map(|i| {
            TcpStream::connect(&addr).unwrap_or_else(|e| panic!("idle connect {i}: {e}"))
        })
        .collect();
    // Give the loop a poll round to accept the whole burst.
    std::thread::sleep(Duration::from_millis(300));

    let event_rtts: Vec<Duration> = (0..SAMPLES).map(|_| fresh_connection_rtt(&addr)).collect();

    // The idle connections are still live, not silently dropped: one of
    // them can speak up and get an answer.
    let mut speak = idle.into_iter().next_back().expect("an idle connection");
    speak
        .write_all(b"{\"v\":1,\"type\":\"ping\"}\n")
        .expect("write on idle connection");
    let mut line = String::new();
    let mut reader = BufReader::new(speak.try_clone().expect("clone"));
    reader.read_line(&mut line).expect("idle connection answers");
    assert!(line.contains("pong"), "{line}");
    server.stop().expect("clean shutdown");

    // Thread-per-connection baseline with NO idle load at all.
    let baseline = spawn(false);
    let baseline_addr = baseline.addr().to_string();
    let baseline_rtts: Vec<Duration> =
        (0..SAMPLES).map(|_| fresh_connection_rtt(&baseline_addr)).collect();
    baseline.stop().expect("clean shutdown");

    let event_p99 = p99(event_rtts);
    let baseline_p99 = p99(baseline_rtts);
    assert!(
        event_p99 < baseline_p99,
        "event loop under {IDLE} idle connections (p99 {event_p99:?}) must beat \
         the unloaded threaded baseline (p99 {baseline_p99:?})"
    );
}

#[test]
fn pipelined_requests_answer_in_request_order() {
    let server = spawn(true);
    let addr = server.addr().to_string();

    // Five requests with distinct cache sizes, written as one burst
    // before any response is read.
    let sizes = [1 << 10, 1 << 12, 1 << 14, 1 << 11, 1 << 13];
    let mut stream = TcpStream::connect(&addr).expect("connect");
    let mut burst = String::new();
    for &size in &sizes {
        burst.push_str(&simulate_request("VCCOM", 2_000, size).encode());
        burst.push('\n');
    }
    stream.write_all(burst.as_bytes()).expect("write burst");

    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    for &size in &sizes {
        let mut line = String::new();
        reader.read_line(&mut line).expect("read response");
        match Response::decode(line.trim_end()).expect("decode response") {
            Response::Simulate(r) => {
                assert_eq!(r.cache_bytes, size, "responses must come back in order")
            }
            other => panic!("expected simulate result, got {other:?}"),
        }
    }
    server.stop().expect("clean shutdown");
}

#[test]
fn half_close_after_sending_still_gets_every_answer() {
    let server = spawn(true);
    let addr = server.addr().to_string();

    let mut stream = TcpStream::connect(&addr).expect("connect");
    let mut burst = String::new();
    burst.push_str(&simulate_request("ZGREP", 2_000, 1 << 12).encode());
    burst.push('\n');
    burst.push_str(&Request::Ping.encode());
    burst.push('\n');
    stream.write_all(burst.as_bytes()).expect("write burst");
    // Half-close: we are done sending, but the answers are still owed.
    stream
        .shutdown(std::net::Shutdown::Write)
        .expect("half close");

    let mut reader = BufReader::new(stream);
    let mut first = String::new();
    reader.read_line(&mut first).expect("first answer");
    assert!(first.contains("simulate_result"), "{first}");
    let mut second = String::new();
    reader.read_line(&mut second).expect("second answer");
    assert!(second.contains("pong"), "{second}");
    // Then the server closes its side too.
    let mut tail = String::new();
    let n = reader.read_line(&mut tail).expect("clean EOF");
    assert_eq!(n, 0, "expected EOF after the final answer, got {tail:?}");
    server.stop().expect("clean shutdown");
}
