//! End-to-end tests against a real server on a loopback socket.
//!
//! These cover the acceptance criteria of the serving subsystem: served
//! results are bit-identical to direct library runs even under
//! concurrency, a full queue produces a typed `overloaded` rejection
//! (never a hang), malformed input gets typed errors without killing any
//! worker, and shutdown drains admitted work.

use smith85_cachesim::{CacheConfig, Simulator, UnifiedCache};
use smith85_serve::{
    CacheSpec, Client, ClientError, ErrorCode, Request, Response, ServeOptions, Server,
    SimulateSpec,
};
use smith85_synth::catalog;
use std::time::{Duration, Instant};

fn spawn_default() -> smith85_serve::RunningServer {
    Server::spawn(ServeOptions {
        addr: "127.0.0.1:0".to_string(),
        ..ServeOptions::default()
    })
    .expect("spawn server")
}

fn simulate_request(workload: &str, len: usize, size: usize) -> Request {
    Request::Simulate(SimulateSpec {
        workload: workload.to_string(),
        len,
        seed: None,
        cache: CacheSpec {
            size,
            line: 16,
            ways: None,
            purge: None,
        },
        policy: None,
        deadline_ms: None,
    })
}

/// Miss ratio of a direct in-process library run, for comparison.
fn direct_miss_ratio(workload: &str, len: usize, size: usize) -> f64 {
    let profile = catalog::by_name(workload).expect("catalog name").profile().clone();
    let trace = profile.generate(len);
    let config = CacheConfig::builder(size).line_size(16).build().unwrap();
    let mut cache = UnifiedCache::new(config).unwrap();
    cache.run_slice(&trace.as_slice()[..len]);
    cache.stats().miss_ratio()
}

fn fetch_stats(addr: &str) -> smith85_serve::StatsResult {
    let mut client = Client::builder().addr(addr).connect().expect("stats client");
    match client.call(&Request::Stats).expect("stats call") {
        Response::Stats(stats) => stats,
        other => panic!("expected stats, got {other:?}"),
    }
}

#[test]
fn eight_concurrent_clients_get_bit_identical_results() {
    let server = spawn_default();
    let addr = server.addr().to_string();
    const LEN: usize = 20_000;
    let sizes = [1 << 10, 1 << 11, 1 << 12, 1 << 13, 1 << 14, 1 << 15, 1 << 16, 1 << 17];

    let served: Vec<(usize, f64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = sizes
            .iter()
            .map(|&size| {
                let addr = &addr;
                scope.spawn(move || {
                    let mut client = Client::builder().addr(addr).connect().expect("connect");
                    match client
                        .call(&simulate_request("VCCOM", LEN, size))
                        .expect("call")
                    {
                        Response::Simulate(r) => {
                            assert_eq!(r.refs, LEN as u64);
                            (size, r.miss_ratio)
                        }
                        other => panic!("expected simulate result, got {other:?}"),
                    }
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for (size, served_ratio) in served {
        let direct = direct_miss_ratio("VCCOM", LEN, size);
        assert_eq!(
            served_ratio.to_bits(),
            direct.to_bits(),
            "size {size}: served {served_ratio} != direct {direct}"
        );
    }

    // All eight requests shared one workload: exactly one materialization.
    let stats = fetch_stats(&addr);
    assert_eq!(stats.pool.misses, 1, "concurrent requests must dedupe");
    assert_eq!(stats.pool.hits, 7);
    assert_eq!(stats.completed, 8);

    let final_stats = server.stop().expect("clean shutdown");
    assert_eq!(final_stats.simulate_requests, 8);
}

#[test]
fn full_queue_rejects_with_typed_overloaded_not_a_hang() {
    // One worker and a queue bound of one: a slow executing job plus one
    // queued job leaves no room for a third.
    let server = Server::spawn(ServeOptions {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        queue_capacity: 1,
        ..ServeOptions::default()
    })
    .expect("spawn server");
    let addr = server.addr().to_string();

    // Maximum-length jobs keep the single worker busy for seconds, so
    // the queue-full window is wide enough to probe reliably.
    let slow = simulate_request("VCCOM", 2_000_000, 1 << 14);
    let queued = simulate_request("VCCOM", 2_000_000, 1 << 15);

    std::thread::scope(|scope| {
        let slow_handle = {
            let addr = addr.clone();
            scope.spawn(move || {
                let mut client = Client::builder().addr(&addr).connect().expect("connect");
                client.call(&slow).expect("slow job")
            })
        };
        // Wait until the worker has picked the slow job up (admitted and
        // no longer queued).
        wait_until(|| {
            let s = fetch_stats(&addr);
            s.simulate_requests >= 1 && s.queue_depth == 0
        });

        let queued_handle = {
            let addr = addr.clone();
            scope.spawn(move || {
                let mut client = Client::builder().addr(&addr).connect().expect("connect");
                client.call(&queued).expect("queued job")
            })
        };
        wait_until(|| fetch_stats(&addr).queue_depth == 1);

        // Queue full: this must come back immediately and typed.
        let mut client = Client::builder().addr(&addr).connect().expect("connect");
        let start = Instant::now();
        match client.call(&simulate_request("VCCOM", 1_000, 1 << 12)) {
            Err(ClientError::Server(e)) => {
                assert_eq!(e.code, ErrorCode::Overloaded, "{e:?}");
            }
            other => panic!("expected overloaded error, got {other:?}"),
        }
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "rejection must not wait for the queue to drain"
        );

        // The admitted jobs still complete normally.
        assert!(matches!(slow_handle.join().unwrap(), Response::Simulate(_)));
        assert!(matches!(queued_handle.join().unwrap(), Response::Simulate(_)));
    });

    let stats = server.stop().expect("clean shutdown");
    assert_eq!(stats.rejected_overload, 1);
    assert_eq!(stats.queue_high_water, 1);
    assert_eq!(stats.completed, 2);
}

#[test]
fn malformed_input_gets_typed_errors_and_workers_survive() {
    let server = spawn_default();
    let addr = server.addr().to_string();

    // Truncated JSON.
    let mut client = Client::builder().addr(&addr).connect().expect("connect");
    match client.send_raw_line("{\"type\": \"sim").expect("answer") {
        Response::Error(e) => assert_eq!(e.code, ErrorCode::BadRequest, "{e:?}"),
        other => panic!("expected bad_request, got {other:?}"),
    }

    // Unknown request type.
    match client
        .send_raw_line("{\"type\": \"frobnicate\"}")
        .expect("answer")
    {
        Response::Error(e) => assert_eq!(e.code, ErrorCode::UnknownType, "{e:?}"),
        other => panic!("expected unknown_type, got {other:?}"),
    }

    // Not JSON at all.
    match client.send_raw_line("hello there").expect("answer") {
        Response::Error(e) => assert_eq!(e.code, ErrorCode::BadRequest, "{e:?}"),
        other => panic!("expected bad_request, got {other:?}"),
    }

    // A structurally valid request with a bad payload type.
    match client
        .send_raw_line("{\"type\": \"simulate\", \"workload\": 7}")
        .expect("answer")
    {
        Response::Error(e) => assert_eq!(e.code, ErrorCode::BadRequest, "{e:?}"),
        other => panic!("expected bad_request, got {other:?}"),
    }

    // Oversized line: typed error, then the server closes that
    // connection (the remainder of the line cannot be skipped safely).
    let huge = "x".repeat(smith85_serve::protocol::MAX_LINE_BYTES + 1024);
    match client.send_raw_line(&huge).expect("answer") {
        Response::Error(e) => assert_eq!(e.code, ErrorCode::Oversized, "{e:?}"),
        other => panic!("expected oversized, got {other:?}"),
    }

    // A fresh connection still gets real work done: nothing died.
    let mut client = Client::builder().addr(&addr).connect().expect("reconnect");
    assert!(matches!(
        client.call(&Request::Ping).expect("ping"),
        Response::Pong
    ));
    match client
        .call(&simulate_request("ZGREP", 2_000, 1 << 12))
        .expect("simulate after abuse")
    {
        Response::Simulate(r) => assert!(r.miss_ratio > 0.0),
        other => panic!("expected simulate result, got {other:?}"),
    }

    let stats = server.stop().expect("clean shutdown");
    assert!(stats.protocol_errors >= 5, "{stats:?}");
    assert_eq!(stats.completed, 1);
}

#[test]
fn shutdown_request_drains_and_stops_admitting() {
    let server = spawn_default();
    let addr = server.addr().to_string();

    let mut client = Client::builder().addr(&addr).connect().expect("connect");
    match client
        .call(&simulate_request("PL0", 5_000, 1 << 12))
        .expect("job before shutdown")
    {
        Response::Simulate(_) => {}
        other => panic!("expected simulate result, got {other:?}"),
    }
    assert!(matches!(
        client.call(&Request::Shutdown).expect("shutdown"),
        Response::Ok
    ));

    // Late submissions are refused with a typed shutting_down error (the
    // connection may also already be closed, which is equally fine).
    match client.call(&simulate_request("PL0", 5_000, 1 << 13)) {
        Err(ClientError::Server(e)) => assert_eq!(e.code, ErrorCode::ShuttingDown, "{e:?}"),
        Err(ClientError::Io(_)) => {}
        other => panic!("expected shutting_down or a closed connection, got {other:?}"),
    }

    let stats = server.stop().expect("clean shutdown");
    assert_eq!(stats.completed, 1);
}

#[cfg(unix)]
#[test]
fn unix_socket_round_trip() {
    let path = std::env::temp_dir().join(format!("smith85-serve-{}.sock", std::process::id()));
    let server = Server::spawn(ServeOptions {
        addr: "127.0.0.1:0".to_string(),
        unix_path: Some(path.clone()),
        ..ServeOptions::default()
    })
    .expect("spawn server with unix socket");

    let mut client = Client::builder().unix(&path).connect().expect("unix connect");
    assert!(matches!(
        client.call(&Request::Ping).expect("ping"),
        Response::Pong
    ));
    match client
        .call(&simulate_request("VCCOM", 2_000, 1 << 12))
        .expect("simulate over unix socket")
    {
        Response::Simulate(r) => {
            let direct = direct_miss_ratio("VCCOM", 2_000, 1 << 12);
            assert_eq!(r.miss_ratio.to_bits(), direct.to_bits());
        }
        other => panic!("expected simulate result, got {other:?}"),
    }

    server.stop().expect("clean shutdown");
    assert!(!path.exists(), "socket file must be cleaned up");
}

#[test]
fn metrics_request_parses_and_counters_are_monotonic() {
    let server = spawn_default();
    let addr = server.addr().to_string();
    let mut client = Client::builder().addr(&addr).connect().expect("connect");

    let fetch_metrics = |client: &mut Client| match client.call(&Request::Metrics).expect("metrics")
    {
        Response::Metrics(snapshot) => snapshot,
        other => panic!("expected metrics_result, got {other:?}"),
    };

    assert!(matches!(
        client.call(&simulate_request("VCCOM", 3_000, 1 << 12)).expect("job"),
        Response::Simulate(_)
    ));
    let first = fetch_metrics(&mut client);
    let counter = |snapshot: &smith85_serve::RegistrySnapshot, name: &str| {
        snapshot
            .counters
            .iter()
            .find(|c| c.name == name)
            .unwrap_or_else(|| panic!("counter {name} missing"))
            .value
    };
    assert_eq!(counter(&first, "cachesim_refs_total"), 3_000);
    assert_eq!(counter(&first, "pool_misses_total"), 1);
    assert!(
        first.histograms.iter().any(|h| h.name == "serve_exec_ms" && h.count == 1),
        "serve_exec_ms must record the job: {first:?}"
    );

    assert!(matches!(
        client.call(&simulate_request("VCCOM", 3_000, 1 << 13)).expect("job"),
        Response::Simulate(_)
    ));
    let second = fetch_metrics(&mut client);
    for c in &first.counters {
        assert!(
            counter(&second, &c.name) >= c.value,
            "counter {} went backwards: {} -> {}",
            c.name,
            c.value,
            counter(&second, &c.name)
        );
    }
    assert_eq!(counter(&second, "cachesim_refs_total"), 6_000);
    assert_eq!(counter(&second, "pool_hits_total"), 1, "same workload pools");

    server.stop().expect("clean shutdown");
}

#[test]
fn v_less_client_round_trips_bit_identically() {
    // A pre-versioning client sends no "v" envelope at all; the served
    // result must still be bit-identical to a direct library run.
    let server = spawn_default();
    let mut client = Client::builder().addr(server.addr().to_string()).connect().expect("connect");
    let raw = "{\"type\":\"simulate\",\"workload\":\"VCCOM\",\"len\":2000,\"size\":4096,\"line\":16}";
    match client.send_raw_line(raw).expect("answer") {
        Response::Simulate(r) => {
            let direct = direct_miss_ratio("VCCOM", 2_000, 4_096);
            assert_eq!(r.miss_ratio.to_bits(), direct.to_bits());
        }
        other => panic!("expected simulate result, got {other:?}"),
    }
    // And an explicit future version is refused without killing the
    // connection.
    match client
        .send_raw_line("{\"v\":99,\"type\":\"ping\"}")
        .expect("answer")
    {
        Response::Error(e) => assert_eq!(e.code, ErrorCode::BadRequest, "{e:?}"),
        other => panic!("expected bad_request, got {other:?}"),
    }
    server.stop().expect("clean shutdown");
}

#[test]
fn prometheus_endpoint_serves_valid_exposition() {
    use std::io::{Read as _, Write as _};

    let server = Server::spawn(ServeOptions {
        addr: "127.0.0.1:0".to_string(),
        metrics_addr: Some("127.0.0.1:0".to_string()),
        ..ServeOptions::default()
    })
    .expect("spawn server with metrics endpoint");
    let metrics_addr = server.metrics_addr().expect("metrics endpoint bound");

    let mut client = Client::builder().addr(server.addr().to_string()).connect().expect("connect");
    assert!(matches!(
        client.call(&simulate_request("ZGREP", 2_000, 1 << 12)).expect("job"),
        Response::Simulate(_)
    ));

    let mut stream = std::net::TcpStream::connect(metrics_addr).expect("scrape connect");
    stream
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: loopback\r\n\r\n")
        .expect("scrape request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("scrape response");
    assert!(raw.starts_with("HTTP/1.1 200 OK\r\n"), "{raw}");
    let body = raw.split("\r\n\r\n").nth(1).expect("response body");

    // Every non-comment line must be `name{labels} value` with a
    // parseable float value — the exposition-format contract.
    for line in body.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (series, value) = line.rsplit_once(' ').unwrap_or_else(|| panic!("bad line {line:?}"));
        assert!(
            value.parse::<f64>().is_ok(),
            "unparseable value in line {line:?}"
        );
        assert!(
            series.starts_with("smith85_"),
            "unprefixed series in line {line:?}"
        );
    }
    for family in [
        "smith85_serve_queue_depth",
        "smith85_pool_hits_total",
        "smith85_pool_misses_total",
        "smith85_pool_materialized_bytes_total",
        "smith85_serve_exec_ms",
        "smith85_cachesim_refs_per_sec",
    ] {
        assert!(body.contains(family), "missing family {family} in:\n{body}");
    }
    assert!(
        body.contains("le=\"+Inf\""),
        "histograms must end with a +Inf bucket:\n{body}"
    );

    server.stop().expect("clean shutdown");
}

/// Concurrent scrapes while jobs run: every scrape must return a
/// complete, parseable exposition — no torn lines, no 5xx, no hang —
/// because each scrape renders one atomic registry snapshot.
#[test]
fn concurrent_prometheus_scrapes_stay_consistent_under_load() {
    use std::io::{Read as _, Write as _};

    let server = Server::spawn(ServeOptions {
        addr: "127.0.0.1:0".to_string(),
        metrics_addr: Some("127.0.0.1:0".to_string()),
        ..ServeOptions::default()
    })
    .expect("spawn server with metrics endpoint");
    let addr = server.addr().to_string();
    let metrics_addr = server.metrics_addr().expect("metrics endpoint bound");

    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let load = {
        let addr = addr.clone();
        let stop = std::sync::Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut client = Client::builder().addr(addr).connect().expect("load client");
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                client
                    .call(&simulate_request("ZGREP", 1_000, 1 << 12))
                    .expect("load job");
            }
        })
    };

    let scrapers: Vec<_> = (0..8)
        .map(|thread| {
            std::thread::spawn(move || {
                for round in 0..5 {
                    let mut stream =
                        std::net::TcpStream::connect(metrics_addr).expect("scrape connect");
                    stream
                        .write_all(b"GET /metrics HTTP/1.1\r\nHost: loopback\r\n\r\n")
                        .expect("scrape request");
                    let mut raw = String::new();
                    stream.read_to_string(&mut raw).expect("scrape response");
                    assert!(
                        raw.starts_with("HTTP/1.1 200 OK\r\n"),
                        "scraper {thread} round {round}: {raw}"
                    );
                    let body = raw.split("\r\n\r\n").nth(1).expect("response body");
                    let mut lines = 0usize;
                    for line in body.lines() {
                        if line.is_empty() || line.starts_with('#') {
                            continue;
                        }
                        let (_, value) = line
                            .rsplit_once(' ')
                            .unwrap_or_else(|| panic!("torn line {line:?}"));
                        assert!(
                            value.parse::<f64>().is_ok(),
                            "scraper {thread} round {round}: unparseable {line:?}"
                        );
                        lines += 1;
                    }
                    assert!(lines > 0, "scraper {thread} round {round}: empty body");
                }
            })
        })
        .collect();
    for scraper in scrapers {
        scraper.join().expect("scraper thread");
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    load.join().expect("load thread");
    server.stop().expect("clean shutdown");
}

#[test]
fn journaled_request_is_attributable_end_to_end() {
    use smith85_tracelog::report;

    let journal_path =
        std::env::temp_dir().join(format!("smith85-loopback-journal-{}.ndjson", std::process::id()));
    let _ = std::fs::remove_file(&journal_path);
    let server = Server::spawn(ServeOptions {
        addr: "127.0.0.1:0".to_string(),
        journal: Some(journal_path.clone()),
        ..ServeOptions::default()
    })
    .expect("spawn server with journal");

    let mut client = Client::builder().addr(server.addr().to_string()).connect().expect("connect");
    let trace_id = match client
        .call(&simulate_request("VCCOM", 20_000, 1 << 13))
        .expect("journaled job")
    {
        Response::Simulate(r) => r.trace_id,
        other => panic!("expected simulate result, got {other:?}"),
    };
    assert_eq!(trace_id.len(), 16, "trace id must be 16 hex chars: {trace_id:?}");
    assert!(trace_id.chars().all(|c| c.is_ascii_hexdigit()), "{trace_id:?}");
    server.stop().expect("clean shutdown");

    // The same trace id the client saw must attribute the request span,
    // the access-log event, and the pool materialization in the journal.
    let (header, events) = report::read_journal(&journal_path).expect("read journal");
    let header = header.expect("journal header line");
    assert_eq!(header.version, smith85_tracelog::JOURNAL_VERSION);
    let ours: Vec<_> = events.iter().filter(|e| &*e.trace_id == trace_id.as_str()).collect();
    assert!(
        ours.iter().any(|e| e.name == "request"),
        "request span missing for {trace_id}: {events:?}"
    );
    let access = ours
        .iter()
        .find(|e| e.name == "access_log")
        .unwrap_or_else(|| panic!("access_log missing for {trace_id}"));
    let field = |name: &str| {
        access
            .fields
            .iter()
            .find(|(k, _)| k == name)
            .unwrap_or_else(|| panic!("access_log field {name} missing"))
            .1
            .clone()
    };
    assert_eq!(field("outcome").as_str(), Some("ok"));
    assert_eq!(field("kind").as_str(), Some("simulate"));
    assert!(
        ours.iter().any(|e| e.name == "pool_materialize"),
        "pool_materialize span must share the request trace id"
    );

    // The rendered profile shows the span tree with non-zero self time.
    let trees = report::build_trees(&events);
    let tree = trees
        .iter()
        .find(|t| &*t.trace_id == trace_id.as_str())
        .expect("tree for our trace");
    assert_eq!(tree.root_name(), "request");
    let root = &tree.roots[0];
    assert!(root.closed, "request span must be closed");
    assert!(root.total_us > 0, "request span must have measured time");
    assert!(
        root.children.iter().any(|c| c.name == "simulate_workload"),
        "kernel span must nest under the request: {root:?}"
    );
    let rendered = report::render_report(&trees, 10);
    assert!(rendered.contains("request"), "{rendered}");
    assert!(rendered.contains("pool_materialize"), "{rendered}");

    let _ = std::fs::remove_file(&journal_path);
}

#[test]
fn panicking_job_gets_typed_error_and_gauge_returns_to_zero() {
    let server = Server::spawn(ServeOptions {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        ..ServeOptions::default()
    })
    .expect("spawn server");
    let addr = server.addr().to_string();

    let mut client = Client::builder().addr(&addr).connect().expect("connect");
    match client.call(&simulate_request(smith85_serve::exec::PANIC_WORKLOAD, 1_000, 1 << 12)) {
        Err(ClientError::Server(e)) => {
            assert_eq!(e.code, ErrorCode::Internal, "{e:?}");
            assert!(e.message.contains("panic"), "{e:?}");
        }
        other => panic!("expected internal error, got {other:?}"),
    }

    // The queue-depth gauge must return to zero on the panic exit path.
    wait_until(|| fetch_stats(&addr).queue_depth == 0);
    let snapshot = match client.call(&Request::Metrics).expect("metrics") {
        Response::Metrics(snapshot) => snapshot,
        other => panic!("expected metrics_result, got {other:?}"),
    };
    let depth = snapshot
        .gauges
        .iter()
        .find(|g| g.name == "serve_queue_depth")
        .expect("serve_queue_depth gauge");
    assert_eq!(depth.value, 0.0, "gauge stuck after panic: {depth:?}");

    // The worker survived: a follow-up job on the same connection works.
    match client
        .call(&simulate_request("VCCOM", 2_000, 1 << 12))
        .expect("job after panic")
    {
        Response::Simulate(r) => assert!(r.miss_ratio > 0.0),
        other => panic!("expected simulate result, got {other:?}"),
    }

    let stats = server.stop().expect("clean shutdown");
    assert_eq!(stats.simulate_requests, 2, "both jobs were admitted");
    assert_eq!(stats.completed, 1, "only the non-panicking job completed");
}

fn wait_until(mut condition: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while !condition() {
        assert!(Instant::now() < deadline, "condition not reached in 30s");
        std::thread::sleep(Duration::from_millis(10));
    }
}
