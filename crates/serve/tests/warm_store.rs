//! Warm-start acceptance tests for `--store`-backed servers.
//!
//! These pin the PR's headline guarantees end to end over a loopback
//! socket: a restarted server answers a previously-seen request
//! bit-identically with zero new materializations (pool misses and
//! materialized bytes both zero, store hits nonzero), and injected
//! corruption is detected, quarantined and recomputed — never served.

use smith85_core::session::SimSession;
use smith85_serve::{
    CacheSpec, Client, Request, Response, ServeOptions, Server, SimulateSpec, SimulateResult,
    SweepResult, SweepSpec,
};
use std::path::{Path, PathBuf};

fn tmp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("s85-warmserve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn spawn_with_store(dir: &Path) -> smith85_serve::RunningServer {
    let session = SimSession::builder()
        .store(dir)
        .build()
        .expect("session with store");
    Server::spawn(ServeOptions {
        addr: "127.0.0.1:0".to_string(),
        session,
        ..ServeOptions::default()
    })
    .expect("spawn server")
}

fn simulate_request() -> Request {
    Request::Simulate(SimulateSpec {
        workload: "VCCOM".to_string(),
        len: 3_000,
        seed: None,
        cache: CacheSpec {
            size: 4_096,
            line: 16,
            ways: None,
            purge: None,
        },
        policy: None,
        deadline_ms: None,
    })
}

fn call(addr: &str, request: &Request) -> Response {
    let mut client = Client::builder().addr(addr).connect().expect("connect");
    client.call(request).expect("call")
}

fn simulate(addr: &str) -> SimulateResult {
    match call(addr, &simulate_request()) {
        Response::Simulate(r) => r,
        other => panic!("expected simulate result, got {}", other.encode()),
    }
}

/// The deterministic payload of a result — everything except timing and
/// the per-request trace id.
fn fingerprint(r: &SimulateResult) -> (String, u64, u64, u64, String, String, String, u64) {
    (
        r.workload.clone(),
        r.refs,
        r.cache_bytes as u64,
        r.misses,
        format!("{:.12}", r.miss_ratio),
        format!("{:.12}", r.instruction_miss_ratio),
        format!("{:.12}", r.data_miss_ratio),
        r.traffic_bytes,
    )
}

fn stats(addr: &str) -> smith85_serve::StatsResult {
    match call(addr, &Request::Stats) {
        Response::Stats(s) => s,
        other => panic!("expected stats, got {}", other.encode()),
    }
}

#[test]
fn restarted_server_is_bit_identical_with_zero_new_materializations() {
    let dir = tmp_root("restart");

    // Cold server: computes, spills trace and result to the store.
    let cold = {
        let server = spawn_with_store(&dir);
        let addr = server.addr().to_string();
        let result = simulate(&addr);
        let s = stats(&addr);
        let store = s.store.expect("server runs with a store");
        assert!(store.writes >= 1, "cold run must persist");
        assert_eq!(s.pool.misses, 1, "cold run materializes once");
        server.stop().unwrap();
        result
    };

    // Warm server over the same directory: same answer, no generation.
    let server = spawn_with_store(&dir);
    let addr = server.addr().to_string();
    let warm = simulate(&addr);
    assert_eq!(
        fingerprint(&warm),
        fingerprint(&cold),
        "warm restart must be bit-identical"
    );
    let s = stats(&addr);
    assert_eq!(s.pool.misses, 0, "warm server must not materialize any trace");
    assert_eq!(
        s.pool.materialized_bytes, 0,
        "warm server must not generate a single reference"
    );
    let store = s.store.expect("store counters in stats");
    assert!(store.hits >= 1, "the answer must have come from the store");
    server.stop().unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}

fn grid_sweep_request() -> Request {
    Request::Sweep(SweepSpec {
        workload: "VCCOM".to_string(),
        len: 3_000,
        seed: None,
        sizes: vec![1_024, 4_096, 16_384],
        ways: vec![1, 2, 4, 8],
        line: 16,
        policy: None,
        deadline_ms: None,
    })
}

fn grid_sweep(addr: &str) -> SweepResult {
    match call(addr, &grid_sweep_request()) {
        Response::Sweep(r) => r,
        other => panic!("expected sweep result, got {}", other.encode()),
    }
}

/// The deterministic payload of a grid sweep — every cell's identity
/// and exact ratios, without timing or the trace id.
fn grid_fingerprint(r: &SweepResult) -> Vec<(usize, Option<usize>, u64, u64, u64)> {
    r.points
        .iter()
        .map(|p| {
            (
                p.size,
                p.ways,
                p.miss_ratio.to_bits(),
                p.traffic_ratio.unwrap().to_bits(),
                p.dirty_push_fraction.unwrap().to_bits(),
            )
        })
        .collect()
}

#[test]
fn restarted_server_answers_a_full_grid_sweep_from_the_store() {
    let dir = tmp_root("gridsweep");

    // Cold server: one trace traversal computes the whole 12-cell grid
    // and persists it as a single store record.
    let cold = {
        let server = spawn_with_store(&dir);
        let addr = server.addr().to_string();
        let result = grid_sweep(&addr);
        assert_eq!(result.points.len(), 12, "3 sizes x 4 ways, all realizable");
        let s = stats(&addr);
        assert_eq!(s.pool.misses, 1, "cold grid sweep materializes once");
        assert!(s.store.expect("store counters").writes >= 1);
        let one_pass = s.one_pass.expect("one_pass counters in stats");
        assert_eq!(one_pass.refs, 3_000);
        assert_eq!(one_pass.grid_cells, 12);
        server.stop().unwrap();
        result
    };

    // Warm server over the same directory: the full grid comes back
    // bit-identically from one store read — no trace is ever generated.
    let server = spawn_with_store(&dir);
    let addr = server.addr().to_string();
    let warm = grid_sweep(&addr);
    assert_eq!(
        grid_fingerprint(&warm),
        grid_fingerprint(&cold),
        "warm grid sweep must be bit-identical"
    );
    let s = stats(&addr);
    assert_eq!(s.pool.misses, 0, "warm grid sweep must not materialize any trace");
    assert_eq!(s.pool.entries, 0, "the stored grid answers before the pool");
    assert!(s.store.expect("store counters").hits >= 1);
    server.stop().unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn corrupt_store_entries_are_quarantined_and_never_served() {
    let dir = tmp_root("corrupt");

    let cold = {
        let server = spawn_with_store(&dir);
        let addr = server.addr().to_string();
        let result = simulate(&addr);
        server.stop().unwrap();
        result
    };

    // Flip a bit in every persisted object: trace spill and result record.
    let mut injector = smith85_trace::fault::DiskFaultInjector::new(85);
    let mut damaged = 0;
    for entry in std::fs::read_dir(dir.join("objects")).unwrap() {
        let path = entry.unwrap().path();
        injector
            .corrupt_file(smith85_trace::fault::DiskFault::BitFlip, &path)
            .unwrap();
        damaged += 1;
    }
    assert!(damaged >= 2, "expected trace + result objects, found {damaged}");

    // The restarted server quarantines everything at open, then
    // recomputes — and the recomputed answer still matches the cold run.
    let server = spawn_with_store(&dir);
    let addr = server.addr().to_string();
    let recomputed = simulate(&addr);
    assert_eq!(
        fingerprint(&recomputed),
        fingerprint(&cold),
        "recomputation after corruption must match the cold run"
    );
    let s = stats(&addr);
    assert_eq!(
        s.pool.misses, 1,
        "with every spill quarantined the pool must re-materialize"
    );
    let store = s.store.expect("store counters");
    assert!(
        store.corrupt_quarantined >= damaged,
        "all damaged objects must be quarantined ({} < {damaged})",
        store.corrupt_quarantined
    );
    server.stop().unwrap();

    // The evidence is preserved on disk, not deleted.
    let quarantined = std::fs::read_dir(dir.join("quarantine"))
        .unwrap()
        .filter_map(Result::ok)
        .count();
    assert_eq!(quarantined as u64, damaged);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn warm_result_cache_skips_even_the_pool() {
    let dir = tmp_root("resultcache");
    {
        let server = spawn_with_store(&dir);
        let addr = server.addr().to_string();
        simulate(&addr);
        server.stop().unwrap();
    }
    let server = spawn_with_store(&dir);
    let addr = server.addr().to_string();
    let first = simulate(&addr);
    let second = simulate(&addr);
    assert_eq!(fingerprint(&first), fingerprint(&second));
    // Both warm answers come from the persisted result record: the pool
    // never even sees the workload.
    let s = stats(&addr);
    assert_eq!(s.pool.entries, 0, "result cache must answer before the pool");
    assert_eq!(s.completed, 2);
    server.stop().unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}
