//! Dependency-free metrics for the smith85 workspace.
//!
//! The workspace's external dependencies resolve to no-op offline shims,
//! so this crate hand-rolls the three metric primitives the simulator
//! needs — atomic [`Counter`]s, [`Gauge`]s and fixed-bucket
//! [`Histogram`]s — plus a [`Registry`] that owns them by name and can
//! render a point-in-time [`RegistrySnapshot`] or a Prometheus
//! text-exposition page. A [`Span`] guard records wall-clock timing into
//! a histogram on drop.
//!
//! Everything is lock-free on the hot path: metric handles are
//! `Arc`-shared and updated with relaxed atomics; the registry's maps
//! are only locked when a handle is first looked up or a snapshot is
//! taken.
//!
//! ```
//! use smith85_obs::{Registry, MS_BOUNDS};
//!
//! let registry = Registry::new();
//! registry.counter("requests_total").inc();
//! registry.gauge("queue_depth").set(3.0);
//! registry.histogram("exec_ms", MS_BOUNDS).observe(12.5);
//! let snapshot = registry.snapshot();
//! assert_eq!(snapshot.counters[0].value, 1);
//! assert!(snapshot.to_prometheus().contains("smith85_requests_total 1"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

/// Default bucket upper bounds for millisecond timings: 250µs up to one
/// minute, roughly log-spaced.
pub const MS_BOUNDS: &[f64] = &[
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0,
    10_000.0, 30_000.0, 60_000.0,
];

/// Default bucket upper bounds for simulation throughput in
/// references/second (1e5 .. 1e9, 1-2.5-5 spaced).
pub const REFS_PER_SEC_BOUNDS: &[f64] = &[
    1e5, 2.5e5, 5e5, 1e6, 2.5e6, 5e6, 1e7, 2.5e7, 5e7, 1e8, 2.5e8, 5e8, 1e9,
];

/// Prefix applied to every metric name in the Prometheus exposition.
const PROMETHEUS_PREFIX: &str = "smith85_";

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current count.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-write-wins instantaneous value (queue depth, pool bytes).
///
/// Stored as the `f64` bit pattern in an `AtomicU64` so reads and
/// writes need no lock.
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge {
            bits: AtomicU64::new(0f64.to_bits()),
        }
    }
}

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A fixed-bucket histogram with Prometheus `le` semantics.
///
/// Bucket `i` counts observations `v <= bounds[i]` (the first such
/// bound wins, so an exact boundary value lands in the bucket it
/// bounds). Values above the last finite bound land in an implicit
/// `+Inf` overflow bucket; values below the lowest bound land in bucket
/// 0, which doubles as the underflow bucket.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    /// One per finite bound, plus a trailing `+Inf` overflow bucket.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Running sum, stored as `f64` bits and updated with a CAS loop.
    sum_bits: AtomicU64,
}

impl Histogram {
    /// Creates a histogram with the given finite bucket upper bounds.
    ///
    /// Bounds must be finite and strictly increasing; violations are a
    /// programming error and panic.
    pub fn new(bounds: &[f64]) -> Histogram {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        for pair in bounds.windows(2) {
            assert!(pair[0] < pair[1], "histogram bounds must be increasing");
        }
        assert!(
            bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be finite (+Inf is implicit)"
        );
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Records one observation.
    pub fn observe(&self, value: f64) {
        let index = self
            .bounds
            .iter()
            .position(|&bound| value <= bound)
            .unwrap_or(self.bounds.len());
        self.buckets[index].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut current = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + value).to_bits();
            match self
                .sum_bits
                .compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(actual) => current = actual,
            }
        }
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Estimated `q`-quantile (`0.0..=1.0`): the upper bound of the
    /// bucket containing the target rank.
    ///
    /// Returns `0.0` for an empty histogram; observations in the
    /// overflow bucket report the last finite bound (the histogram
    /// cannot resolve beyond it).
    pub fn quantile(&self, q: f64) -> f64 {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        // NaN would silently fall to the lowest bucket via the `as u64`
        // cast; treat it as an explicit "lowest quantile" instead.
        let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 1.0) };
        let target = ((q * total as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (index, &bucket_count) in counts.iter().enumerate() {
            cumulative += bucket_count;
            if cumulative >= target {
                return self.bounds.get(index).copied().unwrap_or_else(|| {
                    // Overflow bucket: saturate at the last finite bound.
                    *self.bounds.last().expect("bounds are non-empty")
                });
            }
        }
        *self.bounds.last().expect("bounds are non-empty")
    }
}

/// A timing guard: records the elapsed wall-clock milliseconds into a
/// histogram when dropped.
#[derive(Debug)]
pub struct Span {
    histogram: Arc<Histogram>,
    start: Instant,
}

impl Span {
    /// Starts a span against the given histogram.
    pub fn new(histogram: Arc<Histogram>) -> Span {
        Span {
            histogram,
            start: Instant::now(),
        }
    }

    /// Elapsed milliseconds so far (without consuming the span).
    pub fn elapsed_ms(&self) -> f64 {
        self.start.elapsed().as_secs_f64() * 1e3
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.histogram.observe(self.elapsed_ms());
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

/// A named collection of metrics, cheaply cloneable (clones share the
/// underlying metrics).
///
/// `BTreeMap`s keep snapshot and exposition output deterministically
/// ordered by name.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    inner: Arc<RegistryInner>,
}

/// Recovers the map even if a panicking thread poisoned the lock;
/// metric maps hold no invariants a half-finished insert can break.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        Arc::clone(
            lock(&self.inner.counters)
                .entry(name.to_string())
                .or_default(),
        )
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        Arc::clone(lock(&self.inner.gauges).entry(name.to_string()).or_default())
    }

    /// The histogram named `name`, created with `bounds` on first use.
    ///
    /// The first registration wins: later calls return the existing
    /// histogram and ignore their `bounds` argument.
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Arc<Histogram> {
        Arc::clone(
            lock(&self.inner.histograms)
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::new(bounds))),
        )
    }

    /// Starts a [`Span`] that records into the millisecond histogram
    /// named `name` when dropped.
    pub fn span(&self, name: &str) -> Span {
        Span::new(self.histogram(name, MS_BOUNDS))
    }

    /// A point-in-time copy of every metric, ordered by name.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let counters = lock(&self.inner.counters)
            .iter()
            .map(|(name, counter)| CounterSnapshot {
                name: name.clone(),
                value: counter.get(),
            })
            .collect();
        let gauges = lock(&self.inner.gauges)
            .iter()
            .map(|(name, gauge)| GaugeSnapshot {
                name: name.clone(),
                value: gauge.get(),
            })
            .collect();
        let histograms = lock(&self.inner.histograms)
            .iter()
            .map(|(name, histogram)| {
                let buckets = histogram
                    .bounds
                    .iter()
                    .zip(&histogram.buckets)
                    .map(|(&le, count)| BucketSnapshot {
                        le,
                        count: count.load(Ordering::Relaxed),
                    })
                    .collect();
                HistogramSnapshot {
                    name: name.clone(),
                    count: histogram.count(),
                    sum: histogram.sum(),
                    overflow: histogram.buckets[histogram.bounds.len()].load(Ordering::Relaxed),
                    p50: histogram.quantile(0.50),
                    p95: histogram.quantile(0.95),
                    p99: histogram.quantile(0.99),
                    buckets,
                }
            })
            .collect();
        RegistrySnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// One counter in a [`RegistrySnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct CounterSnapshot {
    /// Metric name (unprefixed).
    pub name: String,
    /// Counter value at snapshot time.
    pub value: u64,
}

/// One gauge in a [`RegistrySnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct GaugeSnapshot {
    /// Metric name (unprefixed).
    pub name: String,
    /// Gauge value at snapshot time.
    pub value: f64,
}

/// One histogram bucket: observations `<= le` (non-cumulative count).
#[derive(Debug, Clone, PartialEq)]
pub struct BucketSnapshot {
    /// Upper bound of this bucket.
    pub le: f64,
    /// Raw (per-bucket, not cumulative) observation count.
    pub count: u64,
}

/// One histogram in a [`RegistrySnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Metric name (unprefixed).
    pub name: String,
    /// Total observations.
    pub count: u64,
    /// Sum of all observations.
    pub sum: f64,
    /// Observations above the last finite bound (the `+Inf` bucket).
    pub overflow: u64,
    /// Estimated median.
    pub p50: f64,
    /// Estimated 95th percentile.
    pub p95: f64,
    /// Estimated 99th percentile.
    pub p99: f64,
    /// Finite buckets with raw counts, in bound order.
    pub buckets: Vec<BucketSnapshot>,
}

/// A point-in-time copy of a [`Registry`], ordered by metric name.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RegistrySnapshot {
    /// All counters.
    pub counters: Vec<CounterSnapshot>,
    /// All gauges.
    pub gauges: Vec<GaugeSnapshot>,
    /// All histograms.
    pub histograms: Vec<HistogramSnapshot>,
}

impl RegistrySnapshot {
    /// Renders the snapshot in the Prometheus text exposition format
    /// (version 0.0.4), every metric prefixed `smith85_`.
    ///
    /// Histogram buckets are emitted cumulatively with a final
    /// `le="+Inf"` bucket equal to `_count`, as the format requires.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for counter in &self.counters {
            let name = format!("{PROMETHEUS_PREFIX}{}", counter.name);
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {}", counter.value);
        }
        for gauge in &self.gauges {
            let name = format!("{PROMETHEUS_PREFIX}{}", gauge.name);
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {}", gauge.value);
        }
        for histogram in &self.histograms {
            let name = format!("{PROMETHEUS_PREFIX}{}", histogram.name);
            let _ = writeln!(out, "# TYPE {name} histogram");
            let mut cumulative = 0u64;
            for bucket in &histogram.buckets {
                cumulative += bucket.count;
                let _ = writeln!(out, "{name}_bucket{{le=\"{}\"}} {cumulative}", bucket.le);
            }
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", histogram.count);
            let _ = writeln!(out, "{name}_sum {}", histogram.sum);
            let _ = writeln!(out, "{name}_count {}", histogram.count);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let counter = Counter::default();
        counter.inc();
        counter.add(41);
        assert_eq!(counter.get(), 42);
    }

    #[test]
    fn gauge_last_write_wins() {
        let gauge = Gauge::default();
        assert_eq!(gauge.get(), 0.0);
        gauge.set(7.5);
        gauge.set(-2.25);
        assert_eq!(gauge.get(), -2.25);
    }

    #[test]
    fn concurrent_counter_increments_lose_nothing() {
        let registry = Registry::new();
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 10_000;
        std::thread::scope(|scope| {
            for _ in 0..THREADS {
                let registry = registry.clone();
                scope.spawn(move || {
                    let counter = registry.counter("hits");
                    for _ in 0..PER_THREAD {
                        counter.inc();
                    }
                });
            }
        });
        assert_eq!(registry.counter("hits").get(), THREADS as u64 * PER_THREAD);
    }

    #[test]
    fn histogram_exact_boundary_lands_in_the_bucket_it_bounds() {
        let h = Histogram::new(&[1.0, 10.0, 100.0]);
        h.observe(1.0); // exactly on the first bound
        h.observe(10.0); // exactly on the second bound
        h.observe(100.0); // exactly on the last bound
        let counts: Vec<u64> = h.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        assert_eq!(counts, vec![1, 1, 1, 0], "le semantics: v <= bound");
    }

    #[test]
    fn histogram_underflow_lands_in_the_first_bucket() {
        let h = Histogram::new(&[1.0, 10.0]);
        h.observe(-5.0);
        h.observe(0.0);
        h.observe(0.999);
        let counts: Vec<u64> = h.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        assert_eq!(counts, vec![3, 0, 0]);
    }

    #[test]
    fn histogram_overflow_lands_in_the_inf_bucket() {
        let h = Histogram::new(&[1.0, 10.0]);
        h.observe(10.0001);
        h.observe(1e12);
        let counts: Vec<u64> = h.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        assert_eq!(counts, vec![0, 0, 2]);
        assert_eq!(h.count(), 2);
        // Quantiles saturate at the last finite bound.
        assert_eq!(h.quantile(0.99), 10.0);
    }

    #[test]
    fn histogram_quantiles_walk_cumulative_counts() {
        let h = Histogram::new(&[1.0, 2.0, 4.0, 8.0]);
        // 10 observations: 5 in le=1, 3 in le=2, 2 in le=4.
        for _ in 0..5 {
            h.observe(0.5);
        }
        for _ in 0..3 {
            h.observe(1.5);
        }
        for _ in 0..2 {
            h.observe(3.0);
        }
        assert_eq!(h.quantile(0.50), 1.0); // rank 5 of 10 -> first bucket
        assert_eq!(h.quantile(0.80), 2.0); // rank 8 -> second bucket
        assert_eq!(h.quantile(0.95), 4.0); // rank 10 -> third bucket
        assert_eq!(h.count(), 10);
        assert!((h.sum() - (5.0 * 0.5 + 3.0 * 1.5 + 2.0 * 3.0)).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_quantile_is_zero() {
        let h = Histogram::new(MS_BOUNDS);
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.sum(), 0.0);
    }

    #[test]
    fn out_of_range_quantiles_clamp_instead_of_panicking() {
        // Empty: every q, however malformed, reports 0.0.
        let empty = Histogram::new(&[1.0, 10.0]);
        for q in [-1.0, 0.0, 0.5, 1.0, 2.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert_eq!(empty.quantile(q), 0.0, "q={q}");
        }
        // Populated: q < 0 clamps to the lowest bucket, q > 1 to the
        // highest populated one, and NaN behaves like q = 0.
        let h = Histogram::new(&[1.0, 10.0, 100.0]);
        h.observe(0.5);
        h.observe(50.0);
        assert_eq!(h.quantile(-3.0), 1.0);
        assert_eq!(h.quantile(0.0), 1.0, "q=0 still reports rank 1");
        assert_eq!(h.quantile(7.0), 100.0);
        assert_eq!(h.quantile(f64::INFINITY), 100.0);
        assert_eq!(h.quantile(f64::NAN), 1.0);
    }

    #[test]
    fn span_records_duration_even_when_the_caller_panics() {
        let h = Arc::new(Histogram::new(&[1e6]));
        let result = std::panic::catch_unwind({
            let h = Arc::clone(&h);
            move || {
                let _span = Span::new(h);
                panic!("timed section dies");
            }
        });
        assert!(result.is_err());
        assert_eq!(h.count(), 1, "Drop must run during unwind");
        assert!(h.sum() >= 0.0);
    }

    #[test]
    fn first_histogram_registration_wins_bounds() {
        let registry = Registry::new();
        let first = registry.histogram("t_ms", &[1.0, 2.0]);
        let second = registry.histogram("t_ms", &[100.0]);
        assert!(Arc::ptr_eq(&first, &second));
        first.observe(1.5);
        assert_eq!(second.count(), 1);
    }

    #[test]
    fn span_records_elapsed_time_on_drop() {
        let registry = Registry::new();
        {
            let _span = registry.span("op_ms");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let h = registry.histogram("op_ms", MS_BOUNDS);
        assert_eq!(h.count(), 1);
        assert!(h.sum() >= 1.0, "span slept 2ms, recorded {}", h.sum());
    }

    #[test]
    fn snapshot_is_deterministically_ordered() {
        let registry = Registry::new();
        registry.counter("zeta").inc();
        registry.counter("alpha").add(3);
        registry.gauge("mid").set(1.5);
        let snapshot = registry.snapshot();
        let names: Vec<&str> = snapshot.counters.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
        assert_eq!(snapshot.counters[0].value, 3);
        assert_eq!(snapshot.gauges[0].value, 1.5);
    }

    #[test]
    fn prometheus_exposition_is_cumulative_with_inf_bucket() {
        let registry = Registry::new();
        registry.counter("reqs_total").add(2);
        registry.gauge("depth").set(4.0);
        let h = registry.histogram("lat_ms", &[1.0, 10.0]);
        h.observe(0.5);
        h.observe(5.0);
        h.observe(99.0); // overflow
        let text = registry.snapshot().to_prometheus();
        assert!(text.contains("# TYPE smith85_reqs_total counter"));
        assert!(text.contains("smith85_reqs_total 2"));
        assert!(text.contains("# TYPE smith85_depth gauge"));
        assert!(text.contains("smith85_depth 4"));
        assert!(text.contains("smith85_lat_ms_bucket{le=\"1\"} 1"));
        assert!(text.contains("smith85_lat_ms_bucket{le=\"10\"} 2"), "{text}");
        assert!(text.contains("smith85_lat_ms_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("smith85_lat_ms_count 3"));
        // Every non-comment line is `name{labels}? value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (name_part, value_part) =
                line.rsplit_once(' ').expect("metric line has a value");
            assert!(!name_part.is_empty());
            assert!(value_part.parse::<f64>().is_ok(), "bad value in {line:?}");
        }
    }

    #[test]
    fn registry_clones_share_metrics() {
        let registry = Registry::new();
        let clone = registry.clone();
        clone.counter("shared").add(5);
        assert_eq!(registry.counter("shared").get(), 5);
    }
}
