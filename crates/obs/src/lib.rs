//! Dependency-free metrics for the smith85 workspace.
//!
//! The workspace's external dependencies resolve to no-op offline shims,
//! so this crate hand-rolls the three metric primitives the simulator
//! needs — atomic [`Counter`]s, [`Gauge`]s and fixed-bucket
//! [`Histogram`]s — plus a [`Registry`] that owns them by name and can
//! render a point-in-time [`RegistrySnapshot`] or a Prometheus
//! text-exposition page. A [`Span`] guard records wall-clock timing into
//! a histogram on drop.
//!
//! Everything is lock-free on the hot path: metric handles are
//! `Arc`-shared and updated with relaxed atomics; the registry's maps
//! are only locked when a handle is first looked up or a snapshot is
//! taken.
//!
//! ```
//! use smith85_obs::{Registry, MS_BOUNDS};
//!
//! let registry = Registry::new();
//! registry.counter("requests_total").inc();
//! registry.gauge("queue_depth").set(3.0);
//! registry.histogram("exec_ms", MS_BOUNDS).observe(12.5);
//! let snapshot = registry.snapshot();
//! assert_eq!(snapshot.counters[0].value, 1);
//! assert!(snapshot.to_prometheus().contains("smith85_requests_total 1"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

/// Default bucket upper bounds for millisecond timings: 250µs up to one
/// minute, roughly log-spaced.
pub const MS_BOUNDS: &[f64] = &[
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0,
    10_000.0, 30_000.0, 60_000.0,
];

/// Default bucket upper bounds for simulation throughput in
/// references/second (1e5 .. 1e9, 1-2.5-5 spaced).
pub const REFS_PER_SEC_BOUNDS: &[f64] = &[
    1e5, 2.5e5, 5e5, 1e6, 2.5e6, 5e6, 1e7, 2.5e7, 5e7, 1e8, 2.5e8, 5e8, 1e9,
];

/// Prefix applied to every metric name in the Prometheus exposition.
const PROMETHEUS_PREFIX: &str = "smith85_";

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current count.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-write-wins instantaneous value (queue depth, pool bytes).
///
/// Stored as the `f64` bit pattern in an `AtomicU64` so reads and
/// writes need no lock.
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge {
            bits: AtomicU64::new(0f64.to_bits()),
        }
    }
}

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A fixed-bucket histogram with Prometheus `le` semantics.
///
/// Bucket `i` counts observations `v <= bounds[i]` (the first such
/// bound wins, so an exact boundary value lands in the bucket it
/// bounds). Values above the last finite bound land in an implicit
/// `+Inf` overflow bucket; values below the lowest bound land in bucket
/// 0, which doubles as the underflow bucket.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    /// One per finite bound, plus a trailing `+Inf` overflow bucket.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Running sum, stored as `f64` bits and updated with a CAS loop.
    sum_bits: AtomicU64,
}

impl Histogram {
    /// Creates a histogram with the given finite bucket upper bounds.
    ///
    /// Bounds must be finite and strictly increasing; violations are a
    /// programming error and panic.
    pub fn new(bounds: &[f64]) -> Histogram {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        for pair in bounds.windows(2) {
            assert!(pair[0] < pair[1], "histogram bounds must be increasing");
        }
        assert!(
            bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be finite (+Inf is implicit)"
        );
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Records one observation.
    pub fn observe(&self, value: f64) {
        let index = self
            .bounds
            .iter()
            .position(|&bound| value <= bound)
            .unwrap_or(self.bounds.len());
        self.buckets[index].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut current = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + value).to_bits();
            match self
                .sum_bits
                .compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(actual) => current = actual,
            }
        }
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Estimated `q`-quantile (`0.0..=1.0`): the upper bound of the
    /// bucket containing the target rank.
    ///
    /// Returns `0.0` for an empty histogram; observations in the
    /// overflow bucket report the last finite bound (the histogram
    /// cannot resolve beyond it).
    pub fn quantile(&self, q: f64) -> f64 {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        // NaN would silently fall to the lowest bucket via the `as u64`
        // cast; treat it as an explicit "lowest quantile" instead.
        let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 1.0) };
        let target = ((q * total as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (index, &bucket_count) in counts.iter().enumerate() {
            cumulative += bucket_count;
            if cumulative >= target {
                return self.bounds.get(index).copied().unwrap_or_else(|| {
                    // Overflow bucket: saturate at the last finite bound.
                    *self.bounds.last().expect("bounds are non-empty")
                });
            }
        }
        *self.bounds.last().expect("bounds are non-empty")
    }
}

/// A timing guard: records the elapsed wall-clock milliseconds into a
/// histogram when dropped.
#[derive(Debug)]
pub struct Span {
    histogram: Arc<Histogram>,
    start: Instant,
}

impl Span {
    /// Starts a span against the given histogram.
    pub fn new(histogram: Arc<Histogram>) -> Span {
        Span {
            histogram,
            start: Instant::now(),
        }
    }

    /// Elapsed milliseconds so far (without consuming the span).
    pub fn elapsed_ms(&self) -> f64 {
        self.start.elapsed().as_secs_f64() * 1e3
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.histogram.observe(self.elapsed_ms());
    }
}

/// A metric identity: name plus sorted label pairs. Plain (unlabeled)
/// metrics sort ahead of labeled series of the same name, which keeps
/// exposition output grouped by family.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct MetricKey {
    name: String,
    labels: Vec<(String, String)>,
}

impl MetricKey {
    fn new(name: &str, labels: &[(&str, &str)]) -> MetricKey {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| ((*k).to_string(), (*v).to_string()))
            .collect();
        labels.sort();
        MetricKey {
            name: name.to_string(),
            labels,
        }
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: Mutex<BTreeMap<MetricKey, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<MetricKey, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<MetricKey, Arc<Histogram>>>,
}

/// A named collection of metrics, cheaply cloneable (clones share the
/// underlying metrics).
///
/// `BTreeMap`s keep snapshot and exposition output deterministically
/// ordered by name.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    inner: Arc<RegistryInner>,
}

/// Recovers the map even if a panicking thread poisoned the lock;
/// metric maps hold no invariants a half-finished insert can break.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.counter_with(name, &[])
    }

    /// The counter named `name` with the given label pairs, created on
    /// first use. Label order does not matter: pairs are sorted, so
    /// `[("a","1"),("b","2")]` and `[("b","2"),("a","1")]` are the same
    /// series.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        Arc::clone(
            lock(&self.inner.counters)
                .entry(MetricKey::new(name, labels))
                .or_default(),
        )
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.gauge_with(name, &[])
    }

    /// The gauge named `name` with the given label pairs, created on
    /// first use.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        Arc::clone(
            lock(&self.inner.gauges)
                .entry(MetricKey::new(name, labels))
                .or_default(),
        )
    }

    /// The histogram named `name`, created with `bounds` on first use.
    ///
    /// The first registration wins: later calls return the existing
    /// histogram and ignore their `bounds` argument.
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Arc<Histogram> {
        self.histogram_with(name, &[], bounds)
    }

    /// The histogram named `name` with the given label pairs, created
    /// with `bounds` on first use (first registration wins the bounds).
    pub fn histogram_with(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        bounds: &[f64],
    ) -> Arc<Histogram> {
        Arc::clone(
            lock(&self.inner.histograms)
                .entry(MetricKey::new(name, labels))
                .or_insert_with(|| Arc::new(Histogram::new(bounds))),
        )
    }

    /// Starts a [`Span`] that records into the millisecond histogram
    /// named `name` when dropped.
    pub fn span(&self, name: &str) -> Span {
        Span::new(self.histogram(name, MS_BOUNDS))
    }

    /// A point-in-time copy of every metric, ordered by name then labels.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let counters = lock(&self.inner.counters)
            .iter()
            .map(|(key, counter)| CounterSnapshot {
                name: key.name.clone(),
                labels: key.labels.clone(),
                value: counter.get(),
            })
            .collect();
        let gauges = lock(&self.inner.gauges)
            .iter()
            .map(|(key, gauge)| GaugeSnapshot {
                name: key.name.clone(),
                labels: key.labels.clone(),
                value: gauge.get(),
            })
            .collect();
        let histograms = lock(&self.inner.histograms)
            .iter()
            .map(|(key, histogram)| {
                let buckets = histogram
                    .bounds
                    .iter()
                    .zip(&histogram.buckets)
                    .map(|(&le, count)| BucketSnapshot {
                        le,
                        count: count.load(Ordering::Relaxed),
                    })
                    .collect();
                HistogramSnapshot {
                    name: key.name.clone(),
                    labels: key.labels.clone(),
                    count: histogram.count(),
                    sum: histogram.sum(),
                    overflow: histogram.buckets[histogram.bounds.len()].load(Ordering::Relaxed),
                    p50: histogram.quantile(0.50),
                    p95: histogram.quantile(0.95),
                    p99: histogram.quantile(0.99),
                    buckets,
                }
            })
            .collect();
        RegistrySnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// One counter in a [`RegistrySnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct CounterSnapshot {
    /// Metric name (unprefixed).
    pub name: String,
    /// Sorted label pairs (empty for plain metrics).
    pub labels: Vec<(String, String)>,
    /// Counter value at snapshot time.
    pub value: u64,
}

/// One gauge in a [`RegistrySnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct GaugeSnapshot {
    /// Metric name (unprefixed).
    pub name: String,
    /// Sorted label pairs (empty for plain metrics).
    pub labels: Vec<(String, String)>,
    /// Gauge value at snapshot time.
    pub value: f64,
}

/// One histogram bucket: observations `<= le` (non-cumulative count).
#[derive(Debug, Clone, PartialEq)]
pub struct BucketSnapshot {
    /// Upper bound of this bucket.
    pub le: f64,
    /// Raw (per-bucket, not cumulative) observation count.
    pub count: u64,
}

/// One histogram in a [`RegistrySnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Metric name (unprefixed).
    pub name: String,
    /// Sorted label pairs (empty for plain metrics).
    pub labels: Vec<(String, String)>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observations.
    pub sum: f64,
    /// Observations above the last finite bound (the `+Inf` bucket).
    pub overflow: u64,
    /// Estimated median.
    pub p50: f64,
    /// Estimated 95th percentile.
    pub p95: f64,
    /// Estimated 99th percentile.
    pub p99: f64,
    /// Finite buckets with raw counts, in bound order.
    pub buckets: Vec<BucketSnapshot>,
}

impl HistogramSnapshot {
    /// Estimated `q`-quantile recomputed from the snapshot's buckets,
    /// with the same semantics as [`Histogram::quantile`]: the upper
    /// bound of the bucket containing the target rank, saturating at the
    /// last finite bound, `0.0` when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        let total: u64 = self.buckets.iter().map(|b| b.count).sum::<u64>() + self.overflow;
        if total == 0 {
            return 0.0;
        }
        let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 1.0) };
        let target = ((q * total as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for bucket in &self.buckets {
            cumulative += bucket.count;
            if cumulative >= target {
                return bucket.le;
            }
        }
        self.buckets.last().map(|b| b.le).unwrap_or(0.0)
    }

    /// Bucket-wise merge with another snapshot of the same shape: counts
    /// and sums add exactly, and the quantile estimates are recomputed
    /// from the merged buckets. Returns `None` when the two histograms do
    /// not share the same bucket bounds (there is no lossless merge in
    /// that case). The merged snapshot keeps `self`'s name and labels.
    pub fn merge(&self, other: &HistogramSnapshot) -> Option<HistogramSnapshot> {
        if self.buckets.len() != other.buckets.len()
            || self
                .buckets
                .iter()
                .zip(&other.buckets)
                .any(|(a, b)| a.le.to_bits() != b.le.to_bits())
        {
            return None;
        }
        let buckets: Vec<BucketSnapshot> = self
            .buckets
            .iter()
            .zip(&other.buckets)
            .map(|(a, b)| BucketSnapshot {
                le: a.le,
                count: a.count + b.count,
            })
            .collect();
        let mut merged = HistogramSnapshot {
            name: self.name.clone(),
            labels: self.labels.clone(),
            count: self.count + other.count,
            sum: self.sum + other.sum,
            overflow: self.overflow + other.overflow,
            p50: 0.0,
            p95: 0.0,
            p99: 0.0,
            buckets,
        };
        merged.p50 = merged.quantile(0.50);
        merged.p95 = merged.quantile(0.95);
        merged.p99 = merged.quantile(0.99);
        Some(merged)
    }
}

/// A point-in-time copy of a [`Registry`], ordered by metric name.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RegistrySnapshot {
    /// All counters.
    pub counters: Vec<CounterSnapshot>,
    /// All gauges.
    pub gauges: Vec<GaugeSnapshot>,
    /// All histograms.
    pub histograms: Vec<HistogramSnapshot>,
}

/// Escapes a label value for the Prometheus text format.
fn escape_label(value: &str) -> String {
    value
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Renders `{k="v",...}` for a series, with `extra` appended last (the
/// `le` bucket label). Empty labels and no extra renders nothing.
fn render_labels(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{}\"", escape_label(v)));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

impl RegistrySnapshot {
    /// Renders the snapshot in the Prometheus text exposition format
    /// (version 0.0.4), every metric prefixed `smith85_`.
    ///
    /// Histogram buckets are emitted cumulatively with a final
    /// `le="+Inf"` bucket equal to `_count`, as the format requires.
    /// A `# TYPE` line is emitted once per family, so an unlabeled
    /// aggregate and its labeled per-shard series share one header.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_family = String::new();
        for counter in &self.counters {
            let name = format!("{PROMETHEUS_PREFIX}{}", counter.name);
            if name != last_family {
                let _ = writeln!(out, "# TYPE {name} counter");
                last_family = name.clone();
            }
            let _ = writeln!(
                out,
                "{name}{} {}",
                render_labels(&counter.labels, None),
                counter.value
            );
        }
        last_family.clear();
        for gauge in &self.gauges {
            let name = format!("{PROMETHEUS_PREFIX}{}", gauge.name);
            if name != last_family {
                let _ = writeln!(out, "# TYPE {name} gauge");
                last_family = name.clone();
            }
            let _ = writeln!(
                out,
                "{name}{} {}",
                render_labels(&gauge.labels, None),
                gauge.value
            );
        }
        last_family.clear();
        for histogram in &self.histograms {
            let name = format!("{PROMETHEUS_PREFIX}{}", histogram.name);
            if name != last_family {
                let _ = writeln!(out, "# TYPE {name} histogram");
                last_family = name.clone();
            }
            let mut cumulative = 0u64;
            for bucket in &histogram.buckets {
                cumulative += bucket.count;
                let le = bucket.le.to_string();
                let _ = writeln!(
                    out,
                    "{name}_bucket{} {cumulative}",
                    render_labels(&histogram.labels, Some(("le", &le)))
                );
            }
            let _ = writeln!(
                out,
                "{name}_bucket{} {}",
                render_labels(&histogram.labels, Some(("le", "+Inf"))),
                histogram.count
            );
            let labels = render_labels(&histogram.labels, None);
            let _ = writeln!(out, "{name}_sum{labels} {}", histogram.sum);
            let _ = writeln!(out, "{name}_count{labels} {}", histogram.count);
        }
        out
    }

    /// A copy of the snapshot with `key=value` set on every series (an
    /// existing label with the same key is replaced). This is how a
    /// federating node tags a shard's snapshot with `shard=<addr>`
    /// before merging it into its own exposition.
    #[must_use]
    pub fn with_label(&self, key: &str, value: &str) -> RegistrySnapshot {
        let relabel = |labels: &[(String, String)]| {
            let mut labels: Vec<(String, String)> = labels
                .iter()
                .filter(|(k, _)| k != key)
                .cloned()
                .collect();
            labels.push((key.to_string(), value.to_string()));
            labels.sort();
            labels
        };
        RegistrySnapshot {
            counters: self
                .counters
                .iter()
                .map(|c| CounterSnapshot {
                    labels: relabel(&c.labels),
                    ..c.clone()
                })
                .collect(),
            gauges: self
                .gauges
                .iter()
                .map(|g| GaugeSnapshot {
                    labels: relabel(&g.labels),
                    ..g.clone()
                })
                .collect(),
            histograms: self
                .histograms
                .iter()
                .map(|h| HistogramSnapshot {
                    labels: relabel(&h.labels),
                    ..h.clone()
                })
                .collect(),
        }
    }

    /// Folds `other`'s counters and histograms into this snapshot's
    /// same-(name, labels) series: counters sum exactly, histograms merge
    /// bucket-wise (a bounds mismatch keeps the existing series and drops
    /// the other's — there is no lossless merge), and series `self` does
    /// not have yet are added. Gauges are deliberately NOT aggregated:
    /// summing instantaneous values across processes has no meaning, so
    /// gauges only federate as per-shard labeled series.
    pub fn absorb_totals(&mut self, other: &RegistrySnapshot) {
        for counter in &other.counters {
            match self
                .counters
                .iter_mut()
                .find(|c| c.name == counter.name && c.labels == counter.labels)
            {
                Some(existing) => existing.value += counter.value,
                None => self.counters.push(counter.clone()),
            }
        }
        for histogram in &other.histograms {
            match self
                .histograms
                .iter_mut()
                .find(|h| h.name == histogram.name && h.labels == histogram.labels)
            {
                Some(existing) => {
                    if let Some(merged) = existing.merge(histogram) {
                        *existing = merged;
                    }
                }
                None => self.histograms.push(histogram.clone()),
            }
        }
        self.sort();
    }

    /// Appends every series of `other` (no merging; callers relabel
    /// first so keys cannot collide) and restores (name, labels) order.
    pub fn append(&mut self, other: RegistrySnapshot) {
        self.counters.extend(other.counters);
        self.gauges.extend(other.gauges);
        self.histograms.extend(other.histograms);
        self.sort();
    }

    /// Re-sorts every section by (name, labels), the registry's own
    /// snapshot order.
    pub fn sort(&mut self) {
        self.counters
            .sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        self.gauges
            .sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        self.histograms
            .sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let counter = Counter::default();
        counter.inc();
        counter.add(41);
        assert_eq!(counter.get(), 42);
    }

    #[test]
    fn gauge_last_write_wins() {
        let gauge = Gauge::default();
        assert_eq!(gauge.get(), 0.0);
        gauge.set(7.5);
        gauge.set(-2.25);
        assert_eq!(gauge.get(), -2.25);
    }

    #[test]
    fn concurrent_counter_increments_lose_nothing() {
        let registry = Registry::new();
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 10_000;
        std::thread::scope(|scope| {
            for _ in 0..THREADS {
                let registry = registry.clone();
                scope.spawn(move || {
                    let counter = registry.counter("hits");
                    for _ in 0..PER_THREAD {
                        counter.inc();
                    }
                });
            }
        });
        assert_eq!(registry.counter("hits").get(), THREADS as u64 * PER_THREAD);
    }

    #[test]
    fn histogram_exact_boundary_lands_in_the_bucket_it_bounds() {
        let h = Histogram::new(&[1.0, 10.0, 100.0]);
        h.observe(1.0); // exactly on the first bound
        h.observe(10.0); // exactly on the second bound
        h.observe(100.0); // exactly on the last bound
        let counts: Vec<u64> = h.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        assert_eq!(counts, vec![1, 1, 1, 0], "le semantics: v <= bound");
    }

    #[test]
    fn histogram_underflow_lands_in_the_first_bucket() {
        let h = Histogram::new(&[1.0, 10.0]);
        h.observe(-5.0);
        h.observe(0.0);
        h.observe(0.999);
        let counts: Vec<u64> = h.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        assert_eq!(counts, vec![3, 0, 0]);
    }

    #[test]
    fn histogram_overflow_lands_in_the_inf_bucket() {
        let h = Histogram::new(&[1.0, 10.0]);
        h.observe(10.0001);
        h.observe(1e12);
        let counts: Vec<u64> = h.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        assert_eq!(counts, vec![0, 0, 2]);
        assert_eq!(h.count(), 2);
        // Quantiles saturate at the last finite bound.
        assert_eq!(h.quantile(0.99), 10.0);
    }

    #[test]
    fn histogram_quantiles_walk_cumulative_counts() {
        let h = Histogram::new(&[1.0, 2.0, 4.0, 8.0]);
        // 10 observations: 5 in le=1, 3 in le=2, 2 in le=4.
        for _ in 0..5 {
            h.observe(0.5);
        }
        for _ in 0..3 {
            h.observe(1.5);
        }
        for _ in 0..2 {
            h.observe(3.0);
        }
        assert_eq!(h.quantile(0.50), 1.0); // rank 5 of 10 -> first bucket
        assert_eq!(h.quantile(0.80), 2.0); // rank 8 -> second bucket
        assert_eq!(h.quantile(0.95), 4.0); // rank 10 -> third bucket
        assert_eq!(h.count(), 10);
        assert!((h.sum() - (5.0 * 0.5 + 3.0 * 1.5 + 2.0 * 3.0)).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_quantile_is_zero() {
        let h = Histogram::new(MS_BOUNDS);
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.sum(), 0.0);
    }

    #[test]
    fn out_of_range_quantiles_clamp_instead_of_panicking() {
        // Empty: every q, however malformed, reports 0.0.
        let empty = Histogram::new(&[1.0, 10.0]);
        for q in [-1.0, 0.0, 0.5, 1.0, 2.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert_eq!(empty.quantile(q), 0.0, "q={q}");
        }
        // Populated: q < 0 clamps to the lowest bucket, q > 1 to the
        // highest populated one, and NaN behaves like q = 0.
        let h = Histogram::new(&[1.0, 10.0, 100.0]);
        h.observe(0.5);
        h.observe(50.0);
        assert_eq!(h.quantile(-3.0), 1.0);
        assert_eq!(h.quantile(0.0), 1.0, "q=0 still reports rank 1");
        assert_eq!(h.quantile(7.0), 100.0);
        assert_eq!(h.quantile(f64::INFINITY), 100.0);
        assert_eq!(h.quantile(f64::NAN), 1.0);
    }

    #[test]
    fn span_records_duration_even_when_the_caller_panics() {
        let h = Arc::new(Histogram::new(&[1e6]));
        let result = std::panic::catch_unwind({
            let h = Arc::clone(&h);
            move || {
                let _span = Span::new(h);
                panic!("timed section dies");
            }
        });
        assert!(result.is_err());
        assert_eq!(h.count(), 1, "Drop must run during unwind");
        assert!(h.sum() >= 0.0);
    }

    #[test]
    fn first_histogram_registration_wins_bounds() {
        let registry = Registry::new();
        let first = registry.histogram("t_ms", &[1.0, 2.0]);
        let second = registry.histogram("t_ms", &[100.0]);
        assert!(Arc::ptr_eq(&first, &second));
        first.observe(1.5);
        assert_eq!(second.count(), 1);
    }

    #[test]
    fn span_records_elapsed_time_on_drop() {
        let registry = Registry::new();
        {
            let _span = registry.span("op_ms");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let h = registry.histogram("op_ms", MS_BOUNDS);
        assert_eq!(h.count(), 1);
        assert!(h.sum() >= 1.0, "span slept 2ms, recorded {}", h.sum());
    }

    #[test]
    fn snapshot_is_deterministically_ordered() {
        let registry = Registry::new();
        registry.counter("zeta").inc();
        registry.counter("alpha").add(3);
        registry.gauge("mid").set(1.5);
        let snapshot = registry.snapshot();
        let names: Vec<&str> = snapshot.counters.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
        assert_eq!(snapshot.counters[0].value, 3);
        assert_eq!(snapshot.gauges[0].value, 1.5);
    }

    #[test]
    fn prometheus_exposition_is_cumulative_with_inf_bucket() {
        let registry = Registry::new();
        registry.counter("reqs_total").add(2);
        registry.gauge("depth").set(4.0);
        let h = registry.histogram("lat_ms", &[1.0, 10.0]);
        h.observe(0.5);
        h.observe(5.0);
        h.observe(99.0); // overflow
        let text = registry.snapshot().to_prometheus();
        assert!(text.contains("# TYPE smith85_reqs_total counter"));
        assert!(text.contains("smith85_reqs_total 2"));
        assert!(text.contains("# TYPE smith85_depth gauge"));
        assert!(text.contains("smith85_depth 4"));
        assert!(text.contains("smith85_lat_ms_bucket{le=\"1\"} 1"));
        assert!(text.contains("smith85_lat_ms_bucket{le=\"10\"} 2"), "{text}");
        assert!(text.contains("smith85_lat_ms_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("smith85_lat_ms_count 3"));
        // Every non-comment line is `name{labels}? value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (name_part, value_part) =
                line.rsplit_once(' ').expect("metric line has a value");
            assert!(!name_part.is_empty());
            assert!(value_part.parse::<f64>().is_ok(), "bad value in {line:?}");
        }
    }

    #[test]
    fn registry_clones_share_metrics() {
        let registry = Registry::new();
        let clone = registry.clone();
        clone.counter("shared").add(5);
        assert_eq!(registry.counter("shared").get(), 5);
    }

    #[test]
    fn labeled_series_are_distinct_and_label_order_is_insensitive() {
        let registry = Registry::new();
        registry.counter_with("fwd", &[("shard", "a"), ("zone", "1")]).inc();
        // Same pair set, swapped argument order: must hit the same series.
        registry.counter_with("fwd", &[("zone", "1"), ("shard", "a")]).add(2);
        registry.counter_with("fwd", &[("shard", "b")]).add(7);
        registry.counter("fwd").add(10);
        let snapshot = registry.snapshot();
        let series: Vec<(Vec<(String, String)>, u64)> = snapshot
            .counters
            .iter()
            .filter(|c| c.name == "fwd")
            .map(|c| (c.labels.clone(), c.value))
            .collect();
        assert_eq!(series.len(), 3);
        // Unlabeled aggregate sorts first within the family.
        assert_eq!(series[0], (vec![], 10));
        assert_eq!(
            series[1],
            (
                vec![
                    ("shard".to_string(), "a".to_string()),
                    ("zone".to_string(), "1".to_string())
                ],
                3
            )
        );
        assert_eq!(series[2].1, 7);
    }

    #[test]
    fn labeled_exposition_renders_escaped_label_sets_once_per_family() {
        let registry = Registry::new();
        registry.counter("fwd").add(1);
        registry.counter_with("fwd", &[("shard", "127.0.0.1:4090")]).add(2);
        registry
            .gauge_with("up", &[("path", "a\"b\\c\nd")])
            .set(1.0);
        registry
            .histogram_with("lat_ms", &[("shard", "a")], &[1.0, 10.0])
            .observe(0.5);
        let text = registry.snapshot().to_prometheus();
        assert_eq!(text.matches("# TYPE smith85_fwd counter").count(), 1);
        assert!(text.contains("smith85_fwd 1"));
        assert!(text.contains("smith85_fwd{shard=\"127.0.0.1:4090\"} 2"));
        assert!(text.contains("smith85_up{path=\"a\\\"b\\\\c\\nd\"} 1"));
        assert!(text.contains("smith85_lat_ms_bucket{shard=\"a\",le=\"1\"} 1"));
        assert!(text.contains("smith85_lat_ms_bucket{shard=\"a\",le=\"+Inf\"} 1"));
        assert!(text.contains("smith85_lat_ms_sum{shard=\"a\"} 0.5"));
        // Labeled lines still parse as `series value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (name_part, value_part) =
                line.rsplit_once(' ').expect("metric line has a value");
            assert!(!name_part.is_empty());
            assert!(value_part.parse::<f64>().is_ok(), "bad value in {line:?}");
        }
    }

    /// Deterministic pseudo-random stream for the merge property test.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    #[test]
    fn histogram_merge_is_exact_on_counts_and_bounded_on_quantiles() {
        let bounds = [1.0, 2.0, 5.0, 10.0, 50.0, 100.0];
        let mut seed = 0xdecafbadu64;
        for case in 0..64 {
            let left = Registry::new();
            let right = Registry::new();
            let lh = left.histogram("m", &bounds);
            let rh = right.histogram("m", &bounds);
            let n_left = 1 + (splitmix64(&mut seed) % 40) as usize;
            let n_right = 1 + (splitmix64(&mut seed) % 40) as usize;
            for _ in 0..n_left {
                lh.observe((splitmix64(&mut seed) % 120) as f64);
            }
            for _ in 0..n_right {
                rh.observe((splitmix64(&mut seed) % 120) as f64);
            }
            let a = left.snapshot().histograms[0].clone();
            let b = right.snapshot().histograms[0].clone();
            let merged = a.merge(&b).expect("same bounds must merge");
            // Counters are exact sums.
            assert_eq!(merged.count, a.count + b.count, "case {case}");
            assert_eq!(merged.overflow, a.overflow + b.overflow);
            assert!((merged.sum - (a.sum + b.sum)).abs() < 1e-9);
            for (i, bucket) in merged.buckets.iter().enumerate() {
                assert_eq!(bucket.count, a.buckets[i].count + b.buckets[i].count);
            }
            // Merged quantiles are bounded by the component quantiles.
            for q in [0.5, 0.9, 0.95, 0.99] {
                let (qa, qb, qm) = (a.quantile(q), b.quantile(q), merged.quantile(q));
                assert!(
                    qm >= qa.min(qb) && qm <= qa.max(qb),
                    "case {case} q={q}: merged {qm} outside [{}, {}]",
                    qa.min(qb),
                    qa.max(qb)
                );
            }
        }
    }

    #[test]
    fn histogram_merge_refuses_mismatched_bounds() {
        let left = Registry::new();
        let right = Registry::new();
        left.histogram("m", &[1.0, 2.0]).observe(0.5);
        right.histogram("m", &[1.0, 3.0]).observe(0.5);
        let a = left.snapshot().histograms[0].clone();
        let b = right.snapshot().histograms[0].clone();
        assert!(a.merge(&b).is_none());
    }

    #[test]
    fn federation_helpers_sum_totals_and_keep_labeled_series() {
        let router = Registry::new();
        router.counter("requests_total").add(5);
        router.histogram("lat_ms", &[1.0, 10.0]).observe(0.5);
        let shard = Registry::new();
        shard.counter("requests_total").add(3);
        shard.counter("shard_only_total").add(9);
        shard.gauge("depth").set(2.0);
        shard.histogram("lat_ms", &[1.0, 10.0]).observe(5.0);

        let mut federated = router.snapshot();
        let shard_snap = shard.snapshot();
        federated.absorb_totals(&shard_snap);
        federated.append(shard_snap.with_label("shard", "127.0.0.1:4090"));

        let get = |name: &str, labels: &[(&str, &str)]| -> Option<u64> {
            let labels: Vec<(String, String)> = labels
                .iter()
                .map(|(k, v)| ((*k).to_string(), (*v).to_string()))
                .collect();
            federated
                .counters
                .iter()
                .find(|c| c.name == name && c.labels == labels)
                .map(|c| c.value)
        };
        // Aggregate equals router + shard; labeled series keeps shard's own value.
        assert_eq!(get("requests_total", &[]), Some(8));
        assert_eq!(
            get("requests_total", &[("shard", "127.0.0.1:4090")]),
            Some(3)
        );
        // A series only the shard has still shows up in the aggregate.
        assert_eq!(get("shard_only_total", &[]), Some(9));
        // Gauges are not aggregated — only the labeled copy exists.
        assert!(!federated
            .gauges
            .iter()
            .any(|g| g.name == "depth" && g.labels.is_empty()));
        assert!(federated
            .gauges
            .iter()
            .any(|g| g.name == "depth" && !g.labels.is_empty()));
        // Histogram aggregate merged bucket-wise.
        let agg = federated
            .histograms
            .iter()
            .find(|h| h.name == "lat_ms" && h.labels.is_empty())
            .unwrap();
        assert_eq!(agg.count, 2);
        assert_eq!(agg.buckets[0].count, 1);
        assert_eq!(agg.buckets[1].count, 1);
        // Exposition stays parseable with the mixed label sets.
        for line in federated.to_prometheus().lines().filter(|l| !l.starts_with('#')) {
            assert!(line.rsplit_once(' ').unwrap().1.parse::<f64>().is_ok());
        }
    }
}
