//! Criterion benchmarks of the synthetic workload substrate: per-profile
//! generation throughput and the multiprogramming mixer.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use smith85_synth::catalog;
use smith85_trace::mix::RoundRobinMix;
use smith85_trace::stats::TraceCharacterizer;

const REFS: usize = 50_000;

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("generate");
    group.throughput(Throughput::Elements(REFS as u64));
    for name in ["MVS1", "VCCOM", "ZGREP", "TWOD", "PL0"] {
        let spec = catalog::by_name(name).expect("catalog trace");
        group.bench_with_input(BenchmarkId::from_parameter(name), &spec, |b, spec| {
            b.iter(|| spec.stream().take(REFS).map(|a| a.addr.get()).sum::<u64>())
        });
    }
    group.finish();
}

fn bench_mix(c: &mut Criterion) {
    let mut group = c.benchmark_group("mix");
    group.throughput(Throughput::Elements(REFS as u64));
    group.bench_function("z8000_assorted_round_robin", |b| {
        let (_, members) = catalog::table3_mixes()
            .into_iter()
            .find(|(n, _)| n.starts_with("Z8000"))
            .expect("mix exists");
        b.iter(|| {
            let streams: Vec<_> = members.iter().map(|p| p.generator()).collect();
            RoundRobinMix::new(streams, 20_000)
                .take(REFS)
                .map(|a| a.addr.get())
                .sum::<u64>()
        })
    });
    group.finish();
}

fn bench_characterizer(c: &mut Criterion) {
    let trace = catalog::by_name("VCCOM").expect("catalog trace").generate(REFS);
    let mut group = c.benchmark_group("characterize");
    group.throughput(Throughput::Elements(REFS as u64));
    group.bench_function("table2_columns", |b| {
        b.iter(|| {
            let mut ch = TraceCharacterizer::new();
            for access in &trace {
                ch.observe(*access);
            }
            ch.finish().address_space_bytes()
        })
    });
    group.finish();
}

fn bench_adapters(c: &mut Criterion) {
    use smith85_synth::perturb::WithInterrupts;
    use smith85_trace::interface::InterfaceAdapter;
    use smith85_trace::InterfaceSpec;
    let spec = catalog::by_name("VCCOM").expect("catalog trace");
    let mut group = c.benchmark_group("adapters");
    group.throughput(Throughput::Elements(REFS as u64));
    group.bench_function("interface_8b_remembering", |b| {
        b.iter(|| {
            InterfaceAdapter::new(spec.stream().take(REFS), InterfaceSpec::new(8, true))
                .map(|a| a.addr.get())
                .sum::<u64>()
        })
    });
    group.bench_function("with_interrupts", |b| {
        b.iter(|| {
            WithInterrupts::new(spec.stream(), 5_000.0, 400.0, 1)
                .take(REFS)
                .map(|a| a.addr.get())
                .sum::<u64>()
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_generation, bench_mix, bench_characterizer, bench_adapters
}
criterion_main!(benches);
