//! Criterion micro-benchmarks of the cache simulator itself: the access
//! path per configuration, and the Mattson stack analyzer against direct
//! simulation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use smith85_cachesim::{
    AssocAnalyzer, Cache, CacheConfig, FetchPolicy, Mapping, Replacement, SectorCache,
    SectorCacheConfig, Simulator, SplitCache, StackAnalyzer, UnifiedCache, WriteBuffer,
};
use smith85_synth::catalog;
use smith85_trace::Trace;

const REFS: usize = 50_000;

fn workload() -> Trace {
    catalog::by_name("VCCOM").expect("catalog trace").generate(REFS)
}

fn bench_access_path(c: &mut Criterion) {
    let trace = workload();
    let mut group = c.benchmark_group("access_path");
    group.throughput(Throughput::Elements(REFS as u64));

    let configs = [
        (
            "fully_assoc_lru_16k",
            CacheConfig::builder(16 * 1024).build().unwrap(),
        ),
        (
            "direct_mapped_16k",
            CacheConfig::builder(16 * 1024)
                .mapping(Mapping::Direct)
                .build()
                .unwrap(),
        ),
        (
            "4way_lru_16k",
            CacheConfig::builder(16 * 1024)
                .mapping(Mapping::SetAssociative(4))
                .build()
                .unwrap(),
        ),
        (
            "4way_fifo_16k",
            CacheConfig::builder(16 * 1024)
                .mapping(Mapping::SetAssociative(4))
                .replacement(Replacement::Fifo)
                .build()
                .unwrap(),
        ),
        (
            "4way_plru_16k",
            CacheConfig::builder(16 * 1024)
                .mapping(Mapping::SetAssociative(4))
                .replacement(Replacement::TreePlru)
                .build()
                .unwrap(),
        ),
        (
            "prefetch_always_16k",
            CacheConfig::builder(16 * 1024)
                .fetch_policy(FetchPolicy::PrefetchAlways)
                .build()
                .unwrap(),
        ),
        (
            "purged_16k",
            CacheConfig::builder(16 * 1024)
                .purge_interval(Some(20_000))
                .build()
                .unwrap(),
        ),
    ];
    for (name, config) in configs {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut cache = Cache::new(config).expect("valid config");
                for access in &trace {
                    cache.access(*access);
                }
                cache.stats().total_misses()
            })
        });
    }
    group.finish();
}

fn bench_organisations(c: &mut Criterion) {
    let trace = workload();
    let mut group = c.benchmark_group("organisation");
    group.throughput(Throughput::Elements(REFS as u64));
    group.bench_function("unified_16k", |b| {
        b.iter(|| {
            let mut sys =
                UnifiedCache::new(CacheConfig::paper_purged(16 * 1024, 20_000).unwrap()).unwrap();
            sys.run(trace.iter().copied());
            sys.stats().total_misses()
        })
    });
    group.bench_function("split_16k_16k", |b| {
        b.iter(|| {
            let mut sys = SplitCache::paper_split(16 * 1024, 20_000).unwrap();
            sys.run(trace.iter().copied());
            sys.total_stats().total_misses()
        })
    });
    group.finish();
}

fn bench_stack_analyzer(c: &mut Criterion) {
    let trace = workload();
    let mut group = c.benchmark_group("stack_vs_direct");
    group.throughput(Throughput::Elements(REFS as u64));
    group.bench_function("mattson_all_sizes", |b| {
        b.iter(|| {
            let mut a = StackAnalyzer::new();
            for access in &trace {
                a.observe(*access);
            }
            a.finish().miss_ratio(16 * 1024)
        })
    });
    for size in [1024usize, 16 * 1024, 64 * 1024] {
        group.bench_with_input(
            BenchmarkId::new("direct_one_size", size),
            &size,
            |b, &size| {
                b.iter(|| {
                    let mut cache =
                        Cache::new(CacheConfig::paper_table1(size).unwrap()).unwrap();
                    for access in &trace {
                        cache.access(*access);
                    }
                    cache.stats().miss_ratio()
                })
            },
        );
    }
    group.finish();
}

fn bench_analyzers_and_buffers(c: &mut Criterion) {
    let trace = workload();
    let mut group = c.benchmark_group("analyzers");
    group.throughput(Throughput::Elements(REFS as u64));
    group.bench_function("assoc_analyzer_64_sets", |b| {
        b.iter(|| {
            let mut a = AssocAnalyzer::new(64);
            for access in &trace {
                a.observe(*access);
            }
            a.finish().miss_ratio(4)
        })
    });
    group.bench_function("sector_cache_z80000", |b| {
        b.iter(|| {
            let mut cache = SectorCache::new(SectorCacheConfig::z80000(4)).unwrap();
            cache.run(trace.iter().copied());
            cache.stats().total_misses()
        })
    });
    group.bench_function("write_buffer_4x8", |b| {
        b.iter(|| {
            let mut wb = WriteBuffer::new(4, 8);
            wb.run(trace.iter().copied());
            wb.stats().memory_writes
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_access_path, bench_organisations, bench_stack_analyzer,
        bench_analyzers_and_buffers
}
criterion_main!(benches);
