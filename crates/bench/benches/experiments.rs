//! Criterion benchmarks of the end-to-end experiments at a reduced scale —
//! one benchmark per reproduced table/figure, so regressions in any layer
//! show up against the artifact that matters.

use criterion::{criterion_group, criterion_main, Criterion};
use smith85_core::experiments::{
    ablations, calibration_report, clark_validation, fig2, fig3_fig4, interface_effects,
    line_size, m68020, multiprocessor, multiprogramming, perturbations, prefetch, table1,
    table2, table3, table5, trace_length, traffic_ratio, z80000, ExperimentConfig,
};

fn bench_config() -> ExperimentConfig {
    ExperimentConfig::builder()
        .trace_len(10_000)
        .sizes(vec![256, 4096])
        .threads(1) // single-threaded for stable timing
        .build()
        .unwrap()
}

fn bench_experiments(c: &mut Criterion) {
    let cfg = bench_config();
    let mut group = c.benchmark_group("experiments");
    group.sample_size(10);
    group.bench_function("table1", |b| b.iter(|| table1::run(&cfg).rows.len()));
    group.bench_function("table2", |b| b.iter(|| table2::run(&cfg).rows.len()));
    group.bench_function("fig2", |b| b.iter(|| fig2::run(&cfg).sizes.len()));
    group.bench_function("table3", |b| b.iter(|| table3::run(&cfg).rows.len()));
    group.bench_function("fig3_fig4", |b| b.iter(|| fig3_fig4::run(&cfg).rows.len()));
    group.bench_function("prefetch_fig5_to_10_table4", |b| {
        b.iter(|| prefetch::run(&cfg).rows.len())
    });
    group.bench_function("table5", |b| b.iter(|| table5::run(&cfg).rows.len()));
    group.bench_function("clark_validation", |b| {
        b.iter(|| clark_validation::run(&cfg).rows.len())
    });
    group.bench_function("z80000", |b| b.iter(|| z80000::run(&cfg).rows.len()));
    group.bench_function("m68020", |b| b.iter(|| m68020::run(&cfg).rows.len()));
    group.bench_function("ablations", |b| b.iter(|| ablations::run(&cfg).purge.len()));
    group.bench_function("traffic_ratio", |b| b.iter(|| traffic_ratio::run(&cfg).rows.len()));
    group.bench_function("perturbations", |b| b.iter(|| perturbations::run(&cfg).rows.len()));
    group.bench_function("interface_effects", |b| {
        b.iter(|| interface_effects::run(&cfg).rows.len())
    });
    group.bench_function("multiprocessor", |b| b.iter(|| multiprocessor::run(&cfg).rows.len()));
    group.bench_function("multiprogramming", |b| {
        b.iter(|| multiprogramming::run(&cfg).rows.len())
    });
    group.bench_function("trace_length", |b| b.iter(|| trace_length::run(&cfg).rows.len()));
    group.bench_function("line_size", |b| b.iter(|| line_size::run(&cfg).rows.len()));
    group.bench_function("calibration_report", |b| {
        b.iter(|| calibration_report::run(&cfg).table3.len())
    });
    group.finish();
}

criterion_group!(benches, bench_experiments);
criterion_main!(benches);
