//! Regenerates Figures 5-7: prefetch/demand miss-ratio factors.

fn main() {
    let config = smith85_bench::config_from_args();
    let study = smith85_core::experiments::prefetch::run(&config);
    println!("{}", study.render_miss_factors());
}
