//! Regenerates Table 5: design-target miss ratios vs the paper's targets.

fn main() {
    let config = smith85_bench::config_from_args();
    println!("{}", smith85_core::experiments::table5::run(&config).render());
}
