//! Regenerates the M68020 instruction-cache speculation (§3.4).

fn main() {
    let config = smith85_bench::config_from_args();
    println!("{}", smith85_core::experiments::m68020::run(&config).render());
}
