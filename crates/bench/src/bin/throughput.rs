//! Refs/sec throughput baseline for the simulation engine's hot paths.
//!
//! Times each kernel over the same VCCOM trace and reports the best of
//! several repeats, so the numbers are comparable across commits:
//!
//! * `generation` — synthesizing the trace itself;
//! * `stack_analysis` — one-pass LRU stack distances ([`StackAnalyzer`]);
//! * `assoc_analysis` — one-pass per-set stack distances ([`AssocAnalyzer`]);
//! * `set_assoc_sim` — an 8-way 16 KiB cache driven by the slice path;
//! * `unified_sim` — the fully associative paper cache, purges on;
//! * `session_unified` — the same cache through the instrumented
//!   [`SimSession`] entry point (metrics and, with `--journal`, tracing);
//! * `one_pass_sweep` — the one-pass multi-configuration engine over the
//!   paper's full size × associativity grid. Its `refs` are *effective*
//!   references (trace length × grid cells: one traversal replaces that
//!   many per-config simulation steps); the honest per-pass numbers ride
//!   along as `trace_refs` / `trace_refs_per_sec`;
//! * `fifo_random_policy` — the replacement-policy matrix's non-LRU hot
//!   path: the same 8-way cache under FIFO and then seeded-random
//!   replacement (`refs` counts both passes).
//!
//! ```text
//! cargo run --release -p smith85-bench --bin throughput -- [quick|paper] [OUT.json]
//!     [--journal PATH]
//! ```
//!
//! `--journal PATH` attaches an NDJSON trace journal to the session
//! kernel, so comparing `session_unified` with and without the flag
//! bounds the journaling overhead. The non-session kernels never touch
//! the tracing layer, so for them the cost is zero by construction.
//!
//! Results land in `OUT.json` (default `BENCH_sim.json`), documented in
//! `EXPERIMENTS.md`.

use smith85_cachesim::{
    AssocAnalyzer, CacheConfig, Simulator, StackAnalyzer, UnifiedCache,
};
use smith85_synth::catalog;
use smith85_trace::MemoryAccess;
use std::time::Instant;

/// The workload every kernel is timed on.
const TRACE: &str = "VCCOM";
/// Timed repeats per kernel; the best (least interfered-with) one counts.
const REPEATS: usize = 3;

struct KernelResult {
    name: &'static str,
    refs: usize,
    best_secs: f64,
    refs_per_sec: f64,
    grid: Option<GridInfo>,
}

/// Grid dimensions for the `one_pass_sweep` kernel, plus the raw
/// single-traversal numbers behind its effective-refs figure.
struct GridInfo {
    sizes: usize,
    ways: usize,
    cells: usize,
    trace_refs: usize,
}

fn time_best<F: FnMut()>(mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..REPEATS {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn kernel(name: &'static str, refs: usize, f: impl FnMut()) -> KernelResult {
    let best_secs = time_best(f);
    KernelResult {
        name,
        refs,
        best_secs,
        refs_per_sec: refs as f64 / best_secs.max(1e-12),
        grid: None,
    }
}

fn run_kernels(len: usize, journal: Option<&str>) -> Vec<KernelResult> {
    let spec = catalog::by_name(TRACE).expect("VCCOM is in the catalog");
    let profile = spec.profile().clone();
    let trace = profile.generate(len);
    let replay: &[MemoryAccess] = &trace.as_slice()[..len];

    let mut results = Vec::new();
    results.push(kernel("generation", len, || {
        let t = profile.generate(len);
        assert_eq!(t.len(), len);
    }));
    results.push(kernel("stack_analysis", len, || {
        let mut a = StackAnalyzer::with_line_size_and_capacity(
            smith85_trace::PAPER_LINE_SIZE,
            len,
        );
        a.observe_slice(replay);
        let p = a.finish();
        assert!(p.miss_ratio(1024) > 0.0);
    }));
    results.push(kernel("assoc_analysis", len, || {
        let mut a =
            AssocAnalyzer::with_line_size_and_capacity(64, smith85_trace::PAPER_LINE_SIZE, len);
        a.observe_slice(replay);
        let p = a.finish();
        assert!(p.cache_bytes(1) > 0);
    }));
    results.push(kernel("set_assoc_sim", len, || {
        let cfg = CacheConfig::builder(16 * 1024)
            .mapping(smith85_cachesim::Mapping::SetAssociative(8))
            .build()
            .expect("valid configuration");
        let mut c = smith85_cachesim::Cache::new(cfg).expect("valid config");
        c.run(replay);
        assert_eq!(c.stats().total_refs(), len as u64);
    }));
    results.push(kernel("fifo_random_policy", 2 * len, || {
        for policy in [
            smith85_cachesim::Replacement::Fifo,
            smith85_cachesim::Replacement::Random { seed: 85 },
        ] {
            let cfg = CacheConfig::builder(16 * 1024)
                .mapping(smith85_cachesim::Mapping::SetAssociative(8))
                .replacement(policy)
                .build()
                .expect("valid configuration");
            let mut c = smith85_cachesim::Cache::new(cfg).expect("valid config");
            c.run(replay);
            assert_eq!(c.stats().total_refs(), len as u64);
        }
    }));
    results.push(kernel("unified_sim", len, || {
        let cfg = CacheConfig::builder(16 * 1024)
            .purge_interval(Some(smith85_trace::PAPER_PURGE_INTERVAL))
            .build()
            .expect("valid configuration");
        let mut c = UnifiedCache::new(cfg).expect("valid config");
        c.run_slice(replay);
        assert_eq!(c.stats().total_refs(), len as u64);
    }));

    let grid_spec = smith85_cachesim::GridSpec::paper_grid();
    let grid_cells = smith85_cachesim::OnePassEngine::new(&grid_spec)
        .expect("paper grid is inside the one-pass envelope")
        .cells()
        .len();
    // One traversal produces every cell, so the comparable refs/sec
    // figure is trace length x cells — what the per-config path would
    // have to touch for the same answer.
    let mut one_pass = kernel("one_pass_sweep", len * grid_cells, || {
        let mut e = smith85_cachesim::OnePassEngine::new(&grid_spec).expect("valid grid");
        e.observe_slice(replay);
        let grid = e.finish();
        assert!(grid.miss_ratio(1024, 1).expect("cell in the grid") > 0.0);
    });
    one_pass.grid = Some(GridInfo {
        sizes: grid_spec.sizes.len(),
        ways: grid_spec.ways.len(),
        cells: grid_cells,
        trace_refs: len,
    });
    results.push(one_pass);

    let mut builder = smith85_core::session::SimSession::builder();
    if let Some(path) = journal {
        let writer = smith85_tracelog::NdjsonWriter::create(path).expect("create journal file");
        builder = builder.journal(smith85_tracelog::SinkHandle::new(std::sync::Arc::new(writer)));
    }
    let session = builder.build().expect("default session configuration");
    results.push(kernel("session_unified", len, || {
        let cfg = CacheConfig::builder(16 * 1024)
            .purge_interval(Some(smith85_trace::PAPER_PURGE_INTERVAL))
            .build()
            .expect("valid configuration");
        let stats = session.simulate_unified(replay, cfg).expect("valid config");
        assert_eq!(stats.total_refs(), len as u64);
    }));
    results
}

fn render_json(mode: &str, len: usize, journaled: bool, results: &[KernelResult]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    // v3 adds the fifo_random_policy kernel; every v2 field is kept.
    s.push_str("  \"schema\": \"smith85-throughput-v3\",\n");
    s.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    s.push_str(&format!("  \"journaled\": {journaled},\n"));
    s.push_str(&format!("  \"trace\": \"{TRACE}\",\n"));
    s.push_str(&format!("  \"trace_len\": {len},\n"));
    s.push_str(&format!("  \"repeats\": {REPEATS},\n"));
    s.push_str("  \"kernels\": [\n");
    for (i, r) in results.iter().enumerate() {
        let grid = r.grid.as_ref().map_or(String::new(), |g| {
            format!(
                ", \"grid_sizes\": {}, \"grid_ways\": {}, \"grid_cells\": {}, \
                 \"trace_refs\": {}, \"trace_refs_per_sec\": {:.0}",
                g.sizes,
                g.ways,
                g.cells,
                g.trace_refs,
                g.trace_refs as f64 / r.best_secs.max(1e-12),
            )
        });
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"refs\": {}, \"best_secs\": {:.6}, \"refs_per_sec\": {:.0}{}}}{}\n",
            r.name,
            r.refs,
            r.best_secs,
            r.refs_per_sec,
            grid,
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

fn main() {
    let mut mode = "paper".to_string();
    let mut out_path = "BENCH_sim.json".to_string();
    let mut journal = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "quick" | "paper" => mode = arg,
            "--journal" => {
                journal = Some(args.next().expect("--journal needs a file path"));
            }
            other => out_path = other.to_string(),
        }
    }
    let len = if mode == "quick" { 50_000 } else { 250_000 };
    let results = run_kernels(len, journal.as_deref());
    for r in &results {
        println!(
            "{:<16} {:>9} refs  {:>9.1} ms  {:>12.0} refs/sec",
            r.name,
            r.refs,
            r.best_secs * 1e3,
            r.refs_per_sec
        );
    }
    let json = render_json(&mode, len, journal.is_some(), &results);
    std::fs::write(&out_path, &json).expect("write benchmark result file");
    println!("wrote {out_path}");
}
