//! Regenerates the §5 / \[Hil84\] traffic-ratio study.

fn main() {
    let config = smith85_bench::config_from_args();
    println!(
        "{}",
        smith85_core::experiments::traffic_ratio::run(&config).render()
    );
}
