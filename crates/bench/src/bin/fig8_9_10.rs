//! Regenerates Figures 8-10 and Table 4: prefetch/demand traffic factors.

fn main() {
    let config = smith85_bench::config_from_args();
    let study = smith85_core::experiments::prefetch::run(&config);
    println!("{}", study.render_traffic_factors());
}
