//! Regenerates the §1.1 memory-interface (design architecture) study.

fn main() {
    let config = smith85_bench::config_from_args();
    println!(
        "{}",
        smith85_core::experiments::interface_effects::run(&config).render()
    );
}
