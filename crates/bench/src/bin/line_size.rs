//! Regenerates the §5 future-work line-size study.

fn main() {
    let config = smith85_bench::config_from_args();
    println!(
        "{}",
        smith85_core::experiments::line_size::run(&config).render()
    );
}
