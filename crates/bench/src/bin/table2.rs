//! Regenerates Table 2: per-trace characteristics.

fn main() {
    let config = smith85_bench::config_from_args();
    println!("{}", smith85_core::experiments::table2::run(&config).render());
}
