//! Runs every experiment in sequence — the full reproduction in one go.

use smith85_core::experiments::*;

fn main() {
    let config = smith85_bench::config_from_args();
    eprintln!(
        "running all experiments: {} refs/workload, {} sizes, {} threads",
        config.trace_len,
        config.sizes.len(),
        config.threads
    );
    println!("{}", table2::run(&config).render());
    let t1 = table1::run(&config);
    println!("{}", t1.render());
    println!("{}", fig2::run(&config).render());
    println!("{}", table3::run(&config).render());
    let f34 = fig3_fig4::run(&config);
    println!("{}", f34.render());
    println!("{}", prefetch::run(&config).render());
    println!("{}", table5::from_results(&config, &t1, &f34).render());
    println!("{}", clark_validation::run(&config).render());
    println!("{}", z80000::run(&config).render());
    println!("{}", m68020::run(&config).render());
    println!("{}", traffic_ratio::run(&config).render());
    println!("{}", trace_length::run(&config).render());
    println!("{}", multiprocessor::run(&config).render());
    println!("{}", calibration_report::run(&config).render());
    println!("{}", multiprogramming::run(&config).render());
    println!("{}", line_size::run(&config).render());
    println!("{}", fudge_validation::run(&config).render());
    println!("{}", perturbations::run(&config).render());
    println!("{}", interface_effects::run(&config).render());
    println!("{}", ablations::run(&config).render());
    println!("{}", family_conclusions::run(&config).render());
    println!("{}", conclusions::run(&config).render());
}
