//! Regenerates the §3.2 trace-length sensitivity study.

fn main() {
    let config = smith85_bench::config_from_args();
    println!(
        "{}",
        smith85_core::experiments::trace_length::run(&config).render()
    );
}
