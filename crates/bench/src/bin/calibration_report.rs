//! Prints the calibration audit: every published paper number vs measured.

fn main() {
    let config = smith85_bench::config_from_args();
    println!(
        "{}",
        smith85_core::experiments::calibration_report::run(&config).render()
    );
}
