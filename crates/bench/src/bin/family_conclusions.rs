//! Re-tests the paper's workload-dominance thesis on the storage-I/O and
//! network-address families under the full replacement-policy matrix.

fn main() {
    let config = smith85_bench::config_from_args();
    println!(
        "{}",
        smith85_core::experiments::family_conclusions::run(&config).render()
    );
}
