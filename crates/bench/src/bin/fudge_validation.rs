//! Regenerates the §4.3 fudge-factor cross-architecture validation.

fn main() {
    let config = smith85_bench::config_from_args();
    println!(
        "{}",
        smith85_core::experiments::fudge_validation::run(&config).render()
    );
}
