//! Regenerates the design-choice ablations (line size, mapping,
//! replacement, write policy, purge interval).

fn main() {
    let config = smith85_bench::config_from_args();
    println!("{}", smith85_core::experiments::ablations::run(&config).render());
}
