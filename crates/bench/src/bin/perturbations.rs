//! Regenerates the §1.1 perturbation study (interrupts, DMA, purging).

fn main() {
    let config = smith85_bench::config_from_args();
    println!(
        "{}",
        smith85_core::experiments::perturbations::run(&config).render()
    );
}
