//! Regenerates Figures 3 & 4: split instruction/data miss ratios vs size.

fn main() {
    let config = smith85_bench::config_from_args();
    println!("{}", smith85_core::experiments::fig3_fig4::run(&config).render());
}
