//! Regenerates the §3.5.2 shared-bus multiprocessor trade study.

fn main() {
    let config = smith85_bench::config_from_args();
    println!(
        "{}",
        smith85_core::experiments::multiprocessor::run(&config).render()
    );
}
