//! Regenerates the §4.1 validation against Clark's VAX-11/780 data.

fn main() {
    let config = smith85_bench::config_from_args();
    println!(
        "{}",
        smith85_core::experiments::clark_validation::run(&config).render()
    );
}
