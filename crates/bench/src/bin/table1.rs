//! Regenerates Table 1 / Figure 1: overall miss ratios for all 57 rows.

fn main() {
    let config = smith85_bench::config_from_args();
    println!("{}", smith85_core::experiments::table1::run(&config).render());
}
