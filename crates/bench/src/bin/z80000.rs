//! Regenerates the Z80000 sector-cache workload comparison (§1.2, §4.1).

fn main() {
    let config = smith85_bench::config_from_args();
    println!("{}", smith85_core::experiments::z80000::run(&config).render());
}
