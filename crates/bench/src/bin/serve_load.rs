//! Load generator for the smith85-serve simulation service.
//!
//! Drives N concurrent TCP connections, each issuing a stream of
//! `simulate` requests over a small set of catalog workloads (so the
//! shared trace pool sees both misses and hits), and reports
//! requests/sec plus p50/p95/p99 latency and the number of admission
//! rejections:
//!
//! ```text
//! cargo run --release -p smith85-bench --bin serve_load -- \
//!     [quick|paper] [--addr HOST:PORT] [--store DIR] [--connections N] \
//!     [OUT.json]
//! ```
//!
//! Without `--addr` the generator spawns an in-process server on an
//! ephemeral port, which keeps the benchmark self-contained and
//! runnable in CI, and appends a `scale_out` section: an event-loop
//! pass at >= 64 connections (the regime where a thread-per-connection
//! accept loop falls over) and a two-backend router pass whose
//! responses are checked bit-identical against a direct single-node
//! call. With `--store DIR` the benchmark measures the persistent
//! store's warm-start win: it runs the load twice against the same
//! store directory — a cold pass on an empty store, then a restarted
//! server over the now-populated store — and reports both passes side
//! by side. Results land in `OUT.json` (default `BENCH_serve.json`),
//! documented in `EXPERIMENTS.md`.

use smith85_core::session::SimSession;
use smith85_serve::{
    CacheSpec, Client, Request, Response, RouterOptions, ServeOptions, Server, SimulateSpec,
};
use std::time::Instant;

/// Workloads cycled through by every connection; repeats make the
/// shared trace pool serve hits after the first materialization.
const WORKLOADS: &[&str] = &["VCCOM", "ZGREP", "PL0", "TWOD"];

/// Cache sizes cycled through per request.
const SIZES: &[usize] = &[1 << 12, 1 << 14, 1 << 16];

struct ModeConfig {
    connections: usize,
    requests_per_connection: usize,
    trace_len: usize,
}

struct ConnectionOutcome {
    latencies_ms: Vec<f64>,
    rejections: u64,
    errors: u64,
}

/// One full load run against a live server: merged latency distribution,
/// admission outcomes, wall time, and the server's own counters.
struct PassResult {
    latencies_ms: Vec<f64>,
    rejections: u64,
    errors: u64,
    wall_secs: f64,
    stats: Option<smith85_serve::StatsResult>,
}

impl PassResult {
    fn completed(&self) -> usize {
        self.latencies_ms.len()
    }

    fn requests_per_sec(&self) -> f64 {
        self.completed() as f64 / self.wall_secs.max(1e-12)
    }
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let rank = (p / 100.0) * (sorted_ms.len() - 1) as f64;
    sorted_ms[rank.round() as usize]
}

fn drive_connection(
    addr: &str,
    id: usize,
    config: &ModeConfig,
) -> Result<ConnectionOutcome, std::io::Error> {
    let mut client = Client::builder()
        .addr(addr)
        .connect()
        .map_err(std::io::Error::other)?;
    let mut outcome = ConnectionOutcome {
        latencies_ms: Vec::with_capacity(config.requests_per_connection),
        rejections: 0,
        errors: 0,
    };
    for i in 0..config.requests_per_connection {
        let pick = id + i;
        let request = Request::Simulate(SimulateSpec {
            workload: WORKLOADS[pick % WORKLOADS.len()].to_string(),
            len: config.trace_len,
            seed: None,
            cache: CacheSpec {
                size: SIZES[pick % SIZES.len()],
                line: 16,
                ways: None,
                purge: None,
            },
            policy: None,
            deadline_ms: None,
        });
        let start = Instant::now();
        // call_raw keeps server-side errors as wire responses so the
        // overload tally below sees them.
        let response = client.call_raw(&request)?;
        let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
        match response {
            Response::Simulate(_) => outcome.latencies_ms.push(elapsed_ms),
            Response::Error(e) if e.code == smith85_serve::ErrorCode::Overloaded => {
                outcome.rejections += 1;
            }
            _ => outcome.errors += 1,
        }
    }
    Ok(outcome)
}

/// Runs the full connection fan-out against `target` and gathers the
/// merged outcome plus the server's stats counters.
fn run_pass(target: &str, config: &ModeConfig) -> PassResult {
    let start = Instant::now();
    let outcomes: Vec<ConnectionOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..config.connections)
            .map(|id| {
                let config = &config;
                scope.spawn(move || drive_connection(target, id, config))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("connection thread").expect("connection I/O"))
            .collect()
    });
    let wall_secs = start.elapsed().as_secs_f64();

    let mut latencies: Vec<f64> = Vec::new();
    let mut rejections = 0u64;
    let mut errors = 0u64;
    for outcome in &outcomes {
        latencies.extend_from_slice(&outcome.latencies_ms);
        rejections += outcome.rejections;
        errors += outcome.errors;
    }
    latencies.sort_by(|a, b| a.total_cmp(b));

    let stats = {
        let mut client = Client::builder()
            .addr(target)
            .connect()
            .expect("stats connection");
        match client.call(&Request::Stats).expect("stats request") {
            Response::Stats(stats) => Some(stats),
            _ => None,
        }
    };
    PassResult {
        latencies_ms: latencies,
        rejections,
        errors,
        wall_secs,
        stats,
    }
}

fn spawn_store_server(store_dir: &str) -> smith85_serve::RunningServer {
    let session = SimSession::builder()
        .store(store_dir)
        .build()
        .expect("session with store");
    Server::spawn(
        ServeOptions::builder()
            .addr("127.0.0.1:0")
            .session(session)
            .build()
            .expect("store-backed serve options"),
    )
    .expect("spawn store-backed server")
}

/// The scale-out measurements appended when the benchmark owns its own
/// servers: an event-loop pass at many connections (journaling off and
/// on, to price the observability layer), and a router pass over two
/// in-process backend shards.
struct ScaleOut {
    event_loop_connections: usize,
    event_loop: PassResult,
    /// The same event-loop pass with a trace journal attached: every
    /// request now emits spans and an access-log event to disk. The
    /// journaling-off pass above costs nothing extra by construction
    /// (the sink short-circuits when no journal is configured).
    instrumented: PassResult,
    /// Throughput cost of journaling, percent (positive = journaling
    /// is slower): the median of per-pair overheads across interleaved
    /// baseline/journal rounds, which cancels machine drift that a
    /// single best-vs-best ratio would misattribute to the code path.
    journal_overhead_percent: f64,
    router_backends: usize,
    router: PassResult,
    bit_identical: bool,
}

/// Normalizes a response for payload comparison: queue/exec timings and
/// trace ids legitimately differ between two executions of the same
/// deterministic request, everything else must match bit-for-bit.
fn normalized(response: &Response) -> String {
    let mut response = response.clone();
    match &mut response {
        Response::Simulate(r) => {
            r.queue_ms = 0;
            r.exec_ms = 0;
            r.trace_id = String::new();
        }
        Response::Sweep(r) => {
            r.queue_ms = 0;
            r.exec_ms = 0;
            r.trace_id = String::new();
        }
        _ => {}
    }
    response.encode()
}

/// Issues the same deterministic requests through the router and
/// directly to a backend shard; the payloads must agree exactly.
fn check_bit_identical(router_addr: &str, backend_addr: &str, trace_len: usize) -> bool {
    let mut via_router = Client::builder()
        .addr(router_addr)
        .connect()
        .expect("router connection");
    let mut direct = Client::builder()
        .addr(backend_addr)
        .connect()
        .expect("backend connection");
    (0..WORKLOADS.len()).all(|i| {
        let request = Request::Simulate(SimulateSpec {
            workload: WORKLOADS[i].to_string(),
            len: trace_len,
            seed: None,
            cache: CacheSpec {
                size: SIZES[i % SIZES.len()],
                line: 16,
                ways: None,
                purge: None,
            },
            policy: None,
            deadline_ms: None,
        });
        let routed = via_router.call(&request).expect("routed simulate");
        let local = direct.call(&request).expect("direct simulate");
        normalized(&routed) == normalized(&local)
    })
}

/// Runs the event-loop and router passes against in-process servers.
fn run_scale_out(config: &ModeConfig) -> ScaleOut {
    // Event loop: the connection count where a thread-per-connection
    // accept loop (with its 100ms accept cadence) stops keeping up.
    let connections = config.connections.max(64);
    let event_server = Server::spawn(
        ServeOptions::builder()
            .addr("127.0.0.1:0")
            .queue_capacity(connections * 4)
            .build()
            .expect("event-loop serve options"),
    )
    .expect("spawn event-loop server");
    // Journaling costs a fixed ~5 events per request, independent of
    // request size, so the overhead ratio below is only meaningful
    // against a representative request — quick mode's micro requests
    // would quote the fixed cost against almost no work. Pin the
    // scale-out passes to the full-mode request size in every mode.
    let event_config = ModeConfig {
        connections,
        requests_per_connection: 8,
        trace_len: config.trace_len.max(50_000),
    };
    // The identical topology with journaling on: same load, plus
    // per-request spans and an access-log event written to disk.
    let journal_path = std::env::temp_dir().join(format!(
        "smith85-serve-bench-journal-{}.ndjson",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&journal_path);
    let instr_server = Server::spawn(
        ServeOptions::builder()
            .addr("127.0.0.1:0")
            .queue_capacity(connections * 4)
            .journal(journal_path.clone())
            .build()
            .expect("instrumented serve options"),
    )
    .expect("spawn instrumented event-loop server");

    // The journaling price tag is a ratio of two short passes, and the
    // box drifts (CPU frequency, neighbours) on a scale of seconds —
    // two back-to-back blocks of rounds would measure the drift, not
    // the code path. Interleave paired rounds (baseline, journal,
    // baseline, journal, ...) so each pair sees the same machine
    // weather, and take the MEDIAN per-pair overhead: pairing cancels
    // drift, the median shrugs off the odd descheduled round. The
    // first (warm-up) pair populates the shared trace pool on both
    // servers and is discarded.
    const MEASURED_PAIRS: usize = 9;
    let event_addr = event_server.addr().to_string();
    let instr_addr = instr_server.addr().to_string();
    let mut pairs: Vec<(PassResult, PassResult)> = (0..MEASURED_PAIRS + 1)
        .map(|round| {
            // Alternate which server goes first so any systematic
            // first-runner advantage cancels across pairs too.
            if round % 2 == 0 {
                (
                    run_pass(&event_addr, &event_config),
                    run_pass(&instr_addr, &event_config),
                )
            } else {
                let instr = run_pass(&instr_addr, &event_config);
                (run_pass(&event_addr, &event_config), instr)
            }
        })
        .collect();
    pairs.remove(0); // warm-up pair
    let mut overheads: Vec<f64> = pairs
        .iter()
        .map(|(base, instr)| {
            (1.0 - instr.requests_per_sec() / base.requests_per_sec()) * 100.0
        })
        .collect();
    overheads.sort_by(|a, b| a.total_cmp(b));
    let journal_overhead_percent = overheads[overheads.len() / 2];

    let best = |passes: Vec<PassResult>| -> PassResult {
        passes
            .into_iter()
            .max_by(|a, b| a.requests_per_sec().total_cmp(&b.requests_per_sec()))
            .expect("measured rounds ran")
    };
    let (bases, instrs): (Vec<PassResult>, Vec<PassResult>) = pairs.into_iter().unzip();
    let event_pass = best(bases);
    let instr_pass = best(instrs);
    event_server.stop().expect("clean event-loop shutdown");
    instr_server.stop().expect("clean instrumented shutdown");
    print_pass("event-loop", &event_config, "in-process", &event_pass);
    print_pass("event-loop+journal", &event_config, "in-process", &instr_pass);
    let _ = std::fs::remove_file(&journal_path);

    // Router: two backend shards plus a front router, all in-process.
    let backends: Vec<smith85_serve::RunningServer> = (0..2)
        .map(|_| {
            Server::spawn(
                ServeOptions::builder()
                    .addr("127.0.0.1:0")
                    .build()
                    .expect("backend serve options"),
            )
            .expect("spawn backend shard")
        })
        .collect();
    let backend_addrs: Vec<String> = backends.iter().map(|b| b.addr().to_string()).collect();
    let router_server = Server::spawn(
        ServeOptions::builder()
            .addr("127.0.0.1:0")
            .router(RouterOptions {
                backends: backend_addrs.clone(),
                probe_interval_ms: 100,
                ..RouterOptions::default()
            })
            .build()
            .expect("router serve options"),
    )
    .expect("spawn router");
    let router_addr = router_server.addr().to_string();
    let bit_identical = check_bit_identical(&router_addr, &backend_addrs[0], config.trace_len);
    let router_config = ModeConfig {
        connections: config.connections,
        requests_per_connection: config.requests_per_connection,
        trace_len: config.trace_len,
    };
    let router_pass = run_pass(&router_addr, &router_config);
    router_server.stop().expect("clean router shutdown");
    for backend in backends {
        backend.stop().expect("clean backend shutdown");
    }
    print_pass("router", &router_config, "2 shards", &router_pass);
    println!(
        "router: responses bit-identical to a direct backend call: {bit_identical}"
    );

    let scale_out = ScaleOut {
        event_loop_connections: connections,
        event_loop: event_pass,
        instrumented: instr_pass,
        journal_overhead_percent,
        router_backends: 2,
        router: router_pass,
        bit_identical,
    };
    println!(
        "event-loop journaling overhead: {:.1}% median of {MEASURED_PAIRS} paired rounds \
         (0% by construction when disabled)",
        scale_out.journal_overhead_percent
    );
    scale_out
}

/// One pass's JSON object (shared shape for the top level and the
/// cold/warm store comparison).
fn render_pass(indent: &str, pass: &PassResult) -> String {
    let mut s = String::new();
    s.push_str(&format!("{indent}\"completed\": {},\n", pass.completed()));
    s.push_str(&format!(
        "{indent}\"rejected_overload\": {},\n",
        pass.rejections
    ));
    s.push_str(&format!("{indent}\"errors\": {},\n", pass.errors));
    s.push_str(&format!("{indent}\"wall_secs\": {:.6},\n", pass.wall_secs));
    s.push_str(&format!(
        "{indent}\"requests_per_sec\": {:.1},\n",
        pass.requests_per_sec()
    ));
    s.push_str(&format!("{indent}\"latency_ms\": {{\n"));
    s.push_str(&format!(
        "{indent}  \"p50\": {:.3},\n",
        percentile(&pass.latencies_ms, 50.0)
    ));
    s.push_str(&format!(
        "{indent}  \"p95\": {:.3},\n",
        percentile(&pass.latencies_ms, 95.0)
    ));
    s.push_str(&format!(
        "{indent}  \"p99\": {:.3},\n",
        percentile(&pass.latencies_ms, 99.0)
    ));
    s.push_str(&format!(
        "{indent}  \"max\": {:.3}\n",
        pass.latencies_ms.last().copied().unwrap_or(0.0)
    ));
    s.push_str(&format!("{indent}}},\n"));
    match &pass.stats {
        Some(stats) => {
            s.push_str(&format!("{indent}\"server\": {{\n"));
            s.push_str(&format!(
                "{indent}  \"queue_high_water\": {},\n",
                stats.queue_high_water
            ));
            s.push_str(&format!("{indent}  \"workers\": {},\n", stats.workers));
            s.push_str(&format!("{indent}  \"pool_hits\": {},\n", stats.pool.hits));
            s.push_str(&format!(
                "{indent}  \"pool_misses\": {},\n",
                stats.pool.misses
            ));
            s.push_str(&format!(
                "{indent}  \"pool_materialized_bytes\": {}",
                stats.pool.materialized_bytes
            ));
            match &stats.store {
                Some(store) => {
                    s.push_str(",\n");
                    s.push_str(&format!("{indent}  \"store_hits\": {},\n", store.hits));
                    s.push_str(&format!("{indent}  \"store_misses\": {},\n", store.misses));
                    s.push_str(&format!("{indent}  \"store_writes\": {},\n", store.writes));
                    s.push_str(&format!("{indent}  \"store_bytes\": {}\n", store.bytes));
                }
                None => s.push('\n'),
            }
            s.push_str(&format!("{indent}}}\n"));
        }
        None => s.push_str(&format!("{indent}\"server\": null\n")),
    }
    s
}

fn render_json(
    mode: &str,
    config: &ModeConfig,
    target: &str,
    primary: &PassResult,
    store: Option<(&str, &PassResult)>,
    scale_out: Option<&ScaleOut>,
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"smith85-serve-bench-v4\",\n");
    s.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    s.push_str(&format!("  \"target\": \"{target}\",\n"));
    s.push_str(&format!("  \"connections\": {},\n", config.connections));
    s.push_str(&format!(
        "  \"requests_per_connection\": {},\n",
        config.requests_per_connection
    ));
    s.push_str(&format!("  \"trace_len\": {},\n", config.trace_len));
    s.push_str(&render_pass("  ", primary));
    // trim the trailing newline of the pass body so we can append a comma
    s.pop();
    s.push_str(",\n");
    match store {
        Some((path, warm)) => {
            s.push_str("  \"store\": {\n");
            s.push_str(&format!("    \"path\": {:?},\n", path));
            s.push_str(&format!(
                "    \"warm_speedup\": {:.2},\n",
                warm.requests_per_sec() / primary.requests_per_sec().max(1e-12)
            ));
            s.push_str("    \"warm\": {\n");
            s.push_str(&render_pass("      ", warm));
            s.push_str("    }\n");
            s.push_str("  }\n");
        }
        None => s.push_str("  \"store\": null\n"),
    }
    s.pop();
    s.push_str(",\n");
    match scale_out {
        Some(so) => {
            s.push_str("  \"scale_out\": {\n");
            s.push_str("    \"event_loop\": {\n");
            s.push_str(&format!(
                "      \"connections\": {},\n",
                so.event_loop_connections
            ));
            s.push_str(&render_pass("      ", &so.event_loop));
            s.push_str("    },\n");
            // v4: the observability price tag. The disabled figure is
            // structural — no journal configured means the tracing sink
            // short-circuits before any work happens.
            s.push_str("    \"instrumentation\": {\n");
            s.push_str(&format!(
                "      \"journal_overhead_percent\": {:.1},\n",
                so.journal_overhead_percent
            ));
            s.push_str("      \"disabled_overhead_percent\": 0.0,\n");
            s.push_str("      \"journal_enabled\": {\n");
            s.push_str(&render_pass("        ", &so.instrumented));
            s.push_str("      }\n");
            s.push_str("    },\n");
            s.push_str("    \"router\": {\n");
            s.push_str(&format!("      \"backends\": {},\n", so.router_backends));
            s.push_str(&format!(
                "      \"bit_identical\": {},\n",
                so.bit_identical
            ));
            if let Some(counters) = so.router.stats.as_ref().and_then(|st| st.router.as_ref()) {
                s.push_str(&format!("      \"forwarded\": {},\n", counters.forwarded));
                s.push_str(&format!("      \"hedged\": {},\n", counters.hedged));
                s.push_str(&format!(
                    "      \"shard_overloads\": {},\n",
                    counters.shard_overloads
                ));
                s.push_str(&format!(
                    "      \"shards_healthy\": {},\n",
                    counters.healthy
                ));
            }
            s.push_str(&render_pass("      ", &so.router));
            s.push_str("    }\n");
            s.push_str("  }\n");
        }
        None => s.push_str("  \"scale_out\": null\n"),
    }
    s.push_str("}\n");
    s
}

fn print_pass(label: &str, config: &ModeConfig, target_label: &str, pass: &PassResult) {
    println!(
        "{label}: {} connections x {} requests against {target_label}: {} completed, \
         {} rejected, {} errors in {:.2}s ({:.1} req/s)",
        config.connections,
        config.requests_per_connection,
        pass.completed(),
        pass.rejections,
        pass.errors,
        pass.wall_secs,
        pass.requests_per_sec(),
    );
    println!(
        "{label}: latency ms: p50 {:.2}  p95 {:.2}  p99 {:.2}  max {:.2}",
        percentile(&pass.latencies_ms, 50.0),
        percentile(&pass.latencies_ms, 95.0),
        percentile(&pass.latencies_ms, 99.0),
        pass.latencies_ms.last().copied().unwrap_or(0.0),
    );
    if let Some(stats) = &pass.stats {
        let store = match &stats.store {
            Some(s) => format!(", store {} hits / {} writes", s.hits, s.writes),
            None => String::new(),
        };
        println!(
            "{label}: server: queue high water {}, pool {} hits / {} misses{store}",
            stats.queue_high_water, stats.pool.hits, stats.pool.misses
        );
    }
}

fn main() {
    let mut mode = "paper".to_string();
    let mut out_path = "BENCH_serve.json".to_string();
    let mut addr: Option<String> = None;
    let mut store_dir: Option<String> = None;
    let mut connections_override: Option<usize> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "quick" | "paper" => mode = arg,
            "--addr" => addr = Some(args.next().expect("--addr needs HOST:PORT")),
            "--store" => store_dir = Some(args.next().expect("--store needs DIR")),
            "--connections" => {
                connections_override = Some(
                    args.next()
                        .expect("--connections needs N")
                        .parse()
                        .expect("--connections N must be a number"),
                )
            }
            other => out_path = other.to_string(),
        }
    }
    if addr.is_some() && store_dir.is_some() {
        eprintln!("--store spawns its own in-process servers; drop --addr");
        std::process::exit(2);
    }
    let mut config = if mode == "quick" {
        ModeConfig {
            connections: 4,
            requests_per_connection: 8,
            trace_len: 10_000,
        }
    } else {
        ModeConfig {
            connections: 8,
            requests_per_connection: 32,
            trace_len: 50_000,
        }
    };
    if let Some(n) = connections_override {
        config.connections = n.max(1);
    }

    if let Some(dir) = &store_dir {
        // Cold/warm store comparison: an empty store, a full load pass,
        // then a *restarted* server over the populated directory.
        let _ = std::fs::remove_dir_all(dir);
        let cold_server = spawn_store_server(dir);
        let cold_target = cold_server.addr().to_string();
        let cold = run_pass(&cold_target, &config);
        cold_server.stop().expect("clean cold shutdown");
        print_pass("cold", &config, "in-process --store", &cold);

        let warm_server = spawn_store_server(dir);
        let warm_target = warm_server.addr().to_string();
        let warm = run_pass(&warm_target, &config);
        warm_server.stop().expect("clean warm shutdown");
        print_pass("warm", &config, "in-process --store", &warm);
        println!(
            "warm restart speedup: {:.2}x",
            warm.requests_per_sec() / cold.requests_per_sec().max(1e-12)
        );

        let json = render_json(
            &mode,
            &config,
            "in-process --store",
            &cold,
            Some((dir, &warm)),
            None,
        );
        std::fs::write(&out_path, &json).expect("write benchmark result file");
        println!("wrote {out_path}");
        return;
    }

    // Without --addr, run against an in-process server so the benchmark
    // needs no prior setup (and CI can run it as-is).
    let in_process = match addr {
        Some(_) => None,
        None => Some(
            Server::spawn(
                ServeOptions::builder()
                    .addr("127.0.0.1:0")
                    .build()
                    .expect("serve options"),
            )
            .expect("spawn in-process server"),
        ),
    };
    let target = match (&addr, &in_process) {
        (Some(a), _) => a.clone(),
        (None, Some(server)) => server.addr().to_string(),
        (None, None) => unreachable!(),
    };
    let target_label = if addr.is_some() {
        target.clone()
    } else {
        "in-process".to_string()
    };

    let pass = run_pass(&target, &config);
    let owns_servers = in_process.is_some();
    if let Some(server) = in_process {
        server.stop().expect("clean shutdown");
    }
    print_pass("load", &config, &target_label, &pass);

    // Scale-out passes spawn their own servers, so they only run when
    // the benchmark owns the topology (no --addr).
    let scale_out = owns_servers.then(|| run_scale_out(&config));

    let json = render_json(
        &mode,
        &config,
        &target_label,
        &pass,
        None,
        scale_out.as_ref(),
    );
    std::fs::write(&out_path, &json).expect("write benchmark result file");
    println!("wrote {out_path}");
}
