//! Load generator for the smith85-serve simulation service.
//!
//! Drives N concurrent TCP connections, each issuing a stream of
//! `simulate` requests over a small set of catalog workloads (so the
//! shared trace pool sees both misses and hits), and reports
//! requests/sec plus p50/p95/p99 latency and the number of admission
//! rejections:
//!
//! ```text
//! cargo run --release -p smith85-bench --bin serve_load -- \
//!     [quick|paper] [--addr HOST:PORT] [OUT.json]
//! ```
//!
//! Without `--addr` the generator spawns an in-process server on an
//! ephemeral port, which keeps the benchmark self-contained and
//! runnable in CI. Results land in `OUT.json` (default
//! `BENCH_serve.json`), documented in `EXPERIMENTS.md`.

use smith85_serve::{CacheSpec, Client, Request, Response, ServeOptions, Server, SimulateSpec};
use std::time::Instant;

/// Workloads cycled through by every connection; repeats make the
/// shared trace pool serve hits after the first materialization.
const WORKLOADS: &[&str] = &["VCCOM", "ZGREP", "PL0", "TWOD"];

/// Cache sizes cycled through per request.
const SIZES: &[usize] = &[1 << 12, 1 << 14, 1 << 16];

struct ModeConfig {
    connections: usize,
    requests_per_connection: usize,
    trace_len: usize,
}

struct ConnectionOutcome {
    latencies_ms: Vec<f64>,
    rejections: u64,
    errors: u64,
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let rank = (p / 100.0) * (sorted_ms.len() - 1) as f64;
    sorted_ms[rank.round() as usize]
}

fn drive_connection(
    addr: &str,
    id: usize,
    config: &ModeConfig,
) -> Result<ConnectionOutcome, std::io::Error> {
    let mut client = Client::connect(addr)?;
    let mut outcome = ConnectionOutcome {
        latencies_ms: Vec::with_capacity(config.requests_per_connection),
        rejections: 0,
        errors: 0,
    };
    for i in 0..config.requests_per_connection {
        let pick = id + i;
        let request = Request::Simulate(SimulateSpec {
            workload: WORKLOADS[pick % WORKLOADS.len()].to_string(),
            len: config.trace_len,
            seed: None,
            cache: CacheSpec {
                size: SIZES[pick % SIZES.len()],
                line: 16,
                ways: None,
                purge: None,
            },
            deadline_ms: None,
        });
        let start = Instant::now();
        let response = client.call(&request)?;
        let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
        match response {
            Response::Simulate(_) => outcome.latencies_ms.push(elapsed_ms),
            Response::Error(e) if e.code == smith85_serve::ErrorCode::Overloaded => {
                outcome.rejections += 1;
            }
            _ => outcome.errors += 1,
        }
    }
    Ok(outcome)
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    mode: &str,
    config: &ModeConfig,
    target: &str,
    completed: usize,
    rejections: u64,
    errors: u64,
    wall_secs: f64,
    sorted_ms: &[f64],
    server_stats: Option<&smith85_serve::StatsResult>,
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"smith85-serve-bench-v1\",\n");
    s.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    s.push_str(&format!("  \"target\": \"{target}\",\n"));
    s.push_str(&format!("  \"connections\": {},\n", config.connections));
    s.push_str(&format!(
        "  \"requests_per_connection\": {},\n",
        config.requests_per_connection
    ));
    s.push_str(&format!("  \"trace_len\": {},\n", config.trace_len));
    s.push_str(&format!("  \"completed\": {completed},\n"));
    s.push_str(&format!("  \"rejected_overload\": {rejections},\n"));
    s.push_str(&format!("  \"errors\": {errors},\n"));
    s.push_str(&format!("  \"wall_secs\": {wall_secs:.6},\n"));
    s.push_str(&format!(
        "  \"requests_per_sec\": {:.1},\n",
        completed as f64 / wall_secs.max(1e-12)
    ));
    s.push_str("  \"latency_ms\": {\n");
    s.push_str(&format!("    \"p50\": {:.3},\n", percentile(sorted_ms, 50.0)));
    s.push_str(&format!("    \"p95\": {:.3},\n", percentile(sorted_ms, 95.0)));
    s.push_str(&format!("    \"p99\": {:.3},\n", percentile(sorted_ms, 99.0)));
    s.push_str(&format!(
        "    \"max\": {:.3}\n",
        sorted_ms.last().copied().unwrap_or(0.0)
    ));
    s.push_str("  },\n");
    match server_stats {
        Some(stats) => {
            s.push_str("  \"server\": {\n");
            s.push_str(&format!(
                "    \"queue_high_water\": {},\n",
                stats.queue_high_water
            ));
            s.push_str(&format!("    \"workers\": {},\n", stats.workers));
            s.push_str(&format!("    \"pool_hits\": {},\n", stats.pool.hits));
            s.push_str(&format!("    \"pool_misses\": {}\n", stats.pool.misses));
            s.push_str("  }\n");
        }
        None => s.push_str("  \"server\": null\n"),
    }
    s.push_str("}\n");
    s
}

fn main() {
    let mut mode = "paper".to_string();
    let mut out_path = "BENCH_serve.json".to_string();
    let mut addr: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "quick" | "paper" => mode = arg,
            "--addr" => addr = Some(args.next().expect("--addr needs HOST:PORT")),
            other => out_path = other.to_string(),
        }
    }
    let config = if mode == "quick" {
        ModeConfig {
            connections: 4,
            requests_per_connection: 8,
            trace_len: 10_000,
        }
    } else {
        ModeConfig {
            connections: 8,
            requests_per_connection: 32,
            trace_len: 50_000,
        }
    };

    // Without --addr, run against an in-process server so the benchmark
    // needs no prior setup (and CI can run it as-is).
    let in_process = match addr {
        Some(_) => None,
        None => Some(
            Server::spawn(ServeOptions {
                addr: "127.0.0.1:0".to_string(),
                ..ServeOptions::default()
            })
            .expect("spawn in-process server"),
        ),
    };
    let target = match (&addr, &in_process) {
        (Some(a), _) => a.clone(),
        (None, Some(server)) => server.addr().to_string(),
        (None, None) => unreachable!(),
    };
    let target_label = if addr.is_some() {
        target.clone()
    } else {
        "in-process".to_string()
    };

    let start = Instant::now();
    let outcomes: Vec<ConnectionOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..config.connections)
            .map(|id| {
                let target = &target;
                let config = &config;
                scope.spawn(move || drive_connection(target, id, config))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("connection thread").expect("connection I/O"))
            .collect()
    });
    let wall_secs = start.elapsed().as_secs_f64();

    let mut latencies: Vec<f64> = Vec::new();
    let mut rejections = 0u64;
    let mut errors = 0u64;
    for outcome in &outcomes {
        latencies.extend_from_slice(&outcome.latencies_ms);
        rejections += outcome.rejections;
        errors += outcome.errors;
    }
    latencies.sort_by(|a, b| a.total_cmp(b));

    let server_stats = {
        let mut client = Client::connect(&target).expect("stats connection");
        match client.call(&Request::Stats).expect("stats request") {
            Response::Stats(stats) => Some(stats),
            _ => None,
        }
    };
    if let Some(server) = in_process {
        server.stop().expect("clean shutdown");
    }

    let completed = latencies.len();
    println!(
        "{} connections x {} requests against {target_label}: {completed} completed, \
         {rejections} rejected, {errors} errors in {:.2}s ({:.1} req/s)",
        config.connections,
        config.requests_per_connection,
        wall_secs,
        completed as f64 / wall_secs.max(1e-12),
    );
    println!(
        "latency ms: p50 {:.2}  p95 {:.2}  p99 {:.2}  max {:.2}",
        percentile(&latencies, 50.0),
        percentile(&latencies, 95.0),
        percentile(&latencies, 99.0),
        latencies.last().copied().unwrap_or(0.0),
    );
    if let Some(stats) = &server_stats {
        println!(
            "server: queue high water {}, pool {} hits / {} misses",
            stats.queue_high_water, stats.pool.hits, stats.pool.misses
        );
    }

    let json = render_json(
        &mode,
        &config,
        &target_label,
        completed,
        rejections,
        errors,
        wall_secs,
        &latencies,
        server_stats.as_ref(),
    );
    std::fs::write(&out_path, &json).expect("write benchmark result file");
    println!("wrote {out_path}");
}
