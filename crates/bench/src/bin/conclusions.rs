//! Re-derives the paper's §5 conclusions from the reproduction and prints
//! the pass/fail checklist.

fn main() {
    let config = smith85_bench::config_from_args();
    let c = smith85_core::experiments::conclusions::run(&config);
    println!("{}", c.render());
    if !c.all_hold() {
        std::process::exit(1);
    }
}
