//! Regenerates Table 3: fraction of pushed data lines that are dirty.

fn main() {
    let config = smith85_bench::config_from_args();
    println!("{}", smith85_core::experiments::table3::run(&config).render());
}
