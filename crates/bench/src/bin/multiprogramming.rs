//! Regenerates the §3.2 multiprogramming-degree study.

fn main() {
    let config = smith85_bench::config_from_args();
    println!(
        "{}",
        smith85_core::experiments::multiprogramming::run(&config).render()
    );
}
