//! Regenerates Figure 2: the \[Hard80\] supervisor/problem miss-ratio curves.

fn main() {
    let config = smith85_bench::config_from_args();
    println!("{}", smith85_core::experiments::fig2::run(&config).render());
}
