//! Shared command-line plumbing for the experiment binaries.
//!
//! Every binary regenerating a paper table/figure accepts the same
//! arguments:
//!
//! ```text
//! cargo run --release -p smith85-bench --bin table1 [-- quick|paper] [TRACE_LEN]
//! ```
//!
//! `quick` runs a reduced sweep (for smoke tests); `paper` (the default)
//! uses the paper's 250,000-reference traces and the full 32 B – 64 KiB
//! size sweep. A trailing integer overrides the per-workload trace length.

use smith85_core::experiments::ExperimentConfig;

/// Parses an [`ExperimentConfig`] from `std::env::args`.
pub fn config_from_args() -> ExperimentConfig {
    config_from(std::env::args().skip(1))
}

/// Parses a configuration from an explicit argument list.
pub fn config_from<I: IntoIterator<Item = String>>(args: I) -> ExperimentConfig {
    let mut config = ExperimentConfig::paper();
    for arg in args {
        match arg.as_str() {
            "quick" => {
                let quick = ExperimentConfig::quick();
                config.trace_len = quick.trace_len;
                config.sizes = quick.sizes;
            }
            "paper" => {
                let paper = ExperimentConfig::paper();
                config.trace_len = paper.trace_len;
                config.sizes = paper.sizes;
            }
            other => {
                if let Ok(len) = other.parse::<usize>() {
                    config.trace_len = len;
                } else {
                    eprintln!("ignoring unrecognized argument {other:?}");
                }
            }
        }
    }
    config
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_paper_scale() {
        let c = config_from(Vec::<String>::new());
        assert_eq!(c.trace_len, 250_000);
        assert_eq!(c.sizes.len(), 12);
    }

    #[test]
    fn quick_shrinks() {
        let c = config_from(vec!["quick".to_string()]);
        assert!(c.trace_len < 250_000);
    }

    #[test]
    fn trailing_length_overrides() {
        let c = config_from(vec!["quick".to_string(), "12345".to_string()]);
        assert_eq!(c.trace_len, 12345);
    }

    #[test]
    fn junk_is_ignored() {
        let c = config_from(vec!["wat".to_string()]);
        assert_eq!(c.trace_len, 250_000);
    }
}
