//! The storage-I/O workload family: block-address streams.
//!
//! Models the knobs 2DIO (arXiv 2603.19971) shows are sufficient for
//! cache-accurate storage traces: a fixed **footprint** of equal-sized
//! blocks, **Zipf-like popularity skew** over those blocks, geometric
//! **sequential runs**, and a **read/write mix**. Each emitted access
//! touches the first line of one block, so a byte-addressed cache with
//! 16-byte lines behaves exactly like a block cache with one entry per
//! block — the existing simulators need no changes.
//!
//! Popularity ranks are scrambled over the footprint by a fixed odd
//! multiplier so the hot set is scattered (skew and sequentiality stay
//! independent knobs); sequential runs walk *physical* block order, as
//! a scan does.

use crate::rng::FamilyRng;
use smith85_trace::{AccessKind, Addr, MemoryAccess};

/// Base byte address of the block space; far above the CPU catalog's
/// code/data segments so mixed traces cannot alias.
pub const STORAGE_BASE: u64 = 0x2000_0000_0000;

/// Byte distance between consecutive blocks. Only the first 16 bytes of
/// a block are ever referenced, so any line size up to this spacing maps
/// each block to its own line.
pub const BLOCK_SPACING: u64 = 4_096;

/// Fixed odd multiplier scattering popularity ranks over the footprint.
const RANK_SCRAMBLE: u64 = 2_654_435_761;

/// A storage-I/O stream description. All knobs are public; validation
/// happens in [`StorageProfile::try_generator`].
#[derive(Debug, Clone, PartialEq)]
pub struct StorageProfile {
    /// Catalog name, e.g. `"S-KVSTORE"`.
    pub name: String,
    /// One-line description for catalog listings.
    pub description: String,
    /// Distinct blocks in the working footprint.
    pub footprint_blocks: u64,
    /// Zipf exponent of block popularity (0 = uniform).
    pub zipf_alpha: f64,
    /// Probability each access extends the current sequential run, so
    /// runs are geometric with mean `1 / (1 - seq_prob)` blocks.
    pub seq_prob: f64,
    /// Fraction of accesses that are reads (the rest write).
    pub read_fraction: f64,
    /// Generator seed; the stream is a pure function of the profile.
    pub seed: u64,
}

impl StorageProfile {
    /// Validates the knobs.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first out-of-range field.
    pub fn validate(&self) -> Result<(), String> {
        if self.footprint_blocks == 0 {
            return Err(format!("storage profile {}: footprint must be > 0", self.name));
        }
        if !(0.0..=8.0).contains(&self.zipf_alpha) {
            return Err(format!("storage profile {}: zipf_alpha must lie in [0, 8]", self.name));
        }
        if !(0.0..1.0).contains(&self.seq_prob) {
            return Err(format!("storage profile {}: seq_prob must lie in [0, 1)", self.name));
        }
        if !(0.0..=1.0).contains(&self.read_fraction) {
            return Err(format!(
                "storage profile {}: read_fraction must lie in [0, 1]",
                self.name
            ));
        }
        Ok(())
    }

    /// An infinite, deterministic access stream.
    ///
    /// # Errors
    ///
    /// Returns [`validate`](Self::validate)'s message for bad knobs.
    pub fn try_generator(&self) -> Result<StorageGenerator, String> {
        self.validate()?;
        Ok(StorageGenerator {
            rng: FamilyRng::new(self.seed),
            footprint: self.footprint_blocks,
            zipf_alpha: self.zipf_alpha,
            seq_prob: self.seq_prob,
            read_fraction: self.read_fraction,
            block: 0,
        })
    }

    /// Panicking form of [`try_generator`](Self::try_generator); the
    /// catalog's profiles are valid by construction.
    ///
    /// # Panics
    ///
    /// Panics on an invalid profile.
    pub fn generator(&self) -> StorageGenerator {
        self.try_generator().unwrap_or_else(|e| panic!("{e}"))
    }

    /// The pool/store identity string: every field the stream depends
    /// on, floats as bit patterns so distinct dials never alias.
    pub fn identity_key(&self) -> String {
        format!(
            "storage/{}/{:x}/{:x}:{:x}:{:x}/{:x}",
            self.name,
            self.footprint_blocks,
            self.zipf_alpha.to_bits(),
            self.seq_prob.to_bits(),
            self.read_fraction.to_bits(),
            self.seed,
        )
    }
}

/// The iterator behind [`StorageProfile::generator`].
#[derive(Debug, Clone)]
pub struct StorageGenerator {
    rng: FamilyRng,
    footprint: u64,
    zipf_alpha: f64,
    seq_prob: f64,
    read_fraction: f64,
    block: u64,
}

impl Iterator for StorageGenerator {
    type Item = MemoryAccess;

    fn next(&mut self) -> Option<MemoryAccess> {
        if self.rng.next_f64() < self.seq_prob {
            // Continue the scan: next physical block, wrapping.
            self.block = (self.block + 1) % self.footprint;
        } else {
            // New run: a Zipf-ranked block, scattered over the footprint.
            let rank = self.rng.next_zipf(self.footprint, self.zipf_alpha);
            self.block = rank.wrapping_mul(RANK_SCRAMBLE) % self.footprint;
        }
        let kind = if self.rng.next_f64() < self.read_fraction {
            AccessKind::Read
        } else {
            AccessKind::Write
        };
        let addr = Addr::new(STORAGE_BASE + self.block * BLOCK_SPACING);
        Some(MemoryAccess::new(kind, addr, 16))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> StorageProfile {
        StorageProfile {
            name: "test-store".to_string(),
            description: String::new(),
            footprint_blocks: 1_000,
            zipf_alpha: 1.0,
            seq_prob: 0.3,
            read_fraction: 0.7,
            seed: 85,
        }
    }

    #[test]
    fn stream_is_deterministic_per_seed() {
        let a: Vec<_> = profile().generator().take(2_000).collect();
        let b: Vec<_> = profile().generator().take(2_000).collect();
        assert_eq!(a, b);
        let mut reseeded = profile();
        reseeded.seed = 86;
        let c: Vec<_> = reseeded.generator().take(2_000).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn addresses_stay_in_the_footprint() {
        for access in profile().generator().take(5_000) {
            let raw = access.addr.get();
            assert!(raw >= STORAGE_BASE);
            assert_eq!((raw - STORAGE_BASE) % BLOCK_SPACING, 0, "{raw:#x}");
            assert!((raw - STORAGE_BASE) / BLOCK_SPACING < 1_000);
            assert_ne!(access.kind, AccessKind::InstructionFetch);
        }
    }

    #[test]
    fn read_fraction_is_respected() {
        let reads = profile()
            .generator()
            .take(20_000)
            .filter(|a| a.kind == AccessKind::Read)
            .count();
        let fraction = reads as f64 / 20_000.0;
        assert!((fraction - 0.7).abs() < 0.02, "read fraction {fraction}");
    }

    #[test]
    fn seq_prob_produces_sequential_neighbours() {
        let mut p = profile();
        p.seq_prob = 0.8;
        let trace: Vec<_> = p.generator().take(20_000).collect();
        let sequential = trace
            .windows(2)
            .filter(|w| w[1].addr.get() == w[0].addr.get() + BLOCK_SPACING)
            .count();
        let fraction = sequential as f64 / (trace.len() - 1) as f64;
        assert!((fraction - 0.8).abs() < 0.05, "sequential fraction {fraction}");
    }

    #[test]
    fn zipf_alpha_concentrates_the_hot_set() {
        let distinct = |alpha: f64| {
            let mut p = profile();
            p.zipf_alpha = alpha;
            p.seq_prob = 0.0;
            let mut set = std::collections::HashSet::new();
            for a in p.generator().take(10_000) {
                set.insert(a.addr.get());
            }
            set.len()
        };
        assert!(
            distinct(1.8) < distinct(0.0) / 2,
            "skewed stream must touch far fewer blocks"
        );
    }

    #[test]
    fn bad_knobs_are_rejected() {
        let mut p = profile();
        p.footprint_blocks = 0;
        assert!(p.try_generator().is_err());
        let mut p = profile();
        p.seq_prob = 1.0;
        assert!(p.try_generator().is_err());
        let mut p = profile();
        p.read_fraction = 1.5;
        assert!(p.try_generator().unwrap_err().contains("read_fraction"));
    }
}
