//! The network destination-address workload family.
//!
//! Models the locality structure Jain's destination-address study
//! (arXiv cs/9809092) identifies in LAN traffic: packets arrive in
//! **trains** (geometric runs of consecutive packets to one
//! destination), trains revisit **recently active destinations** far
//! more often than chance (a recency stack with geometrically decaying
//! depth preference), and long-term destination popularity is skewed.
//! That paper evaluates small fully-associative address caches under
//! FIFO vs LRU vs random replacement — exactly the policy matrix
//! `smith85-cachesim` exposes — so these streams are the replication
//! vehicle for its qualitative findings.
//!
//! Every access is a read of one destination's cache entry; addresses
//! are spaced [`DEST_SPACING`] bytes apart so each destination occupies
//! its own line at any line size up to that spacing.

use crate::rng::FamilyRng;
use smith85_trace::{AccessKind, Addr, MemoryAccess};

/// Base byte address of the destination-address space; disjoint from
/// both the CPU segments and [`crate::storage::STORAGE_BASE`].
pub const NETWORK_BASE: u64 = 0x4000_0000_0000;

/// Byte distance between destination entries.
pub const DEST_SPACING: u64 = 64;

/// Scatters popularity ranks over the destination space.
const RANK_SCRAMBLE: u64 = 2_654_435_761;

/// A destination-address stream description. All knobs are public;
/// validation happens in [`NetworkProfile::try_generator`].
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkProfile {
    /// Catalog name, e.g. `"N-LAN"`.
    pub name: String,
    /// One-line description for catalog listings.
    pub description: String,
    /// Distinct destinations ever seen on the wire.
    pub hosts: u64,
    /// Probability each packet continues the current train, so trains
    /// are geometric with mean `1 / (1 - train_prob)` packets.
    pub train_prob: f64,
    /// Probability a *new* train goes to a recently active destination
    /// (drawn from the recency stack) rather than a fresh draw.
    pub locality: f64,
    /// Recency stack capacity (most-recently-used destinations).
    pub stack_depth: usize,
    /// Zipf exponent of long-term destination popularity for fresh
    /// draws (0 = uniform).
    pub zipf_alpha: f64,
    /// Generator seed; the stream is a pure function of the profile.
    pub seed: u64,
}

impl NetworkProfile {
    /// Validates the knobs.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first out-of-range field.
    pub fn validate(&self) -> Result<(), String> {
        if self.hosts == 0 {
            return Err(format!("network profile {}: hosts must be > 0", self.name));
        }
        if !(0.0..1.0).contains(&self.train_prob) {
            return Err(format!("network profile {}: train_prob must lie in [0, 1)", self.name));
        }
        if !(0.0..=1.0).contains(&self.locality) {
            return Err(format!("network profile {}: locality must lie in [0, 1]", self.name));
        }
        if self.stack_depth == 0 {
            return Err(format!("network profile {}: stack_depth must be > 0", self.name));
        }
        if !(0.0..=8.0).contains(&self.zipf_alpha) {
            return Err(format!("network profile {}: zipf_alpha must lie in [0, 8]", self.name));
        }
        Ok(())
    }

    /// An infinite, deterministic destination stream.
    ///
    /// # Errors
    ///
    /// Returns [`validate`](Self::validate)'s message for bad knobs.
    pub fn try_generator(&self) -> Result<NetworkGenerator, String> {
        self.validate()?;
        Ok(NetworkGenerator {
            rng: FamilyRng::new(self.seed),
            hosts: self.hosts,
            train_prob: self.train_prob,
            locality: self.locality,
            stack_depth: self.stack_depth,
            zipf_alpha: self.zipf_alpha,
            current: 0,
            started: false,
            stack: Vec::with_capacity(self.stack_depth),
        })
    }

    /// Panicking form of [`try_generator`](Self::try_generator).
    ///
    /// # Panics
    ///
    /// Panics on an invalid profile.
    pub fn generator(&self) -> NetworkGenerator {
        self.try_generator().unwrap_or_else(|e| panic!("{e}"))
    }

    /// The pool/store identity string: every field the stream depends
    /// on, floats as bit patterns so distinct dials never alias.
    pub fn identity_key(&self) -> String {
        format!(
            "network/{}/{:x}/{:x}:{:x}:{:x}/{}/{:x}",
            self.name,
            self.hosts,
            self.train_prob.to_bits(),
            self.locality.to_bits(),
            self.zipf_alpha.to_bits(),
            self.stack_depth,
            self.seed,
        )
    }
}

/// The iterator behind [`NetworkProfile::generator`].
#[derive(Debug, Clone)]
pub struct NetworkGenerator {
    rng: FamilyRng,
    hosts: u64,
    train_prob: f64,
    locality: f64,
    stack_depth: usize,
    zipf_alpha: f64,
    current: u64,
    started: bool,
    /// Most-recent-first recency stack of destinations.
    stack: Vec<u64>,
}

impl NetworkGenerator {
    fn new_train(&mut self) -> u64 {
        if !self.stack.is_empty() && self.rng.next_f64() < self.locality {
            // Geometric depth preference over the recency stack: each
            // deeper entry is half as likely, matching the sharply
            // recency-weighted reuse Jain measures.
            let mut depth = 0usize;
            while depth + 1 < self.stack.len() && self.rng.next_f64() < 0.5 {
                depth += 1;
            }
            self.stack[depth]
        } else {
            let rank = self.rng.next_zipf(self.hosts, self.zipf_alpha);
            rank.wrapping_mul(RANK_SCRAMBLE) % self.hosts
        }
    }

    fn touch(&mut self, dest: u64) {
        if let Some(pos) = self.stack.iter().position(|&d| d == dest) {
            self.stack.remove(pos);
        }
        self.stack.insert(0, dest);
        self.stack.truncate(self.stack_depth);
    }
}

impl Iterator for NetworkGenerator {
    type Item = MemoryAccess;

    fn next(&mut self) -> Option<MemoryAccess> {
        if !self.started || self.rng.next_f64() >= self.train_prob {
            self.current = self.new_train();
            self.started = true;
        }
        let dest = self.current;
        self.touch(dest);
        let addr = Addr::new(NETWORK_BASE + dest * DEST_SPACING);
        Some(MemoryAccess::new(AccessKind::Read, addr, 4))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> NetworkProfile {
        NetworkProfile {
            name: "test-net".to_string(),
            description: String::new(),
            hosts: 500,
            train_prob: 0.6,
            locality: 0.7,
            stack_depth: 16,
            zipf_alpha: 0.8,
            seed: 85,
        }
    }

    #[test]
    fn stream_is_deterministic_per_seed() {
        let a: Vec<_> = profile().generator().take(2_000).collect();
        let b: Vec<_> = profile().generator().take(2_000).collect();
        assert_eq!(a, b);
        let mut reseeded = profile();
        reseeded.seed = 99;
        assert_ne!(a, reseeded.generator().take(2_000).collect::<Vec<_>>());
    }

    #[test]
    fn every_access_is_a_read_of_a_known_destination() {
        for access in profile().generator().take(5_000) {
            assert_eq!(access.kind, AccessKind::Read);
            let raw = access.addr.get();
            assert!(raw >= NETWORK_BASE);
            assert_eq!((raw - NETWORK_BASE) % DEST_SPACING, 0);
            assert!((raw - NETWORK_BASE) / DEST_SPACING < 500);
        }
    }

    #[test]
    fn trains_repeat_destinations() {
        let trace: Vec<_> = profile().generator().take(20_000).collect();
        let repeats = trace
            .windows(2)
            .filter(|w| w[0].addr == w[1].addr)
            .count();
        let fraction = repeats as f64 / (trace.len() - 1) as f64;
        // train_prob 0.6 means ~60% of packets continue the train (a few
        // "new" trains also re-pick the same destination).
        assert!(fraction > 0.55, "train repeat fraction {fraction}");
    }

    #[test]
    fn locality_shrinks_the_working_set() {
        let distinct = |locality: f64| {
            let mut p = profile();
            p.locality = locality;
            let mut set = std::collections::HashSet::new();
            for a in p.generator().take(10_000) {
                set.insert(a.addr.get());
            }
            set.len()
        };
        assert!(
            distinct(0.95) < distinct(0.0),
            "high locality must touch fewer destinations"
        );
    }

    #[test]
    fn bad_knobs_are_rejected() {
        let mut p = profile();
        p.hosts = 0;
        assert!(p.try_generator().is_err());
        let mut p = profile();
        p.train_prob = 1.0;
        assert!(p.try_generator().is_err());
        let mut p = profile();
        p.stack_depth = 0;
        assert!(p.try_generator().unwrap_err().contains("stack_depth"));
    }
}
