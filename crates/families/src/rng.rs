//! The family generators' deterministic random source.
//!
//! Same xorshift64* core the cache simulator's random-replacement policy
//! uses: tiny, fast, and — the property everything downstream leans on —
//! **identical output for identical seeds on every platform**, so a
//! family profile names one reproducible stream forever (pool keys,
//! store records, and pinned tests all assume it).

/// A seeded xorshift64* generator.
#[derive(Debug, Clone)]
pub struct FamilyRng {
    state: u64,
}

impl FamilyRng {
    /// Creates a generator; a zero seed is mapped to a fixed non-zero
    /// state (xorshift's all-zero state is absorbing).
    pub fn new(seed: u64) -> Self {
        FamilyRng {
            state: seed | 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// A uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 mantissa bits of the raw value.
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A uniform integer in `[0, bound)`; `bound` must be non-zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift range reduction; the modulo bias at 64 bits is
        // far below anything a miss-ratio statistic can resolve.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// A Zipf-like rank in `[0, n)`: rank 0 most popular, tail decaying
    /// as `rank^-alpha`, via the bounded-Pareto inverse CDF. `alpha = 0`
    /// degenerates to uniform.
    pub fn next_zipf(&mut self, n: u64, alpha: f64) -> u64 {
        debug_assert!(n > 0);
        if alpha <= 0.0 || n == 1 {
            return self.next_below(n);
        }
        let u = self.next_f64();
        let n_f = n as f64;
        let rank = if (alpha - 1.0).abs() < 1e-9 {
            // alpha == 1: inverse of the log CDF.
            n_f.powf(u)
        } else {
            let one_minus = 1.0 - alpha;
            ((1.0 - u) + u * n_f.powf(one_minus)).powf(1.0 / one_minus)
        };
        // The continuous inverse lands in [1, n]; shift to 0-based ranks.
        ((rank - 1.0) as u64).min(n - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = FamilyRng::new(85);
        let mut b = FamilyRng::new(85);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn zero_seed_is_not_absorbing() {
        let mut r = FamilyRng::new(0);
        let first = r.next_u64();
        assert_ne!(first, 0);
        assert_ne!(first, r.next_u64());
    }

    #[test]
    fn next_below_stays_in_range() {
        let mut r = FamilyRng::new(7);
        for _ in 0..10_000 {
            assert!(r.next_below(10) < 10);
        }
        assert_eq!(r.next_below(1), 0);
    }

    #[test]
    fn zipf_skews_toward_low_ranks() {
        let mut r = FamilyRng::new(42);
        let n = 1000u64;
        let mut head = 0usize;
        const DRAWS: usize = 20_000;
        for _ in 0..DRAWS {
            if r.next_zipf(n, 1.0) < n / 10 {
                head += 1;
            }
        }
        // Under uniform sampling the top decile gets ~10%; Zipf(1) gives
        // it ln(100)/ln(1000) ≈ 67%. Assert it at least doubles uniform.
        assert!(head > DRAWS / 5, "top decile drew only {head}/{DRAWS}");
    }

    #[test]
    fn zipf_alpha_zero_is_uniform_and_in_range() {
        let mut r = FamilyRng::new(3);
        for _ in 0..10_000 {
            assert!(r.next_zipf(64, 0.0) < 64);
            assert!(r.next_zipf(64, 1.8) < 64);
        }
        assert_eq!(r.next_zipf(1, 1.0), 0);
    }
}
