//! Named profiles of the non-CPU families — the analogue of
//! `smith85_synth::catalog` for storage-I/O and network streams.
//!
//! Storage profiles follow the archetypes the 2DIO benchmark
//! parameterizes (key-value point access, OLTP, analytic scans, log
//! append, backup streaming); network profiles span the environments
//! Jain contrasts, from a small server farm to a backbone router. Every
//! profile's seed derives from its name (same FNV-1a convention as the
//! CPU catalog), so the catalog names a fixed, reproducible stream set.

use crate::network::NetworkProfile;
use crate::storage::StorageProfile;
use crate::Family;

/// A profile from either non-CPU family: the polymorphic handle the
/// rest of the stack (workloads, pool, serve, CLI) consumes.
#[derive(Debug, Clone, PartialEq)]
pub enum FamilySpec {
    /// A storage-I/O block stream.
    Storage(StorageProfile),
    /// A network destination-address stream.
    Network(NetworkProfile),
}

impl FamilySpec {
    /// Catalog name.
    pub fn name(&self) -> &str {
        match self {
            FamilySpec::Storage(p) => &p.name,
            FamilySpec::Network(p) => &p.name,
        }
    }

    /// Which family the profile belongs to.
    pub fn family(&self) -> Family {
        match self {
            FamilySpec::Storage(_) => Family::Storage,
            FamilySpec::Network(_) => Family::Network,
        }
    }

    /// One-line description for catalog listings.
    pub fn description(&self) -> &str {
        match self {
            FamilySpec::Storage(p) => &p.description,
            FamilySpec::Network(p) => &p.description,
        }
    }

    /// The generator seed.
    pub fn seed(&self) -> u64 {
        match self {
            FamilySpec::Storage(p) => p.seed,
            FamilySpec::Network(p) => p.seed,
        }
    }

    /// Replaces the generator seed (serve's per-request override).
    pub fn set_seed(&mut self, seed: u64) {
        match self {
            FamilySpec::Storage(p) => p.seed = seed,
            FamilySpec::Network(p) => p.seed = seed,
        }
    }

    /// An infinite, deterministic access stream.
    ///
    /// # Errors
    ///
    /// Returns the profile's validation message for bad knobs.
    pub fn try_generator(
        &self,
    ) -> Result<Box<dyn Iterator<Item = smith85_trace::MemoryAccess> + Send>, String> {
        match self {
            FamilySpec::Storage(p) => Ok(Box::new(p.try_generator()?)),
            FamilySpec::Network(p) => Ok(Box::new(p.try_generator()?)),
        }
    }

    /// The pool/store identity string (see the per-profile
    /// `identity_key` methods).
    pub fn identity_key(&self) -> String {
        match self {
            FamilySpec::Storage(p) => p.identity_key(),
            FamilySpec::Network(p) => p.identity_key(),
        }
    }
}

/// FNV-1a, the same per-name seed convention the CPU catalog uses.
fn fnv1a(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn storage(
    name: &str,
    description: &str,
    footprint_blocks: u64,
    zipf_alpha: f64,
    seq_prob: f64,
    read_fraction: f64,
) -> FamilySpec {
    FamilySpec::Storage(StorageProfile {
        name: name.to_string(),
        description: description.to_string(),
        footprint_blocks,
        zipf_alpha,
        seq_prob,
        read_fraction,
        seed: fnv1a(name),
    })
}

fn network(
    name: &str,
    description: &str,
    hosts: u64,
    train_prob: f64,
    locality: f64,
    stack_depth: usize,
    zipf_alpha: f64,
) -> FamilySpec {
    FamilySpec::Network(NetworkProfile {
        name: name.to_string(),
        description: description.to_string(),
        hosts,
        train_prob,
        locality,
        stack_depth,
        zipf_alpha,
        seed: fnv1a(name),
    })
}

/// Every family profile, storage first, each family in fixed order.
pub fn all() -> Vec<FamilySpec> {
    vec![
        storage(
            "S-KVSTORE",
            "key-value store: highly skewed point reads over a large block set",
            8_192,
            1.1,
            0.05,
            0.90,
        ),
        storage(
            "S-OLTP",
            "transaction processing: moderate skew, 70/30 read/write, short runs",
            16_384,
            0.9,
            0.10,
            0.70,
        ),
        storage(
            "S-SCAN",
            "analytic scans: long sequential runs over a wide, barely skewed footprint",
            32_768,
            0.2,
            0.90,
            0.98,
        ),
        storage(
            "S-LOGWRITE",
            "log append: write-dominated sequential runs over a small hot region",
            4_096,
            0.3,
            0.85,
            0.05,
        ),
        storage(
            "S-BACKUP",
            "backup streaming: uniform popularity, near-pure sequential reads",
            65_536,
            0.0,
            0.90,
            1.00,
        ),
        network(
            "N-SERVERFARM",
            "server farm uplink: few destinations, long trains, intense recency reuse",
            50,
            0.80,
            0.90,
            8,
            0.4,
        ),
        network(
            "N-LAN",
            "departmental LAN: small destination set with strong packet-train locality",
            200,
            0.70,
            0.80,
            16,
            0.6,
        ),
        network(
            "N-WAN",
            "WAN access link: thousands of destinations, moderate trains and reuse",
            5_000,
            0.50,
            0.60,
            32,
            1.0,
        ),
        network(
            "N-GATEWAY",
            "campus gateway: tens of thousands of destinations, skewed popularity",
            20_000,
            0.40,
            0.45,
            64,
            1.2,
        ),
        network(
            "N-BACKBONE",
            "backbone router: huge destination space, weak trains, popularity only",
            100_000,
            0.30,
            0.30,
            64,
            1.0,
        ),
    ]
}

/// Looks a family profile up by name, case-insensitively.
pub fn by_name(name: &str) -> Option<FamilySpec> {
    all().into_iter().find(|s| s.name().eq_ignore_ascii_case(name))
}

/// Every family profile name, in [`all`]'s order.
pub fn names() -> Vec<String> {
    all().iter().map(|s| s.name().to_string()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_both_families_and_unique_names() {
        let specs = all();
        assert_eq!(specs.len(), 10);
        assert_eq!(specs.iter().filter(|s| s.family() == Family::Storage).count(), 5);
        assert_eq!(specs.iter().filter(|s| s.family() == Family::Network).count(), 5);
        let mut names: Vec<_> = specs.iter().map(|s| s.name().to_string()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), specs.len(), "duplicate profile name");
    }

    #[test]
    fn lookup_is_case_insensitive() {
        assert!(by_name("S-KVSTORE").is_some());
        assert!(by_name("s-kvstore").is_some());
        assert!(by_name("N-lan").is_some());
        assert!(by_name("VCCOM").is_none(), "CPU profiles live in synth");
    }

    #[test]
    fn every_profile_validates_and_generates() {
        for spec in all() {
            let mut generator = spec
                .try_generator()
                .unwrap_or_else(|e| panic!("{}: {e}", spec.name()));
            assert!(generator.next().is_some(), "{}", spec.name());
        }
    }

    #[test]
    fn seeds_are_distinct_and_name_derived() {
        let specs = all();
        let mut seeds: Vec<_> = specs.iter().map(|s| s.seed()).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), specs.len(), "seed collision");
        assert_eq!(by_name("S-OLTP").unwrap().seed(), fnv1a("S-OLTP"));
    }

    #[test]
    fn identity_keys_distinguish_profiles_and_seeds() {
        let a = by_name("S-OLTP").unwrap();
        let mut b = a.clone();
        b.set_seed(a.seed() ^ 1);
        assert_ne!(a.identity_key(), b.identity_key());
        let specs = all();
        let mut keys: Vec<_> = specs.iter().map(FamilySpec::identity_key).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), specs.len());
    }
}
