//! Non-CPU workload families for the Smith '85 reproduction.
//!
//! The paper's thesis — workload choice dominates cache-design
//! conclusions — is only testable if the workload space is wider than
//! the paper's own CPU address traces. This crate adds two families
//! from other domains, each a deterministic, seeded generator of
//! [`MemoryAccess`] streams that plug into the existing simulators,
//! characterizer, pool, and serve stack unchanged:
//!
//! * [`storage`] — block-address streams in the style of storage-I/O
//!   trace models (2DIO, arXiv 2603.19971): a configurable footprint of
//!   fixed-size blocks, Zipf-like popularity skew, geometric sequential
//!   runs, and a read/write mix.
//! * [`network`] — destination-address streams in the style of Jain's
//!   packet-train locality study (arXiv cs/9809092): interarrival-driven
//!   trains of packets to one destination, a recency stack for
//!   short-term reuse, and a Zipf-skewed long-term destination
//!   popularity, evaluated against small fully-associative caches.
//!
//! [`catalog`] names concrete profiles of both families (the analogue
//! of `smith85_synth::catalog` for CPU traces); [`FamilySpec`] is the
//! family-polymorphic handle the rest of the stack consumes.
//!
//! [`MemoryAccess`]: smith85_trace::MemoryAccess

pub mod catalog;
pub mod network;
pub mod rng;
pub mod storage;

pub use catalog::{all, by_name, names, FamilySpec};
pub use network::NetworkProfile;
pub use storage::StorageProfile;

use std::fmt;

/// Which non-CPU family a profile belongs to. The CPU catalog in
/// `smith85-synth` is the implicit third family; serve and the CLI
/// render it as `"cpu"`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// Storage-I/O block-address streams.
    Storage,
    /// Network destination-address streams.
    Network,
}

impl Family {
    /// The lowercase name used in catalog output, serve payloads, and
    /// store keys.
    pub fn name(self) -> &'static str {
        match self {
            Family::Storage => "storage",
            Family::Network => "network",
        }
    }

    /// Parses the lowercase family name (case-insensitive).
    pub fn parse(s: &str) -> Option<Family> {
        if s.eq_ignore_ascii_case("storage") {
            Some(Family::Storage)
        } else if s.eq_ignore_ascii_case("network") {
            Some(Family::Network)
        } else {
            None
        }
    }
}

impl fmt::Display for Family {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_names_round_trip() {
        for family in [Family::Storage, Family::Network] {
            assert_eq!(Family::parse(family.name()), Some(family));
            assert_eq!(Family::parse(&family.name().to_uppercase()), Some(family));
        }
        assert_eq!(Family::parse("cpu"), None);
        assert_eq!(Family::parse(""), None);
    }
}
