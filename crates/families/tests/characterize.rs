//! Characterizer coverage on non-CPU streams (pinned).
//!
//! The CPU catalog pins Table 2; these tests pin the same statistics
//! for one storage and one network profile under the catalog's fixed
//! name-derived seeds, so any change to the generators, the RNG, or
//! the characterizer's sequentiality/repeat accounting shows up as an
//! exact-value diff here rather than as silent drift in experiment
//! results (family streams are memoized by these identities in the
//! pool and the persistent store).

use smith85_families::by_name;
use smith85_trace::stats::{TraceCharacterizer, TraceCharacteristics};

const LEN: usize = 50_000;

fn characterize(name: &str) -> TraceCharacteristics {
    let spec = by_name(name).unwrap_or_else(|| panic!("{name} not in the family catalog"));
    let mut c = TraceCharacterizer::new();
    for access in spec.try_generator().expect("catalog profiles are valid").take(LEN) {
        c.observe(access);
    }
    c.finish()
}

#[test]
fn storage_scan_profile_is_pinned() {
    let s = characterize("S-SCAN");
    assert_eq!(s.total_refs(), LEN as u64);
    // Pure block stream: no instruction fetches at all.
    assert_eq!(s.ifetches(), 0);
    assert_eq!(s.instruction_lines(), 0);
    // Read/write mix: the profile dials 98% reads.
    assert_eq!(s.reads(), 49_056);
    assert_eq!(s.writes(), 944);
    // Sequentiality: seq_prob 0.90, minus run starts and stride breaks.
    assert_eq!((s.sequential_fraction() * 1e6).round() as u64, 808_740);
    assert_eq!((s.repeat_fraction() * 1e6).round() as u64, 20);
    // Footprint: 25,613 of the 32,768 catalogued blocks touched, one
    // 16-byte line each.
    assert_eq!(s.data_lines(), 25_613);
    assert_eq!(s.address_space_bytes(), 409_808);
}

#[test]
fn network_lan_profile_is_pinned() {
    let s = characterize("N-LAN");
    assert_eq!(s.total_refs(), LEN as u64);
    // Destination lookups are reads of the address cache, nothing else.
    assert_eq!(s.ifetches(), 0);
    assert_eq!(s.writes(), 0);
    assert_eq!(s.reads(), 50_000);
    // Packet trains: train_prob 0.70 plus recency re-picks of the same
    // destination put back-to-back repeats just under 82%.
    assert_eq!((s.repeat_fraction() * 1e6).round() as u64, 818_880);
    // Destination lookups never scan.
    assert_eq!((s.sequential_fraction() * 1e6).round() as u64, 60);
    // Footprint: 199 of the 200 catalogued destinations appear.
    assert_eq!(s.data_lines(), 199);
    assert_eq!(s.address_space_bytes(), 3_184);
}
