//! Minimal `--flag value` option parsing (no external dependencies).

use crate::CliError;

/// Parsed options: `--key value` pairs (in argument order) plus
/// positional arguments.
#[derive(Debug, Clone, Default)]
pub struct Opts {
    flags: Vec<(String, String)>,
    positional: Vec<String>,
}

impl Opts {
    /// Parses `args`, treating every `--key` as taking one value.
    ///
    /// # Errors
    ///
    /// Returns an error for a trailing `--key` with no value or a repeated
    /// key.
    pub fn parse(args: &[String]) -> Result<Self, CliError> {
        Self::parse_allowing_repeats(args, &[])
    }

    /// Like [`Opts::parse`], but the keys named in `repeatable` may be
    /// given more than once (collected in order, read via
    /// [`Opts::get_all`]); every other repeated key is still an error.
    ///
    /// # Errors
    ///
    /// Returns an error for a trailing `--key` with no value or a
    /// non-repeatable key given twice.
    pub fn parse_allowing_repeats(args: &[String], repeatable: &[&str]) -> Result<Self, CliError> {
        let mut opts = Opts::default();
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            if let Some(key) = arg.strip_prefix("--") {
                let value = it
                    .next()
                    .ok_or_else(|| CliError::usage(format!("--{key} needs a value")))?;
                let seen = opts.flags.iter().any(|(k, _)| k == key);
                if seen && !repeatable.contains(&key) {
                    return Err(CliError::usage(format!("--{key} given twice")));
                }
                opts.flags.push((key.to_string(), value.clone()));
            } else {
                opts.positional.push(arg.clone());
            }
        }
        Ok(opts)
    }

    /// The positional arguments.
    pub fn positional(&self) -> &[String] {
        &self.positional
    }

    /// A string option (the first occurrence, for repeatable keys).
    pub fn get(&self, key: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Every value given for a repeatable option, in argument order.
    pub fn get_all(&self, key: &str) -> Vec<&str> {
        self.flags
            .iter()
            .filter(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
            .collect()
    }

    /// A required string option.
    ///
    /// # Errors
    ///
    /// Returns a usage error naming the missing flag.
    pub fn require(&self, key: &str) -> Result<&str, CliError> {
        self.get(key)
            .ok_or_else(|| CliError::usage(format!("missing required --{key}")))
    }

    /// A parsed numeric option with a default.
    ///
    /// # Errors
    ///
    /// Returns a usage error if the value does not parse.
    pub fn get_parse<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, CliError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError::usage(format!("--{key} {v:?} is not a valid value"))),
        }
    }

    /// Rejects any option not in `allowed` (catches typos).
    ///
    /// # Errors
    ///
    /// Returns a usage error naming the unknown flag.
    pub fn expect_only(&self, allowed: &[&str]) -> Result<(), CliError> {
        for (key, _) in &self.flags {
            if !allowed.contains(&key.as_str()) {
                return Err(CliError::usage(format!("unknown option --{key}")));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_flags_and_positionals() {
        let o = Opts::parse(&args(&["pos1", "--size", "4096", "pos2"])).unwrap();
        assert_eq!(o.get("size"), Some("4096"));
        assert_eq!(o.positional(), &["pos1".to_string(), "pos2".to_string()]);
    }

    #[test]
    fn numeric_defaults_and_parsing() {
        let o = Opts::parse(&args(&["--len", "100"])).unwrap();
        assert_eq!(o.get_parse("len", 5usize).unwrap(), 100);
        assert_eq!(o.get_parse("other", 7usize).unwrap(), 7);
        assert!(o.get_parse::<usize>("len", 0).is_ok());
        let bad = Opts::parse(&args(&["--len", "x"])).unwrap();
        assert!(bad.get_parse::<usize>("len", 0).is_err());
    }

    #[test]
    fn missing_value_and_duplicates_rejected() {
        assert!(Opts::parse(&args(&["--size"])).is_err());
        assert!(Opts::parse(&args(&["--a", "1", "--a", "2"])).is_err());
    }

    #[test]
    fn repeatable_keys_collect_in_order_others_still_reject() {
        let o = Opts::parse_allowing_repeats(
            &args(&["--journal", "a.ndjson", "--top", "5", "--journal", "b.ndjson"]),
            &["journal"],
        )
        .unwrap();
        assert_eq!(o.get_all("journal"), vec!["a.ndjson", "b.ndjson"]);
        assert_eq!(o.get("journal"), Some("a.ndjson"), "get returns the first");
        assert_eq!(o.get("top"), Some("5"));
        assert!(Opts::parse_allowing_repeats(
            &args(&["--top", "5", "--top", "6"]),
            &["journal"]
        )
        .is_err());
    }

    #[test]
    fn unknown_flags_caught() {
        let o = Opts::parse(&args(&["--sizee", "4096"])).unwrap();
        assert!(o.expect_only(&["size"]).is_err());
        assert!(o.expect_only(&["sizee"]).is_ok());
    }

    #[test]
    fn require_reports_flag_name() {
        let o = Opts::parse(&[]).unwrap();
        let err = o.require("trace").unwrap_err();
        assert!(err.to_string().contains("--trace"));
    }
}
