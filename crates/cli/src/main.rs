//! The `smith85` command-line tool.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match smith85_cli::run(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("smith85: {err}");
            eprintln!("run `smith85 help` for usage");
            ExitCode::FAILURE
        }
    }
}
