//! Subcommand implementations.

use crate::{CliError, Opts};
use smith85_cachesim::{
    CacheConfig, FetchPolicy, Mapping, Replacement, StackAnalyzer, WritePolicy, PAPER_SIZES,
};
use smith85_core::experiments::{self};
use smith85_core::runner;
use smith85_core::session::SimSession;
use smith85_core::targets::{design_target, traffic_factor, CacheKind};
use smith85_synth::catalog;
use smith85_trace::{io as trace_io, Trace};
use std::fmt::Write as _;
use std::fs::File;
use std::io::Read as _;

/// Usage text.
pub(crate) fn help() -> String {
    "\
smith85 — trace-driven cache evaluation (Smith, ISCA 1985 reproduction)

USAGE:
  smith85 list
      List the 49-trace CPU workload catalog.
  smith85 catalog [--family cpu|storage|network]
      List every workload profile grouped by family (the 49 CPU traces
      plus the storage-I/O and network destination-address families);
      --family restricts the listing to one family.
  smith85 generate --trace NAME --len N --out FILE [--format text|binary|dinero]
      Generate a synthetic trace and write it to disk.
  smith85 characterize (--trace NAME [--len N] | --file FILE)
      Print the Table 2 characteristics of a workload.
  smith85 simulate (--trace NAME [--len N] | --file FILE) --size BYTES
          [--line BYTES] [--ways N|full]
          [--policy lru|fifo|random[:seed]|plru] (--replacement is a synonym)
          [--write cb|cb-nofetch|wt|wt-noalloc] [--fetch demand|prefetch]
          [--purge N] [--org unified|split]
          [--fault-drop P] [--fault-dup P] [--fault-flip P] [--fault-seed N]
      Run one cache configuration and print its statistics. The --fault-*
      rates deterministically drop/duplicate/bit-flip references before
      simulation (robustness experiments).
  smith85 sweep (--trace NAME [--len N] | --file FILE) [--sizes a,b,c]
          [--ways a,b,c] [--line BYTES] [--policy lru|fifo|random[:seed]|plru]
      Miss ratio at every cache size in one stack-analysis pass.
      --ways runs the one-pass grid engine instead: every requested
      size x associativity cell — miss ratio, traffic ratio and
      dirty-push fraction — from a single trace traversal. A non-LRU
      --policy is outside the one-pass envelope, so those sweeps run
      each configuration individually instead.
  smith85 assoc (--trace NAME [--len N] | --file FILE) [--sets N] [--line BYTES]
      Miss ratio at every associativity for a fixed set count, one pass.
  smith85 target --size BYTES [--kind unified|instruction|data]
      Look up the paper's Table 5 design target and Table 4 traffic factor.
  smith85 custom --ifetch F --read F --branch F --code-kb N --data-kb N
          [--instr-alpha F] [--data-alpha F] [--seq F] [--stack F]
          [--arch vax|ibm370|z8000|cdc6400|m68000] [--len N] [--seed N]
      Build a custom workload profile, characterize it and sweep it.
  smith85 experiment NAME [--quick true] [--len N] [--threads N]
      Run a paper experiment (table1, table2, fig2, table3, fig3_4,
      prefetch, table5, clark, z80000, m68020, traffic_ratio,
      trace_length, multiprocessor, multiprogramming, calibration,
      perturbations, interface, line_size, fudge, conclusions,
      ablations, design_grid, family_conclusions).
  smith85 suite [--out DIR] [--resume true] [--quick true] [--len N]
          [--threads N]
      Run every experiment with checkpointing: each result lands in
      DIR (default suite-results/) as JSON, a manifest.json tracks
      status, and --resume true skips experiments already completed
      under the same configuration. A panicking experiment is recorded
      and the rest of the suite still runs.
  smith85 serve [--addr HOST:PORT] [--unix PATH] [--workers N] [--queue N]
          [--deadline-ms N] [--metrics-addr HOST:PORT] [--journal PATH]
          [--store DIR] [--store-budget BYTES] [--router ADDR,ADDR,...]
          [--probe-ms MS] [--shard-inflight N] [--router-replicas N]
          [--event-loop false]
      Run the simulation server (newline-delimited JSON over TCP, plus a
      Unix socket with --unix). A poll-based event loop owns connections
      (idle ones cost nothing; --event-loop false falls back to a thread
      per connection). Requests past the queue bound get a typed
      \"overloaded\" rejection. --metrics-addr serves Prometheus text
      exposition at /metrics. --journal appends every request's spans and
      access-log events to an NDJSON trace journal (see `smith85 trace`).
      --store persists traces and results to a crash-safe on-disk store:
      a restarted server answers previously-seen requests bit-identically
      without regenerating anything (corrupt entries are quarantined at
      startup, never served). --store-budget caps the store size with LRU
      eviction. --router turns the node into a shard router: simulate and
      sweep requests consistent-hash across the listed backends, a prober
      (every --probe-ms, default 500) marks dead shards down, each shard
      carries an in-flight budget (--shard-inflight, default 32) answered
      as typed \"overloaded\" when full, and a refused shard fails over to
      the next distinct shard on the hash ring (--router-replicas vnodes
      per shard, default 64). --router cannot be combined with --store.
      Ctrl-C drains in-flight jobs and exits.
  smith85 submit TYPE [--addr HOST:PORT] [--unix PATH] [--json true]
          [--retries N] [--backoff-ms MS] [--trace-id ID] ...
      Send one request to a running server. TYPE is one of:
        simulate --workload NAME --size BYTES [--len N] [--seed N]
                 [--line BYTES] [--ways N|full] [--purge N] [--policy P]
                 [--deadline-ms N]
        sweep    --workload NAME [--len N] [--seed N] [--sizes a,b,c]
                 [--ways a,b,c] [--line BYTES] [--policy P] [--deadline-ms N]
      NAME may be any catalog profile from any family (see `smith85
      catalog`); --policy P is lru (default), fifo, random[:seed] or plru.
        catalog | stats | metrics | ping | shutdown
      --json true prints the raw response line instead of a summary.
      --retries N retries transient failures (typed \"overloaded\"
      rejections and refused connections) with capped exponential backoff
      starting at --backoff-ms (default 100 ms) plus jitter; anything
      else fails immediately. --trace-id tags the request envelope so the
      server (and any backend shard behind a router) journals it under
      the caller's id.
  smith85 cache ACTION --store DIR [--budget BYTES]
      Inspect or maintain a persistent store directory. ACTION is one of:
        stats   print entry/byte counts, hit/miss/write tallies and the
                startup recovery summary
        gc      evict least-recently-used entries until under --budget
        clear   delete all live entries (quarantined evidence is kept)
        verify  re-validate every record; corrupt entries are moved to
                quarantine/ and the exit status is nonzero if any were
                found
  smith85 trace report JOURNAL [--journal PATH]... [--top N] [--format tree|collapsed]
      Render NDJSON trace journals as per-trace span trees with total
      and self times (slowest first, --top per default 10), or as
      collapsed stacks (`root;child;leaf self_us`) for flamegraph tools.
      --journal is repeatable: a router's journal and its shards'
      journals merge into one cross-process tree per trace id (shard
      subtrees hang under the router's forwarding hops).
  smith85 trace follow JOURNAL [--max-events N] [--trace-id ID]
      Tail a journal: print events as they are appended (ctrl-c stops;
      --max-events exits after N printed events; --trace-id shows only
      one trace).
"
    .to_string()
}

fn load_workload(opts: &Opts) -> Result<Trace, CliError> {
    match (opts.get("trace"), opts.get("file")) {
        (Some(name), None) => {
            let len = opts.get_parse("len", 100_000usize)?;
            if let Some(spec) = catalog::by_name(name) {
                return Ok(spec.generate(len));
            }
            // Fall back to the storage/network family catalog so every
            // profile family works with --trace.
            let spec = smith85_families::by_name(name)
                .ok_or_else(|| CliError::UnknownTrace(name.to_string()))?;
            let stream = spec
                .try_generator()
                .map_err(|e| CliError::usage(format!("invalid family profile: {e}")))?;
            Ok(stream.take(len).collect::<Vec<_>>().into())
        }
        (None, Some(path)) => {
            let mut bytes = Vec::new();
            File::open(path)?.read_to_end(&mut bytes)?;
            let trace = if bytes.starts_with(&trace_io::BINARY_MAGIC) {
                trace_io::read_binary(bytes.as_slice())?
            } else {
                trace_io::read_text(bytes.as_slice())?
            };
            let len = opts.get_parse("len", trace.len())?;
            let mut trace = trace;
            trace.truncate(len);
            Ok(trace)
        }
        (Some(_), Some(_)) => Err(CliError::usage("give either --trace or --file, not both")),
        (None, None) => Err(CliError::usage("need a workload: --trace NAME or --file PATH")),
    }
}

pub(crate) fn list(opts: &Opts) -> Result<String, CliError> {
    opts.expect_only(&[])?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<10} {:<12} {:<10} {:<9} description",
        "name", "group", "arch", "language"
    );
    for spec in catalog::all() {
        let p = spec.profile();
        let _ = writeln!(
            out,
            "{:<10} {:<12} {:<10} {:<9} {}",
            spec.name(),
            spec.group().to_string(),
            p.arch.to_string(),
            p.language.to_string(),
            p.description
        );
    }
    Ok(out)
}

/// `smith85 catalog`: every profile grouped by family, with `--family`
/// restricting the listing to one family.
pub(crate) fn catalog_cmd(opts: &Opts) -> Result<String, CliError> {
    opts.expect_only(&["family"])?;
    let filter = match opts.get("family") {
        None => None,
        Some(f) => {
            let f = f.to_ascii_lowercase();
            if !["cpu", "storage", "network"].contains(&f.as_str()) {
                return Err(CliError::usage(format!(
                    "unknown family {f:?} (cpu, storage or network)"
                )));
            }
            Some(f)
        }
    };
    let wants = |family: &str| filter.as_deref().is_none_or(|f| f == family);
    let mut out = String::new();
    if wants("cpu") {
        let specs = catalog::all();
        let _ = writeln!(out, "family cpu ({} profiles):", specs.len());
        for spec in specs {
            let p = spec.profile();
            let _ = writeln!(
                out,
                "  {:<12} {:<12} {:<10} {:<9} {}",
                spec.name(),
                spec.group().to_string(),
                p.arch.to_string(),
                p.language.to_string(),
                p.description
            );
        }
    }
    for family in [
        smith85_families::Family::Storage,
        smith85_families::Family::Network,
    ] {
        if !wants(family.name()) {
            continue;
        }
        let specs: Vec<_> = smith85_families::all()
            .into_iter()
            .filter(|s| s.family() == family)
            .collect();
        if !out.is_empty() {
            out.push('\n');
        }
        let _ = writeln!(out, "family {} ({} profiles):", family.name(), specs.len());
        for spec in specs {
            let _ = writeln!(out, "  {:<12} {}", spec.name(), spec.description());
        }
    }
    Ok(out)
}

pub(crate) fn generate(opts: &Opts) -> Result<String, CliError> {
    opts.expect_only(&["trace", "len", "out", "format"])?;
    let name = opts.require("trace")?;
    let spec = catalog::by_name(name).ok_or_else(|| CliError::UnknownTrace(name.to_string()))?;
    let len = opts.get_parse("len", 250_000usize)?;
    let out_path = opts.require("out")?;
    let trace = spec.generate(len);
    let file = File::create(out_path)?;
    match opts.get("format").unwrap_or("text") {
        "text" => trace_io::write_text(file, &trace)?,
        "binary" => trace_io::write_binary(file, &trace)?,
        "dinero" => trace_io::write_dinero(file, &trace)?,
        other => return Err(CliError::usage(format!("unknown format {other:?}"))),
    }
    Ok(format!("wrote {} references of {} to {}\n", len, spec.name(), out_path))
}

pub(crate) fn characterize(opts: &Opts) -> Result<String, CliError> {
    opts.expect_only(&["trace", "file", "len"])?;
    let trace = load_workload(opts)?;
    let s = trace.characteristics();
    Ok(format!(
        "refs      {}\nifetch    {:.1}%\nread      {:.1}%\nwrite     {:.1}%\nbranch    {:.1}% of ifetches\n#Ilines   {}\n#Dlines   {}\nAspace    {} bytes\n",
        s.total_refs(),
        100.0 * s.ifetch_fraction(),
        100.0 * s.read_fraction(),
        100.0 * s.write_fraction(),
        100.0 * s.branch_fraction(),
        s.instruction_lines(),
        s.data_lines(),
        s.address_space_bytes()
    ))
}

fn parse_config(opts: &Opts) -> Result<CacheConfig, CliError> {
    let size = opts.get_parse("size", 0usize)?;
    if size == 0 {
        return Err(CliError::usage("missing required --size BYTES"));
    }
    let mapping = match opts.get("ways") {
        None | Some("full") => Mapping::FullyAssociative,
        Some("1") => Mapping::Direct,
        Some(w) => Mapping::SetAssociative(
            w.parse()
                .map_err(|_| CliError::usage(format!("bad --ways {w:?}")))?,
        ),
    };
    let replacement = parse_policy(opts)?;
    let write = match opts.get("write").unwrap_or("cb") {
        "cb" => WritePolicy::CopyBack {
            fetch_on_write: true,
        },
        "cb-nofetch" => WritePolicy::CopyBack {
            fetch_on_write: false,
        },
        "wt" => WritePolicy::WriteThrough { allocate: true },
        "wt-noalloc" => WritePolicy::WriteThrough { allocate: false },
        other => return Err(CliError::usage(format!("unknown write policy {other:?}"))),
    };
    let fetch = match opts.get("fetch").unwrap_or("demand") {
        "demand" => FetchPolicy::Demand,
        "prefetch" => FetchPolicy::PrefetchAlways,
        other => return Err(CliError::usage(format!("unknown fetch policy {other:?}"))),
    };
    let purge = match opts.get("purge") {
        None => None,
        Some(v) => Some(
            v.parse()
                .map_err(|_| CliError::usage(format!("bad --purge {v:?}")))?,
        ),
    };
    Ok(CacheConfig::builder(size)
        .line_size(opts.get_parse("line", 16usize)?)
        .mapping(mapping)
        .replacement(replacement)
        .write_policy(write)
        .fetch_policy(fetch)
        .purge_interval(purge)
        .build()?)
}

/// Parses the shared `--policy` flag (with `--replacement` kept as a
/// synonym for older scripts) into a [`Replacement`].
fn parse_policy(opts: &Opts) -> Result<Replacement, CliError> {
    match opts.get("policy").or_else(|| opts.get("replacement")) {
        None => Ok(Replacement::Lru),
        Some(text) => Replacement::parse(text).ok_or_else(|| {
            CliError::usage(format!(
                "unknown replacement policy {text:?} (lru, fifo, random, random:<seed> or plru)"
            ))
        }),
    }
}

fn render_stats(stats: &smith85_cachesim::CacheStats) -> String {
    format!(
        "refs          {}\nmisses        {}\nmiss ratio    {:.4}\n  instruction {:.4}\n  data        {:.4}\ntraffic       {} bytes ({:.3}x demanded)\npushes        {} ({:.0}% dirty)\nprefetches    {} issued, {} already resident\npurges        {}\n",
        stats.total_refs(),
        stats.total_misses(),
        stats.miss_ratio(),
        stats.instruction_miss_ratio(),
        stats.data_miss_ratio(),
        stats.traffic_bytes(),
        stats.traffic_ratio(),
        stats.pushes,
        100.0 * stats.dirty_push_fraction(),
        stats.prefetch_fetches,
        stats.prefetch_hits,
        stats.purges,
    )
}

pub(crate) fn simulate(opts: &Opts) -> Result<String, CliError> {
    opts.expect_only(&[
        "trace", "file", "len", "size", "line", "ways", "policy", "replacement", "write", "fetch",
        "purge", "org", "fault-drop", "fault-dup", "fault-flip", "fault-seed",
    ])?;
    let mut trace = load_workload(opts)?;
    let faults = smith85_trace::fault::FaultConfig {
        drop_rate: opts.get_parse("fault-drop", 0.0f64)?,
        duplicate_rate: opts.get_parse("fault-dup", 0.0f64)?,
        bit_flip_rate: opts.get_parse("fault-flip", 0.0f64)?,
    };
    if faults != smith85_trace::fault::FaultConfig::NONE {
        let seed = opts.get_parse("fault-seed", 85u64)?;
        let injector =
            smith85_trace::fault::FaultInjector::new(trace.iter().copied(), seed, faults)
                .map_err(|e| CliError::usage(e.to_string()))?;
        trace = injector.collect::<Vec<_>>().into();
    }
    let trace = trace;
    let config = parse_config(opts)?;
    let session = SimSession::default();
    match opts.get("org").unwrap_or("unified") {
        "unified" => {
            let stats = session.simulate_unified(trace.as_slice(), config)?;
            Ok(format!("{}\n{}", config, render_stats(&stats)))
        }
        "split" => {
            let purge = config.purge_interval();
            let split = session.simulate_split(trace.as_slice(), config, config, purge)?;
            Ok(format!(
                "{} (split)\n--- instruction ---\n{}--- data ---\n{}",
                config,
                render_stats(&split.instruction),
                render_stats(&split.data)
            ))
        }
        other => Err(CliError::usage(format!("unknown organisation {other:?}"))),
    }
}

fn parse_usize_list(list: &str, flag: &str) -> Result<Vec<usize>, CliError> {
    list.split(',')
        .map(|s| {
            s.trim()
                .parse()
                .map_err(|_| CliError::usage(format!("bad value {s:?} in --{flag}")))
        })
        .collect()
}

pub(crate) fn sweep(opts: &Opts) -> Result<String, CliError> {
    opts.expect_only(&["trace", "file", "len", "sizes", "ways", "line", "policy"])?;
    let trace = load_workload(opts)?;
    let sizes: Vec<usize> = match opts.get("sizes") {
        None => PAPER_SIZES.to_vec(),
        Some(list) => parse_usize_list(list, "sizes")?,
    };
    let line = opts.get_parse("line", 16usize)?;
    let policy = parse_policy(opts)?;
    // --ways switches to the one-pass grid engine: every requested
    // (size, ways) cell from a single trace traversal. The one-pass
    // engine is LRU-only (it returns `OnePassUnsupported` otherwise);
    // non-LRU policies simulate each cell individually instead.
    if let Some(list) = opts.get("ways") {
        let ways = parse_usize_list(list, "ways")?;
        let mut spec = smith85_cachesim::GridSpec::new(sizes, ways);
        spec.line_size = line;
        if policy == Replacement::Lru {
            let grid = SimSession::default()
                .sweep_grid(trace.as_slice(), &spec)
                .map_err(|e| CliError::usage(format!("bad sweep grid: {e}")))?;
            let mut out = String::new();
            let _ = writeln!(
                out,
                "{:>10} {:>6} {:>6} {:>9} {:>9} {:>7}  (LRU, copy-back, {line}-byte lines; one pass)",
                "size", "ways", "sets", "miss", "traffic", "dirty"
            );
            for (cell, stats) in grid.iter() {
                let _ = writeln!(
                    out,
                    "{:>10} {:>6} {:>6} {:>9.4} {:>9.4} {:>7.4}",
                    cell.size_bytes,
                    cell.ways,
                    cell.sets,
                    stats.miss_ratio(),
                    stats.traffic_ratio(),
                    stats.dirty_push_fraction()
                );
            }
            return Ok(out);
        }
        // Cell enumeration and validation are policy-independent, so the
        // fallback borrows them from the engine with LRU swapped in.
        let engine = smith85_cachesim::OnePassEngine::new(&spec)
            .map_err(|e| CliError::usage(format!("bad sweep grid: {e}")))?;
        let session = SimSession::default();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:>10} {:>6} {:>6} {:>9} {:>9} {:>7}  ({}, copy-back, {line}-byte lines; per config)",
            "size", "ways", "sets", "miss", "traffic", "dirty",
            policy.key_label()
        );
        for cell in engine.cells() {
            let lines = cell.size_bytes / line;
            let mapping = if cell.ways == lines {
                Mapping::FullyAssociative
            } else if cell.ways == 1 {
                Mapping::Direct
            } else {
                Mapping::SetAssociative(cell.ways)
            };
            let config = CacheConfig::builder(cell.size_bytes)
                .line_size(line)
                .mapping(mapping)
                .replacement(policy)
                .build()?;
            let stats = session.simulate_unified(trace.as_slice(), config)?;
            let _ = writeln!(
                out,
                "{:>10} {:>6} {:>6} {:>9.4} {:>9.4} {:>7.4}",
                cell.size_bytes,
                cell.ways,
                cell.sets,
                stats.miss_ratio(),
                stats.traffic_ratio(),
                stats.dirty_push_fraction()
            );
        }
        return Ok(out);
    }
    if policy != Replacement::Lru {
        // Stack analysis is itself an LRU algorithm; non-LRU size sweeps
        // simulate a fully-associative cache per size.
        let session = SimSession::default();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:>10}  {:>9}  (fully associative {}, {line}-byte lines; per config)",
            "size",
            "miss",
            policy.key_label()
        );
        for size in sizes {
            let config = CacheConfig::builder(size)
                .line_size(line)
                .replacement(policy)
                .build()?;
            let stats = session.simulate_unified(trace.as_slice(), config)?;
            let _ = writeln!(out, "{:>10}  {:>9.4}", size, stats.miss_ratio());
        }
        return Ok(out);
    }
    let profile = SimSession::default().sweep_stack(trace.as_slice(), line);
    let mut out = String::new();
    let _ = writeln!(out, "{:>10}  {:>9}  (fully associative LRU, {line}-byte lines)", "size", "miss");
    for size in sizes {
        let _ = writeln!(out, "{:>10}  {:>9.4}", size, profile.miss_ratio(size));
    }
    Ok(out)
}

pub(crate) fn assoc(opts: &Opts) -> Result<String, CliError> {
    opts.expect_only(&["trace", "file", "len", "sets", "line"])?;
    let trace = load_workload(opts)?;
    let sets = opts.get_parse("sets", 64usize)?;
    let line = opts.get_parse("line", 16usize)?;
    if !sets.is_power_of_two() || sets == 0 {
        return Err(CliError::usage("--sets must be a positive power of two"));
    }
    let mut analyzer = smith85_cachesim::AssocAnalyzer::with_line_size(sets, line);
    for access in &trace {
        analyzer.observe(*access);
    }
    let profile = analyzer.finish();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>6} {:>10} {:>9}  (LRU, {sets} sets, {line}-byte lines; one pass)",
        "ways", "size", "miss"
    );
    for (ways, miss) in profile.curve(64) {
        let _ = writeln!(out, "{:>6} {:>10} {:>9.4}", ways, profile.cache_bytes(ways), miss);
    }
    Ok(out)
}

pub(crate) fn target(opts: &Opts) -> Result<String, CliError> {
    opts.expect_only(&["size", "kind"])?;
    let size = opts.get_parse("size", 0usize)?;
    if size == 0 {
        return Err(CliError::usage("missing required --size BYTES"));
    }
    let kinds: Vec<CacheKind> = match opts.get("kind") {
        None => CacheKind::ALL.to_vec(),
        Some("unified") => vec![CacheKind::Unified],
        Some("instruction") => vec![CacheKind::Instruction],
        Some("data") => vec![CacheKind::Data],
        Some(other) => return Err(CliError::usage(format!("unknown kind {other:?}"))),
    };
    let mut out = String::new();
    for kind in kinds {
        let _ = writeln!(
            out,
            "{:<12} design-target miss {:.2}, prefetch traffic factor {:.3}",
            kind.label(),
            design_target(size, kind),
            traffic_factor(size, kind)
        );
    }
    Ok(out)
}

pub(crate) fn custom(opts: &Opts) -> Result<String, CliError> {
    opts.expect_only(&[
        "ifetch", "read", "branch", "code-kb", "data-kb", "instr-alpha", "data-alpha", "seq",
        "stack", "arch", "len", "seed",
    ])?;
    let arch = match opts.get("arch").unwrap_or("vax") {
        "vax" => smith85_trace::MachineArch::Vax,
        "ibm370" | "370" => smith85_trace::MachineArch::Ibm370,
        "z8000" => smith85_trace::MachineArch::Z8000,
        "cdc6400" | "cdc" => smith85_trace::MachineArch::Cdc6400,
        "m68000" | "68000" => smith85_trace::MachineArch::M68000,
        other => return Err(CliError::usage(format!("unknown arch {other:?}"))),
    };
    let ifetch = opts.get_parse("ifetch", 0.50f64)?;
    let read = opts.get_parse("read", 0.33f64)?;
    let profile = smith85_synth::ProgramProfile {
        name: "CUSTOM".to_string(),
        arch,
        language: smith85_trace::SourceLanguage::C,
        description: "user-defined workload".to_string(),
        ifetch_fraction: ifetch,
        read_fraction: read,
        branch_fraction: opts.get_parse("branch", 0.17f64)?,
        code_bytes: (opts.get_parse("code-kb", 12.0f64)? * 1024.0) as u64,
        data_bytes: (opts.get_parse("data-kb", 12.0f64)? * 1024.0) as u64,
        locality: smith85_synth::Locality {
            instr_alpha: opts.get_parse("instr-alpha", 1.5f64)?,
            data_alpha: opts.get_parse("data-alpha", 1.4f64)?,
            seq_fraction: opts.get_parse("seq", 0.15f64)?,
            stack_fraction: opts.get_parse("stack", 0.3f64)?,
            ..Default::default()
        },
        seed: opts.get_parse("seed", 85u64)?,
        paper_length: 250_000,
    };
    // User-supplied knobs go through the typed validator, never the
    // generator's panic path.
    profile
        .validate()
        .map_err(|e| CliError::usage(format!("invalid custom profile: {e}")))?;
    let len = opts.get_parse("len", 100_000usize)?;
    let trace = profile.generate(len);
    let stats = trace.characteristics();
    let mut analyzer = StackAnalyzer::new();
    for access in &trace {
        analyzer.observe(*access);
    }
    let p = analyzer.finish();
    let mut out = format!("custom profile on {}\ncharacteristics: {stats}\n\n", arch);
    let _ = writeln!(out, "{:>10}  {:>9}", "size", "miss");
    for size in PAPER_SIZES {
        let _ = writeln!(out, "{:>10}  {:>9.4}", size, p.miss_ratio(size));
    }
    Ok(out)
}

/// Builds an instrumented session from the shared `--quick`/`--len`/
/// `--threads` flags — the one configure→run surface the `experiment`
/// and `suite` subcommands share with the serve workers.
fn session_from_opts(opts: &Opts) -> Result<SimSession, CliError> {
    let mut builder = SimSession::builder();
    if opts.get("quick").is_some() {
        builder = builder.quick();
    }
    if let Some(len) = opts.get("len") {
        builder = builder.trace_len(
            len.parse()
                .map_err(|_| CliError::usage(format!("bad --len {len:?}")))?,
        );
    }
    if let Some(threads) = opts.get("threads") {
        builder = builder.threads(
            threads
                .parse()
                .map_err(|_| CliError::usage(format!("bad --threads {threads:?}")))?,
        );
    }
    builder
        .build()
        .map_err(|e| CliError::usage(format!("invalid configuration: {e}")))
}

pub(crate) fn experiment(opts: &Opts) -> Result<String, CliError> {
    opts.expect_only(&["quick", "len", "csv", "threads"])?;
    let name = opts
        .positional()
        .first()
        .ok_or_else(|| CliError::usage("which experiment? (e.g. `smith85 experiment table1`)"))?;
    let session = session_from_opts(opts)?;
    let config = session.config().clone();
    let csv = opts.get("csv").is_some();
    let out = match name.as_str() {
        "table1" | "fig1" => {
            let t = experiments::table1::run(&config);
            if csv {
                t.to_csv()
            } else {
                t.render()
            }
        }
        "table2" => experiments::table2::run(&config).render(),
        "fig2" => experiments::fig2::run(&config).render(),
        "table3" => experiments::table3::run(&config).render(),
        "fig3_4" | "fig3" | "fig4" => experiments::fig3_fig4::run(&config).render(),
        "prefetch" | "fig5_6_7" | "fig8_9_10" | "table4" => {
            experiments::prefetch::run(&config).render()
        }
        "table5" => experiments::table5::run(&config).render(),
        "clark" => experiments::clark_validation::run(&config).render(),
        "z80000" => experiments::z80000::run(&config).render(),
        "m68020" => experiments::m68020::run(&config).render(),
        "traffic_ratio" => experiments::traffic_ratio::run(&config).render(),
        "design_grid" => experiments::design_grid::run(&config).render(),
        "trace_length" => experiments::trace_length::run(&config).render(),
        "multiprocessor" => experiments::multiprocessor::run(&config).render(),
        "calibration" => experiments::calibration_report::run(&config).render(),
        "multiprogramming" => experiments::multiprogramming::run(&config).render(),
        "conclusions" => experiments::conclusions::run(&config).render(),
        "family_conclusions" => experiments::family_conclusions::run(&config).render(),
        "line_size" => experiments::line_size::run(&config).render(),
        "fudge" => experiments::fudge_validation::run(&config).render(),
        "perturbations" => experiments::perturbations::run(&config).render(),
        "interface" => experiments::interface_effects::run(&config).render(),
        "ablations" => experiments::ablations::run(&config).render(),
        other => return Err(CliError::UnknownExperiment(other.to_string())),
    };
    Ok(out)
}

pub(crate) fn suite(opts: &Opts) -> Result<String, CliError> {
    opts.expect_only(&["out", "resume", "quick", "len", "threads"])?;
    let session = session_from_opts(opts)?;
    let config = session.config().clone();
    let options = runner::RunnerOptions {
        out_dir: std::path::PathBuf::from(opts.get("out").unwrap_or("suite-results")),
        resume: opts.get_parse("resume", false)?,
    };
    let mut entries = runner::registry();
    // Test hook: lets the robustness path (failure recorded, siblings
    // still run, resume retries it) be exercised from the command line.
    if std::env::var_os("SMITH85_SUITE_PANIC").is_some() {
        entries.push(runner::ExperimentEntry {
            name: "injected-panic",
            run: |_| panic!("deliberate panic injected via SMITH85_SUITE_PANIC"),
        });
    }
    let report = runner::run_suite_with(&config, &options, &entries, |outcome| {
        eprintln!(
            "suite: {:<18} {}",
            outcome.name,
            match (&outcome.error, outcome.status) {
                (Some(e), _) => format!("FAIL ({e})"),
                (None, runner::ExperimentStatus::Skip) => "skip (cached)".to_string(),
                (None, _) => format!("pass in {} ms", outcome.duration_ms),
            }
        );
    })?;
    let pool = pool_summary(&config.pool.stats());
    if report.is_success() {
        Ok(format!("{report}\n{pool}\n"))
    } else {
        Err(CliError::Suite(format!("{report}\n{pool}")))
    }
}

/// One-line trace-pool summary appended to the suite report.
fn pool_summary(stats: &smith85_core::trace_pool::PoolStats) -> String {
    format!(
        "trace pool: {} entries ({} refs, {:.1} MiB resident), {} hits / {} misses ({:.0}% hit), {:.1} MiB materialized",
        stats.entries,
        stats.total_refs,
        stats.memory_bytes as f64 / (1024.0 * 1024.0),
        stats.hits,
        stats.misses,
        100.0 * stats.hit_ratio(),
        stats.materialized_bytes as f64 / (1024.0 * 1024.0),
    )
}

pub(crate) fn serve(opts: &Opts) -> Result<String, CliError> {
    opts.expect_only(&[
        "addr", "unix", "workers", "queue", "deadline-ms", "metrics-addr", "journal", "store",
        "store-budget", "router", "probe-ms", "shard-inflight", "router-replicas", "event-loop",
    ])?;
    let defaults = smith85_serve::ServeOptions::default();
    let mut builder = smith85_serve::ServeOptions::builder()
        .addr(opts.get("addr").unwrap_or("127.0.0.1:4085"))
        .workers(opts.get_parse("workers", defaults.workers)?.max(1))
        .queue_capacity(opts.get_parse("queue", defaults.queue_capacity)?)
        .event_loop(opts.get_parse("event-loop", true)?);
    if let Some(store_dir) = opts.get("store") {
        let mut session = SimSession::builder().store(store_dir);
        if let Some(budget) = opts.get("store-budget") {
            session = session.store_budget(
                budget
                    .parse()
                    .map_err(|_| CliError::usage(format!("bad --store-budget {budget:?}")))?,
            );
        }
        let session = session
            .build()
            .map_err(|e| CliError::usage(format!("invalid configuration: {e}")))?;
        if let Some(store) = session.store() {
            eprintln!(
                "smith85-serve: store {} — {}",
                store.root().display(),
                store.recovery().summary()
            );
            for entry in &store.recovery().quarantined {
                eprintln!("smith85-serve: quarantined {} ({})", entry.name, entry.reason);
            }
        }
        builder = builder.session(session);
    } else if opts.get("store-budget").is_some() {
        return Err(CliError::usage("--store-budget needs --store DIR"));
    }
    let router = match opts.get("router") {
        Some(backends) => {
            let router_defaults = smith85_serve::RouterOptions::default();
            Some(smith85_serve::RouterOptions {
                backends: backends
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(str::to_string)
                    .collect(),
                probe_interval_ms: opts
                    .get_parse("probe-ms", router_defaults.probe_interval_ms)?,
                shard_inflight: opts
                    .get_parse("shard-inflight", router_defaults.shard_inflight)?,
                replicas: opts.get_parse("router-replicas", router_defaults.replicas)?,
                ..router_defaults
            })
        }
        None => {
            for flag in ["probe-ms", "shard-inflight", "router-replicas"] {
                if opts.get(flag).is_some() {
                    return Err(CliError::usage(format!(
                        "--{flag} needs --router ADDR[,ADDR...]"
                    )));
                }
            }
            None
        }
    };
    let routed = router.is_some();
    if let Some(router) = router {
        builder = builder.router(router);
    }
    if let Some(path) = opts.get("unix") {
        builder = builder.unix_path(path);
    }
    if let Some(ms) = opts.get("deadline-ms") {
        builder = builder.default_deadline_ms(
            ms.parse()
                .map_err(|_| CliError::usage(format!("bad --deadline-ms {ms:?}")))?,
        );
    }
    if let Some(addr) = opts.get("metrics-addr") {
        builder = builder.metrics_addr(addr);
    }
    if let Some(path) = opts.get("journal") {
        builder = builder.journal(path);
    }
    let options = builder
        .build()
        .map_err(|e| CliError::usage(format!("invalid serve configuration: {e}")))?;
    let (workers, queue) = (options.workers, options.queue_capacity);
    let unix = options.unix_path.clone();
    let backends = options
        .router
        .as_ref()
        .map(|r| r.backends.join(", "));
    let server = smith85_serve::Server::bind(options)?;
    // The banner goes to stderr immediately; the returned string only
    // exists once the server has already shut down.
    eprintln!(
        "smith85-serve: listening on {} ({} workers, queue bound {}){}",
        server.local_addr()?,
        workers,
        queue,
        unix
            .as_deref()
            .map(|p| format!(", unix socket {}", p.display()))
            .unwrap_or_default(),
    );
    if let Some(backends) = backends.filter(|_| routed) {
        eprintln!("smith85-serve: routing simulate/sweep across shards [{backends}]");
    }
    if let Some(addr) = server.metrics_addr() {
        eprintln!("smith85-serve: Prometheus metrics on http://{addr}/metrics");
    }
    if let Some(path) = opts.get("journal") {
        eprintln!("smith85-serve: journaling traces to {path} (render with `smith85 trace report {path}`)");
    }
    eprintln!("smith85-serve: ctrl-c drains in-flight jobs and exits");
    let stats = server.run()?;
    Ok(format!(
        "shut down after {} completed jobs ({} simulate, {} sweep admitted), \
         {} overload rejections, {} protocol errors, {} deadline misses\n\
         queue high water {}, pool: {} hits / {} misses, {:.1} MiB materialized\n",
        stats.completed,
        stats.simulate_requests,
        stats.sweep_requests,
        stats.rejected_overload,
        stats.protocol_errors,
        stats.deadline_misses,
        stats.queue_high_water,
        stats.pool.hits,
        stats.pool.misses,
        stats.pool.materialized_bytes as f64 / (1024.0 * 1024.0),
    ))
}

fn parse_ways(value: Option<&str>) -> Result<Option<usize>, CliError> {
    match value {
        None | Some("full") => Ok(None),
        Some(v) => v
            .parse()
            .map(Some)
            .map_err(|_| CliError::usage(format!("--ways {v:?} is not a number or \"full\""))),
    }
}

fn build_request(kind: &str, opts: &Opts) -> Result<smith85_serve::Request, CliError> {
    use smith85_serve::protocol::{DEFAULT_LINE_BYTES, DEFAULT_TRACE_LEN};
    let deadline_ms = match opts.get("deadline-ms") {
        None => None,
        Some(ms) => Some(
            ms.parse()
                .map_err(|_| CliError::usage(format!("bad --deadline-ms {ms:?}")))?,
        ),
    };
    let seed = match opts.get("seed") {
        None => None,
        Some(s) => Some(
            s.parse()
                .map_err(|_| CliError::usage(format!("bad --seed {s:?}")))?,
        ),
    };
    // Validate the policy spelling locally so a typo fails before a
    // connection is even attempted; the server re-validates anyway.
    let policy = match opts.get("policy") {
        None => None,
        Some(p) => {
            if Replacement::parse(p).is_none() {
                return Err(CliError::usage(format!(
                    "unknown replacement policy {p:?} (lru, fifo, random, random:<seed> or plru)"
                )));
            }
            Some(p.to_string())
        }
    };
    match kind {
        "simulate" => Ok(smith85_serve::Request::Simulate(smith85_serve::SimulateSpec {
            workload: opts.require("workload")?.to_string(),
            len: opts.get_parse("len", DEFAULT_TRACE_LEN)?,
            seed,
            cache: smith85_serve::CacheSpec {
                size: opts.require("size")?.parse().map_err(|_| {
                    CliError::usage(format!("--size {:?} is not a number", opts.get("size").unwrap_or("")))
                })?,
                line: opts.get_parse("line", DEFAULT_LINE_BYTES)?,
                ways: parse_ways(opts.get("ways"))?,
                purge: match opts.get("purge") {
                    None => None,
                    Some(p) => Some(
                        p.parse()
                            .map_err(|_| CliError::usage(format!("bad --purge {p:?}")))?,
                    ),
                },
            },
            policy,
            deadline_ms,
        })),
        "sweep" => Ok(smith85_serve::Request::Sweep(smith85_serve::SweepSpec {
            workload: opts.require("workload")?.to_string(),
            len: opts.get_parse("len", DEFAULT_TRACE_LEN)?,
            seed,
            sizes: match opts.get("sizes") {
                None => Vec::new(),
                Some(list) => parse_usize_list(list, "sizes")?,
            },
            // A ways list turns the request into a one-pass grid sweep.
            ways: match opts.get("ways") {
                None => Vec::new(),
                Some(list) => parse_usize_list(list, "ways")?,
            },
            line: opts.get_parse("line", DEFAULT_LINE_BYTES)?,
            policy,
            deadline_ms,
        })),
        "catalog" => Ok(smith85_serve::Request::Catalog),
        "stats" => Ok(smith85_serve::Request::Stats),
        "metrics" => Ok(smith85_serve::Request::Metrics),
        "ping" => Ok(smith85_serve::Request::Ping),
        "shutdown" => Ok(smith85_serve::Request::Shutdown),
        other => Err(CliError::usage(format!(
            "unknown request type {other:?} (simulate, sweep, catalog, stats, metrics, ping, shutdown)"
        ))),
    }
}

fn render_response(response: &smith85_serve::Response) -> Result<String, CliError> {
    use smith85_serve::Response;
    let mut out = String::new();
    match response {
        Response::Simulate(r) => {
            let _ = writeln!(out, "workload       {}", r.workload);
            let _ = writeln!(out, "references     {}", r.refs);
            let _ = writeln!(out, "cache bytes    {}", r.cache_bytes);
            let _ = writeln!(out, "misses         {}", r.misses);
            let _ = writeln!(out, "miss ratio     {:.6}", r.miss_ratio);
            let _ = writeln!(out, "  instruction  {:.6}", r.instruction_miss_ratio);
            let _ = writeln!(out, "  data         {:.6}", r.data_miss_ratio);
            let _ = writeln!(out, "traffic bytes  {}", r.traffic_bytes);
            let _ = writeln!(out, "queued/exec ms {} / {}", r.queue_ms, r.exec_ms);
            if !r.trace_id.is_empty() {
                let _ = writeln!(out, "trace id       {}", r.trace_id);
            }
        }
        Response::Sweep(r) => {
            let _ = writeln!(out, "workload {} ({} refs)", r.workload, r.len);
            if r.points.iter().any(|p| p.ways.is_some()) {
                let _ = writeln!(out, "{:>10} {:>6}  miss ratio  traffic   dirty", "size", "ways");
                for point in &r.points {
                    let _ = writeln!(
                        out,
                        "{:>10} {:>6}  {:.6}  {:.6}  {:.6}",
                        point.size,
                        point.ways.unwrap_or(0),
                        point.miss_ratio,
                        point.traffic_ratio.unwrap_or(f64::NAN),
                        point.dirty_push_fraction.unwrap_or(f64::NAN)
                    );
                }
            } else {
                let _ = writeln!(out, "{:>10}  miss ratio", "size");
                for point in &r.points {
                    let _ = writeln!(out, "{:>10}  {:.6}", point.size, point.miss_ratio);
                }
            }
            let _ = writeln!(out, "queued/exec ms {} / {}", r.queue_ms, r.exec_ms);
            if !r.trace_id.is_empty() {
                let _ = writeln!(out, "trace id       {}", r.trace_id);
            }
        }
        Response::Catalog(c) => {
            let _ = writeln!(out, "{} profiles:", c.profiles.len());
            let mut families: Vec<&str> = Vec::new();
            for entry in &c.profiles {
                if !families.contains(&entry.family.as_str()) {
                    families.push(&entry.family);
                }
            }
            for family in families {
                let _ = writeln!(out, " family {family}:");
                for entry in c.profiles.iter().filter(|e| e.family == family) {
                    let _ = writeln!(
                        out,
                        "  {:<12} {:<12} {:<10} {}",
                        entry.name, entry.group, entry.arch, entry.language
                    );
                }
            }
            let _ = writeln!(out, "{} mixes:", c.mixes.len());
            for mix in &c.mixes {
                let _ = writeln!(out, "  {mix}");
            }
        }
        Response::Stats(s) => {
            let _ = writeln!(
                out,
                "requests: {} simulate, {} sweep, {} catalog, {} stats",
                s.simulate_requests, s.sweep_requests, s.catalog_requests, s.stats_requests
            );
            let _ = writeln!(
                out,
                "jobs: {} completed, {} overload rejections, {} protocol errors, {} deadline misses",
                s.completed, s.rejected_overload, s.protocol_errors, s.deadline_misses
            );
            let _ = writeln!(
                out,
                "queue: depth {}, high water {}, {} workers",
                s.queue_depth, s.queue_high_water, s.workers
            );
            let _ = writeln!(
                out,
                "busy ms: {} simulate, {} sweep",
                s.busy_ms_simulate, s.busy_ms_sweep
            );
            let _ = writeln!(
                out,
                "pool: {} entries, {} hits / {} misses, {:.1} MiB materialized, {:.1} MiB resident",
                s.pool.entries,
                s.pool.hits,
                s.pool.misses,
                s.pool.materialized_bytes as f64 / (1024.0 * 1024.0),
                s.pool.resident_bytes as f64 / (1024.0 * 1024.0),
            );
            if let Some(one_pass) = &s.one_pass {
                let _ = writeln!(
                    out,
                    "one-pass: {} refs traversed, {} grid cells produced",
                    one_pass.refs, one_pass.grid_cells
                );
            }
            if let Some(router) = &s.router {
                let _ = writeln!(
                    out,
                    "router: {}/{} shards healthy, {} forwarded, {} hedged, \
                     {} shard overloads, {} health probes",
                    router.healthy,
                    router.shards,
                    router.forwarded,
                    router.hedged,
                    router.shard_overloads,
                    router.health_probes
                );
                if router.federated_shards + router.stale_shards > 0 {
                    let _ = writeln!(
                        out,
                        "router metrics federation: {} shard snapshot(s) absorbed, \
                         {} shard(s) marked stale",
                        router.federated_shards, router.stale_shards
                    );
                }
            }
        }
        Response::Metrics(snapshot) => {
            let series = |name: &str, labels: &[(String, String)]| {
                if labels.is_empty() {
                    name.to_string()
                } else {
                    let body: Vec<String> =
                        labels.iter().map(|(k, v)| format!("{k}={v}")).collect();
                    format!("{name}{{{}}}", body.join(","))
                }
            };
            let _ = writeln!(out, "counters:");
            for c in &snapshot.counters {
                let _ = writeln!(out, "  {:<40} {}", series(&c.name, &c.labels), c.value);
            }
            let _ = writeln!(out, "gauges:");
            for g in &snapshot.gauges {
                let _ = writeln!(out, "  {:<40} {}", series(&g.name, &g.labels), g.value);
            }
            let _ = writeln!(out, "histograms:");
            for h in &snapshot.histograms {
                let _ = writeln!(
                    out,
                    "  {:<40} count {}  p50 {:.3}  p95 {:.3}  p99 {:.3}",
                    series(&h.name, &h.labels),
                    h.count,
                    h.p50,
                    h.p95,
                    h.p99
                );
            }
        }
        Response::Pong => out.push_str("pong\n"),
        Response::Ok => out.push_str("ok (server is draining)\n"),
        Response::Error(e) => {
            return Err(CliError::Server(format!(
                "server error [{}]: {}",
                e.code.as_str(),
                e.message
            )))
        }
    }
    Ok(out)
}

pub(crate) fn submit(opts: &Opts) -> Result<String, CliError> {
    opts.expect_only(&[
        "addr",
        "unix",
        "json",
        "workload",
        "len",
        "seed",
        "size",
        "line",
        "ways",
        "purge",
        "sizes",
        "policy",
        "deadline-ms",
        "retries",
        "backoff-ms",
        "trace-id",
    ])?;
    let kind = opts
        .positional()
        .first()
        .map(String::as_str)
        .ok_or_else(|| {
            CliError::usage(
                "need a request type: simulate, sweep, catalog, stats, metrics, ping or shutdown",
            )
        })?;
    let request = build_request(kind, opts)?;
    let policy = smith85_serve::RetryPolicy {
        retries: opts.get_parse("retries", 0u32)?,
        backoff_ms: opts.get_parse("backoff-ms", 100u64)?,
    };
    #[cfg(not(unix))]
    if opts.get("unix").is_some() {
        return Err(CliError::usage(
            "--unix is only available on unix targets; use --addr",
        ));
    }
    let mut builder = smith85_serve::Client::builder().retry_policy(policy);
    builder = match opts.get("unix") {
        #[cfg(unix)]
        Some(path) => builder.unix(path),
        #[cfg(not(unix))]
        Some(_) => unreachable!("rejected above"),
        None => builder.addr(opts.get("addr").unwrap_or("127.0.0.1:4085")),
    };
    if let Some(id) = opts.get("trace-id") {
        builder = builder.trace_id(id);
    }
    let mut client = builder.connect().map_err(client_error)?;
    // A typed server error stays a wire response here so `--json` can
    // print it verbatim; render_response turns it into a CliError.
    let response = match client.call(&request) {
        Ok(response) => response,
        Err(smith85_serve::ClientError::Server(body)) => smith85_serve::Response::Error(body),
        Err(other) => return Err(client_error(other)),
    };
    if opts.get("json").is_some() {
        let mut line = response.encode();
        line.push('\n');
        return Ok(line);
    }
    render_response(&response)
}

/// Maps a client failure onto the CLI's error surface: transport
/// problems keep their `io::Error` (and exit-code semantics), protocol
/// and configuration failures become server-side messages.
fn client_error(e: smith85_serve::ClientError) -> CliError {
    match e {
        smith85_serve::ClientError::Io(e) => CliError::File(e),
        other => CliError::Server(other.to_string()),
    }
}

pub(crate) fn cache(opts: &Opts) -> Result<String, CliError> {
    let action = opts
        .positional()
        .first()
        .map(String::as_str)
        .ok_or_else(|| {
            CliError::usage("need an action: `smith85 cache stats|gc|clear|verify --store DIR`")
        })?;
    opts.expect_only(&["store", "budget"])?;
    let dir = opts.require("store")?;
    let store =
        smith85_store::Store::open(dir).map_err(|e| CliError::Store(e.to_string()))?;
    match action {
        "stats" => {
            let s = store.stats();
            let quarantined = std::fs::read_dir(store.quarantine_dir())
                .map(|entries| entries.filter_map(Result::ok).count())
                .unwrap_or(0);
            let mut out = String::new();
            let _ = writeln!(out, "store          {}", store.root().display());
            let _ = writeln!(out, "entries        {}", s.entries);
            let _ = writeln!(out, "bytes          {}", s.total_bytes);
            let _ = writeln!(
                out,
                "budget         {}",
                store
                    .budget()
                    .map(|b| b.to_string())
                    .unwrap_or_else(|| "unbounded".to_string())
            );
            let _ = writeln!(out, "quarantined    {quarantined} file(s)");
            let _ = writeln!(out, "{}", store.recovery().summary());
            Ok(out)
        }
        "gc" => {
            let budget = opts.get_parse("budget", 0u64)?;
            if opts.get("budget").is_none() {
                return Err(CliError::usage("`smith85 cache gc` needs --budget BYTES"));
            }
            let report = store.gc(budget);
            let after = store.stats();
            Ok(format!(
                "evicted {} entrie(s), freed {} bytes; {} entrie(s), {} bytes remain\n",
                report.evicted, report.freed_bytes, after.entries, after.total_bytes
            ))
        }
        "clear" => {
            let removed = store.clear()?;
            Ok(format!(
                "removed {removed} live entrie(s); quarantined evidence kept in {}\n",
                store.quarantine_dir().display()
            ))
        }
        "verify" => {
            // Corruption shows up in two places: the recovery scan that
            // ran when we opened the store, and the explicit re-read
            // below. Either one means the store was not intact.
            let report = store.verify()?;
            let damaged: Vec<&smith85_store::QuarantinedEntry> = store
                .recovery()
                .quarantined
                .iter()
                .chain(report.quarantined.iter())
                .collect();
            if damaged.is_empty() {
                Ok(format!(
                    "verified {} record(s), all intact\n",
                    report.checked
                ))
            } else {
                let mut detail = format!(
                    "verify: {} of {} record(s) corrupt, moved to {}",
                    damaged.len(),
                    report.checked + store.recovery().quarantined.len(),
                    store.quarantine_dir().display()
                );
                for entry in damaged {
                    let _ = write!(detail, "\n  {} ({})", entry.name, entry.reason);
                }
                Err(CliError::Store(detail))
            }
        }
        other => Err(CliError::usage(format!(
            "unknown cache action {other:?} (stats, gc, clear or verify)"
        ))),
    }
}

pub(crate) fn trace(opts: &Opts) -> Result<String, CliError> {
    let action = opts.positional().first().map(String::as_str).ok_or_else(|| {
        CliError::usage("need an action: `smith85 trace report JOURNAL` or `smith85 trace follow JOURNAL`")
    })?;
    match action {
        "report" => {
            opts.expect_only(&["top", "format", "journal"])?;
            // Journals come as a positional path, repeated --journal
            // flags, or both; several paths (e.g. a router's and its
            // shards') are merged into one cross-process view.
            let mut paths: Vec<&str> = opts.positional().iter().skip(1).map(String::as_str).collect();
            paths.extend(opts.get_all("journal"));
            if paths.is_empty() {
                return Err(CliError::usage(
                    "`smith85 trace report` needs a journal path (positional or --journal, repeatable)",
                ));
            }
            let mut journals: Vec<Vec<smith85_tracelog::TraceEvent>> = Vec::new();
            for path in &paths {
                let (header, events) = smith85_tracelog::report::read_journal(path)?;
                if let Some(header) = &header {
                    if header.version != smith85_tracelog::JOURNAL_VERSION {
                        return Err(CliError::usage(format!(
                            "journal {path:?} is format v{}, this build reads v{}",
                            header.version,
                            smith85_tracelog::JOURNAL_VERSION
                        )));
                    }
                }
                journals.push(events);
            }
            let events = smith85_tracelog::report::merge_journals(&journals);
            let trees = smith85_tracelog::report::build_trees(&events);
            match opts.get("format").unwrap_or("tree") {
                "tree" => {
                    let top = opts.get_parse("top", 10usize)?;
                    Ok(smith85_tracelog::report::render_report(&trees, top))
                }
                "collapsed" => Ok(smith85_tracelog::report::collapsed_stacks(&trees)),
                other => Err(CliError::usage(format!(
                    "unknown format {other:?} (tree or collapsed)"
                ))),
            }
        }
        "follow" => {
            opts.expect_only(&["max-events", "trace-id"])?;
            let journal = opts.positional().get(1).map(String::as_str).ok_or_else(|| {
                CliError::usage("`smith85 trace follow` needs a journal path")
            })?;
            let max_events = opts.get_parse("max-events", usize::MAX)?;
            follow_journal(journal, max_events, opts.get("trace-id"))
        }
        other => Err(CliError::usage(format!(
            "unknown trace action {other:?} (report or follow)"
        ))),
    }
}

/// Tails a journal file: prints each event line as it lands, polling for
/// growth. With `max_events == usize::MAX` it runs until interrupted, so
/// events go straight to stdout rather than the returned string. With a
/// `trace_id` filter, only that trace's events print (or count).
fn follow_journal(path: &str, max_events: usize, trace_id: Option<&str>) -> Result<String, CliError> {
    use std::io::BufRead as _;
    let file = File::open(path)?;
    let mut reader = std::io::BufReader::new(file);
    let mut line = String::new();
    let mut printed = 0usize;
    let mut header_seen = false;
    while printed < max_events {
        let n = reader.read_line(&mut line)?;
        if n == 0 {
            // At EOF: a bounded follow with no more data would otherwise
            // spin forever in tests, so only block when tailing live.
            if max_events != usize::MAX {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(100));
            continue;
        }
        if !line.ends_with('\n') {
            // A partially written line: keep it and wait for the writer
            // to finish it (the next read appends the remainder).
            std::thread::sleep(std::time::Duration::from_millis(50));
            continue;
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            line.clear();
            continue;
        }
        if !header_seen {
            header_seen = true;
            if trimmed.contains("\"schema\"") {
                line.clear();
                continue; // journal header, not an event
            }
        }
        let value = smith85_tracelog::json::parse(trimmed)
            .map_err(|e| CliError::usage(format!("bad journal line: {e}")))?;
        let event = smith85_tracelog::report::parse_event(&value)
            .map_err(|e| CliError::usage(format!("bad journal event: {e}")))?;
        if trace_id.is_none_or(|id| &*event.trace_id == id) {
            println!("{}", smith85_tracelog::report::render_event_line(&event));
            printed += 1;
        }
        line.clear();
    }
    Ok(format!("followed {printed} event(s) from {path}\n"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(args: &[&str]) -> Opts {
        let v: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        Opts::parse(&v).unwrap()
    }

    #[test]
    fn parse_config_defaults_to_paper_shape() {
        let c = parse_config(&opts(&["--size", "1024"])).unwrap();
        assert_eq!(c.line_size(), 16);
        assert_eq!(c.mapping(), Mapping::FullyAssociative);
        assert_eq!(c.replacement(), Replacement::Lru);
    }

    #[test]
    fn parse_config_full_grid() {
        let c = parse_config(&opts(&[
            "--size", "8192", "--line", "32", "--ways", "4", "--replacement", "fifo", "--write",
            "wt", "--fetch", "prefetch", "--purge", "20000",
        ]))
        .unwrap();
        assert_eq!(c.ways(), 4);
        assert_eq!(c.replacement(), Replacement::Fifo);
        assert_eq!(c.write_policy(), WritePolicy::WriteThrough { allocate: true });
        assert_eq!(c.fetch_policy(), FetchPolicy::PrefetchAlways);
        assert_eq!(c.purge_interval(), Some(20_000));
    }

    #[test]
    fn parse_config_rejects_nonsense() {
        assert!(parse_config(&opts(&["--size", "1024", "--replacement", "clock"])).is_err());
        assert!(parse_config(&opts(&["--size", "1024", "--write", "wb"])).is_err());
        assert!(parse_config(&opts(&[])).is_err());
    }

    #[test]
    fn split_simulation_prints_both_halves() {
        let out = simulate(&opts(&[
            "--trace", "ZGREP", "--len", "4000", "--size", "1024", "--org", "split",
        ]))
        .unwrap();
        assert!(out.contains("instruction"));
        assert!(out.contains("data"));
    }

    #[test]
    fn sweep_accepts_custom_sizes() {
        let out = sweep(&opts(&["--trace", "PL0", "--len", "4000", "--sizes", "64,256"])).unwrap();
        assert!(out.contains("64"));
        assert!(out.contains("256"));
        assert!(!out.contains("65536"));
    }

    #[test]
    fn target_kind_filter() {
        let out = target(&opts(&["--size", "256", "--kind", "instruction"])).unwrap();
        assert!(out.contains("instruction"));
        assert!(!out.contains("unified"));
        assert!(out.contains("0.25"));
    }
}
