//! Library backing the `smith85` command-line tool.
//!
//! Every subcommand is a pure function from parsed options to an output
//! string, so the whole surface is unit-testable without spawning
//! processes. See [`run`] for dispatch and `smith85 help` for usage.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod commands;
mod opts;

pub use opts::Opts;

use std::error::Error;
use std::fmt;

/// Errors surfaced to the command line.
#[derive(Debug)]
pub enum CliError {
    /// Bad arguments; the message explains what to fix.
    Usage(String),
    /// A named trace is not in the catalog.
    UnknownTrace(String),
    /// A named experiment does not exist.
    UnknownExperiment(String),
    /// Reading or writing a trace file failed.
    Io(smith85_trace::TraceIoError),
    /// A cache configuration was invalid.
    Config(smith85_cachesim::ConfigError),
    /// A plain file-system error.
    File(std::io::Error),
    /// `smith85 suite` completed with failed experiments; the payload is
    /// the final report (the run itself was not aborted).
    Suite(String),
    /// The simulation server answered a `submit` with a typed error.
    Server(String),
    /// A persistent-store operation failed, or `cache verify` found
    /// corruption (the payload is the report; damaged entries are
    /// already quarantined).
    Store(String),
}

impl CliError {
    fn usage(message: impl Into<String>) -> Self {
        CliError::Usage(message.into())
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "{m}"),
            CliError::UnknownTrace(n) => {
                write!(f, "no trace named {n:?} in the catalog (try `smith85 list`)")
            }
            CliError::UnknownExperiment(n) => {
                write!(f, "no experiment named {n:?} (try `smith85 help`)")
            }
            CliError::Io(e) => e.fmt(f),
            CliError::Config(e) => e.fmt(f),
            CliError::File(e) => e.fmt(f),
            CliError::Suite(report) => write!(f, "suite finished with failures\n{report}"),
            CliError::Server(m) => write!(f, "{m}"),
            CliError::Store(m) => write!(f, "{m}"),
        }
    }
}

impl Error for CliError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CliError::Io(e) => Some(e),
            CliError::Config(e) => Some(e),
            CliError::File(e) => Some(e),
            _ => None,
        }
    }
}

impl From<smith85_trace::TraceIoError> for CliError {
    fn from(e: smith85_trace::TraceIoError) -> Self {
        CliError::Io(e)
    }
}

impl From<smith85_cachesim::ConfigError> for CliError {
    fn from(e: smith85_cachesim::ConfigError) -> Self {
        CliError::Config(e)
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::File(e)
    }
}

/// Dispatches a full argument vector (without the program name) and
/// returns the text to print.
///
/// # Errors
///
/// Returns a [`CliError`] describing bad usage, unknown names, I/O
/// failures or invalid configurations.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let (command, rest) = match args.split_first() {
        None => return Ok(commands::help()),
        Some((c, rest)) => (c.as_str(), rest),
    };
    // `trace report` merges several per-process journals, so --journal
    // is repeatable there (and only there).
    let opts = if command == "trace" {
        Opts::parse_allowing_repeats(rest, &["journal"])?
    } else {
        Opts::parse(rest)?
    };
    match command {
        "help" | "--help" | "-h" => Ok(commands::help()),
        "list" => commands::list(&opts),
        "catalog" => commands::catalog_cmd(&opts),
        "generate" => commands::generate(&opts),
        "characterize" => commands::characterize(&opts),
        "simulate" => commands::simulate(&opts),
        "sweep" => commands::sweep(&opts),
        "assoc" => commands::assoc(&opts),
        "target" => commands::target(&opts),
        "custom" => commands::custom(&opts),
        "experiment" => commands::experiment(&opts),
        "suite" => commands::suite(&opts),
        "serve" => commands::serve(&opts),
        "submit" => commands::submit(&opts),
        "cache" => commands::cache(&opts),
        "trace" => commands::trace(&opts),
        other => Err(CliError::usage(format!("unknown command {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_str(args: &[&str]) -> Result<String, CliError> {
        let v: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        run(&v)
    }

    #[test]
    fn empty_and_help_print_usage() {
        assert!(run(&[]).unwrap().contains("USAGE"));
        assert!(run_str(&["help"]).unwrap().contains("simulate"));
    }

    #[test]
    fn unknown_command_is_an_error() {
        assert!(matches!(run_str(&["frobnicate"]), Err(CliError::Usage(_))));
    }

    #[test]
    fn list_names_all_traces() {
        let out = run_str(&["list"]).unwrap();
        for name in ["MVS1", "VSPICE", "ZGREP", "TWOD", "PL0", "VAXIMA"] {
            assert!(out.contains(name), "missing {name}");
        }
    }

    #[test]
    fn catalog_groups_profiles_by_family() {
        let out = run_str(&["catalog"]).unwrap();
        assert!(out.contains("family cpu (49 profiles):"), "{out}");
        assert!(out.contains("family storage (5 profiles):"), "{out}");
        assert!(out.contains("family network (5 profiles):"), "{out}");
        assert!(out.contains("S-KVSTORE"));
        assert!(out.contains("N-BACKBONE"));

        let storage = run_str(&["catalog", "--family", "storage"]).unwrap();
        assert!(storage.contains("S-SCAN"), "{storage}");
        assert!(!storage.contains("VCCOM"), "{storage}");
        assert!(!storage.contains("family network"), "{storage}");

        assert!(matches!(
            run_str(&["catalog", "--family", "gpu"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn family_profiles_simulate_with_policies() {
        let lru = run_str(&[
            "simulate", "--trace", "S-KVSTORE", "--len", "4000", "--size", "2048", "--line", "64",
        ])
        .unwrap();
        assert!(lru.contains("miss ratio"), "{lru}");
        let fifo = run_str(&[
            "simulate", "--trace", "S-KVSTORE", "--len", "4000", "--size", "2048", "--line", "64",
            "--policy", "fifo",
        ])
        .unwrap();
        assert_ne!(lru, fifo, "policy must show up in the banner or the numbers");
        assert!(matches!(
            run_str(&[
                "simulate", "--trace", "VCCOM", "--size", "1024", "--policy", "clock",
            ]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn sweep_with_non_lru_policy_runs_per_config() {
        let out = run_str(&[
            "sweep", "--trace", "ZGREP", "--len", "4000", "--sizes", "1024,4096", "--ways", "2",
            "--policy", "random:7",
        ])
        .unwrap();
        assert!(out.contains("per config"), "{out}");
        assert!(out.contains("random:7"), "{out}");
        assert_eq!(out.lines().count(), 3, "{out}");
        let sizes_only = run_str(&[
            "sweep", "--trace", "N-LAN", "--len", "4000", "--sizes", "256,1024", "--line", "64",
            "--policy", "plru",
        ])
        .unwrap();
        assert!(sizes_only.contains("plru"), "{sizes_only}");
        assert_eq!(sizes_only.lines().count(), 3, "{sizes_only}");
    }

    #[test]
    fn simulate_runs_a_catalog_trace() {
        let out = run_str(&[
            "simulate", "--trace", "VCCOM", "--len", "5000", "--size", "4096",
        ])
        .unwrap();
        assert!(out.contains("miss ratio"), "{out}");
    }

    #[test]
    fn simulate_rejects_unknown_trace() {
        assert!(matches!(
            run_str(&["simulate", "--trace", "NOPE", "--size", "1024"]),
            Err(CliError::UnknownTrace(_))
        ));
    }

    #[test]
    fn sweep_produces_a_curve() {
        let out = run_str(&["sweep", "--trace", "ZGREP", "--len", "5000"]).unwrap();
        assert!(out.contains("1024"));
        assert!(out.lines().count() > 10);
    }

    #[test]
    fn sweep_with_ways_produces_the_grid() {
        let out = run_str(&[
            "sweep", "--trace", "ZGREP", "--len", "5000", "--sizes", "1024,4096", "--ways", "1,2,4",
        ])
        .unwrap();
        assert!(out.contains("one pass"), "{out}");
        assert!(out.contains("traffic"), "{out}");
        // 2 sizes x 3 ways, all realizable, plus the header line.
        assert_eq!(out.lines().count(), 7, "{out}");
        // A grid nothing can realize is a usage error, not a panic.
        let err = run_str(&[
            "sweep", "--trace", "ZGREP", "--len", "1000", "--sizes", "64", "--ways", "8",
        ])
        .unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "{err}");
    }

    #[test]
    fn assoc_sweeps_way_counts() {
        let out = run_str(&["assoc", "--trace", "VCCOM", "--len", "6000", "--sets", "16"]).unwrap();
        assert!(out.contains("ways"));
        assert!(out.lines().count() > 5);
        assert!(run_str(&["assoc", "--trace", "VCCOM", "--sets", "12"]).is_err());
    }

    #[test]
    fn target_looks_up_table5() {
        let out = run_str(&["target", "--size", "8192"]).unwrap();
        assert!(out.contains("0.08"), "{out}");
    }

    #[test]
    fn generate_and_characterize_roundtrip() {
        let dir = std::env::temp_dir().join("smith85-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.trace");
        let path_str = path.to_str().unwrap();
        let out = run_str(&[
            "generate", "--trace", "PL0", "--len", "3000", "--out", path_str,
        ])
        .unwrap();
        assert!(out.contains("3000"));
        let out = run_str(&["characterize", "--file", path_str]).unwrap();
        assert!(out.contains("ifetch"), "{out}");
    }

    #[test]
    fn custom_profile_sweeps() {
        let out = run_str(&[
            "custom", "--ifetch", "0.6", "--read", "0.3", "--code-kb", "4", "--data-kb", "4",
            "--len", "8000",
        ])
        .unwrap();
        assert!(out.contains("characteristics"));
        assert!(out.contains("65536"));
    }

    #[test]
    fn custom_rejects_bad_fractions() {
        assert!(run_str(&["custom", "--ifetch", "0.9", "--read", "0.5"]).is_err());
    }

    #[test]
    fn simulate_fault_injection_is_deterministic() {
        let faulty = [
            "simulate", "--trace", "ZGREP", "--len", "4000", "--size", "1024", "--fault-drop",
            "0.05", "--fault-flip", "0.02",
        ];
        let a = run_str(&faulty).unwrap();
        let b = run_str(&faulty).unwrap();
        assert_eq!(a, b, "same seed must reproduce the same corruption");
        let clean = run_str(&[
            "simulate", "--trace", "ZGREP", "--len", "4000", "--size", "1024",
        ])
        .unwrap();
        assert_ne!(a, clean, "faults must perturb the statistics");
        assert!(matches!(
            run_str(&[
                "simulate", "--trace", "ZGREP", "--size", "1024", "--fault-drop", "1.5",
            ]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn suite_checkpoints_and_resumes() {
        let dir = std::env::temp_dir().join(format!("smith85-suite-cli-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let out = dir.to_str().unwrap();
        let first = run_str(&["suite", "--quick", "true", "--len", "200", "--out", out]).unwrap();
        assert!(first.contains("23 passed, 0 failed, 0 skipped"), "{first}");
        assert!(dir.join("manifest.json").exists());
        assert!(dir.join("table1.json").exists());
        let second = run_str(&[
            "suite", "--quick", "true", "--len", "200", "--out", out, "--resume", "true",
        ])
        .unwrap();
        assert!(second.contains("0 passed, 0 failed, 23 skipped"), "{second}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn simulate_rejects_corrupt_binary_trace_without_panicking() {
        let dir = std::env::temp_dir().join(format!("smith85-corrupt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.bin");
        let path_str = path.to_str().unwrap().to_string();
        run_str(&[
            "generate", "--trace", "PL0", "--len", "1000", "--out", &path_str, "--format",
            "binary",
        ])
        .unwrap();
        // Truncate mid-record.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        let err = run_str(&["simulate", "--file", &path_str, "--size", "1024"]).unwrap_err();
        assert!(
            matches!(
                &err,
                CliError::Io(smith85_trace::TraceIoError::Truncated { .. })
            ),
            "{err}"
        );
        // Corrupt a kind byte.
        let mut bytes = bytes;
        bytes[8] = 9;
        std::fs::write(&path, &bytes).unwrap();
        let err = run_str(&["simulate", "--file", &path_str, "--size", "1024"]).unwrap_err();
        assert!(
            matches!(
                &err,
                CliError::Io(smith85_trace::TraceIoError::BadKind { record: 1, found: 9 })
            ),
            "{err}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn submit_talks_to_a_live_server() {
        let server = smith85_serve::Server::spawn(smith85_serve::ServeOptions {
            addr: "127.0.0.1:0".to_string(),
            ..smith85_serve::ServeOptions::default()
        })
        .unwrap();
        let addr = server.addr().to_string();

        let out = run_str(&["submit", "ping", "--addr", &addr]).unwrap();
        assert_eq!(out, "pong\n");

        let out = run_str(&["submit", "catalog", "--addr", &addr, "--json", "true"]).unwrap();
        assert!(out.starts_with("{\"type\":\"catalog_result\""), "{out}");
        assert!(out.contains("VCCOM"));

        let out = run_str(&[
            "submit", "simulate", "--addr", &addr, "--workload", "VCCOM", "--len", "3000",
            "--size", "4096",
        ])
        .unwrap();
        assert!(out.contains("miss ratio"), "{out}");

        let out = run_str(&[
            "submit", "simulate", "--addr", &addr, "--workload", "S-KVSTORE", "--len", "2000",
            "--size", "2048", "--line", "64", "--policy", "fifo",
        ])
        .unwrap();
        assert!(out.contains("miss ratio"), "{out}");

        let err = run_str(&[
            "submit", "simulate", "--addr", &addr, "--workload", "NOPE", "--size", "4096",
        ])
        .unwrap_err();
        assert!(
            matches!(&err, CliError::Server(m) if m.contains("unknown_workload")),
            "{err}"
        );
        assert!(
            matches!(&err, CliError::Server(m) if m.contains("nearest catalog match")),
            "{err}"
        );

        // A policy typo fails locally, before any connection attempt.
        assert!(matches!(
            run_str(&[
                "submit", "simulate", "--addr", "127.0.0.1:1", "--workload", "VCCOM", "--size",
                "4096", "--policy", "clock",
            ]),
            Err(CliError::Usage(_))
        ));

        let stats = server.stop().unwrap();
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.simulate_requests, 3);
        assert_eq!(stats.catalog_requests, 1);
    }

    #[test]
    fn submit_rejects_bad_request_types_locally() {
        assert!(matches!(
            run_str(&["submit", "frobnicate", "--addr", "127.0.0.1:1"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run_str(&["submit", "--addr", "127.0.0.1:1"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn trace_report_and_follow_render_a_journal() {
        let journal = std::env::temp_dir()
            .join(format!("smith85-cli-journal-{}.ndjson", std::process::id()));
        let _ = std::fs::remove_file(&journal);
        let server = smith85_serve::Server::spawn(smith85_serve::ServeOptions {
            addr: "127.0.0.1:0".to_string(),
            journal: Some(journal.clone()),
            ..smith85_serve::ServeOptions::default()
        })
        .unwrap();
        let addr = server.addr().to_string();
        let out = run_str(&[
            "submit", "simulate", "--addr", &addr, "--workload", "VCCOM", "--len", "3000",
            "--size", "4096",
        ])
        .unwrap();
        assert!(out.contains("trace id"), "{out}");
        server.stop().unwrap();

        let path = journal.to_str().unwrap();
        let report = run_str(&["trace", "report", path]).unwrap();
        assert!(report.contains("request"), "{report}");
        assert!(report.contains("simulate_workload"), "{report}");
        let collapsed = run_str(&["trace", "report", path, "--format", "collapsed"]).unwrap();
        assert!(collapsed.contains("request;simulate_workload"), "{collapsed}");
        let followed = run_str(&["trace", "follow", path, "--max-events", "3"]).unwrap();
        assert!(followed.contains("followed 3 event(s)"), "{followed}");

        assert!(matches!(run_str(&["trace", "frobnicate", path]), Err(CliError::Usage(_))));
        assert!(matches!(run_str(&["trace", "report"]), Err(CliError::Usage(_))));
        std::fs::remove_file(&journal).unwrap();
    }

    #[test]
    fn cache_subcommand_lifecycle() {
        let dir = std::env::temp_dir().join(format!("smith85-cli-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let dir_str = dir.to_str().unwrap().to_string();

        // Seed two records through the public store API.
        {
            let store = smith85_store::Store::open(&dir).unwrap();
            store.put_json("v1/c1/result/a", "{\"x\":1}").unwrap();
            store.put_json("v1/c1/result/b", "{\"x\":2}").unwrap();
        }

        let stats = run_str(&["cache", "stats", "--store", &dir_str]).unwrap();
        assert!(stats.contains("entries        2"), "{stats}");
        assert!(stats.contains("recovery scan: 2 scanned, 2 ok, 0 quarantined"), "{stats}");

        let clean = run_str(&["cache", "verify", "--store", &dir_str]).unwrap();
        assert!(clean.contains("all intact"), "{clean}");

        // Flip a byte in one object; verify must catch and quarantine it.
        let object = std::fs::read_dir(dir.join("objects"))
            .unwrap()
            .filter_map(Result::ok)
            .map(|e| e.path())
            .next()
            .unwrap();
        let mut bytes = std::fs::read(&object).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        std::fs::write(&object, &bytes).unwrap();
        let err = run_str(&["cache", "verify", "--store", &dir_str]).unwrap_err();
        assert!(
            matches!(&err, CliError::Store(m) if m.contains("1 of 2")),
            "{err}"
        );

        let stats = run_str(&["cache", "stats", "--store", &dir_str]).unwrap();
        assert!(stats.contains("quarantined    1 file(s)"), "{stats}");

        // GC to zero leaves the quarantine evidence alone.
        assert!(matches!(
            run_str(&["cache", "gc", "--store", &dir_str]),
            Err(CliError::Usage(_))
        ));
        let gc = run_str(&["cache", "gc", "--store", &dir_str, "--budget", "0"]).unwrap();
        assert!(gc.contains("evicted 1"), "{gc}");
        let cleared = run_str(&["cache", "clear", "--store", &dir_str]).unwrap();
        assert!(cleared.contains("removed 0"), "{cleared}");
        assert!(dir.join("quarantine").read_dir().unwrap().next().is_some());

        assert!(matches!(
            run_str(&["cache", "frobnicate", "--store", &dir_str]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(run_str(&["cache", "stats"]), Err(CliError::Usage(_))));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn submit_retries_refused_connections_then_gives_up() {
        // Nothing listens on this port; with retries the command must
        // still fail with the final refused attempt, quickly.
        let err = run_str(&[
            "submit", "ping", "--addr", "127.0.0.1:1", "--retries", "2", "--backoff-ms", "1",
        ])
        .unwrap_err();
        assert!(
            matches!(&err, CliError::File(e) if e.kind() == std::io::ErrorKind::ConnectionRefused),
            "{err}"
        );
        assert!(matches!(
            run_str(&["submit", "ping", "--addr", "127.0.0.1:1", "--retries", "x"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn experiment_dispatch() {
        let out = run_str(&["experiment", "fig2"]).unwrap();
        assert!(out.contains("supervisor"));
        assert!(matches!(
            run_str(&["experiment", "nope"]),
            Err(CliError::UnknownExperiment(_))
        ));
    }

    #[test]
    fn family_conclusions_experiment_dispatches() {
        let out = run_str(&[
            "experiment", "family_conclusions", "--quick", "true", "--len", "2000",
        ])
        .unwrap();
        assert!(out.contains("workload"), "{out}");
        assert!(out.contains("policy"), "{out}");
    }
}
