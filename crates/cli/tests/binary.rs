//! End-to-end tests of the `smith85` binary itself (exit codes, stdout,
//! stderr), via the path Cargo bakes in for integration tests.

use std::process::Command;

fn smith85(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_smith85"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn help_exits_zero() {
    let out = smith85(&["help"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
}

#[test]
fn bad_command_exits_nonzero_with_hint() {
    let out = smith85(&["bogus"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("smith85:"), "{err}");
    assert!(err.contains("help"), "{err}");
}

#[test]
fn simulate_pipeline_end_to_end() {
    let out = smith85(&[
        "simulate", "--trace", "ZGREP", "--len", "4000", "--size", "1024",
    ]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("miss ratio"), "{text}");
    assert!(text.contains("traffic"), "{text}");
}

#[test]
fn generate_then_consume_file() {
    let dir = std::env::temp_dir().join("smith85-bin-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("e2e.strc");
    let path_str = path.to_str().unwrap();
    let out = smith85(&[
        "generate", "--trace", "VCAT", "--len", "2000", "--out", path_str, "--format", "binary",
    ]);
    assert!(out.status.success(), "{:?}", out);
    let out = smith85(&["sweep", "--file", path_str, "--sizes", "64,1024"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("1024"), "{text}");
}

#[test]
fn list_is_stable_output() {
    let a = smith85(&["list"]);
    let b = smith85(&["list"]);
    assert_eq!(a.stdout, b.stdout);
    assert_eq!(
        String::from_utf8_lossy(&a.stdout)
            .lines()
            .count(),
        50 // header + 49 traces
    );
}
