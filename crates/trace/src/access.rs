//! The memory-reference model: addresses, line addresses, and accesses.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A virtual byte address, as recorded in a program address trace.
///
/// `Addr` is a transparent newtype over `u64`; it exists so that byte
/// addresses and [line addresses](LineAddr) cannot be confused.
///
/// ```
/// use smith85_trace::Addr;
///
/// let a = Addr::new(0x1234);
/// assert_eq!(a.get(), 0x1234);
/// assert_eq!(a.line(16).get(), 0x123);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Addr(u64);

impl Addr {
    /// Creates an address from a raw byte address.
    pub const fn new(raw: u64) -> Self {
        Addr(raw)
    }

    /// Returns the raw byte address.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Returns the address of the cache line containing this byte, for the
    /// given line size.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `line_size` is not a power of two.
    pub fn line(self, line_size: usize) -> LineAddr {
        debug_assert!(
            line_size.is_power_of_two(),
            "line size {line_size} is not a power of two"
        );
        LineAddr(self.0 >> line_size.trailing_zeros())
    }

    /// Returns the byte offset of this address within its line.
    pub fn offset(self, line_size: usize) -> u64 {
        debug_assert!(line_size.is_power_of_two());
        self.0 & (line_size as u64 - 1)
    }

    /// Returns the address advanced by `bytes`.
    #[must_use]
    pub const fn wrapping_add(self, bytes: u64) -> Self {
        Addr(self.0.wrapping_add(bytes))
    }

    /// Signed distance in bytes from `other` to `self`.
    pub const fn distance_from(self, other: Addr) -> i64 {
        self.0.wrapping_sub(other.0) as i64
    }
}

impl From<u64> for Addr {
    fn from(raw: u64) -> Self {
        Addr(raw)
    }
}

impl From<Addr> for u64 {
    fn from(addr: Addr) -> Self {
        addr.0
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

/// The address of a cache line: a byte address divided by the line size.
///
/// A `LineAddr` is only meaningful relative to the line size it was produced
/// with; the cache simulator guarantees it never mixes line addresses from
/// different line sizes.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct LineAddr(u64);

impl LineAddr {
    /// Creates a line address from a raw line number.
    pub const fn new(raw: u64) -> Self {
        LineAddr(raw)
    }

    /// Returns the raw line number.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Returns the line address that follows this one (line `i + 1`, the
    /// line the paper's "prefetch always" policy looks ahead to).
    #[must_use]
    pub const fn next(self) -> Self {
        LineAddr(self.0.wrapping_add(1))
    }

    /// Returns the first byte address of this line for the given line size.
    pub fn to_addr(self, line_size: usize) -> Addr {
        debug_assert!(line_size.is_power_of_two());
        Addr(self.0 << line_size.trailing_zeros())
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{:#x}", self.0)
    }
}

/// The kind of a memory reference.
///
/// The paper distinguishes instruction fetches, data reads and data writes
/// (its M68000 traces only distinguish fetches from writes; see
/// [`MachineArch::M68000`](crate::MachineArch::M68000)).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub enum AccessKind {
    /// An instruction fetch.
    InstructionFetch,
    /// A data read (load).
    Read,
    /// A data write (store).
    Write,
}

impl AccessKind {
    /// All access kinds, in a fixed order convenient for indexing statistics.
    pub const ALL: [AccessKind; 3] = [
        AccessKind::InstructionFetch,
        AccessKind::Read,
        AccessKind::Write,
    ];

    /// Returns `true` for [`AccessKind::InstructionFetch`].
    pub const fn is_ifetch(self) -> bool {
        matches!(self, AccessKind::InstructionFetch)
    }

    /// Returns `true` for data reads and writes.
    pub const fn is_data(self) -> bool {
        !self.is_ifetch()
    }

    /// Returns `true` for [`AccessKind::Write`].
    pub const fn is_write(self) -> bool {
        matches!(self, AccessKind::Write)
    }

    /// A stable small index (0, 1, 2), used by statistics arrays.
    pub const fn index(self) -> usize {
        match self {
            AccessKind::InstructionFetch => 0,
            AccessKind::Read => 1,
            AccessKind::Write => 2,
        }
    }

    /// The single-character mnemonic used by the text trace format.
    pub const fn mnemonic(self) -> char {
        match self {
            AccessKind::InstructionFetch => 'I',
            AccessKind::Read => 'R',
            AccessKind::Write => 'W',
        }
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            AccessKind::InstructionFetch => "ifetch",
            AccessKind::Read => "read",
            AccessKind::Write => "write",
        };
        f.write_str(name)
    }
}

/// One memory reference of a program address trace.
///
/// A reference is a byte [address](Addr), a size in bytes (the width of the
/// access as seen on the memory interface), and a [kind](AccessKind).
///
/// ```
/// use smith85_trace::{AccessKind, Addr, MemoryAccess};
///
/// let acc = MemoryAccess::read(Addr::new(0x100), 8);
/// assert_eq!(acc.kind, AccessKind::Read);
/// assert_eq!(acc.size, 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemoryAccess {
    /// The virtual byte address referenced.
    pub addr: Addr,
    /// The number of bytes transferred by this reference (1-16 in practice).
    pub size: u8,
    /// Whether this is an instruction fetch, a read or a write.
    pub kind: AccessKind,
}

impl MemoryAccess {
    /// Creates an access of the given kind.
    pub const fn new(kind: AccessKind, addr: Addr, size: u8) -> Self {
        MemoryAccess { addr, size, kind }
    }

    /// Creates an instruction fetch.
    pub const fn ifetch(addr: Addr, size: u8) -> Self {
        Self::new(AccessKind::InstructionFetch, addr, size)
    }

    /// Creates a data read.
    pub const fn read(addr: Addr, size: u8) -> Self {
        Self::new(AccessKind::Read, addr, size)
    }

    /// Creates a data write.
    pub const fn write(addr: Addr, size: u8) -> Self {
        Self::new(AccessKind::Write, addr, size)
    }

    /// The line this access falls in, for the given line size.
    ///
    /// Accesses are assumed not to straddle line boundaries; the synthetic
    /// generators align references so this holds, matching the behaviour of
    /// the paper's trace mechanisms which record one address per reference.
    pub fn line(&self, line_size: usize) -> LineAddr {
        self.addr.line(line_size)
    }

    /// Returns a copy of this access relocated by `offset` bytes.
    ///
    /// Used by the multiprogramming mixer to place each program of a mix in
    /// a disjoint address-space slice.
    #[must_use]
    pub fn relocated(mut self, offset: u64) -> Self {
        self.addr = self.addr.wrapping_add(offset);
        self
    }
}

impl fmt::Display for MemoryAccess {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {:#x} {}", self.kind.mnemonic(), self.addr, self.size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_line_and_offset() {
        let a = Addr::new(0x1234);
        assert_eq!(a.line(16), LineAddr::new(0x123));
        assert_eq!(a.offset(16), 4);
        assert_eq!(a.line(64), LineAddr::new(0x48));
        assert_eq!(a.offset(64), 0x34);
    }

    #[test]
    fn line_addr_roundtrip() {
        let l = Addr::new(0xabcd).line(32);
        assert_eq!(l.to_addr(32).line(32), l);
        assert_eq!(l.to_addr(32).offset(32), 0);
    }

    #[test]
    fn line_next_is_sequential() {
        let l = Addr::new(0x100).line(16);
        assert_eq!(l.next(), Addr::new(0x110).line(16));
    }

    #[test]
    fn distance_is_signed() {
        assert_eq!(Addr::new(0x10).distance_from(Addr::new(0x20)), -0x10);
        assert_eq!(Addr::new(0x20).distance_from(Addr::new(0x10)), 0x10);
    }

    #[test]
    fn kind_predicates() {
        assert!(AccessKind::InstructionFetch.is_ifetch());
        assert!(!AccessKind::InstructionFetch.is_data());
        assert!(AccessKind::Read.is_data());
        assert!(AccessKind::Write.is_data());
        assert!(AccessKind::Write.is_write());
        assert!(!AccessKind::Read.is_write());
    }

    #[test]
    fn kind_indices_are_distinct() {
        let idx: Vec<usize> = AccessKind::ALL.iter().map(|k| k.index()).collect();
        assert_eq!(idx, vec![0, 1, 2]);
    }

    #[test]
    fn relocation_moves_address() {
        let acc = MemoryAccess::write(Addr::new(0x100), 4).relocated(0x1000);
        assert_eq!(acc.addr, Addr::new(0x1100));
        assert_eq!(acc.kind, AccessKind::Write);
    }

    #[test]
    fn display_formats() {
        let acc = MemoryAccess::ifetch(Addr::new(0x40), 4);
        assert_eq!(acc.to_string(), "I 0x40 4");
        assert_eq!(Addr::new(0xff).to_string(), "0xff");
        assert_eq!(LineAddr::new(0xff).to_string(), "L0xff");
    }
}
