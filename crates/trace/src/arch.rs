//! Machine-architecture descriptors for the architectures the paper traces.
//!
//! The paper stresses that a trace reflects both the *functional*
//! architecture (instruction set) and the *design* architecture (memory
//! interface width, and whether the interface "remembers" the last fetch).
//! [`MachineArch`] records both aspects so the synthetic generators can
//! emulate, per machine, the reference streams the original traces encoded.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The width and "memory" of a machine's path to main memory.
///
/// The paper (§1.1) notes that fetching two four-byte instructions requires
/// 4, 2 or 1 memory references depending on whether the interface is 2, 4 or
/// 8 bytes wide, and fewer still if the interface remembers the bytes it
/// already holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct InterfaceSpec {
    /// Width of the memory interface in bytes.
    pub width_bytes: u8,
    /// Whether the interface remembers the previously fetched unit, so a
    /// sequential fetch within the same unit does not re-reference memory.
    pub remembers: bool,
}

impl InterfaceSpec {
    /// Creates an interface specification.
    pub const fn new(width_bytes: u8, remembers: bool) -> Self {
        InterfaceSpec {
            width_bytes,
            remembers,
        }
    }
}

impl fmt::Display for InterfaceSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}-byte interface ({} memory)",
            self.width_bytes,
            if self.remembers { "with" } else { "no" }
        )
    }
}

/// One of the machine architectures the paper's 49 traces were taken from,
/// plus the (then-unreleased) Zilog Z80000 whose projections the paper
/// critiques.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum MachineArch {
    /// IBM System/370 (Amdahl 470-class traces, incl. the MVS OS traces).
    Ibm370,
    /// IBM 360/91 (SLAC traces: WATEX, WATFIV, APL, FFT).
    Ibm360_91,
    /// DEC VAX 11/780 (Unix utilities, VAXIMA, LISP, SPICE, ...).
    Vax,
    /// Zilog Z8000, a 16-bit microprocessor (Unix utility traces).
    Z8000,
    /// CDC 6400 (Fortran scientific codes, 60-bit words).
    Cdc6400,
    /// Motorola 68000 (hardware-monitor traces of small Pascal programs;
    /// reads and instruction fetches are not distinguished).
    M68000,
    /// Zilog Z80000, the 32-bit successor whose cache the paper sizes up.
    Z80000,
}

impl MachineArch {
    /// All architectures with traces in the paper's workload (excludes the
    /// projected [`Z80000`](MachineArch::Z80000)).
    pub const TRACED: [MachineArch; 6] = [
        MachineArch::Ibm370,
        MachineArch::Ibm360_91,
        MachineArch::Vax,
        MachineArch::Z8000,
        MachineArch::Cdc6400,
        MachineArch::M68000,
    ];

    /// Short display name as used in the paper's tables.
    pub const fn name(self) -> &'static str {
        match self {
            MachineArch::Ibm370 => "IBM 370",
            MachineArch::Ibm360_91 => "IBM 360/91",
            MachineArch::Vax => "VAX 11/780",
            MachineArch::Z8000 => "Z8000",
            MachineArch::Cdc6400 => "CDC 6400",
            MachineArch::M68000 => "M68000",
            MachineArch::Z80000 => "Z80000",
        }
    }

    /// The natural word size of the architecture in bytes (the CDC 6400's
    /// 60-bit word is rounded up to 8).
    pub const fn word_bytes(self) -> u8 {
        match self {
            MachineArch::Ibm370 | MachineArch::Ibm360_91 => 4,
            MachineArch::Vax => 4,
            MachineArch::Z8000 => 2,
            MachineArch::Cdc6400 => 8,
            MachineArch::M68000 => 2,
            MachineArch::Z80000 => 4,
        }
    }

    /// Whether this is a 16-bit architecture (the paper's explanation for
    /// the unrepresentative Z8000 numbers).
    pub const fn is_16_bit(self) -> bool {
        matches!(self, MachineArch::Z8000 | MachineArch::M68000)
    }

    /// The memory-interface behaviour the paper says each trace set assumed.
    ///
    /// * CDC 6400: one-word (60-bit) data interface, one-instruction
    ///   interface with **no** memory.
    /// * IBM 360/91: 8-byte interface, **no** memory ("all bytes are
    ///   discarded after each individual fetch").
    /// * M68000: 2-byte bus of the real chip (hardware-monitor traces).
    /// * Others: word-wide interfaces without memory; the design
    ///   architecture is emulated by the simulator, not the trace.
    pub const fn interface(self) -> InterfaceSpec {
        match self {
            MachineArch::Ibm370 => InterfaceSpec::new(8, false),
            MachineArch::Ibm360_91 => InterfaceSpec::new(8, false),
            MachineArch::Vax => InterfaceSpec::new(4, false),
            MachineArch::Z8000 => InterfaceSpec::new(2, false),
            MachineArch::Cdc6400 => InterfaceSpec::new(8, false),
            MachineArch::M68000 => InterfaceSpec::new(2, false),
            MachineArch::Z80000 => InterfaceSpec::new(4, false),
        }
    }

    /// A representative average instruction length in bytes, used by the
    /// synthetic instruction-stream model.
    pub const fn typical_instr_bytes(self) -> u8 {
        match self {
            MachineArch::Ibm370 | MachineArch::Ibm360_91 => 4,
            // §3.4: "if the average instruction is 3 bytes long" (VAX-like).
            MachineArch::Vax => 3,
            MachineArch::Z8000 => 2,
            // One 15- or 30-bit parcel per fetch; model as 4 bytes.
            MachineArch::Cdc6400 => 4,
            MachineArch::M68000 => 2,
            MachineArch::Z80000 => 4,
        }
    }

    /// Whether traces from this machine distinguish data reads from
    /// instruction fetches (the M68000 hardware monitor could not).
    pub const fn distinguishes_reads(self) -> bool {
        !matches!(self, MachineArch::M68000)
    }

    /// A relative "architecture complexity" score in `[0, 1]` used by the
    /// §4.3 fudge-factor interpolation: 1.0 is the most complex traced
    /// instruction set (VAX), 0.0 the simplest (CDC 6400-like / RISC).
    pub const fn complexity(self) -> f64 {
        match self {
            MachineArch::Vax => 1.0,
            MachineArch::Ibm370 => 0.85,
            MachineArch::Ibm360_91 => 0.75,
            MachineArch::Z80000 => 0.7,
            MachineArch::M68000 => 0.55,
            MachineArch::Z8000 => 0.45,
            MachineArch::Cdc6400 => 0.0,
        }
    }
}

impl fmt::Display for MachineArch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traced_list_excludes_z80000() {
        assert!(!MachineArch::TRACED.contains(&MachineArch::Z80000));
        assert_eq!(MachineArch::TRACED.len(), 6);
    }

    #[test]
    fn word_sizes_match_generation() {
        assert_eq!(MachineArch::Z8000.word_bytes(), 2);
        assert_eq!(MachineArch::Vax.word_bytes(), 4);
        assert_eq!(MachineArch::Cdc6400.word_bytes(), 8);
        assert!(MachineArch::Z8000.is_16_bit());
        assert!(!MachineArch::Vax.is_16_bit());
    }

    #[test]
    fn m68000_cannot_distinguish_reads() {
        assert!(!MachineArch::M68000.distinguishes_reads());
        assert!(MachineArch::Vax.distinguishes_reads());
    }

    #[test]
    fn complexity_orders_vax_above_cdc() {
        assert!(MachineArch::Vax.complexity() > MachineArch::Ibm370.complexity());
        assert!(MachineArch::Ibm370.complexity() > MachineArch::Cdc6400.complexity());
        for arch in MachineArch::TRACED {
            let c = arch.complexity();
            assert!((0.0..=1.0).contains(&c), "{arch}: {c}");
        }
    }

    #[test]
    fn interface_display() {
        let spec = MachineArch::Ibm360_91.interface();
        assert_eq!(spec.to_string(), "8-byte interface (no memory)");
    }
}
