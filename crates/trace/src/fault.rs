//! Trace fault injection: a deterministic, seeded iterator adapter that
//! corrupts an access stream in controlled ways.
//!
//! Long measurement campaigns have to survive bad input — truncated trace
//! files, flipped bits from a flaky disk, duplicated records from a
//! half-retried write. The paper's own numbers came from batch runs over
//! 49 real traces that could not all be pristine. [`FaultInjector`] makes
//! such corruption reproducible: wrap any access stream, give it a seed
//! and per-fault rates, and the same corrupted stream comes out every
//! time — which is what a regression test for robustness needs.
//!
//! ```
//! use smith85_trace::fault::{FaultConfig, FaultInjector};
//! use smith85_trace::{Addr, MemoryAccess};
//!
//! let clean = (0..1000).map(|i| MemoryAccess::read(Addr::new(i * 4), 4));
//! let config = FaultConfig {
//!     drop_rate: 0.01,
//!     duplicate_rate: 0.01,
//!     bit_flip_rate: 0.005,
//! };
//! let injector = FaultInjector::new(clean, 85, config).unwrap();
//! let corrupted: Vec<MemoryAccess> = injector.collect();
//! assert!(!corrupted.is_empty());
//! ```

use crate::MemoryAccess;
use std::error::Error;
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

/// The shared splitmix64 step: one deterministic 64-bit draw.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Per-fault probabilities, each applied independently per reference.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Probability that a reference is silently dropped.
    pub drop_rate: f64,
    /// Probability that a reference is emitted twice.
    pub duplicate_rate: f64,
    /// Probability that one random address bit is flipped.
    pub bit_flip_rate: f64,
}

impl FaultConfig {
    /// No faults at all (the identity adapter).
    pub const NONE: FaultConfig = FaultConfig {
        drop_rate: 0.0,
        duplicate_rate: 0.0,
        bit_flip_rate: 0.0,
    };

    /// Checks every rate is a probability.
    ///
    /// # Errors
    ///
    /// Returns [`FaultConfigError`] naming the offending rate if any rate
    /// is outside `[0, 1]` or not finite.
    pub fn validate(&self) -> Result<(), FaultConfigError> {
        for (name, rate) in [
            ("drop_rate", self.drop_rate),
            ("duplicate_rate", self.duplicate_rate),
            ("bit_flip_rate", self.bit_flip_rate),
        ] {
            if !rate.is_finite() || !(0.0..=1.0).contains(&rate) {
                return Err(FaultConfigError { name, rate });
            }
        }
        Ok(())
    }
}

/// A fault rate outside `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfigError {
    /// Which rate was bad.
    pub name: &'static str,
    /// The offending value.
    pub rate: f64,
}

impl fmt::Display for FaultConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fault {} = {} is not a probability in [0, 1]",
            self.name, self.rate
        )
    }
}

impl Error for FaultConfigError {}

/// Counters of the faults actually injected so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// References consumed from the wrapped stream.
    pub seen: u64,
    /// References dropped.
    pub dropped: u64,
    /// References duplicated.
    pub duplicated: u64,
    /// References with a flipped address bit.
    pub bit_flipped: u64,
}

/// A seeded, deterministic fault-injecting iterator adapter.
///
/// Faults are decided per reference from a private splitmix64 stream, so
/// the output depends only on `(input stream, seed, config)` — rerunning
/// with the same three reproduces the corruption exactly.
#[derive(Debug, Clone)]
pub struct FaultInjector<I> {
    inner: I,
    config: FaultConfig,
    rng: u64,
    pending_duplicate: Option<MemoryAccess>,
    stats: FaultStats,
}

impl<I> FaultInjector<I>
where
    I: Iterator<Item = MemoryAccess>,
{
    /// Wraps `inner`, injecting faults at the configured rates.
    ///
    /// # Errors
    ///
    /// Returns [`FaultConfigError`] if a rate is not a probability.
    pub fn new(inner: I, seed: u64, config: FaultConfig) -> Result<Self, FaultConfigError> {
        config.validate()?;
        Ok(FaultInjector {
            inner,
            config,
            // Mix the seed so seed 0 still gets a lively stream.
            rng: seed ^ 0x9e37_79b9_7f4a_7c15,
            pending_duplicate: None,
            stats: FaultStats::default(),
        })
    }

    /// The faults injected so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Unwraps the adapter, returning the inner stream and the stats.
    pub fn into_parts(self) -> (I, FaultStats) {
        (self.inner, self.stats)
    }

    fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.rng)
    }

    fn roll(&mut self, rate: f64) -> bool {
        if rate <= 0.0 {
            return false;
        }
        if rate >= 1.0 {
            return true;
        }
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < rate
    }
}

impl<I> Iterator for FaultInjector<I>
where
    I: Iterator<Item = MemoryAccess>,
{
    type Item = MemoryAccess;

    fn next(&mut self) -> Option<MemoryAccess> {
        if let Some(dup) = self.pending_duplicate.take() {
            return Some(dup);
        }
        loop {
            let mut access = self.inner.next()?;
            self.stats.seen += 1;
            if self.roll(self.config.drop_rate) {
                self.stats.dropped += 1;
                continue;
            }
            if self.roll(self.config.bit_flip_rate) {
                let bit = self.next_u64() % u64::BITS as u64;
                access.addr = crate::Addr::new(access.addr.get() ^ (1 << bit));
                self.stats.bit_flipped += 1;
            }
            if self.roll(self.config.duplicate_rate) {
                self.stats.duplicated += 1;
                self.pending_duplicate = Some(access);
            }
            return Some(access);
        }
    }
}

/// A disk-level fault: how to damage a byte image or file.
///
/// These model the failure modes a persistent store must survive — the
/// crash-safety tests for `smith85-store` inject them deterministically
/// and assert that recovery quarantines exactly the damaged entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskFault {
    /// A write interrupted partway: the file keeps only a prefix (possibly
    /// empty) of its bytes.
    TornWrite,
    /// Media rot: exactly one randomly-chosen bit is inverted.
    BitFlip,
    /// A read that returned fewer bytes than asked: the tail (1 to 64
    /// bytes) is missing.
    ShortRead,
}

impl fmt::Display for DiskFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiskFault::TornWrite => write!(f, "torn write"),
            DiskFault::BitFlip => write!(f, "bit flip"),
            DiskFault::ShortRead => write!(f, "short read"),
        }
    }
}

/// A seeded, deterministic corruptor of byte images and files: the
/// disk-fault counterpart of [`FaultInjector`].
///
/// The damage depends only on `(seed, sequence of calls, input sizes)`,
/// so a crash-safety test reproduces the exact same corruption every run.
///
/// ```
/// use smith85_trace::fault::{DiskFault, DiskFaultInjector};
///
/// let mut injector = DiskFaultInjector::new(85);
/// let mut image = vec![0xAAu8; 128];
/// injector.corrupt_buf(DiskFault::BitFlip, &mut image);
/// assert_eq!(image.iter().filter(|&&b| b != 0xAA).count(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct DiskFaultInjector {
    rng: u64,
}

impl DiskFaultInjector {
    /// Creates a corruptor with the given seed.
    pub fn new(seed: u64) -> Self {
        DiskFaultInjector {
            // Same seed pre-mix as FaultInjector so seed 0 is lively.
            rng: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.rng)
    }

    /// Applies `fault` to an in-memory image. Returns the number of bytes
    /// removed (torn write / short read) or `0` for a bit flip. Empty
    /// images are left untouched.
    pub fn corrupt_buf(&mut self, fault: DiskFault, bytes: &mut Vec<u8>) -> usize {
        if bytes.is_empty() {
            return 0;
        }
        let len = bytes.len();
        match fault {
            DiskFault::TornWrite => {
                // Keep a strict prefix: 0..len bytes survive.
                let keep = (self.next_u64() as usize) % len;
                bytes.truncate(keep);
                len - keep
            }
            DiskFault::BitFlip => {
                let bit = (self.next_u64() as usize) % (len * 8);
                bytes[bit / 8] ^= 1 << (bit % 8);
                0
            }
            DiskFault::ShortRead => {
                let lost = 1 + (self.next_u64() as usize) % len.min(64);
                bytes.truncate(len - lost);
                lost
            }
        }
    }

    /// Applies `fault` to the file at `path` in place (read, corrupt,
    /// rewrite — deliberately *not* atomic, this is the failure being
    /// modelled). Returns the bytes removed, as for
    /// [`corrupt_buf`](Self::corrupt_buf).
    ///
    /// # Errors
    ///
    /// Any underlying filesystem error.
    pub fn corrupt_file(&mut self, fault: DiskFault, path: &Path) -> io::Result<usize> {
        let mut bytes = fs::read(path)?;
        let removed = self.corrupt_buf(fault, &mut bytes);
        fs::write(path, &bytes)?;
        Ok(removed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Addr;

    fn clean(n: u64) -> impl Iterator<Item = MemoryAccess> + Clone {
        (0..n).map(|i| MemoryAccess::read(Addr::new(0x1000 + i * 4), 4))
    }

    #[test]
    fn zero_rates_are_the_identity() {
        let out: Vec<_> = FaultInjector::new(clean(500), 1, FaultConfig::NONE)
            .unwrap()
            .collect();
        assert_eq!(out, clean(500).collect::<Vec<_>>());
    }

    #[test]
    fn same_seed_same_corrupted_stream() {
        let config = FaultConfig {
            drop_rate: 0.05,
            duplicate_rate: 0.05,
            bit_flip_rate: 0.02,
        };
        let a: Vec<_> = FaultInjector::new(clean(2000), 85, config).unwrap().collect();
        let b: Vec<_> = FaultInjector::new(clean(2000), 85, config).unwrap().collect();
        assert_eq!(a, b);
        let c: Vec<_> = FaultInjector::new(clean(2000), 86, config).unwrap().collect();
        assert_ne!(a, c, "different seed must corrupt differently");
    }

    #[test]
    fn rates_shape_the_output() {
        let drop_all = FaultConfig {
            drop_rate: 1.0,
            ..FaultConfig::NONE
        };
        let out: Vec<_> = FaultInjector::new(clean(100), 1, drop_all).unwrap().collect();
        assert!(out.is_empty());

        let dup_all = FaultConfig {
            duplicate_rate: 1.0,
            ..FaultConfig::NONE
        };
        let mut inj = FaultInjector::new(clean(100), 1, dup_all).unwrap();
        let out: Vec<_> = inj.by_ref().collect();
        assert_eq!(out.len(), 200);
        assert_eq!(out[0], out[1]);
        assert_eq!(inj.stats().duplicated, 100);

        let flip_all = FaultConfig {
            bit_flip_rate: 1.0,
            ..FaultConfig::NONE
        };
        let mut inj = FaultInjector::new(clean(100), 1, flip_all).unwrap();
        let out: Vec<_> = inj.by_ref().collect();
        assert_eq!(out.len(), 100);
        assert!(out
            .iter()
            .zip(clean(100))
            .all(|(corrupt, orig)| corrupt.addr != orig.addr));
        assert_eq!(inj.stats().bit_flipped, 100);
    }

    #[test]
    fn moderate_rates_inject_roughly_proportionally() {
        let config = FaultConfig {
            drop_rate: 0.10,
            duplicate_rate: 0.10,
            bit_flip_rate: 0.10,
        };
        let mut inj = FaultInjector::new(clean(10_000), 7, config).unwrap();
        let _drain: Vec<_> = inj.by_ref().collect();
        let s = inj.stats();
        assert_eq!(s.seen, 10_000);
        for (label, count) in [
            ("dropped", s.dropped),
            ("duplicated", s.duplicated),
            ("bit_flipped", s.bit_flipped),
        ] {
            assert!(
                (600..=1500).contains(&count),
                "{label} = {count}, expected ~1000"
            );
        }
    }

    #[test]
    fn bad_rates_are_typed_errors() {
        for bad in [
            FaultConfig {
                drop_rate: -0.1,
                ..FaultConfig::NONE
            },
            FaultConfig {
                duplicate_rate: 1.5,
                ..FaultConfig::NONE
            },
            FaultConfig {
                bit_flip_rate: f64::NAN,
                ..FaultConfig::NONE
            },
        ] {
            let Err(err) = FaultInjector::new(clean(1), 0, bad) else {
                panic!("rate {bad:?} accepted");
            };
            assert!(err.to_string().contains("not a probability"), "{err}");
        }
    }

    #[test]
    fn disk_faults_are_deterministic() {
        for fault in [DiskFault::TornWrite, DiskFault::BitFlip, DiskFault::ShortRead] {
            let mut a_inj = DiskFaultInjector::new(85);
            let mut b_inj = DiskFaultInjector::new(85);
            let mut a: Vec<u8> = (0..=255).collect();
            let mut b = a.clone();
            assert_eq!(
                a_inj.corrupt_buf(fault, &mut a),
                b_inj.corrupt_buf(fault, &mut b)
            );
            assert_eq!(a, b, "{fault} must be reproducible");
        }
    }

    #[test]
    fn disk_fault_shapes() {
        let original: Vec<u8> = (0..=255).cycle().take(1000).collect();

        let mut inj = DiskFaultInjector::new(7);
        let mut torn = original.clone();
        let removed = inj.corrupt_buf(DiskFault::TornWrite, &mut torn);
        assert!(torn.len() < original.len());
        assert_eq!(torn.len() + removed, original.len());
        assert_eq!(torn[..], original[..torn.len()], "torn write keeps a prefix");

        let mut flipped = original.clone();
        assert_eq!(inj.corrupt_buf(DiskFault::BitFlip, &mut flipped), 0);
        assert_eq!(flipped.len(), original.len());
        let differing: Vec<usize> = (0..original.len())
            .filter(|&i| flipped[i] != original[i])
            .collect();
        assert_eq!(differing.len(), 1);
        let i = differing[0];
        assert_eq!((flipped[i] ^ original[i]).count_ones(), 1, "exactly one bit");

        let mut short = original.clone();
        let lost = inj.corrupt_buf(DiskFault::ShortRead, &mut short);
        assert!((1..=64).contains(&lost));
        assert_eq!(short.len(), original.len() - lost);
        assert_eq!(short[..], original[..short.len()]);
    }

    #[test]
    fn disk_fault_edge_sizes() {
        let mut inj = DiskFaultInjector::new(1);
        let mut empty: Vec<u8> = Vec::new();
        for fault in [DiskFault::TornWrite, DiskFault::BitFlip, DiskFault::ShortRead] {
            assert_eq!(inj.corrupt_buf(fault, &mut empty), 0);
            assert!(empty.is_empty());
        }
        // One-byte images: short read must still remove the only byte.
        let mut one = vec![0xFFu8];
        let lost = inj.corrupt_buf(DiskFault::ShortRead, &mut one);
        assert_eq!((lost, one.len()), (1, 0));
    }

    #[test]
    fn disk_fault_corrupts_files_on_disk() {
        let path = std::env::temp_dir().join(format!("s85-diskfault-{}", std::process::id()));
        std::fs::write(&path, [0u8; 64]).unwrap();
        let mut inj = DiskFaultInjector::new(3);
        inj.corrupt_file(DiskFault::BitFlip, &path).unwrap();
        let after = std::fs::read(&path).unwrap();
        assert_eq!(after.len(), 64);
        assert_eq!(after.iter().map(|b| b.count_ones()).sum::<u32>(), 1);
        std::fs::remove_file(&path).unwrap();
    }
}
