//! Memory-reference trace substrate for the Smith '85 cache workload study.
//!
//! This crate defines everything the rest of the workspace agrees on when it
//! talks about *program address traces*:
//!
//! * the reference model itself ([`MemoryAccess`], [`Addr`], [`AccessKind`]),
//! * descriptors for the machine architectures the paper draws traces from
//!   ([`MachineArch`]) and the source languages of the traced programs
//!   ([`SourceLanguage`]),
//! * in-memory traces and streaming combinators ([`Trace`], [`stream`]),
//! * on-disk formats (a Dinero-like text format and a compact binary format,
//!   see [`io`]),
//! * design-architecture emulation of the memory interface
//!   ([`interface::InterfaceAdapter`]),
//! * the trace characterizer that computes every column of the paper's
//!   Table 2 ([`stats::TraceCharacteristics`]), and
//! * the round-robin multiprogramming mixer used by the paper's Table 3 and
//!   Figures 3-10 ([`mix::RoundRobinMix`]).
//!
//! # Example
//!
//! ```
//! use smith85_trace::{Addr, AccessKind, MemoryAccess, Trace};
//!
//! let mut trace = Trace::new();
//! trace.push(MemoryAccess::ifetch(Addr::new(0x1000), 4));
//! trace.push(MemoryAccess::read(Addr::new(0x8000), 4));
//! trace.push(MemoryAccess::write(Addr::new(0x8004), 4));
//!
//! let stats = trace.characteristics();
//! assert_eq!(stats.total_refs(), 3);
//! assert_eq!(stats.ifetches(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod access;
mod arch;
mod error;
mod language;
pub mod fault;
pub mod interface;
pub mod io;
pub mod mix;
pub mod stats;
pub mod stream;
mod trace_buf;

pub use access::{AccessKind, Addr, LineAddr, MemoryAccess};
pub use arch::{InterfaceSpec, MachineArch};
pub use error::{ParseTraceError, TraceIoError};
pub use language::SourceLanguage;
pub use trace_buf::Trace;

/// The line (block) size, in bytes, used throughout the paper's primary
/// experiments (Tables 1-4, Figures 1 and 3-10).
pub const PAPER_LINE_SIZE: usize = 16;

/// The task-switch purge interval, in memory references, used by the paper
/// for its multiprogramming simulations (Table 3, Figures 3-10).
pub const PAPER_PURGE_INTERVAL: u64 = 20_000;

/// The purge interval the paper uses for the (short) M68000 traces.
pub const PAPER_PURGE_INTERVAL_M68000: u64 = 15_000;
