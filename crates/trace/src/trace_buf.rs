//! An in-memory trace buffer.

use crate::stats::{TraceCharacteristics, TraceCharacterizer};
use crate::MemoryAccess;
use serde::{Deserialize, Serialize};

/// An in-memory program address trace: a growable sequence of
/// [`MemoryAccess`]es.
///
/// Most of the workspace streams accesses lazily (the synthetic generators
/// are iterators); `Trace` is the materialized form, useful for tests, for
/// file round-trips and for re-running one workload through many cache
/// configurations without regenerating it.
///
/// ```
/// use smith85_trace::{Addr, MemoryAccess, Trace};
///
/// let trace: Trace = (0..8)
///     .map(|i| MemoryAccess::ifetch(Addr::new(i * 4), 4))
///     .collect();
/// assert_eq!(trace.len(), 8);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    accesses: Vec<MemoryAccess>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Creates an empty trace with room for `capacity` accesses.
    pub fn with_capacity(capacity: usize) -> Self {
        Trace {
            accesses: Vec::with_capacity(capacity),
        }
    }

    /// Appends one access.
    pub fn push(&mut self, access: MemoryAccess) {
        self.accesses.push(access);
    }

    /// Number of accesses in the trace.
    pub fn len(&self) -> usize {
        self.accesses.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.accesses.is_empty()
    }

    /// The accesses as a slice.
    pub fn as_slice(&self) -> &[MemoryAccess] {
        &self.accesses
    }

    /// Iterates over the accesses.
    pub fn iter(&self) -> std::slice::Iter<'_, MemoryAccess> {
        self.accesses.iter()
    }

    /// Consumes the trace and returns the underlying vector.
    pub fn into_inner(self) -> Vec<MemoryAccess> {
        self.accesses
    }

    /// Truncates the trace to at most `len` accesses, mirroring the paper's
    /// practice of simulating a fixed-length prefix of each trace.
    pub fn truncate(&mut self, len: usize) {
        self.accesses.truncate(len);
    }

    /// Computes the paper's Table 2 characteristics for this trace.
    pub fn characteristics(&self) -> TraceCharacteristics {
        let mut c = TraceCharacterizer::new();
        for access in &self.accesses {
            c.observe(*access);
        }
        c.finish()
    }
}

impl FromIterator<MemoryAccess> for Trace {
    fn from_iter<I: IntoIterator<Item = MemoryAccess>>(iter: I) -> Self {
        Trace {
            accesses: iter.into_iter().collect(),
        }
    }
}

impl Extend<MemoryAccess> for Trace {
    fn extend<I: IntoIterator<Item = MemoryAccess>>(&mut self, iter: I) {
        self.accesses.extend(iter);
    }
}

impl IntoIterator for Trace {
    type Item = MemoryAccess;
    type IntoIter = std::vec::IntoIter<MemoryAccess>;

    fn into_iter(self) -> Self::IntoIter {
        self.accesses.into_iter()
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a MemoryAccess;
    type IntoIter = std::slice::Iter<'a, MemoryAccess>;

    fn into_iter(self) -> Self::IntoIter {
        self.accesses.iter()
    }
}

impl From<Vec<MemoryAccess>> for Trace {
    fn from(accesses: Vec<MemoryAccess>) -> Self {
        Trace { accesses }
    }
}

impl AsRef<[MemoryAccess]> for Trace {
    fn as_ref(&self) -> &[MemoryAccess] {
        &self.accesses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Addr;

    fn sample() -> Trace {
        vec![
            MemoryAccess::ifetch(Addr::new(0x0), 4),
            MemoryAccess::ifetch(Addr::new(0x4), 4),
            MemoryAccess::read(Addr::new(0x100), 4),
            MemoryAccess::write(Addr::new(0x104), 4),
        ]
        .into()
    }

    #[test]
    fn collect_and_len() {
        let t = sample();
        assert_eq!(t.len(), 4);
        assert!(!t.is_empty());
        assert_eq!(t.as_slice().len(), 4);
    }

    #[test]
    fn truncate_keeps_prefix() {
        let mut t = sample();
        t.truncate(2);
        assert_eq!(t.len(), 2);
        assert!(t.iter().all(|a| a.kind.is_ifetch()));
        t.truncate(100); // longer than the trace: no-op
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn extend_appends() {
        let mut t = Trace::new();
        t.extend(sample());
        t.extend(sample());
        assert_eq!(t.len(), 8);
    }

    #[test]
    fn characteristics_counts_kinds() {
        let stats = sample().characteristics();
        assert_eq!(stats.total_refs(), 4);
        assert_eq!(stats.ifetches(), 2);
        assert_eq!(stats.reads(), 1);
        assert_eq!(stats.writes(), 1);
    }
}
