//! Design-architecture emulation: the memory interface (§1.1).
//!
//! A trace records *processor* references, but what reaches the cache (or
//! memory) depends on the width and "memory" of the interface: "fetching
//! two four-byte instructions requires 4, 2 or 1 memory reference,
//! depending on whether the memory interface is 2, 4 or 8 bytes wide",
//! and fewer still if the interface *remembers* the unit it already holds
//! (the VAX 11/780's instruction buffer). The paper insists a trace should
//! carry only the functional architecture and the design architecture
//! "should and usually can be emulated in the simulator" — this adapter is
//! that emulation.

use crate::arch::InterfaceSpec;
use crate::{Addr, MemoryAccess};
use std::collections::VecDeque;

/// Rewrites a processor-reference stream into the memory-reference stream
/// a given interface would produce.
///
/// Each access is split into one reference per interface-width unit it
/// covers; with a remembering interface, a sequential re-reference to the
/// unit most recently fetched on the same path (instruction or data) is
/// absorbed. Writes always reach memory.
///
/// ```
/// use smith85_trace::interface::InterfaceAdapter;
/// use smith85_trace::{Addr, InterfaceSpec, MemoryAccess};
///
/// // Two sequential 4-byte fetches through an 8-byte interface that
/// // remembers: one memory reference (the paper's §1.1 example).
/// let fetches = vec![
///     MemoryAccess::ifetch(Addr::new(0x100), 4),
///     MemoryAccess::ifetch(Addr::new(0x104), 4),
/// ];
/// let out: Vec<_> =
///     InterfaceAdapter::new(fetches.into_iter(), InterfaceSpec::new(8, true)).collect();
/// assert_eq!(out.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct InterfaceAdapter<I> {
    inner: I,
    spec: InterfaceSpec,
    pending: VecDeque<MemoryAccess>,
    last_instr_unit: Option<u64>,
    last_data_unit: Option<u64>,
}

impl<I: Iterator<Item = MemoryAccess>> InterfaceAdapter<I> {
    /// Wraps `inner` with the given interface.
    ///
    /// # Panics
    ///
    /// Panics if the interface width is not a positive power of two.
    pub fn new(inner: I, spec: InterfaceSpec) -> Self {
        assert!(
            spec.width_bytes > 0 && spec.width_bytes.is_power_of_two(),
            "interface width must be a positive power of two, got {}",
            spec.width_bytes
        );
        InterfaceAdapter {
            inner,
            spec,
            pending: VecDeque::new(),
            last_instr_unit: None,
            last_data_unit: None,
        }
    }

    /// The interface being emulated.
    pub fn spec(&self) -> InterfaceSpec {
        self.spec
    }

    fn expand(&mut self, access: MemoryAccess) {
        let width = self.spec.width_bytes as u64;
        let first = access.addr.get() / width;
        let last = (access.addr.get() + access.size.max(1) as u64 - 1) / width;
        let remembered = if access.kind.is_ifetch() {
            &mut self.last_instr_unit
        } else {
            &mut self.last_data_unit
        };
        for unit in first..=last {
            // Writes always reach memory; reads/fetches can be absorbed by
            // a remembering interface.
            if !access.kind.is_write() && self.spec.remembers && *remembered == Some(unit) {
                continue;
            }
            if !access.kind.is_write() {
                *remembered = Some(unit);
            }
            self.pending.push_back(MemoryAccess::new(
                access.kind,
                Addr::new(unit * width),
                self.spec.width_bytes,
            ));
        }
    }
}

impl<I: Iterator<Item = MemoryAccess>> Iterator for InterfaceAdapter<I> {
    type Item = MemoryAccess;

    fn next(&mut self) -> Option<MemoryAccess> {
        loop {
            if let Some(out) = self.pending.pop_front() {
                return Some(out);
            }
            let access = self.inner.next()?;
            self.expand(access);
        }
    }
}

/// Counts how many memory references the interface produces for a
/// reference stream — §1.1's "fetches per instruction" arithmetic.
pub fn memory_references<I>(stream: I, spec: InterfaceSpec) -> u64
where
    I: Iterator<Item = MemoryAccess>,
{
    InterfaceAdapter::new(stream, spec).count() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AccessKind;

    fn ifetch(addr: u64, size: u8) -> MemoryAccess {
        MemoryAccess::ifetch(Addr::new(addr), size)
    }

    /// The paper's worked example: two 4-byte instructions through 2-, 4-
    /// and 8-byte interfaces (no memory) take 4, 2 and 1 references... the
    /// 8-byte case needs memory to merge; without it each fetch re-reads.
    #[test]
    fn paper_width_arithmetic() {
        let two_fetches = || vec![ifetch(0x100, 4), ifetch(0x104, 4)].into_iter();
        assert_eq!(memory_references(two_fetches(), InterfaceSpec::new(2, false)), 4);
        assert_eq!(memory_references(two_fetches(), InterfaceSpec::new(4, false)), 2);
        assert_eq!(memory_references(two_fetches(), InterfaceSpec::new(8, false)), 2);
        assert_eq!(memory_references(two_fetches(), InterfaceSpec::new(8, true)), 1);
    }

    #[test]
    fn straddling_access_is_split() {
        let one = std::iter::once(ifetch(0x106, 4)); // crosses an 8-byte boundary
        let out: Vec<_> = InterfaceAdapter::new(one, InterfaceSpec::new(8, false)).collect();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].addr, Addr::new(0x100));
        assert_eq!(out[1].addr, Addr::new(0x108));
        assert!(out.iter().all(|a| a.size == 8));
    }

    #[test]
    fn memoryless_interface_refetches() {
        // Same byte twice through a remembering vs forgetting interface.
        let twice = || vec![ifetch(0x10, 2), ifetch(0x12, 2)].into_iter();
        assert_eq!(memory_references(twice(), InterfaceSpec::new(4, false)), 2);
        assert_eq!(memory_references(twice(), InterfaceSpec::new(4, true)), 1);
    }

    #[test]
    fn instruction_and_data_paths_remember_independently() {
        let stream = vec![
            ifetch(0x100, 4),
            MemoryAccess::read(Addr::new(0x100), 4), // same unit, data path
            ifetch(0x100, 4),                        // instruction path still warm
        ]
        .into_iter();
        let out: Vec<_> = InterfaceAdapter::new(stream, InterfaceSpec::new(8, true)).collect();
        // ifetch fetches, read fetches (its own path), second ifetch absorbed.
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].kind, AccessKind::InstructionFetch);
        assert_eq!(out[1].kind, AccessKind::Read);
    }

    #[test]
    fn writes_always_reach_memory() {
        let stream = vec![
            MemoryAccess::write(Addr::new(0x20), 4),
            MemoryAccess::write(Addr::new(0x20), 4),
        ]
        .into_iter();
        assert_eq!(memory_references(stream, InterfaceSpec::new(8, true)), 2);
    }

    #[test]
    fn non_sequential_fetch_breaks_memory() {
        let stream = vec![ifetch(0x00, 4), ifetch(0x100, 4), ifetch(0x04, 4)].into_iter();
        // 0x00 fetch, 0x100 fetch, then 0x04: unit 0 is no longer
        // remembered (0x100's unit replaced it).
        assert_eq!(memory_references(stream, InterfaceSpec::new(8, true)), 3);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_width_rejected() {
        let _ = InterfaceAdapter::new(std::iter::empty(), InterfaceSpec::new(3, false));
    }
}
