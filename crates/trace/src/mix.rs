//! The round-robin multiprogramming mixer.
//!
//! For Table 3 and Figures 3-10 the paper runs several traces "through the
//! simulator in a round robin manner, switching and purging every 20,000
//! memory references". [`RoundRobinMix`] reproduces the switching half of
//! that: it interleaves member streams in fixed quanta, placing each member
//! in a disjoint address-space slice so distinct programs never falsely
//! share cache lines. The *purging* half is a cache-simulator concern (the
//! simulator purges on its own reference counter), so the two effects can
//! also be studied independently.

use crate::{MemoryAccess, PAPER_PURGE_INTERVAL};

/// Default address-space slice granted to each member of a mix (1 TiB,
/// vastly larger than any traced program's footprint).
pub const DEFAULT_ADDRESS_STRIDE: u64 = 1 << 40;

/// Interleaves several trace streams round-robin with a fixed quantum.
///
/// Exhausted members drop out of the rotation; the mix ends when every
/// member is exhausted. Infinite members (synthetic generators) simply
/// rotate forever.
///
/// ```
/// use smith85_trace::mix::RoundRobinMix;
/// use smith85_trace::{Addr, MemoryAccess};
///
/// let a: Vec<_> = (0..4u64).map(|i| MemoryAccess::ifetch(Addr::new(i * 4), 4)).collect();
/// let b: Vec<_> = (0..4u64).map(|i| MemoryAccess::read(Addr::new(i * 8), 4)).collect();
/// let mix = RoundRobinMix::new(vec![a.into_iter(), b.into_iter()], 2);
/// let kinds: Vec<_> = mix.map(|acc| acc.kind.mnemonic()).collect();
/// assert_eq!(kinds, vec!['I', 'I', 'R', 'R', 'I', 'I', 'R', 'R']);
/// ```
#[derive(Debug, Clone)]
pub struct RoundRobinMix<I> {
    members: Vec<Member<I>>,
    quantum: u64,
    current: usize,
    used_in_quantum: u64,
    switches: u64,
}

#[derive(Debug, Clone)]
struct Member<I> {
    stream: I,
    offset: u64,
    done: bool,
}

impl<I: Iterator<Item = MemoryAccess>> RoundRobinMix<I> {
    /// Creates a mix with the paper's default address-space striding.
    ///
    /// # Panics
    ///
    /// Panics if `quantum` is zero or `streams` is empty.
    pub fn new(streams: Vec<I>, quantum: u64) -> Self {
        Self::with_address_stride(streams, quantum, DEFAULT_ADDRESS_STRIDE)
    }

    /// Creates a mix using the paper's 20,000-reference quantum.
    pub fn paper(streams: Vec<I>) -> Self {
        Self::new(streams, PAPER_PURGE_INTERVAL)
    }

    /// Creates a mix granting each member an address slice of
    /// `address_stride` bytes (member `k` is relocated by `k * stride`).
    ///
    /// # Panics
    ///
    /// Panics if `quantum` is zero or `streams` is empty.
    pub fn with_address_stride(streams: Vec<I>, quantum: u64, address_stride: u64) -> Self {
        assert!(quantum > 0, "mix quantum must be positive");
        assert!(!streams.is_empty(), "a mix needs at least one stream");
        let members = streams
            .into_iter()
            .enumerate()
            .map(|(k, stream)| Member {
                stream,
                offset: k as u64 * address_stride,
                done: false,
            })
            .collect();
        RoundRobinMix {
            members,
            quantum,
            current: 0,
            used_in_quantum: 0,
            switches: 0,
        }
    }

    /// Number of task switches performed so far.
    pub fn switches(&self) -> u64 {
        self.switches
    }

    /// Number of member streams still live.
    pub fn live_members(&self) -> usize {
        self.members.iter().filter(|m| !m.done).count()
    }

    /// Rotates `current` to the next live member, if any. Returns `false`
    /// when every member is exhausted.
    fn rotate(&mut self) -> bool {
        if self.live_members() == 0 {
            return false;
        }
        loop {
            self.current = (self.current + 1) % self.members.len();
            if !self.members[self.current].done {
                self.used_in_quantum = 0;
                self.switches += 1;
                return true;
            }
        }
    }
}

impl<I: Iterator<Item = MemoryAccess>> Iterator for RoundRobinMix<I> {
    type Item = MemoryAccess;

    fn next(&mut self) -> Option<MemoryAccess> {
        loop {
            if self.members.iter().all(|m| m.done) {
                return None;
            }
            if self.members[self.current].done || self.used_in_quantum >= self.quantum {
                if !self.rotate() {
                    return None;
                }
                continue;
            }
            let member = &mut self.members[self.current];
            match member.stream.next() {
                Some(acc) => {
                    self.used_in_quantum += 1;
                    return Some(acc.relocated(member.offset));
                }
                None => {
                    member.done = true;
                    // Loop around to rotate to the next live member.
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Addr;

    fn reads(n: u64, base: u64) -> impl Iterator<Item = MemoryAccess> {
        (0..n).map(move |i| MemoryAccess::read(Addr::new(base + i), 1))
    }

    #[test]
    fn members_get_disjoint_address_slices() {
        let mix = RoundRobinMix::new(vec![reads(3, 0), reads(3, 0)], 1);
        let addrs: Vec<u64> = mix.map(|a| a.addr.get()).collect();
        // Alternating quanta of 1 ref: slices 0 and 1<<40.
        assert_eq!(
            addrs,
            vec![
                0,
                DEFAULT_ADDRESS_STRIDE,
                1,
                DEFAULT_ADDRESS_STRIDE + 1,
                2,
                DEFAULT_ADDRESS_STRIDE + 2
            ]
        );
    }

    #[test]
    fn exhausted_members_drop_out() {
        let mix = RoundRobinMix::new(vec![reads(1, 0), reads(5, 100)], 2);
        let n = mix.count();
        assert_eq!(n, 6);
    }

    #[test]
    fn total_refs_preserved() {
        let mix = RoundRobinMix::new(vec![reads(7, 0), reads(11, 0), reads(13, 0)], 4);
        assert_eq!(mix.count(), 31);
    }

    #[test]
    fn switch_counter_counts_rotations() {
        let mut mix = RoundRobinMix::new(vec![reads(4, 0), reads(4, 0)], 2);
        assert_eq!(mix.switches(), 0);
        let _ = mix.by_ref().take(5).count(); // quanta: A2, B2, then A again
        assert!(mix.switches() >= 2);
    }

    #[test]
    fn single_member_mix_is_identity_modulo_offset() {
        let mix = RoundRobinMix::new(vec![reads(5, 10)], 2);
        let addrs: Vec<u64> = mix.map(|a| a.addr.get()).collect();
        assert_eq!(addrs, vec![10, 11, 12, 13, 14]);
    }

    #[test]
    #[should_panic(expected = "quantum")]
    fn zero_quantum_rejected() {
        let _ = RoundRobinMix::new(vec![reads(1, 0)], 0);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_mix_rejected() {
        let streams: Vec<std::vec::IntoIter<MemoryAccess>> = vec![];
        let _ = RoundRobinMix::new(streams, 1);
    }
}
