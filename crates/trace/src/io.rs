//! On-disk trace formats.
//!
//! Two formats are supported:
//!
//! * **Text** — one access per line, `<kind> <hex-addr> <size>`, where
//!   `<kind>` is `I`, `R` or `W` (or the Dinero-style digits `2`, `0`, `1`).
//!   Blank lines and `#` comments are ignored. Human-readable; good for
//!   small fixtures.
//! * **Binary** — a 8-byte header (`b"S85T"` magic, format version, access
//!   count implied by length) followed by 10 bytes per access (u8 kind,
//!   u8 size, u64 little-endian address). Compact; good for large traces.
//!
//! ```
//! use smith85_trace::io::{read_text, write_text};
//! use smith85_trace::{Addr, MemoryAccess, Trace};
//!
//! # fn main() -> Result<(), smith85_trace::TraceIoError> {
//! let trace: Trace = vec![MemoryAccess::ifetch(Addr::new(0x40), 4)].into();
//! let mut buf = Vec::new();
//! write_text(&mut buf, &trace)?;
//! let back = read_text(buf.as_slice())?;
//! assert_eq!(back, trace);
//! # Ok(())
//! # }
//! ```

use crate::error::{ParseTraceError, TraceIoError};
use crate::{AccessKind, Addr, MemoryAccess, Trace};
use std::io::{BufRead, BufReader, Read, Write};

/// Magic bytes opening a binary trace.
pub const BINARY_MAGIC: [u8; 4] = *b"S85T";
/// Current binary format version.
pub const BINARY_VERSION: u8 = 1;

/// Writes a trace in the text format.
///
/// # Errors
///
/// Returns an error if the underlying writer fails. A `&mut` reference to a
/// writer can be passed where a writer is expected.
pub fn write_text<W: Write>(mut w: W, trace: &Trace) -> Result<(), TraceIoError> {
    for access in trace {
        writeln!(
            w,
            "{} {:x} {}",
            access.kind.mnemonic(),
            access.addr,
            access.size
        )?;
    }
    Ok(())
}

/// Writes a trace in the classic Dinero input format: one `label address`
/// pair per line, labels `0` (read), `1` (write), `2` (instruction
/// fetch), addresses in hex, no size column. Lossy for access sizes
/// (Dinero carries none); [`read_text`] reads it back with sizes
/// defaulted to 4.
///
/// # Errors
///
/// Returns an error if the underlying writer fails.
pub fn write_dinero<W: Write>(mut w: W, trace: &Trace) -> Result<(), TraceIoError> {
    for access in trace {
        let label = match access.kind {
            AccessKind::Read => 0,
            AccessKind::Write => 1,
            AccessKind::InstructionFetch => 2,
        };
        writeln!(w, "{} {:x}", label, access.addr)?;
    }
    Ok(())
}

/// Reads a trace in the text format.
///
/// # Errors
///
/// Returns an error if the reader fails or a line cannot be parsed; parse
/// errors carry the 1-based line number.
pub fn read_text<R: Read>(r: R) -> Result<Trace, TraceIoError> {
    let reader = BufReader::new(r);
    let mut trace = Trace::new();
    for (idx, line) in reader.lines().enumerate() {
        let lineno = idx as u64 + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        trace.push(parse_line(line, lineno)?);
    }
    Ok(trace)
}

fn parse_line(line: &str, lineno: u64) -> Result<MemoryAccess, ParseTraceError> {
    let mut fields = line.split_whitespace();
    let kind_tok = fields
        .next()
        .ok_or_else(|| ParseTraceError::new(lineno, "missing access kind"))?;
    let kind = parse_kind(kind_tok)
        .ok_or_else(|| ParseTraceError::new(lineno, format!("bad access kind {kind_tok:?}")))?;
    let addr_tok = fields
        .next()
        .ok_or_else(|| ParseTraceError::new(lineno, "missing address"))?;
    let addr_str = addr_tok.trim_start_matches("0x");
    let addr = u64::from_str_radix(addr_str, 16)
        .map_err(|e| ParseTraceError::new(lineno, format!("bad address {addr_tok:?}: {e}")))?;
    let size = match fields.next() {
        // Size column is optional; Dinero traces omit it. Default to 4.
        None => 4,
        Some(tok) => tok
            .parse::<u8>()
            .map_err(|e| ParseTraceError::new(lineno, format!("bad size {tok:?}: {e}")))?,
    };
    if fields.next().is_some() {
        return Err(ParseTraceError::new(lineno, "trailing fields"));
    }
    if size == 0 {
        return Err(ParseTraceError::new(lineno, "access size must be nonzero"));
    }
    Ok(MemoryAccess::new(kind, Addr::new(addr), size))
}

fn parse_kind(tok: &str) -> Option<AccessKind> {
    match tok {
        "I" | "i" | "2" => Some(AccessKind::InstructionFetch),
        "R" | "r" | "0" => Some(AccessKind::Read),
        "W" | "w" | "1" => Some(AccessKind::Write),
        _ => None,
    }
}

/// Writes a trace in the binary format.
///
/// # Errors
///
/// Returns an error if the underlying writer fails.
pub fn write_binary<W: Write>(mut w: W, trace: &Trace) -> Result<(), TraceIoError> {
    w.write_all(&BINARY_MAGIC)?;
    w.write_all(&[BINARY_VERSION, 0, 0, 0])?;
    for access in trace {
        let mut rec = [0u8; 10];
        rec[0] = access.kind.index() as u8;
        rec[1] = access.size;
        rec[2..].copy_from_slice(&access.addr.get().to_le_bytes());
        w.write_all(&rec)?;
    }
    Ok(())
}

/// Reads a trace in the binary format.
///
/// # Errors
///
/// Returns [`TraceIoError::BadHeader`] for a wrong magic/version, a parse
/// error for a corrupt record, or an I/O error from the reader.
pub fn read_binary<R: Read>(mut r: R) -> Result<Trace, TraceIoError> {
    let mut header = [0u8; 8];
    r.read_exact(&mut header)?;
    if header[..4] != BINARY_MAGIC {
        return Err(TraceIoError::BadHeader {
            found: format!("{:02x?}", &header[..4]),
        });
    }
    if header[4] != BINARY_VERSION {
        return Err(TraceIoError::BadHeader {
            found: format!("version {}", header[4]),
        });
    }
    let mut trace = Trace::new();
    let mut rec = [0u8; 10];
    let mut n: u64 = 0;
    loop {
        if !read_record(&mut r, &mut rec)? { break }
        n += 1;
        let kind = match rec[0] {
            0 => AccessKind::InstructionFetch,
            1 => AccessKind::Read,
            2 => AccessKind::Write,
            other => {
                return Err(
                    ParseTraceError::new(n, format!("bad binary access kind {other}")).into(),
                )
            }
        };
        let size = rec[1];
        if size == 0 {
            return Err(ParseTraceError::new(n, "access size must be nonzero").into());
        }
        let addr = u64::from_le_bytes(rec[2..].try_into().expect("slice is 8 bytes"));
        trace.push(MemoryAccess::new(kind, Addr::new(addr), size));
    }
    Ok(trace)
}

/// Reads one 10-byte record; `Ok(false)` at clean EOF.
fn read_record<R: Read>(r: &mut R, rec: &mut [u8; 10]) -> Result<bool, TraceIoError> {
    let mut filled = 0;
    while filled < rec.len() {
        let n = r.read(&mut rec[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(false);
            }
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "truncated binary trace record",
            )
            .into());
        }
        filled += n;
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        vec![
            MemoryAccess::ifetch(Addr::new(0x1000), 4),
            MemoryAccess::read(Addr::new(0xdead_beef), 8),
            MemoryAccess::write(Addr::new(0x0), 1),
        ]
        .into()
    }

    #[test]
    fn text_roundtrip() {
        let mut buf = Vec::new();
        write_text(&mut buf, &sample()).unwrap();
        assert_eq!(read_text(buf.as_slice()).unwrap(), sample());
    }

    #[test]
    fn binary_roundtrip() {
        let mut buf = Vec::new();
        write_binary(&mut buf, &sample()).unwrap();
        assert_eq!(read_binary(buf.as_slice()).unwrap(), sample());
    }

    #[test]
    fn text_accepts_comments_blank_lines_and_dinero_digits() {
        let text = "# a comment\n\n2 40\n0 100 4\n1 104 4\n";
        let t = read_text(text.as_bytes()).unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t.as_slice()[0].kind, AccessKind::InstructionFetch);
        assert_eq!(t.as_slice()[0].size, 4); // defaulted
        assert_eq!(t.as_slice()[1].kind, AccessKind::Read);
        assert_eq!(t.as_slice()[2].kind, AccessKind::Write);
    }

    #[test]
    fn dinero_format_roundtrips_modulo_sizes() {
        let mut buf = Vec::new();
        write_dinero(&mut buf, &sample()).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert_eq!(text.lines().count(), 3);
        assert!(text.starts_with("2 1000"));
        let back = read_text(buf.as_slice()).unwrap();
        assert_eq!(back.len(), sample().len());
        for (a, b) in back.iter().zip(sample().iter()) {
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.addr, b.addr);
            assert_eq!(a.size, 4); // sizes defaulted
        }
    }

    #[test]
    fn text_accepts_0x_prefix() {
        let t = read_text("I 0xff 4\n".as_bytes()).unwrap();
        assert_eq!(t.as_slice()[0].addr, Addr::new(0xff));
    }

    #[test]
    fn text_rejects_bad_kind_with_line_number() {
        let err = read_text("I 40 4\nQ 50 4\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn text_rejects_zero_size_and_trailing_fields() {
        assert!(read_text("I 40 0\n".as_bytes()).is_err());
        assert!(read_text("I 40 4 junk\n".as_bytes()).is_err());
        assert!(read_text("I\n".as_bytes()).is_err());
        assert!(read_text("I zz 4\n".as_bytes()).is_err());
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let err = read_binary(&b"NOPE\x01\0\0\0"[..]).unwrap_err();
        assert!(matches!(err, TraceIoError::BadHeader { .. }));
    }

    #[test]
    fn binary_rejects_bad_version() {
        let err = read_binary(&b"S85T\x09\0\0\0"[..]).unwrap_err();
        assert!(matches!(err, TraceIoError::BadHeader { .. }));
    }

    #[test]
    fn binary_rejects_truncated_record() {
        let mut buf = Vec::new();
        write_binary(&mut buf, &sample()).unwrap();
        buf.pop();
        assert!(read_binary(buf.as_slice()).is_err());
    }

    #[test]
    fn empty_trace_roundtrips_both_formats() {
        let empty = Trace::new();
        let mut buf = Vec::new();
        write_text(&mut buf, &empty).unwrap();
        assert_eq!(read_text(buf.as_slice()).unwrap(), empty);
        buf.clear();
        write_binary(&mut buf, &empty).unwrap();
        assert_eq!(read_binary(buf.as_slice()).unwrap(), empty);
    }
}
