//! On-disk trace formats.
//!
//! Two formats are supported:
//!
//! * **Text** — one access per line, `<kind> <hex-addr> <size>`, where
//!   `<kind>` is `I`, `R` or `W` (or the Dinero-style digits `2`, `0`, `1`).
//!   Blank lines and `#` comments are ignored. Human-readable; good for
//!   small fixtures.
//! * **Binary** — a 8-byte header (`b"S85T"` magic, format version, access
//!   count implied by length) followed by 10 bytes per access (u8 kind,
//!   u8 size, u64 little-endian address). Compact; good for large traces.
//!
//! ```
//! use smith85_trace::io::{read_text, write_text};
//! use smith85_trace::{Addr, MemoryAccess, Trace};
//!
//! # fn main() -> Result<(), smith85_trace::TraceIoError> {
//! let trace: Trace = vec![MemoryAccess::ifetch(Addr::new(0x40), 4)].into();
//! let mut buf = Vec::new();
//! write_text(&mut buf, &trace)?;
//! let back = read_text(buf.as_slice())?;
//! assert_eq!(back, trace);
//! # Ok(())
//! # }
//! ```

use crate::error::{ParseTraceError, TraceIoError};
use crate::{AccessKind, Addr, MemoryAccess, Trace};
use std::io::{BufRead, BufReader, Read, Write};

/// Magic bytes opening a binary trace.
pub const BINARY_MAGIC: [u8; 4] = *b"S85T";
/// Current binary format version.
pub const BINARY_VERSION: u8 = 1;
/// Largest access size, in bytes, any supported machine issues. The widest
/// real reference in the paper's trace set is 8 bytes (IBM 370 doubleword);
/// 64 leaves headroom for vector machines while still catching corrupt
/// size bytes.
pub const MAX_ACCESS_SIZE: u8 = 64;

/// Writes a trace in the text format.
///
/// # Errors
///
/// Returns an error if the underlying writer fails. A `&mut` reference to a
/// writer can be passed where a writer is expected.
pub fn write_text<W: Write>(mut w: W, trace: &Trace) -> Result<(), TraceIoError> {
    for access in trace {
        writeln!(
            w,
            "{} {:x} {}",
            access.kind.mnemonic(),
            access.addr,
            access.size
        )?;
    }
    Ok(())
}

/// Writes a trace in the classic Dinero input format: one `label address`
/// pair per line, labels `0` (read), `1` (write), `2` (instruction
/// fetch), addresses in hex, no size column. Lossy for access sizes
/// (Dinero carries none); [`read_text`] reads it back with sizes
/// defaulted to 4.
///
/// # Errors
///
/// Returns an error if the underlying writer fails.
pub fn write_dinero<W: Write>(mut w: W, trace: &Trace) -> Result<(), TraceIoError> {
    for access in trace {
        let label = match access.kind {
            AccessKind::Read => 0,
            AccessKind::Write => 1,
            AccessKind::InstructionFetch => 2,
        };
        writeln!(w, "{} {:x}", label, access.addr)?;
    }
    Ok(())
}

/// Reads a trace in the text format.
///
/// # Errors
///
/// Returns an error if the reader fails or a line cannot be parsed; parse
/// errors carry the 1-based line number.
pub fn read_text<R: Read>(r: R) -> Result<Trace, TraceIoError> {
    let reader = BufReader::new(r);
    let mut trace = Trace::new();
    for (idx, line) in reader.lines().enumerate() {
        let lineno = idx as u64 + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        trace.push(parse_line(line, lineno)?);
    }
    Ok(trace)
}

fn parse_line(line: &str, lineno: u64) -> Result<MemoryAccess, ParseTraceError> {
    let mut fields = line.split_whitespace();
    let kind_tok = fields
        .next()
        .ok_or_else(|| ParseTraceError::new(lineno, "missing access kind"))?;
    let kind = parse_kind(kind_tok)
        .ok_or_else(|| ParseTraceError::new(lineno, format!("bad access kind {kind_tok:?}")))?;
    let addr_tok = fields
        .next()
        .ok_or_else(|| ParseTraceError::new(lineno, "missing address"))?;
    let addr_str = addr_tok.trim_start_matches("0x");
    let addr = u64::from_str_radix(addr_str, 16)
        .map_err(|e| ParseTraceError::new(lineno, format!("bad address {addr_tok:?}: {e}")))?;
    let size = match fields.next() {
        // Size column is optional; Dinero traces omit it. Default to 4.
        None => 4,
        Some(tok) => tok
            .parse::<u8>()
            .map_err(|e| ParseTraceError::new(lineno, format!("bad size {tok:?}: {e}")))?,
    };
    if fields.next().is_some() {
        return Err(ParseTraceError::new(lineno, "trailing fields"));
    }
    if size == 0 || size > MAX_ACCESS_SIZE {
        return Err(ParseTraceError::new(
            lineno,
            format!("access size must be in 1..={MAX_ACCESS_SIZE}, got {size}"),
        ));
    }
    Ok(MemoryAccess::new(kind, Addr::new(addr), size))
}

fn parse_kind(tok: &str) -> Option<AccessKind> {
    match tok {
        "I" | "i" | "2" => Some(AccessKind::InstructionFetch),
        "R" | "r" | "0" => Some(AccessKind::Read),
        "W" | "w" | "1" => Some(AccessKind::Write),
        _ => None,
    }
}

/// Writes a trace in the binary format.
///
/// # Errors
///
/// Returns an error if the underlying writer fails.
pub fn write_binary<W: Write>(mut w: W, trace: &Trace) -> Result<(), TraceIoError> {
    w.write_all(&BINARY_MAGIC)?;
    w.write_all(&[BINARY_VERSION, 0, 0, 0])?;
    for access in trace {
        let mut rec = [0u8; 10];
        rec[0] = access.kind.index() as u8;
        rec[1] = access.size;
        rec[2..].copy_from_slice(&access.addr.get().to_le_bytes());
        w.write_all(&rec)?;
    }
    Ok(())
}

/// Reads a trace in the binary format.
///
/// Never panics, whatever the bytes: every way a file can be malformed maps
/// to a typed [`TraceIoError`] variant —
///
/// * wrong magic, unsupported version, or a header cut short:
///   [`TraceIoError::BadHeader`],
/// * a file ending mid-record (truncation, or trailing garbage shorter
///   than a record): [`TraceIoError::Truncated`],
/// * a kind byte outside `0..=2`: [`TraceIoError::BadKind`],
/// * a zero or larger-than-[`MAX_ACCESS_SIZE`] size byte:
///   [`TraceIoError::BadSize`].
///
/// # Errors
///
/// As above, plus [`TraceIoError::Io`] for reader failures.
pub fn read_binary<R: Read>(mut r: R) -> Result<Trace, TraceIoError> {
    let mut header = [0u8; 8];
    let got = read_full(&mut r, &mut header)?;
    if got < header.len() {
        return Err(TraceIoError::BadHeader {
            found: format!("{got}-byte file"),
        });
    }
    if header[..4] != BINARY_MAGIC {
        return Err(TraceIoError::BadHeader {
            found: format!("{:02x?}", &header[..4]),
        });
    }
    if header[4] != BINARY_VERSION {
        return Err(TraceIoError::BadHeader {
            found: format!("version {}", header[4]),
        });
    }
    let mut trace = Trace::new();
    let mut rec = [0u8; 10];
    let mut n: u64 = 0;
    loop {
        let got = read_full(&mut r, &mut rec)?;
        if got == 0 {
            break;
        }
        n += 1;
        if got < rec.len() {
            return Err(TraceIoError::Truncated {
                record: n,
                got,
                expected: rec.len(),
            });
        }
        let kind = match rec[0] {
            0 => AccessKind::InstructionFetch,
            1 => AccessKind::Read,
            2 => AccessKind::Write,
            other => return Err(TraceIoError::BadKind { record: n, found: other }),
        };
        let size = rec[1];
        if size == 0 || size > MAX_ACCESS_SIZE {
            return Err(TraceIoError::BadSize { record: n, found: size });
        }
        let mut addr_bytes = [0u8; 8];
        addr_bytes.copy_from_slice(&rec[2..]);
        let addr = u64::from_le_bytes(addr_bytes);
        trace.push(MemoryAccess::new(kind, Addr::new(addr), size));
    }
    Ok(trace)
}

/// Fills `buf` from `r` as far as the stream allows, returning how many
/// bytes were read (less than `buf.len()` only at EOF).
fn read_full<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<usize, TraceIoError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    Ok(filled)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        vec![
            MemoryAccess::ifetch(Addr::new(0x1000), 4),
            MemoryAccess::read(Addr::new(0xdead_beef), 8),
            MemoryAccess::write(Addr::new(0x0), 1),
        ]
        .into()
    }

    #[test]
    fn text_roundtrip() {
        let mut buf = Vec::new();
        write_text(&mut buf, &sample()).unwrap();
        assert_eq!(read_text(buf.as_slice()).unwrap(), sample());
    }

    #[test]
    fn binary_roundtrip() {
        let mut buf = Vec::new();
        write_binary(&mut buf, &sample()).unwrap();
        assert_eq!(read_binary(buf.as_slice()).unwrap(), sample());
    }

    #[test]
    fn text_accepts_comments_blank_lines_and_dinero_digits() {
        let text = "# a comment\n\n2 40\n0 100 4\n1 104 4\n";
        let t = read_text(text.as_bytes()).unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t.as_slice()[0].kind, AccessKind::InstructionFetch);
        assert_eq!(t.as_slice()[0].size, 4); // defaulted
        assert_eq!(t.as_slice()[1].kind, AccessKind::Read);
        assert_eq!(t.as_slice()[2].kind, AccessKind::Write);
    }

    #[test]
    fn dinero_format_roundtrips_modulo_sizes() {
        let mut buf = Vec::new();
        write_dinero(&mut buf, &sample()).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert_eq!(text.lines().count(), 3);
        assert!(text.starts_with("2 1000"));
        let back = read_text(buf.as_slice()).unwrap();
        assert_eq!(back.len(), sample().len());
        for (a, b) in back.iter().zip(sample().iter()) {
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.addr, b.addr);
            assert_eq!(a.size, 4); // sizes defaulted
        }
    }

    #[test]
    fn text_accepts_0x_prefix() {
        let t = read_text("I 0xff 4\n".as_bytes()).unwrap();
        assert_eq!(t.as_slice()[0].addr, Addr::new(0xff));
    }

    #[test]
    fn text_rejects_bad_kind_with_line_number() {
        let err = read_text("I 40 4\nQ 50 4\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn text_rejects_zero_size_and_trailing_fields() {
        assert!(read_text("I 40 0\n".as_bytes()).is_err());
        assert!(read_text("I 40 4 junk\n".as_bytes()).is_err());
        assert!(read_text("I\n".as_bytes()).is_err());
        assert!(read_text("I zz 4\n".as_bytes()).is_err());
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let err = read_binary(&b"NOPE\x01\0\0\0"[..]).unwrap_err();
        assert!(matches!(err, TraceIoError::BadHeader { .. }));
    }

    #[test]
    fn binary_rejects_bad_version() {
        let err = read_binary(&b"S85T\x09\0\0\0"[..]).unwrap_err();
        assert!(matches!(err, TraceIoError::BadHeader { .. }));
    }

    #[test]
    fn binary_rejects_truncated_record() {
        let mut buf = Vec::new();
        write_binary(&mut buf, &sample()).unwrap();
        buf.pop();
        let err = read_binary(buf.as_slice()).unwrap_err();
        match err {
            TraceIoError::Truncated {
                record,
                got,
                expected,
            } => {
                assert_eq!(record, 3);
                assert_eq!(got, 9);
                assert_eq!(expected, 10);
            }
            other => panic!("expected Truncated, got {other}"),
        }
    }

    #[test]
    fn binary_rejects_truncated_header() {
        let err = read_binary(&b"S85T\x01"[..]).unwrap_err();
        assert!(matches!(err, TraceIoError::BadHeader { .. }), "{err}");
        let err = read_binary(&b""[..]).unwrap_err();
        assert!(matches!(err, TraceIoError::BadHeader { .. }), "{err}");
    }

    #[test]
    fn binary_rejects_trailing_bytes() {
        let mut buf = Vec::new();
        write_binary(&mut buf, &sample()).unwrap();
        buf.extend_from_slice(b"junk");
        let err = read_binary(buf.as_slice()).unwrap_err();
        assert!(
            matches!(err, TraceIoError::Truncated { record: 4, got: 4, .. }),
            "{err}"
        );
    }

    #[test]
    fn binary_rejects_bad_kind_byte() {
        let mut buf = Vec::new();
        write_binary(&mut buf, &sample()).unwrap();
        buf[8] = 7; // kind byte of the first record
        let err = read_binary(buf.as_slice()).unwrap_err();
        assert!(
            matches!(err, TraceIoError::BadKind { record: 1, found: 7 }),
            "{err}"
        );
    }

    #[test]
    fn binary_rejects_absurd_size_field() {
        let mut buf = Vec::new();
        write_binary(&mut buf, &sample()).unwrap();
        for bad in [0u8, MAX_ACCESS_SIZE + 1, 255] {
            buf[9] = bad; // size byte of the first record
            let err = read_binary(buf.as_slice()).unwrap_err();
            assert!(
                matches!(err, TraceIoError::BadSize { record: 1, found } if found == bad),
                "{err}"
            );
        }
    }

    #[test]
    fn corrupt_binary_errors_never_panic() {
        // Feed every prefix of a valid file plus a byte-flipped variant;
        // any outcome but a panic is acceptable.
        let mut buf = Vec::new();
        write_binary(&mut buf, &sample()).unwrap();
        for len in 0..buf.len() {
            let _ = read_binary(&buf[..len]);
            let mut flipped = buf.clone();
            flipped[len] ^= 0xff;
            let _ = read_binary(flipped.as_slice());
        }
    }

    #[test]
    fn empty_trace_roundtrips_both_formats() {
        let empty = Trace::new();
        let mut buf = Vec::new();
        write_text(&mut buf, &empty).unwrap();
        assert_eq!(read_text(buf.as_slice()).unwrap(), empty);
        buf.clear();
        write_binary(&mut buf, &empty).unwrap();
        assert_eq!(read_binary(buf.as_slice()).unwrap(), empty);
    }
}
