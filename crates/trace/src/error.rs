//! Error types for trace parsing and I/O.

use std::error::Error;
use std::fmt;
use std::io;

/// An error produced while parsing a textual trace.
#[derive(Debug)]
pub struct ParseTraceError {
    line: u64,
    message: String,
}

impl ParseTraceError {
    pub(crate) fn new(line: u64, message: impl Into<String>) -> Self {
        ParseTraceError {
            line,
            message: message.into(),
        }
    }

    /// 1-based line number at which parsing failed.
    pub fn line(&self) -> u64 {
        self.line
    }

    /// Human-readable description of the problem.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace parse error at line {}: {}", self.line, self.message)
    }
}

impl Error for ParseTraceError {}

/// An error produced while reading or writing a trace.
#[derive(Debug)]
pub enum TraceIoError {
    /// The underlying reader or writer failed.
    Io(io::Error),
    /// The byte stream was not a valid trace in the expected format.
    Parse(ParseTraceError),
    /// A binary trace had a bad magic number or version.
    BadHeader {
        /// What was found instead of the expected header.
        found: String,
    },
    /// A binary trace ended in the middle of a record.
    Truncated {
        /// 1-based index of the incomplete record.
        record: u64,
        /// How many of the record's bytes were present.
        got: usize,
        /// How many bytes a full record needs.
        expected: usize,
    },
    /// A binary record carried an access-kind byte outside the format.
    BadKind {
        /// 1-based index of the offending record.
        record: u64,
        /// The kind byte found.
        found: u8,
    },
    /// A binary record carried a zero or absurdly large access size.
    BadSize {
        /// 1-based index of the offending record.
        record: u64,
        /// The size byte found.
        found: u8,
    },
}

impl fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "trace i/o failed: {e}"),
            TraceIoError::Parse(e) => e.fmt(f),
            TraceIoError::BadHeader { found } => {
                write!(f, "not a smith85 binary trace (found header {found:?})")
            }
            TraceIoError::Truncated {
                record,
                got,
                expected,
            } => write!(
                f,
                "binary trace truncated at record {record}: got {got} of {expected} bytes"
            ),
            TraceIoError::BadKind { record, found } => write!(
                f,
                "binary trace record {record}: bad access kind byte {found}"
            ),
            TraceIoError::BadSize { record, found } => write!(
                f,
                "binary trace record {record}: bad access size {found}"
            ),
        }
    }
}

impl Error for TraceIoError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TraceIoError::Io(e) => Some(e),
            TraceIoError::Parse(e) => Some(e),
            TraceIoError::BadHeader { .. }
            | TraceIoError::Truncated { .. }
            | TraceIoError::BadKind { .. }
            | TraceIoError::BadSize { .. } => None,
        }
    }
}

impl From<io::Error> for TraceIoError {
    fn from(e: io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

impl From<ParseTraceError> for TraceIoError {
    fn from(e: ParseTraceError) -> Self {
        TraceIoError::Parse(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_line_number() {
        let err = ParseTraceError::new(17, "bad kind");
        assert!(err.to_string().contains("line 17"));
        assert_eq!(err.line(), 17);
        assert_eq!(err.message(), "bad kind");
    }

    #[test]
    fn io_error_wraps_source() {
        let err: TraceIoError = io::Error::other("boom").into();
        assert!(err.to_string().contains("boom"));
        assert!(Error::source(&err).is_some());
    }
}
