//! Error types for trace parsing and I/O.

use std::error::Error;
use std::fmt;
use std::io;

/// An error produced while parsing a textual trace.
#[derive(Debug)]
pub struct ParseTraceError {
    line: u64,
    message: String,
}

impl ParseTraceError {
    pub(crate) fn new(line: u64, message: impl Into<String>) -> Self {
        ParseTraceError {
            line,
            message: message.into(),
        }
    }

    /// 1-based line number at which parsing failed.
    pub fn line(&self) -> u64 {
        self.line
    }

    /// Human-readable description of the problem.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace parse error at line {}: {}", self.line, self.message)
    }
}

impl Error for ParseTraceError {}

/// An error produced while reading or writing a trace.
#[derive(Debug)]
pub enum TraceIoError {
    /// The underlying reader or writer failed.
    Io(io::Error),
    /// The byte stream was not a valid trace in the expected format.
    Parse(ParseTraceError),
    /// A binary trace had a bad magic number or version.
    BadHeader {
        /// What was found instead of the expected header.
        found: String,
    },
}

impl fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "trace i/o failed: {e}"),
            TraceIoError::Parse(e) => e.fmt(f),
            TraceIoError::BadHeader { found } => {
                write!(f, "not a smith85 binary trace (found header {found:?})")
            }
        }
    }
}

impl Error for TraceIoError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TraceIoError::Io(e) => Some(e),
            TraceIoError::Parse(e) => Some(e),
            TraceIoError::BadHeader { .. } => None,
        }
    }
}

impl From<io::Error> for TraceIoError {
    fn from(e: io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

impl From<ParseTraceError> for TraceIoError {
    fn from(e: ParseTraceError) -> Self {
        TraceIoError::Parse(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_line_number() {
        let err = ParseTraceError::new(17, "bad kind");
        assert!(err.to_string().contains("line 17"));
        assert_eq!(err.line(), 17);
        assert_eq!(err.message(), "bad kind");
    }

    #[test]
    fn io_error_wraps_source() {
        let err: TraceIoError = io::Error::other("boom").into();
        assert!(err.to_string().contains("boom"));
        assert!(Error::source(&err).is_some());
    }
}
