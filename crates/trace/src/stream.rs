//! Streaming adapters over access iterators.
//!
//! A *trace stream* is any `Iterator<Item = MemoryAccess>`; the synthetic
//! generators in `smith85-synth` are infinite streams, file readers are
//! finite ones. This module provides the small adapter vocabulary the
//! experiment harness uses on top of the standard iterator combinators.

use crate::{MemoryAccess, Trace};

/// Extension methods for trace streams.
///
/// Implemented for every `Iterator<Item = MemoryAccess>`.
///
/// ```
/// use smith85_trace::stream::StreamExt;
/// use smith85_trace::{Addr, MemoryAccess};
///
/// let trace = (0..4)
///     .map(|i| MemoryAccess::ifetch(Addr::new(i * 4), 4))
///     .relocated(0x1000)
///     .materialize(2);
/// assert_eq!(trace.len(), 2);
/// assert_eq!(trace.as_slice()[0].addr, Addr::new(0x1000));
/// ```
pub trait StreamExt: Iterator<Item = MemoryAccess> + Sized {
    /// Shifts every access by `offset` bytes (used to give each program of
    /// a multiprogramming mix a disjoint address-space slice).
    fn relocated(self, offset: u64) -> Relocated<Self> {
        Relocated {
            inner: self,
            offset,
        }
    }

    /// Collects the first `len` accesses into an in-memory [`Trace`],
    /// mirroring the paper's fixed-length trace prefixes.
    fn materialize(self, len: usize) -> Trace {
        self.take(len).collect()
    }

    /// Merges data reads into instruction fetches, emulating the paper's
    /// M68000 hardware monitor, which "only differentiate\[s\] between
    /// fetches (reads and ifetches) and writes" (§2).
    fn monitor_m68000(self) -> MonitorM68000<Self> {
        MonitorM68000 { inner: self }
    }
}

impl<I: Iterator<Item = MemoryAccess>> StreamExt for I {}

/// Iterator adapter returned by [`StreamExt::relocated`].
#[derive(Debug, Clone)]
pub struct Relocated<I> {
    inner: I,
    offset: u64,
}

impl<I: Iterator<Item = MemoryAccess>> Iterator for Relocated<I> {
    type Item = MemoryAccess;

    fn next(&mut self) -> Option<MemoryAccess> {
        self.inner.next().map(|a| a.relocated(self.offset))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

/// Iterator adapter returned by [`StreamExt::monitor_m68000`].
#[derive(Debug, Clone)]
pub struct MonitorM68000<I> {
    inner: I,
}

impl<I: Iterator<Item = MemoryAccess>> Iterator for MonitorM68000<I> {
    type Item = MemoryAccess;

    fn next(&mut self) -> Option<MemoryAccess> {
        self.inner.next().map(|mut a| {
            if a.kind == crate::AccessKind::Read {
                a.kind = crate::AccessKind::InstructionFetch;
            }
            a
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Addr;

    #[test]
    fn relocated_preserves_kind_and_size() {
        let acc = MemoryAccess::write(Addr::new(8), 2);
        let out: Vec<_> = std::iter::once(acc).relocated(0x100).collect();
        assert_eq!(out[0].addr, Addr::new(0x108));
        assert_eq!(out[0].size, 2);
        assert_eq!(out[0].kind, acc.kind);
    }

    #[test]
    fn materialize_truncates() {
        let t = (0..100u64)
            .map(|i| MemoryAccess::read(Addr::new(i), 1))
            .materialize(10);
        assert_eq!(t.len(), 10);
    }

    #[test]
    fn monitor_merges_reads_into_fetches() {
        use crate::AccessKind;
        let stream = vec![
            MemoryAccess::ifetch(Addr::new(0), 2),
            MemoryAccess::read(Addr::new(0x100), 2),
            MemoryAccess::write(Addr::new(0x200), 2),
        ];
        let out: Vec<_> = stream.into_iter().monitor_m68000().collect();
        assert_eq!(out[0].kind, AccessKind::InstructionFetch);
        assert_eq!(out[1].kind, AccessKind::InstructionFetch);
        assert_eq!(out[2].kind, AccessKind::Write);
        // Addresses and sizes untouched.
        assert_eq!(out[1].addr, Addr::new(0x100));
    }

    #[test]
    fn size_hint_passthrough() {
        let it = (0..5u64).map(|i| MemoryAccess::read(Addr::new(i), 1));
        assert_eq!(it.relocated(1).size_hint(), (5, Some(5)));
    }
}
