//! The trace characterizer: computes every column of the paper's Table 2.
//!
//! For each trace the paper tabulates the fraction of instruction fetches,
//! data reads and data writes, the fraction of instruction fetches that are
//! successful branches (detected by an address heuristic, since the traces
//! do not mark branches), the number of distinct 16-byte instruction and
//! data lines touched, and the derived address-space size.

use crate::{AccessKind, MemoryAccess, PAPER_LINE_SIZE};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::fmt;

/// The branch-detection window from §3.2: a successive instruction fetch
/// more than 8 bytes forward, or any distance backward, marks the previous
/// fetch as a successful branch.
pub const BRANCH_FORWARD_WINDOW: i64 = 8;

/// Streaming computation of [`TraceCharacteristics`].
///
/// Feed accesses with [`observe`](TraceCharacterizer::observe) and call
/// [`finish`](TraceCharacterizer::finish) (or take a
/// [`snapshot`](TraceCharacterizer::snapshot) mid-stream).
///
/// ```
/// use smith85_trace::stats::TraceCharacterizer;
/// use smith85_trace::{Addr, MemoryAccess};
///
/// let mut c = TraceCharacterizer::new();
/// c.observe(MemoryAccess::ifetch(Addr::new(0x00), 4));
/// c.observe(MemoryAccess::ifetch(Addr::new(0x04), 4)); // sequential
/// c.observe(MemoryAccess::ifetch(Addr::new(0x40), 4)); // jumped: 0x04 was a branch
/// let stats = c.finish();
/// assert_eq!(stats.branches(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct TraceCharacterizer {
    line_size: usize,
    counts: [u64; 3],
    branches: u64,
    last_ifetch: Option<u64>,
    last_addr: Option<u64>,
    last_delta: i64,
    sequential: u64,
    repeats: u64,
    ilines: HashSet<u64>,
    dlines: HashSet<u64>,
}

impl TraceCharacterizer {
    /// Creates a characterizer using the paper's 16-byte line size.
    pub fn new() -> Self {
        Self::with_line_size(PAPER_LINE_SIZE)
    }

    /// Creates a characterizer counting distinct lines of the given size.
    ///
    /// # Panics
    ///
    /// Panics if `line_size` is not a power of two.
    pub fn with_line_size(line_size: usize) -> Self {
        assert!(
            line_size.is_power_of_two() && line_size > 0,
            "line size must be a positive power of two, got {line_size}"
        );
        TraceCharacterizer {
            line_size,
            counts: [0; 3],
            branches: 0,
            last_ifetch: None,
            last_addr: None,
            last_delta: 0,
            sequential: 0,
            repeats: 0,
            ilines: HashSet::new(),
            dlines: HashSet::new(),
        }
    }

    /// Records one access.
    pub fn observe(&mut self, access: MemoryAccess) {
        self.counts[access.kind.index()] += 1;
        // Stride bookkeeping for the sequentiality/repeat statistics the
        // non-CPU families are characterized by: an access is
        // *sequential* when it continues the previous positive stride
        // (an instruction run, a storage scan at block stride), and a
        // *repeat* when it re-references the previous address exactly
        // (a network packet train).
        if let Some(prev) = self.last_addr {
            let delta = access.addr.get().wrapping_sub(prev) as i64;
            if delta == 0 {
                self.repeats += 1;
            } else if delta > 0 && delta == self.last_delta {
                self.sequential += 1;
            }
            self.last_delta = delta;
        }
        self.last_addr = Some(access.addr.get());
        let line = access.line(self.line_size).get();
        match access.kind {
            AccessKind::InstructionFetch => {
                self.ilines.insert(line);
                if let Some(prev) = self.last_ifetch {
                    let delta = access.addr.get().wrapping_sub(prev) as i64;
                    if !(0..=BRANCH_FORWARD_WINDOW).contains(&delta) {
                        self.branches += 1;
                    }
                }
                self.last_ifetch = Some(access.addr.get());
            }
            AccessKind::Read | AccessKind::Write => {
                self.dlines.insert(line);
            }
        }
    }

    /// The characteristics accumulated so far, without consuming the
    /// characterizer.
    pub fn snapshot(&self) -> TraceCharacteristics {
        TraceCharacteristics {
            line_size: self.line_size,
            counts: self.counts,
            branches: self.branches,
            sequential: self.sequential,
            repeats: self.repeats,
            ilines: self.ilines.len() as u64,
            dlines: self.dlines.len() as u64,
        }
    }

    /// Finishes and returns the characteristics.
    pub fn finish(self) -> TraceCharacteristics {
        self.snapshot()
    }
}

impl Default for TraceCharacterizer {
    fn default() -> Self {
        Self::new()
    }
}

impl Extend<MemoryAccess> for TraceCharacterizer {
    fn extend<I: IntoIterator<Item = MemoryAccess>>(&mut self, iter: I) {
        for access in iter {
            self.observe(access);
        }
    }
}

/// One row of the paper's Table 2: aggregate characteristics of a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceCharacteristics {
    line_size: usize,
    counts: [u64; 3],
    branches: u64,
    sequential: u64,
    repeats: u64,
    ilines: u64,
    dlines: u64,
}

impl TraceCharacteristics {
    /// Total number of memory references.
    pub fn total_refs(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Number of instruction fetches.
    pub fn ifetches(&self) -> u64 {
        self.counts[AccessKind::InstructionFetch.index()]
    }

    /// Number of data reads.
    pub fn reads(&self) -> u64 {
        self.counts[AccessKind::Read.index()]
    }

    /// Number of data writes.
    pub fn writes(&self) -> u64 {
        self.counts[AccessKind::Write.index()]
    }

    /// Number of references of the given kind.
    pub fn count(&self, kind: AccessKind) -> u64 {
        self.counts[kind.index()]
    }

    /// Number of instruction fetches flagged as successful branches by the
    /// §3.2 address heuristic.
    pub fn branches(&self) -> u64 {
        self.branches
    }

    /// Fraction of all references that are instruction fetches.
    pub fn ifetch_fraction(&self) -> f64 {
        self.fraction(self.ifetches())
    }

    /// Fraction of all references that are data reads.
    pub fn read_fraction(&self) -> f64 {
        self.fraction(self.reads())
    }

    /// Fraction of all references that are data writes.
    pub fn write_fraction(&self) -> f64 {
        self.fraction(self.writes())
    }

    /// Fraction of instruction fetches that are successful branches
    /// (the "%Branch" column).
    pub fn branch_fraction(&self) -> f64 {
        if self.ifetches() == 0 {
            0.0
        } else {
            self.branches as f64 / self.ifetches() as f64
        }
    }

    /// Fraction of references that continue a constant positive address
    /// stride — instruction runs, storage scans. The first two
    /// references of a stride never count, so a run of length `n`
    /// contributes `n - 2`.
    pub fn sequential_fraction(&self) -> f64 {
        self.fraction(self.sequential)
    }

    /// Fraction of references that re-reference the immediately
    /// preceding address — packet trains, tight data loops.
    pub fn repeat_fraction(&self) -> f64 {
        self.fraction(self.repeats)
    }

    /// Number of distinct instruction lines touched ("#Ilines").
    pub fn instruction_lines(&self) -> u64 {
        self.ilines
    }

    /// Number of distinct data lines touched ("#Dlines").
    pub fn data_lines(&self) -> u64 {
        self.dlines
    }

    /// The line size the distinct-line counts were taken at.
    pub fn line_size(&self) -> usize {
        self.line_size
    }

    /// Total bytes in the lines referenced ("Aspace"):
    /// `line_size * (#Ilines + #Dlines)`.
    pub fn address_space_bytes(&self) -> u64 {
        self.line_size as u64 * (self.ilines + self.dlines)
    }

    fn fraction(&self, n: u64) -> f64 {
        let total = self.total_refs();
        if total == 0 {
            0.0
        } else {
            n as f64 / total as f64
        }
    }
}

impl fmt::Display for TraceCharacteristics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} refs ({:.1}% ifetch, {:.1}% read, {:.1}% write), \
             {:.1}% branch, {} I-lines, {} D-lines, {} byte footprint",
            self.total_refs(),
            100.0 * self.ifetch_fraction(),
            100.0 * self.read_fraction(),
            100.0 * self.write_fraction(),
            100.0 * self.branch_fraction(),
            self.ilines,
            self.dlines,
            self.address_space_bytes(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Addr;

    fn ifetch(addr: u64) -> MemoryAccess {
        MemoryAccess::ifetch(Addr::new(addr), 4)
    }

    #[test]
    fn fractions_sum_to_one() {
        let mut c = TraceCharacterizer::new();
        for i in 0..10 {
            c.observe(ifetch(i * 4));
            c.observe(MemoryAccess::read(Addr::new(0x1000 + i * 8), 4));
        }
        c.observe(MemoryAccess::write(Addr::new(0x2000), 4));
        let s = c.finish();
        let sum = s.ifetch_fraction() + s.read_fraction() + s.write_fraction();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn branch_heuristic_forward_window() {
        let mut c = TraceCharacterizer::new();
        c.observe(ifetch(0x100));
        c.observe(ifetch(0x104)); // +4: sequential
        c.observe(ifetch(0x10c)); // +8: still within the window
        c.observe(ifetch(0x115)); // +9: branch
        c.observe(ifetch(0x0f0)); // backward: branch
        let s = c.finish();
        assert_eq!(s.branches(), 2);
        assert!((s.branch_fraction() - 2.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn branch_heuristic_ignores_interleaved_data() {
        let mut c = TraceCharacterizer::new();
        c.observe(ifetch(0x100));
        c.observe(MemoryAccess::read(Addr::new(0x9000), 4));
        c.observe(ifetch(0x104)); // sequential despite the data ref between
        let s = c.finish();
        assert_eq!(s.branches(), 0);
    }

    #[test]
    fn distinct_lines_and_aspace() {
        let mut c = TraceCharacterizer::new();
        c.observe(ifetch(0x00)); // line 0
        c.observe(ifetch(0x04)); // line 0
        c.observe(ifetch(0x10)); // line 1
        c.observe(MemoryAccess::write(Addr::new(0x100), 4)); // dline
        c.observe(MemoryAccess::read(Addr::new(0x104), 4)); // same dline
        let s = c.finish();
        assert_eq!(s.instruction_lines(), 2);
        assert_eq!(s.data_lines(), 1);
        assert_eq!(s.address_space_bytes(), 16 * 3);
    }

    #[test]
    fn empty_trace_has_zero_fractions() {
        let s = TraceCharacterizer::new().finish();
        assert_eq!(s.total_refs(), 0);
        assert_eq!(s.ifetch_fraction(), 0.0);
        assert_eq!(s.branch_fraction(), 0.0);
        assert_eq!(s.address_space_bytes(), 0);
    }

    #[test]
    fn snapshot_matches_finish() {
        let mut c = TraceCharacterizer::new();
        c.observe(ifetch(0));
        c.observe(ifetch(0x40));
        let snap = c.snapshot();
        assert_eq!(snap, c.finish());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_line_size() {
        let _ = TraceCharacterizer::with_line_size(24);
    }

    #[test]
    fn sequential_and_repeat_fractions() {
        let mut c = TraceCharacterizer::new();
        // A 5-access stride-0x10 scan: accesses 3..5 continue the stride.
        for i in 0..5 {
            c.observe(MemoryAccess::read(Addr::new(0x1000 + i * 0x10), 4));
        }
        // Three repeats of one address (a packet train).
        for _ in 0..3 {
            c.observe(MemoryAccess::read(Addr::new(0x9000), 4));
        }
        let s = c.finish();
        assert_eq!(s.total_refs(), 8);
        assert!((s.sequential_fraction() - 3.0 / 8.0).abs() < 1e-12);
        // The first train access breaks the stride; the next two repeat.
        assert!((s.repeat_fraction() - 2.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn backward_strides_are_not_sequential() {
        let mut c = TraceCharacterizer::new();
        for i in (0..5).rev() {
            c.observe(MemoryAccess::read(Addr::new(0x1000 + i * 0x10), 4));
        }
        let s = c.finish();
        assert_eq!(s.sequential_fraction(), 0.0);
        assert_eq!(s.repeat_fraction(), 0.0);
    }

    #[test]
    fn extend_observes_all() {
        let mut c = TraceCharacterizer::new();
        c.extend((0..5).map(|i| ifetch(i * 4)));
        assert_eq!(c.snapshot().total_refs(), 5);
    }
}
