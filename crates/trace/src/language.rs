//! Source languages of the traced programs.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The source language a traced program was written in.
///
/// The paper's workload covers seven languages; the language matters because
/// compiler maturity drives code density and reference mix (§1.2, §4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum SourceLanguage {
    /// Fortran (scientific codes, Watfiv-compiled programs).
    Fortran,
    /// IBM 370 assembler (compilers, interpreters, MVS itself).
    Assembler,
    /// APL (interpreted; the interpreter is the traced code).
    Apl,
    /// LISP (the paper's counterexample to "LISP has terrible locality").
    Lisp,
    /// AlgolW.
    AlgolW,
    /// Cobol (business codes).
    Cobol,
    /// C (the Unix utilities traced on the VAX and Z8000).
    C,
    /// Pascal (the M68000 toy programs).
    Pascal,
}

impl SourceLanguage {
    /// All languages appearing in the workload.
    pub const ALL: [SourceLanguage; 8] = [
        SourceLanguage::Fortran,
        SourceLanguage::Assembler,
        SourceLanguage::Apl,
        SourceLanguage::Lisp,
        SourceLanguage::AlgolW,
        SourceLanguage::Cobol,
        SourceLanguage::C,
        SourceLanguage::Pascal,
    ];

    /// Display name.
    pub const fn name(self) -> &'static str {
        match self {
            SourceLanguage::Fortran => "Fortran",
            SourceLanguage::Assembler => "Assembler",
            SourceLanguage::Apl => "APL",
            SourceLanguage::Lisp => "LISP",
            SourceLanguage::AlgolW => "AlgolW",
            SourceLanguage::Cobol => "Cobol",
            SourceLanguage::C => "C",
            SourceLanguage::Pascal => "Pascal",
        }
    }

    /// A rough code-quality score in `[0, 1]` (1 = mature optimizing
    /// compiler). The paper blames immature compilers (early Unix C, Watfiv,
    /// AlgolW) for inflated instruction counts; the synthetic generators use
    /// this to stretch sequential run lengths for poorly compiled code.
    pub const fn compiler_maturity(self) -> f64 {
        match self {
            SourceLanguage::Assembler => 1.0,
            SourceLanguage::Fortran => 0.9,
            SourceLanguage::Cobol => 0.8,
            SourceLanguage::Apl => 0.7,
            SourceLanguage::Lisp => 0.6,
            SourceLanguage::Pascal => 0.5,
            SourceLanguage::AlgolW => 0.4,
            SourceLanguage::C => 0.35,
        }
    }
}

impl fmt::Display for SourceLanguage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_languages_have_distinct_names() {
        let mut names: Vec<&str> = SourceLanguage::ALL.iter().map(|l| l.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), SourceLanguage::ALL.len());
    }

    #[test]
    fn maturity_in_unit_interval() {
        for lang in SourceLanguage::ALL {
            let m = lang.compiler_maturity();
            assert!((0.0..=1.0).contains(&m), "{lang}: {m}");
        }
    }
}
