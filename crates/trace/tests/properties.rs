//! Property tests of the trace substrate: formats, the characterizer, the
//! mixer and the interface adapter.

use proptest::prelude::*;
use smith85_trace::interface::InterfaceAdapter;
use smith85_trace::mix::RoundRobinMix;
use smith85_trace::stats::TraceCharacterizer;
use smith85_trace::{AccessKind, Addr, InterfaceSpec, MemoryAccess, Trace};

fn arb_access() -> impl Strategy<Value = MemoryAccess> {
    (
        0u64..0x1_0000,
        prop_oneof![
            Just(AccessKind::InstructionFetch),
            Just(AccessKind::Read),
            Just(AccessKind::Write),
        ],
        1u8..=8,
    )
        .prop_map(|(addr, kind, size)| MemoryAccess::new(kind, Addr::new(addr), size))
}

fn arb_trace(max: usize) -> impl Strategy<Value = Vec<MemoryAccess>> {
    prop::collection::vec(arb_access(), 0..max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Characterizer totals always reconcile.
    #[test]
    fn characterizer_totals_reconcile(accs in arb_trace(300)) {
        let mut c = TraceCharacterizer::new();
        c.extend(accs.iter().copied());
        let s = c.finish();
        prop_assert_eq!(s.total_refs(), accs.len() as u64);
        prop_assert_eq!(
            s.ifetches(),
            accs.iter().filter(|a| a.kind.is_ifetch()).count() as u64
        );
        prop_assert!(s.instruction_lines() <= s.ifetches());
        prop_assert!(s.data_lines() <= s.reads() + s.writes());
    }

    /// The mixer emits exactly the union of its members' references, each
    /// relocated into its own slice.
    #[test]
    fn mixer_conserves_and_separates(
        a in arb_trace(200),
        b in arb_trace(200),
        quantum in 1u64..50,
    ) {
        let mix = RoundRobinMix::new(
            vec![a.clone().into_iter(), b.clone().into_iter()],
            quantum,
        );
        let out: Vec<MemoryAccess> = mix.collect();
        prop_assert_eq!(out.len(), a.len() + b.len());
        const STRIDE: u64 = 1 << 40;
        let from_a: Vec<MemoryAccess> = out
            .iter()
            .filter(|x| x.addr.get() < STRIDE)
            .copied()
            .collect();
        let from_b: Vec<MemoryAccess> = out
            .iter()
            .filter(|x| x.addr.get() >= STRIDE)
            .map(|x| x.relocated(0u64.wrapping_sub(STRIDE)))
            .collect();
        // Order within each member is preserved.
        prop_assert_eq!(from_a, a);
        prop_assert_eq!(from_b, b);
    }

    /// The interface adapter conserves coverage: every byte of every
    /// processor reference is covered by some emitted memory reference,
    /// and emitted references are interface-aligned.
    #[test]
    fn interface_adapter_covers_all_bytes(
        accs in arb_trace(200),
        width_pow in 1u32..4,
        remembers in any::<bool>(),
    ) {
        let width = 1u8 << width_pow; // 2, 4, 8
        let spec = InterfaceSpec::new(width, remembers);
        let out: Vec<MemoryAccess> =
            InterfaceAdapter::new(accs.iter().copied(), spec).collect();
        for m in &out {
            prop_assert_eq!(m.addr.get() % width as u64, 0);
            prop_assert_eq!(m.size, width);
        }
        // Without memory, the unit count is exact per access.
        if !remembers {
            let expected: usize = accs
                .iter()
                .map(|a| {
                    let w = width as u64;
                    let first = a.addr.get() / w;
                    let last = (a.addr.get() + a.size.max(1) as u64 - 1) / w;
                    (last - first + 1) as usize
                })
                .sum();
            prop_assert_eq!(out.len(), expected);
        } else {
            prop_assert!(out.len() <= accs.iter().map(|a| a.size as usize).sum::<usize>());
        }
        // Writes are never absorbed.
        let writes_in: usize = accs.iter().filter(|a| a.kind.is_write()).count();
        let writes_out = out.iter().filter(|a| a.kind.is_write()).count();
        prop_assert!(writes_out >= writes_in);
    }

    /// Text and binary formats agree with each other on every trace.
    #[test]
    fn formats_agree(accs in arb_trace(200)) {
        let trace: Trace = accs.into();
        let mut text = Vec::new();
        smith85_trace::io::write_text(&mut text, &trace).unwrap();
        let mut bin = Vec::new();
        smith85_trace::io::write_binary(&mut bin, &trace).unwrap();
        let t = smith85_trace::io::read_text(text.as_slice()).unwrap();
        let b = smith85_trace::io::read_binary(bin.as_slice()).unwrap();
        prop_assert_eq!(t, b);
    }

    /// Branch counting is shift-invariant: relocating a whole trace does
    /// not change any characterizer statistic except the line identities.
    #[test]
    fn characterizer_shift_invariant(accs in arb_trace(300), shift_lines in 0u64..1000) {
        let shift = shift_lines * 16;
        let stat = |xs: &[MemoryAccess]| {
            let mut c = TraceCharacterizer::new();
            c.extend(xs.iter().copied());
            c.finish()
        };
        let base = stat(&accs);
        let moved: Vec<MemoryAccess> =
            accs.iter().map(|a| a.relocated(shift)).collect();
        let shifted = stat(&moved);
        prop_assert_eq!(base.branches(), shifted.branches());
        prop_assert_eq!(base.instruction_lines(), shifted.instruction_lines());
        prop_assert_eq!(base.data_lines(), shifted.data_lines());
    }
}
