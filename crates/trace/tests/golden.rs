//! Golden-file test: a hand-written trace fixture with known
//! characteristics, guarding the text format and the characterizer
//! against silent semantic drift.

use smith85_trace::io::{read_text, write_binary, read_binary};
use smith85_trace::AccessKind;

const FIXTURE: &str = include_str!("fixtures/sample.trace");

#[test]
fn fixture_parses_with_known_characteristics() {
    let trace = read_text(FIXTURE.as_bytes()).expect("fixture parses");
    assert_eq!(trace.len(), 12);
    let s = trace.characteristics();
    assert_eq!(s.ifetches(), 8);
    assert_eq!(s.reads(), 2);
    assert_eq!(s.writes(), 2);
    // Instruction lines: 0x1000-0x100c is one 16-byte line; data at
    // 0x8000-0x8004 is one line.
    assert_eq!(s.instruction_lines(), 1);
    assert_eq!(s.data_lines(), 1);
    assert_eq!(s.address_space_bytes(), 32);
    // The loop back from 0x100c to 0x1000 is the only detected branch
    // (backward); it happens once per iteration boundary.
    assert_eq!(s.branches(), 1);
}

#[test]
fn fixture_roundtrips_to_binary() {
    let trace = read_text(FIXTURE.as_bytes()).unwrap();
    let mut bin = Vec::new();
    write_binary(&mut bin, &trace).unwrap();
    let back = read_binary(bin.as_slice()).unwrap();
    assert_eq!(back, trace);
    assert_eq!(back.as_slice()[4].kind, AccessKind::Write);
}
