//! Generate-once/replay-many determinism: a trace served by the shared
//! [`TracePool`] must be bit-identical to fresh generation, for a
//! representative of every Table 1 workload group and for mix workloads.
//! This is the property the whole pooling optimisation rests on —
//! replaying a pooled prefix may never change a result.

use smith85_core::experiments::{table3_workloads, Workload};
use smith85_core::TracePool;
use smith85_synth::catalog;

const LEN: usize = 30_000;

#[test]
fn pooled_replay_is_bit_identical_for_every_table1_group() {
    let pool = TracePool::new();
    let mut groups_seen = Vec::new();
    for spec in catalog::all() {
        let group = spec.group();
        if groups_seen.contains(&group) {
            continue; // one representative per workload group
        }
        groups_seen.push(group);
        // Table 1 rows are per-section profiles; check each of them.
        for profile in spec.section_profiles() {
            let pooled = pool.profile(&profile, LEN);
            let fresh = profile.generate(LEN);
            assert_eq!(
                pooled.as_slice(),
                fresh.as_slice(),
                "pooled replay diverges from fresh generation for {} ({group})",
                profile.name
            );
            // A shorter request must be a prefix of the pooled trace.
            let short = pool.profile(&profile, LEN / 2);
            assert_eq!(
                &short.as_slice()[..LEN / 2],
                &fresh.as_slice()[..LEN / 2],
                "prefix property broken for {}",
                profile.name
            );
        }
    }
    assert!(groups_seen.len() >= 7, "only {} groups covered", groups_seen.len());
}

#[test]
fn pooled_mix_workloads_are_bit_identical_to_streams() {
    let pool = TracePool::new();
    for w in table3_workloads() {
        if !matches!(w, Workload::Mix { .. }) {
            continue;
        }
        let pooled = pool.workload(&w, LEN);
        let fresh: Vec<_> = w.stream().take(LEN).collect();
        assert_eq!(
            pooled.as_slice(),
            fresh.as_slice(),
            "pooled mix {} diverges from its stream",
            w.name()
        );
    }
}
