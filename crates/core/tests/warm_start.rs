//! Warm-start tests: a session built over a populated store directory
//! must answer previously-seen workloads from disk — bit-identical, with
//! zero pool misses and zero newly materialized bytes.

use smith85_core::session::SimSession;
use smith85_synth::catalog;
use std::path::PathBuf;

fn tmp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("s85-warm-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn build(dir: &PathBuf) -> SimSession {
    SimSession::builder()
        .store(dir)
        .trace_len(4_000)
        .build()
        .unwrap()
}

#[test]
fn warm_session_reuses_spilled_traces_bit_identically() {
    let dir = tmp_root("reuse");
    let profile = catalog::by_name("VCCOM").unwrap().profile().clone();

    // Cold run: the pool misses, materializes, and spills to the store.
    let cold_trace = {
        let session = build(&dir);
        let trace = session.config().pool.profile(&profile, 4_000);
        let stats = session.config().pool.stats();
        assert_eq!(stats.misses, 1, "cold run must materialize");
        let store = session.store().expect("session has a store");
        assert!(store.stats().writes >= 1, "trace must be spilled to disk");
        (*trace).clone()
    };

    // Warm run in a fresh process-equivalent: new session, same dir.
    let session = build(&dir);
    let warm_trace = session.config().pool.profile(&profile, 4_000);
    let stats = session.config().pool.stats();
    assert_eq!(stats.misses, 0, "warm run must not materialize");
    assert_eq!(stats.hits, 1, "disk hit counts as a pool hit");
    assert_eq!(
        stats.materialized_bytes, 0,
        "warm run must not generate any references"
    );
    assert_eq!(*warm_trace, cold_trace, "disk round-trip must be bit-identical");
    let store = session.store().unwrap();
    assert!(store.stats().hits >= 1);

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn warm_session_survives_a_corrupted_spill_by_regenerating() {
    let dir = tmp_root("regen");
    let profile = catalog::by_name("ZGREP").unwrap().profile().clone();

    let cold_trace = {
        let session = build(&dir);
        (*session.config().pool.profile(&profile, 4_000)).clone()
    };

    // Flip a bit in every stored object; recovery quarantines them all.
    let objects = dir.join("objects");
    let mut injector = smith85_trace::fault::DiskFaultInjector::new(99);
    for entry in std::fs::read_dir(&objects).unwrap() {
        let path = entry.unwrap().path();
        injector
            .corrupt_file(smith85_trace::fault::DiskFault::BitFlip, &path)
            .unwrap();
    }

    let session = build(&dir);
    let store = session.store().unwrap();
    assert!(
        !store.recovery().quarantined.is_empty(),
        "corruption must be quarantined at open: {}",
        store.recovery().summary()
    );
    // The pool regenerates rather than serving damaged data, and the
    // regenerated trace matches the cold run exactly.
    let regenerated = session.config().pool.profile(&profile, 4_000);
    let stats = session.config().pool.stats();
    assert_eq!(stats.misses, 1, "corrupt spill must force re-materialization");
    assert_eq!(*regenerated, cold_trace);
    // Evidence survives in quarantine/.
    assert!(dir.join("quarantine").read_dir().unwrap().next().is_some());

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn store_budget_caps_spill_growth() {
    let dir = tmp_root("budget");
    let session = SimSession::builder()
        .store(&dir)
        .store_budget(16 * 1024)
        .trace_len(4_000)
        .build()
        .unwrap();
    for name in ["VCCOM", "ZGREP", "PL0", "TWOD"] {
        let profile = catalog::by_name(name).unwrap().profile().clone();
        session.config().pool.profile(&profile, 4_000);
    }
    let store = session.store().unwrap();
    let stats = store.stats();
    assert!(
        stats.total_bytes <= 16 * 1024,
        "store grew past its budget: {} bytes",
        stats.total_bytes
    );
    assert!(stats.gc_evictions >= 1, "eviction must have happened");
    std::fs::remove_dir_all(&dir).unwrap();
}
