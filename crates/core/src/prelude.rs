//! One-import surface for the session API: `use smith85_core::prelude::*;`
//! brings in the session builder, the instrumentation types, the
//! validated config builder and the shared trace pool.

pub use crate::experiments::{
    ConfigError, ExperimentConfig, ExperimentConfigBuilder, Workload,
};
pub use crate::session::{
    NoopProbe, Probe, ProbeHandle, RegistryProbe, SimSession, SimSessionBuilder, SplitStats,
};
pub use crate::trace_pool::{PoolStats, TracePool};
pub use smith85_cachesim::{CacheConfig, CacheConfigBuilder};
pub use smith85_obs::{Registry, RegistrySnapshot};
