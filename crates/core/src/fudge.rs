//! §4.3's "fudge factors": estimating workload parameters for a machine
//! architecture that has not been built yet, by interpolating among the
//! measured machines on an architecture-complexity scale.
//!
//! The paper's claims, encoded here:
//!
//! * the ratio of instructions to data references runs from about 1:1 for
//!   complex 32-bit architectures (VAX, 370) up to about 3:1 for extremely
//!   simplified (RISC/CDC-like) architectures;
//! * branch frequency trends the same way: high for powerful instruction
//!   sets (VAX 17.5%), low for simple ones (CDC 4.2%);
//! * reads outnumber writes about 2:1 regardless of architecture;
//! * half the data lines pushed will be dirty (Table 3's 0.47 average);
//! * simple architectures have longer sequential runs (prefetching and
//!   long lines help more) but larger code, so misses per size are a bit
//!   higher.

use smith85_trace::MachineArch;

/// Estimated fraction of memory references that are instruction fetches
/// for an architecture of the given complexity (0 = simplest, 1 = most
/// complex). 1:1 instructions:data at complexity 1 → 0.5; 3:1 at
/// complexity 0 → 0.75.
///
/// # Panics
///
/// Panics if `complexity` is outside `[0, 1]`.
pub fn ifetch_fraction_estimate(complexity: f64) -> f64 {
    assert!((0.0..=1.0).contains(&complexity), "complexity {complexity} out of range");
    0.75 - 0.25 * complexity
}

/// Estimated fraction of instruction fetches that are successful branches,
/// interpolating the paper's anchors (CDC 6400: 4.2%, VAX: 17.5%).
///
/// # Panics
///
/// Panics if `complexity` is outside `[0, 1]`.
pub fn branch_fraction_estimate(complexity: f64) -> f64 {
    assert!((0.0..=1.0).contains(&complexity), "complexity {complexity} out of range");
    0.042 + (0.175 - 0.042) * complexity
}

/// The paper's rule of thumb: reads outnumber writes about 2:1, so of the
/// non-instruction references this fraction are reads.
pub const READ_SHARE_OF_DATA: f64 = 2.0 / 3.0;

/// Table 3's design rule of thumb: the probability a pushed data line is
/// dirty.
pub const DIRTY_PUSH_TARGET: f64 = 0.5;
/// Table 3's observed average and spread.
pub const DIRTY_PUSH_OBSERVED_MEAN: f64 = 0.47;
/// Standard deviation of Table 3's dirty-push fractions.
pub const DIRTY_PUSH_OBSERVED_STD: f64 = 0.18;
/// Observed range of Table 3's dirty-push fractions.
pub const DIRTY_PUSH_OBSERVED_RANGE: (f64, f64) = (0.22, 0.80);

/// Reference-mix estimate for a hypothetical architecture.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MixEstimate {
    /// Fraction of references that are instruction fetches.
    pub ifetch: f64,
    /// Fraction that are data reads.
    pub read: f64,
    /// Fraction that are data writes.
    pub write: f64,
    /// Fraction of instruction fetches that branch.
    pub branch: f64,
}

/// Estimates the full reference mix for an architecture of the given
/// complexity.
///
/// # Panics
///
/// Panics if `complexity` is outside `[0, 1]`.
pub fn estimate_mix(complexity: f64) -> MixEstimate {
    let ifetch = ifetch_fraction_estimate(complexity);
    let data = 1.0 - ifetch;
    MixEstimate {
        ifetch,
        read: data * READ_SHARE_OF_DATA,
        write: data * (1.0 - READ_SHARE_OF_DATA),
        branch: branch_fraction_estimate(complexity),
    }
}

/// Estimates the mix for a known architecture via its complexity score.
pub fn estimate_mix_for(arch: MachineArch) -> MixEstimate {
    estimate_mix(arch.complexity())
}

/// Miss-ratio fudge factor for porting numbers measured on `from` to a
/// prediction for `to` (§1.2, §4).
///
/// The dominant term is the 16-bit → 32-bit correction the paper applies
/// to the Z8000-based Z80000 projections: Alpert's traces predicted 12%
/// miss at 256 bytes where Smith predicts 30%, a factor of 2.5. Between
/// two machines of the same width the correction follows the complexity
/// gap (simpler architectures have larger code, hence slightly higher miss
/// ratios at equal cache size — §4.3).
pub fn miss_ratio_fudge(from: MachineArch, to: MachineArch) -> f64 {
    let width = match (from.is_16_bit(), to.is_16_bit()) {
        (true, false) => 2.5,
        (false, true) => 1.0 / 2.5,
        _ => 1.0,
    };
    // Simpler ISA → more instructions → larger code footprint → slightly
    // higher miss ratio; ±20% across the whole complexity scale.
    let complexity_term = 1.0 + 0.2 * (from.complexity() - to.complexity());
    width * complexity_term
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_fractions_sum_to_one() {
        for c in [0.0, 0.3, 0.7, 1.0] {
            let m = estimate_mix(c);
            assert!((m.ifetch + m.read + m.write - 1.0).abs() < 1e-12);
            assert!(m.read > m.write); // reads outnumber writes
        }
    }

    #[test]
    fn anchors_match_paper() {
        let risc = estimate_mix(0.0);
        assert!((risc.ifetch - 0.75).abs() < 1e-12); // 3:1
        assert!((risc.branch - 0.042).abs() < 1e-12); // CDC anchor
        let vax = estimate_mix(1.0);
        assert!((vax.ifetch - 0.50).abs() < 1e-12); // 1:1
        assert!((vax.branch - 0.175).abs() < 1e-12); // VAX anchor
    }

    #[test]
    fn read_write_two_to_one() {
        let m = estimate_mix(0.5);
        assert!((m.read / m.write - 2.0).abs() < 1e-9);
    }

    #[test]
    fn z8000_to_z80000_factor_is_pessimistic() {
        let f = miss_ratio_fudge(MachineArch::Z8000, MachineArch::Z80000);
        // 2.5× for the width change, slightly less for complexity gain.
        assert!((2.0..=2.6).contains(&f), "{f}");
        // Alpert's 12% becomes roughly Smith's 30%.
        let predicted = 0.12 * f;
        assert!((0.25..=0.35).contains(&predicted), "{predicted}");
    }

    #[test]
    fn fudge_is_identity_for_same_machine() {
        assert!((miss_ratio_fudge(MachineArch::Vax, MachineArch::Vax) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fudge_roundtrip_is_close_to_one() {
        let f = miss_ratio_fudge(MachineArch::Vax, MachineArch::Cdc6400)
            * miss_ratio_fudge(MachineArch::Cdc6400, MachineArch::Vax);
        assert!((f - 1.0).abs() < 0.05, "{f}");
    }

    #[test]
    fn arch_shortcut_matches_manual() {
        let a = estimate_mix_for(MachineArch::Ibm370);
        let b = estimate_mix(MachineArch::Ibm370.complexity());
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_complexity() {
        estimate_mix(1.5);
    }
}
