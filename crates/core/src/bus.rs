//! Shared-bus capacity model for §3.5.2's multiprocessor argument.
//!
//! "In a microprocessor based system with a shared bus, the traffic
//! capacity of the bus limits the number of microprocessors that can be
//! used, and thus although prefetching cuts the miss ratio of each
//! processor ... the increase in traffic can lower the maximum possible
//! system performance level."
//!
//! The model is deliberately simple — the same back-of-envelope a 1985
//! designer would run: each processor issues `refs_per_second` references
//! and its cache converts them into `traffic_bytes_per_ref` of bus
//! traffic; the bus delivers `bandwidth` bytes per second; processors fit
//! until the offered load reaches a utilization ceiling.

use serde::{Deserialize, Serialize};

/// A shared memory bus.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SharedBus {
    /// Deliverable bandwidth in bytes per second.
    pub bandwidth: f64,
    /// Maximum sustainable utilization before queueing collapses the
    /// system (designers of the era used 0.6 – 0.8).
    pub max_utilization: f64,
}

impl SharedBus {
    /// A representative mid-1980s multiprocessor bus: 8 bytes wide at
    /// 5 MHz, run to 70 % utilization.
    pub const TYPICAL_1985: SharedBus = SharedBus {
        bandwidth: 40.0e6,
        max_utilization: 0.7,
    };

    /// Creates a bus model.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth` is not positive or `max_utilization` is not
    /// in `(0, 1]`.
    pub fn new(bandwidth: f64, max_utilization: f64) -> Self {
        assert!(bandwidth > 0.0, "bus bandwidth must be positive");
        assert!(
            max_utilization > 0.0 && max_utilization <= 1.0,
            "utilization ceiling must be in (0, 1], got {max_utilization}"
        );
        SharedBus {
            bandwidth,
            max_utilization,
        }
    }

    /// Bus bytes per second one processor offers, given its reference
    /// rate and its cache's bytes-per-reference traffic.
    pub fn offered_load(&self, refs_per_second: f64, traffic_bytes_per_ref: f64) -> f64 {
        refs_per_second * traffic_bytes_per_ref
    }

    /// How many identical processors the bus supports before hitting the
    /// utilization ceiling (at least 0; a single processor that saturates
    /// the bus alone yields 0).
    ///
    /// # Panics
    ///
    /// Panics if either argument is not positive.
    pub fn max_processors(&self, refs_per_second: f64, traffic_bytes_per_ref: f64) -> u32 {
        assert!(refs_per_second > 0.0, "reference rate must be positive");
        assert!(
            traffic_bytes_per_ref > 0.0,
            "per-reference traffic must be positive"
        );
        let per_cpu = self.offered_load(refs_per_second, traffic_bytes_per_ref);
        ((self.bandwidth * self.max_utilization) / per_cpu).floor() as u32
    }

    /// Aggregate useful work: processors × per-processor speed, where the
    /// per-processor speed is degraded by its miss ratio through `cpi`.
    /// This is the §3.5.2 trade in one number: prefetching raises each
    /// processor's speed but lowers the processor count.
    pub fn system_throughput(
        &self,
        refs_per_second: f64,
        traffic_bytes_per_ref: f64,
        per_cpu_mips: f64,
    ) -> f64 {
        self.max_processors(refs_per_second, traffic_bytes_per_ref) as f64 * per_cpu_mips
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn processor_count_scales_inversely_with_traffic() {
        let bus = SharedBus::TYPICAL_1985;
        let n_light = bus.max_processors(1.0e6, 1.0);
        let n_heavy = bus.max_processors(1.0e6, 2.0);
        assert_eq!(n_light, 28);
        assert_eq!(n_heavy, 14);
    }

    #[test]
    fn prefetch_tradeoff_can_go_either_way() {
        let bus = SharedBus::TYPICAL_1985;
        // Demand: 2.0 B/ref, each CPU 1.0 MIPS. Prefetch: +40% traffic,
        // +25% speed → system throughput drops.
        let demand = bus.system_throughput(1.0e6, 2.0, 1.0);
        let prefetch = bus.system_throughput(1.0e6, 2.8, 1.25);
        assert!(prefetch < demand, "prefetch {prefetch} vs demand {demand}");
        // But with a tiny traffic cost and a big win, prefetch can win.
        let cheap_prefetch = bus.system_throughput(1.0e6, 2.1, 1.25);
        assert!(cheap_prefetch > demand);
    }

    #[test]
    fn utilization_ceiling_respected() {
        let bus = SharedBus::new(100.0, 0.5);
        // 50 bytes/s usable; 10 bytes/s per CPU → 5 CPUs.
        assert_eq!(bus.max_processors(10.0, 1.0), 5);
    }

    #[test]
    #[should_panic(expected = "utilization")]
    fn bad_utilization_rejected() {
        SharedBus::new(1.0, 1.5);
    }
}
