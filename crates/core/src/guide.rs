//! # A guided tour: using this reproduction the way the paper intends
//!
//! The paper's audience is a cache designer with a decision to make.
//! This module walks through the three workflows the workspace supports,
//! with runnable examples (each compiles and runs under `cargo test`).
//!
//! ## 1. Evaluate a design against the paper's workload
//!
//! Pick workloads from the catalog, run your configuration, and compare
//! with the Table 5 design target — the paper's "design estimate" loop:
//!
//! ```
//! use smith85_cachesim::{CacheConfig, Mapping, Simulator, UnifiedCache};
//! use smith85_core::targets::{design_target, CacheKind};
//! use smith85_synth::catalog;
//!
//! # fn main() -> Result<(), smith85_cachesim::ConfigError> {
//! // A candidate design: 8 KiB, 2-way, 16-byte lines.
//! let config = CacheConfig::builder(8 * 1024)
//!     .mapping(Mapping::SetAssociative(2))
//!     .build()?;
//!
//! // Run it over a compiler workload (the paper's pessimistic middle).
//! let workload = catalog::by_name("FCOMP1").expect("in catalog");
//! let mut cache = UnifiedCache::new(config)?;
//! cache.run(workload.stream().take(60_000));
//!
//! // Compare with the paper's design target for that size.
//! let measured = cache.stats().miss_ratio();
//! let target = design_target(8 * 1024, CacheKind::Unified);
//! assert!(measured < 2.0 * target); // in the target's neighbourhood
//! # Ok(())
//! # }
//! ```
//!
//! The catch the whole paper is about: had you picked `"ZGREP"` instead
//! of `"FCOMP1"`, the measured miss ratio would be several times lower
//! and the design would look deceptively safe. Always sweep the groups
//! (`catalog::group`) before believing a number.
//!
//! ## 2. Model your own workload
//!
//! If you know your program's reference mix and footprint (the Table 2
//! columns), build a profile and get its whole miss-ratio curve in one
//! stack-analysis pass:
//!
//! ```
//! use smith85_cachesim::StackAnalyzer;
//! use smith85_synth::ProfileBuilder;
//!
//! # fn main() -> Result<(), smith85_synth::ProfileError> {
//! let profile = ProfileBuilder::new("MYDB")
//!     .ifetch_fraction(0.45)
//!     .read_fraction(0.38)
//!     .branch_fraction(0.16)
//!     .code_kb(48.0)
//!     .data_kb(96.0)
//!     .build()?;
//!
//! let mut analyzer = StackAnalyzer::new();
//! for access in profile.generator().take(60_000) {
//!     analyzer.observe(access);
//! }
//! let curve = analyzer.finish();
//! // The knee of the curve is where your money goes.
//! assert!(curve.miss_ratio(16 * 1024) < curve.miss_ratio(1024));
//! # Ok(())
//! # }
//! ```
//!
//! ## 3. Port numbers to a machine that does not exist
//!
//! §4.3's fudge factors, programmatically — the correction that would
//! have saved the Z80000's projections:
//!
//! ```
//! use smith85_core::fudge;
//! use smith85_trace::MachineArch;
//!
//! // Measured on a 16-bit part; predicting its 32-bit successor.
//! let measured_16bit = 0.12;
//! let factor = fudge::miss_ratio_fudge(MachineArch::Z8000, MachineArch::Z80000);
//! let predicted_32bit = measured_16bit * factor;
//! assert!(predicted_32bit > 0.25); // Smith's ~0.30, not Alpert's 0.12
//!
//! // And the full reference-mix estimate for a new simple machine:
//! let mix = fudge::estimate_mix(0.3);
//! assert!(mix.ifetch > 0.6); // simple ISA → more instructions
//! ```
//!
//! ## Where to go next
//!
//! * Every table/figure: `smith85-bench` binaries (`--bin table1`, ...).
//! * The experiments as a library: [`crate::experiments`].
//! * Sanity gates: `--bin conclusions` re-derives §5's claims and fails
//!   loudly if a change breaks one.
//! * The substitution's audit trail: `--bin calibration_report`.
