//! Evaluation harness reproducing every table and figure of Alan Jay
//! Smith's *"Cache Evaluation and the Impact of Workload Choice"*
//! (ISCA 1985).
//!
//! The crate layers the paper's contribution on top of the workspace
//! substrates (`smith85-trace`, `smith85-synth`, `smith85-cachesim`):
//!
//! * [`experiments`] — one module per table/figure; each returns a
//!   serializable result with a `render()` that prints the paper-style
//!   rows;
//! * [`targets`] — the Table 5 design-target miss ratios and Table 4
//!   traffic factors, with interpolation;
//! * [`hard80`], [`clark83`], [`alpert83`] — the external measurements
//!   the paper quotes, as analytic reference models;
//! * [`fudge`] — §4.3's architecture "fudge factors" for extrapolating a
//!   workload to an unbuilt machine;
//! * [`performance`] — the CPI/MIPS model behind the introduction's
//!   cost-effectiveness arithmetic;
//! * [`bus`] — the shared-bus capacity model behind §3.5.2's
//!   multiprocessor argument;
//! * [`report`], [`sweep`], [`stat_util`] — rendering, parallel sweeps,
//!   percentiles;
//! * [`trace_pool`] — the generate-once/replay-many trace cache every
//!   sweep draws from;
//! * [`session`] — the instrumented [`SimSession`](session::SimSession)
//!   entry surface shared by the CLI, the suite runner and the serve
//!   workers (see also [`prelude`]);
//! * [`runner`] — the checkpointed, resumable suite runner behind
//!   `smith85 suite`;
//! * [`guide`] — a guided tour of the three designer workflows, with
//!   runnable examples.
//!
//! # Example
//!
//! ```no_run
//! use smith85_core::experiments::{table1, ExperimentConfig};
//!
//! let result = table1::run(&ExperimentConfig::paper());
//! println!("{}", result.render());
//! ```
//!
//! (Use [`ExperimentConfig::quick`](experiments::ExperimentConfig::quick)
//! for a fast smoke run.)

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alpert83;
pub mod bus;
pub mod clark83;
pub mod experiments;
pub mod fudge;
pub mod guide;
pub mod hard80;
pub mod performance;
pub mod prelude;
pub mod report;
pub mod runner;
pub mod session;
pub mod stat_util;
pub mod sweep;
pub mod targets;
pub mod trace_pool;

pub use session::{Probe, ProbeHandle, SimSession, SimSessionBuilder};
pub use trace_pool::{PoolStats, TracePool};
