//! Parallel execution of independent simulation jobs, with per-job panic
//! isolation.
//!
//! The experiments sweep (workload × cache size × policy) grids of
//! independent trace-driven simulations; this module fans them out over a
//! bounded set of worker threads with `std::thread::scope`, so no
//! `'static` bounds leak into the experiment code.
//!
//! Long measurement campaigns must survive individual bad cells: one
//! panicking simulation (a corrupt trace, a degenerate configuration)
//! must not sink a multi-hour sweep. [`try_parallel_map`] therefore wraps
//! every job in [`std::panic::catch_unwind`] and reports per-job
//! [`JobFailure`]s instead of propagating the first panic, leaving the
//! caller to choose between fail-fast ([`parallel_map`]) and
//! skip-and-report (inspecting [`SweepError`]).

use crate::session::ProbeHandle;
use smith85_tracelog::{self as tracelog, FieldValue, Severity, TraceContext};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// The engine-wide instrumentation sink (see [`set_probe`]). Process
/// global because sweep jobs are spawned from arbitrary call depths;
/// the probe only carries metrics, never results, so "last session
/// wins" is harmless.
static SWEEP_PROBE: Mutex<Option<ProbeHandle>> = Mutex::new(None);

/// Attaches an instrumentation sink to the sweep engine: every job then
/// reports `sweep_jobs_total`, a `sweep_job_ms` timing, and panics bump
/// `sweep_panics_total`. Called by
/// [`SimSession`](crate::session::SimSession)'s builder; the last probe
/// set wins.
pub fn set_probe(probe: ProbeHandle) {
    *SWEEP_PROBE.lock().unwrap_or_else(|e| e.into_inner()) = Some(probe);
}

fn probe() -> Option<ProbeHandle> {
    SWEEP_PROBE.lock().unwrap_or_else(|e| e.into_inner()).clone()
}

/// One job's panic, captured by [`try_parallel_map`].
#[derive(Debug)]
pub struct JobFailure {
    /// Index of the failed job in the input vector.
    pub index: usize,
    /// The panic payload rendered as text (`&str`/`String` payloads are
    /// preserved; anything else becomes a placeholder).
    pub message: String,
}

impl fmt::Display for JobFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job {} panicked: {}", self.index, self.message)
    }
}

/// The aggregate failure report of a sweep: which jobs panicked, while
/// every other job's result is preserved in order.
#[derive(Debug)]
pub struct SweepError<R> {
    /// Per-slot outcomes, in input order: `Some` for completed jobs,
    /// `None` for panicked ones.
    pub results: Vec<Option<R>>,
    /// The failures, ordered by job index.
    pub failures: Vec<JobFailure>,
}

impl<R> fmt::Display for SweepError<R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} of {} sweep jobs panicked",
            self.failures.len(),
            self.results.len()
        )?;
        if let Some(first) = self.failures.first() {
            write!(f, " (first: {first})")?;
        }
        Ok(())
    }
}

impl<R: fmt::Debug> std::error::Error for SweepError<R> {}

/// Renders a panic payload (from `catch_unwind`) as text.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Applies `f` to every item, in parallel, preserving input order, and
/// isolating panics: a panicking job is reported in the returned
/// [`SweepError`] while all other jobs run to completion.
///
/// `threads = 1` runs inline (useful under test); otherwise up to
/// `threads` workers pull items off a shared queue.
///
/// # Errors
///
/// Returns [`SweepError`] if any job panicked; `results` still carries
/// every completed job's output in input order.
pub fn try_parallel_map<T, R, F>(
    threads: usize,
    items: Vec<T>,
    f: F,
) -> Result<Vec<R>, SweepError<R>>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = threads.max(1);
    let n = items.len();
    // Captured on the calling thread: sweep workers are fresh threads
    // with no thread-local context of their own, so the caller's trace
    // context is re-entered around every job.
    let trace_ctx = tracelog::current();
    let mut slots: Vec<Result<R, JobFailure>> = Vec::with_capacity(n);
    if threads == 1 || n <= 1 {
        for (index, item) in items.into_iter().enumerate() {
            slots.push(run_caught(&f, index, item, &trace_ctx));
        }
    } else {
        let next = AtomicUsize::new(0);
        let inputs: Vec<Mutex<Option<T>>> =
            items.into_iter().map(|t| Mutex::new(Some(t))).collect();
        let outputs: Vec<Mutex<Option<Result<R, JobFailure>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..threads.min(n) {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    // A poisoned lock means another worker panicked while
                    // holding it; since the critical sections below never
                    // panic (moves only), recover the data instead of
                    // poisoning the whole sweep.
                    let item = inputs[i]
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .take();
                    // invariant: each index is dispensed once by the atomic
                    // counter, so the slot is always still populated.
                    let Some(item) = item else { break };
                    let out = run_caught(&f, i, item, &trace_ctx);
                    *outputs[i]
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(out);
                });
            }
        });
        for m in outputs {
            let slot = m
                .into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            // invariant: the scope joins every worker, and each worker
            // stores exactly one outcome per dispensed index.
            slots.push(slot.expect("every job produced an outcome"));
        }
    }
    collect_outcomes(slots)
}

fn run_caught<T, R, F>(
    f: &F,
    index: usize,
    item: T,
    trace_ctx: &TraceContext,
) -> Result<R, JobFailure>
where
    F: Fn(T) -> R + Sync,
{
    let probe = probe();
    let start = probe.as_ref().map(|_| Instant::now());
    let span = trace_ctx.enabled().then(|| {
        trace_ctx.child(
            "sweep_job",
            vec![("index".to_string(), FieldValue::U64(index as u64))],
        )
    });
    let _enter = span.as_ref().map(|s| tracelog::enter(s.ctx().clone()));
    let outcome = catch_unwind(AssertUnwindSafe(|| f(item))).map_err(|payload| JobFailure {
        index,
        message: panic_message(payload.as_ref()),
    });
    if let (Some(span), Err(failure)) = (&span, &outcome) {
        span.ctx().event(
            Severity::Error,
            "sweep_job_panic",
            vec![
                ("index".to_string(), FieldValue::U64(index as u64)),
                ("message".to_string(), FieldValue::Str(failure.message.clone())),
            ],
        );
    }
    if let (Some(probe), Some(start)) = (probe, start) {
        probe.count("sweep_jobs_total", 1);
        probe.observe("sweep_job_ms", start.elapsed().as_secs_f64() * 1e3);
        if outcome.is_err() {
            probe.count("sweep_panics_total", 1);
        }
    }
    outcome
}

fn collect_outcomes<R>(slots: Vec<Result<R, JobFailure>>) -> Result<Vec<R>, SweepError<R>> {
    if slots.iter().all(Result::is_ok) {
        return Ok(slots.into_iter().map(|r| r.unwrap_or_else(|_| unreachable!())).collect());
    }
    let mut results = Vec::with_capacity(slots.len());
    let mut failures = Vec::new();
    for slot in slots {
        match slot {
            Ok(r) => results.push(Some(r)),
            Err(failure) => {
                results.push(None);
                failures.push(failure);
            }
        }
    }
    Err(SweepError { results, failures })
}

/// Applies `f` to every item, in parallel, preserving input order
/// (fail-fast wrapper over [`try_parallel_map`]).
///
/// `threads = 1` runs inline (useful under test); otherwise up to `threads`
/// workers pull items off a shared queue.
///
/// # Panics
///
/// Re-raises the first job panic (by message) after all workers finish,
/// so sibling jobs are never cancelled mid-simulation.
pub fn parallel_map<T, R, F>(threads: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    match try_parallel_map(threads, items, f) {
        Ok(results) => results,
        Err(err) => {
            let first = &err.failures[0];
            panic!("sweep job {} panicked: {}", first.index, first.message)
        }
    }
}

/// A sensible default worker count: the machine's parallelism.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(4, |n| n.get())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = parallel_map(4, (0..100).collect(), |x: i32| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_inline() {
        let out = parallel_map(1, vec![1, 2, 3], |x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = parallel_map(8, Vec::<i32>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn handles_non_copy_items() {
        let items: Vec<String> = (0..10).map(|i| format!("s{i}")).collect();
        let out = parallel_map(3, items, |s| s.len());
        assert_eq!(out.len(), 10);
    }

    #[test]
    fn default_threads_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn try_map_isolates_panics_and_keeps_other_results() {
        for threads in [1, 4] {
            let err = try_parallel_map(threads, (0..10).collect(), |x: i32| {
                assert!(x != 3 && x != 7, "bad cell {x}");
                x * 10
            })
            .unwrap_err();
            assert_eq!(err.results.len(), 10);
            assert_eq!(err.failures.len(), 2, "threads={threads}");
            assert_eq!(err.failures[0].index, 3);
            assert_eq!(err.failures[1].index, 7);
            assert!(err.failures[0].message.contains("bad cell 3"));
            for (i, slot) in err.results.iter().enumerate() {
                if i == 3 || i == 7 {
                    assert!(slot.is_none());
                } else {
                    assert_eq!(*slot, Some(i as i32 * 10), "slot {i}");
                }
            }
        }
    }

    #[test]
    fn try_map_all_ok_returns_plain_vec() {
        let out = try_parallel_map(4, (0..50).collect(), |x: i32| x + 1).unwrap();
        assert_eq!(out, (1..51).collect::<Vec<_>>());
    }

    #[test]
    fn one_failure_does_not_cancel_siblings() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let completed = AtomicUsize::new(0);
        let err = try_parallel_map(4, (0..20).collect(), |x: i32| {
            if x == 0 {
                panic!("first job dies");
            }
            completed.fetch_add(1, Ordering::Relaxed);
            x
        })
        .unwrap_err();
        assert_eq!(completed.load(Ordering::Relaxed), 19);
        assert_eq!(err.failures.len(), 1);
    }

    #[test]
    #[should_panic(expected = "sweep job 2 panicked")]
    fn parallel_map_fail_fast_reports_first_failure() {
        let _ = parallel_map(2, vec![1, 2, 3, 4], |x: i32| {
            assert!(x != 3, "cell {x}");
            x
        });
    }

    #[test]
    fn sweep_error_display_summarises() {
        let err = try_parallel_map(1, vec![1, 2], |x: i32| {
            assert!(x != 2, "nope");
            x
        })
        .unwrap_err();
        let text = err.to_string();
        assert!(text.contains("1 of 2"), "{text}");
        assert!(text.contains("nope"), "{text}");
    }

    #[test]
    fn probe_counts_jobs_and_panics() {
        let registry = smith85_obs::Registry::new();
        // Another test (a session build) may swap the global probe out
        // from under us; retry until a full batch lands in our registry.
        for _ in 0..5 {
            set_probe(ProbeHandle::for_registry(registry.clone()));
            let _ = try_parallel_map(1, vec![1, 2, 3], |x: i32| {
                assert!(x != 2, "instrumented failure");
                x
            });
            if registry.counter("sweep_jobs_total").get() >= 3 {
                break;
            }
        }
        assert!(registry.counter("sweep_jobs_total").get() >= 3);
        assert!(registry.counter("sweep_panics_total").get() >= 1);
        assert!(
            registry
                .histogram("sweep_job_ms", smith85_obs::MS_BOUNDS)
                .count()
                >= 3
        );
    }

    #[test]
    fn journaled_sweep_records_job_spans_and_panic_events() {
        use smith85_tracelog::{EventKind, RingJournal, SinkHandle};
        let journal = std::sync::Arc::new(RingJournal::new(2, 1024));
        let root = TraceContext::root_with_id(
            SinkHandle::new(journal.clone()),
            "sweeptest",
            "sweep",
            vec![],
        );
        {
            let _enter = tracelog::enter(root.ctx().clone());
            let _ = try_parallel_map(4, (0..6).collect(), |x: i32| {
                assert!(x != 2, "cell {x} dies");
                x
            });
        }
        drop(root);
        let events = journal.snapshot();
        let starts = events
            .iter()
            .filter(|e| e.kind == EventKind::SpanStart && e.name == "sweep_job")
            .count();
        assert_eq!(starts, 6, "one span per job");
        let ends = events
            .iter()
            .filter(|e| e.kind == EventKind::SpanEnd && e.name == "sweep_job")
            .count();
        assert_eq!(ends, 6, "panicked job's span still closes");
        let panic_event = events
            .iter()
            .find(|e| e.kind == EventKind::Event && e.name == "sweep_job_panic")
            .expect("panic error event");
        assert_eq!(panic_event.severity, Severity::Error);
        assert!(panic_event
            .fields
            .iter()
            .any(|(k, v)| k == "message"
                && v.as_str().is_some_and(|m| m.contains("cell 2 dies"))));
        assert!(events.iter().all(|e| &*e.trace_id == "sweeptest"));
    }

    #[test]
    fn non_string_panic_payload_is_placeholdered() {
        let err = try_parallel_map(1, vec![0], |_| -> i32 {
            std::panic::panic_any(42i32);
        })
        .unwrap_err();
        assert_eq!(err.failures[0].message, "non-string panic payload");
    }
}
