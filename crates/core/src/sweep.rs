//! Parallel execution of independent simulation jobs.
//!
//! The experiments sweep (workload × cache size × policy) grids of
//! independent trace-driven simulations; this module fans them out over a
//! bounded set of worker threads with `crossbeam`'s scoped threads, so no
//! `'static` bounds leak into the experiment code.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Applies `f` to every item, in parallel, preserving input order.
///
/// `threads = 1` runs inline (useful under test); otherwise up to `threads`
/// workers pull items off a shared queue.
///
/// # Panics
///
/// Propagates a panic from any job after all workers stop.
pub fn parallel_map<T, R, F>(threads: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = threads.max(1);
    if threads == 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let n = items.len();
    let next = AtomicUsize::new(0);
    let inputs: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let outputs: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    crossbeam::thread::scope(|scope| {
        for _ in 0..threads.min(n) {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = inputs[i]
                    .lock()
                    .expect("input mutex poisoned")
                    .take()
                    .expect("each input taken once");
                let out = f(item);
                *outputs[i].lock().expect("output mutex poisoned") = Some(out);
            });
        }
    })
    .expect("a simulation job panicked");
    outputs
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("output mutex poisoned")
                .expect("all jobs completed")
        })
        .collect()
}

/// A sensible default worker count: the machine's parallelism.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(4, |n| n.get())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = parallel_map(4, (0..100).collect(), |x: i32| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_inline() {
        let out = parallel_map(1, vec![1, 2, 3], |x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = parallel_map(8, Vec::<i32>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn handles_non_copy_items() {
        let items: Vec<String> = (0..10).map(|i| format!("s{i}")).collect();
        let out = parallel_map(3, items, |s| s.len());
        assert_eq!(out.len(), 10);
    }

    #[test]
    fn default_threads_positive() {
        assert!(default_threads() >= 1);
    }
}
