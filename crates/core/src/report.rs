//! Plain-text table and series rendering for experiment output.

use std::fmt::Write as _;

/// Column alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    /// Left-aligned (names, labels).
    Left,
    /// Right-aligned (numbers).
    Right,
}

/// A simple monospace table builder.
///
/// ```
/// use smith85_core::report::TextTable;
///
/// let mut t = TextTable::new(vec!["trace", "miss"]);
/// t.row(vec!["MVS1".to_string(), "0.31".to_string()]);
/// let s = t.render();
/// assert!(s.contains("MVS1"));
/// assert!(s.lines().count() >= 3);
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    aligns: Vec<Align>,
}

impl TextTable {
    /// Creates a table with the given headers; the first column is
    /// left-aligned, the rest right-aligned (override with
    /// [`aligns`](Self::aligns)).
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        let headers: Vec<String> = headers.into_iter().map(Into::into).collect();
        let mut aligns = vec![Align::Right; headers.len()];
        if let Some(first) = aligns.first_mut() {
            *first = Align::Left;
        }
        TextTable {
            aligns,
            headers,
            rows: Vec::new(),
        }
    }

    /// Overrides column alignments.
    ///
    /// # Panics
    ///
    /// Panics if the length differs from the header count.
    pub fn aligns(&mut self, aligns: Vec<Align>) -> &mut Self {
        assert_eq!(aligns.len(), self.headers.len(), "alignment count mismatch");
        self.aligns = aligns;
        self
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "cell count mismatch");
        self.rows.push(cells);
        self
    }

    /// Appends a horizontal rule.
    pub fn rule(&mut self) -> &mut Self {
        self.rows.push(Vec::new());
        self
    }

    /// Renders the table as CSV (header row first; cells containing
    /// commas or quotes are quoted).
    pub fn render_csv(&self) -> String {
        let escape = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        let emit = |out: &mut String, cells: &[String]| {
            let line: Vec<String> = cells.iter().map(|c| escape(c)).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        };
        emit(&mut out, &self.headers);
        for row in &self.rows {
            if !row.is_empty() {
                emit(&mut out, row);
            }
        }
        out
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let ncol = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let emit = |out: &mut String, cells: &[String], aligns: &[Align]| {
            for i in 0..ncol {
                if i > 0 {
                    out.push_str("  ");
                }
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                let pad = widths[i].saturating_sub(cell.chars().count());
                match aligns[i] {
                    Align::Left => {
                        out.push_str(cell);
                        out.extend(std::iter::repeat_n(' ', pad));
                    }
                    Align::Right => {
                        out.extend(std::iter::repeat_n(' ', pad));
                        out.push_str(cell);
                    }
                }
            }
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        emit(&mut out, &self.headers, &self.aligns);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncol - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            if row.is_empty() {
                let _ = writeln!(out, "{}", "-".repeat(total));
            } else {
                emit(&mut out, row, &self.aligns);
            }
        }
        out
    }
}

/// Formats a miss ratio the way the paper's tables do.
pub fn fmt_ratio(x: f64) -> String {
    format!("{x:.4}")
}

/// Formats a ratio-of-ratios (prefetch factors, traffic factors).
pub fn fmt_factor(x: f64) -> String {
    format!("{x:.3}")
}

/// Renders an ASCII log-log style series plot: one line per (label, y)
/// pair at each x, as the textual stand-in for the paper's figures.
///
/// Values are laid out as rows of `label: y1 y2 y3 ...` plus a shared
/// header of x values; the point is regenerating the *numbers* behind each
/// figure, not the artwork.
pub fn render_series(title: &str, xs: &[usize], series: &[(String, Vec<f64>)]) -> String {
    let mut t = TextTable::new(
        std::iter::once("series".to_string())
            .chain(xs.iter().map(|x| x.to_string()))
            .collect::<Vec<_>>(),
    );
    for (label, ys) in series {
        let mut row = vec![label.clone()];
        row.extend(ys.iter().map(|y| fmt_ratio(*y)));
        t.row(row);
    }
    format!("{title}\n{}", t.render())
}

/// Renders a log-y ASCII plot of one or more series against the cache-size
/// sweep — the textual stand-in for the paper's figure artwork.
///
/// Each series gets a letter glyph; `xs` labels the columns (sizes are
/// assumed to double per step, matching the paper's log-x axes). Zero or
/// negative values are clamped to the bottom row.
pub fn ascii_plot(title: &str, xs: &[usize], series: &[(String, Vec<f64>)]) -> String {
    const HEIGHT: usize = 16;
    const COL_WIDTH: usize = 6;
    if xs.is_empty() || series.is_empty() {
        return format!("{title}\n(no data)\n");
    }
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for (_, ys) in series {
        for &y in ys {
            if y > 0.0 {
                lo = lo.min(y);
                hi = hi.max(y);
            }
        }
    }
    if !lo.is_finite() || lo == hi {
        lo = 0.001;
        hi = 1.0;
    }
    let (log_lo, log_hi) = (lo.log10(), hi.log10());
    let row_of = |y: f64| -> usize {
        if y <= 0.0 {
            return HEIGHT - 1;
        }
        let t = (y.log10() - log_lo) / (log_hi - log_lo).max(1e-12);
        let r = ((1.0 - t) * (HEIGHT - 1) as f64).round();
        (r.max(0.0) as usize).min(HEIGHT - 1)
    };
    let width = xs.len() * COL_WIDTH;
    let mut grid = vec![vec![' '; width]; HEIGHT];
    for (si, (_, ys)) in series.iter().enumerate() {
        let glyph = (b'A' + (si % 26) as u8) as char;
        for (xi, &y) in ys.iter().enumerate().take(xs.len()) {
            let col = xi * COL_WIDTH + COL_WIDTH / 2;
            grid[row_of(y)][col] = glyph;
        }
    }
    let mut out = format!("{title}\n");
    for (r, row) in grid.iter().enumerate() {
        let label = if r == 0 {
            format!("{hi:>8.4} |")
        } else if r == HEIGHT - 1 {
            format!("{lo:>8.4} |")
        } else {
            format!("{:>8} |", "")
        };
        let line: String = row.iter().collect();
        out.push_str(&label);
        out.push_str(line.trim_end());
        out.push('\n');
    }
    out.push_str(&format!("{:>8} +{}\n", "", "-".repeat(width)));
    out.push_str(&format!("{:>8}  ", ""));
    for &x in xs {
        let label = if x >= 1024 {
            format!("{}K", x / 1024)
        } else {
            x.to_string()
        };
        out.push_str(&format!("{label:^width$}", width = COL_WIDTH));
    }
    out.push('\n');
    for (si, (name, _)) in series.iter().enumerate() {
        let glyph = (b'A' + (si % 26) as u8) as char;
        out.push_str(&format!("  {glyph} = {name}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer".into(), "22".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Right-aligned number column.
        assert!(lines[2].ends_with(" 1"));
        assert!(lines[3].ends_with("22"));
    }

    #[test]
    fn csv_export_quotes_when_needed() {
        let mut t = TextTable::new(vec!["name", "value"]);
        t.row(vec!["plain".into(), "1".into()]);
        t.rule();
        t.row(vec!["has,comma".into(), "say \"hi\"".into()]);
        let csv = t.render_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "name,value");
        assert_eq!(lines[1], "plain,1");
        assert_eq!(lines[2], "\"has,comma\",\"say \"\"hi\"\"\"");
        assert_eq!(lines.len(), 3); // rules dropped
    }

    #[test]
    fn rule_inserts_separator() {
        let mut t = TextTable::new(vec!["a"]);
        t.row(vec!["x".into()]);
        t.rule();
        t.row(vec!["y".into()]);
        let s = t.render();
        assert_eq!(s.lines().filter(|l| l.starts_with('-')).count(), 2);
    }

    #[test]
    #[should_panic(expected = "cell count")]
    fn wrong_arity_rejected() {
        TextTable::new(vec!["a", "b"]).row(vec!["only-one".into()]);
    }

    #[test]
    fn series_contains_all_labels() {
        let s = render_series(
            "Figure X",
            &[32, 64],
            &[("MVS1".to_string(), vec![0.5, 0.4])],
        );
        assert!(s.contains("Figure X"));
        assert!(s.contains("MVS1"));
        assert!(s.contains("0.5000"));
    }

    #[test]
    fn ascii_plot_places_series_and_legend() {
        let p = ascii_plot(
            "Figure test",
            &[1024, 2048],
            &[
                ("hot".to_string(), vec![0.5, 0.25]),
                ("cold".to_string(), vec![0.01, 0.005]),
            ],
        );
        assert!(p.contains("Figure test"));
        assert!(p.contains("A = hot"));
        assert!(p.contains("B = cold"));
        assert!(p.contains("1K"));
        // Highest value labels the top row.
        assert!(p.contains("0.5000 |"));
    }

    #[test]
    fn ascii_plot_handles_degenerate_input() {
        let p = ascii_plot("empty", &[], &[]);
        assert!(p.contains("no data"));
        let p = ascii_plot("flat", &[64], &[("x".to_string(), vec![0.0])]);
        assert!(p.contains("flat"));
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_ratio(0.12345), "0.1235");
        assert_eq!(fmt_factor(1.5), "1.500");
    }
}
