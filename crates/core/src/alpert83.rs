//! The \[Alpe83\] Zilog Z80000 cache projections the paper critiques
//! (§1.2, §4.1) — the workload-selection cautionary tale that motivated
//! the whole study.
//!
//! Alpert et al. projected hit ratios for the Z80000's 256 bytes of
//! on-chip cache (16-byte sectors) of 0.62 / 0.75 / 0.88 for effective
//! block (transfer) sizes of 2 / 4 / 16 bytes, based on Z8000 traces.
//! Smith argues those traces — 16-bit code, a PDP-11-ported Unix, an
//! immature C compiler, small utilities — make the projections far too
//! optimistic for the 32-bit Z80000, and predicts ≈30% miss (0.70 hit) for
//! a 256-byte cache with 16-byte blocks under a realistic 32-bit workload.

use serde::{Deserialize, Serialize};

/// One of Alpert's projections.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Projection {
    /// Effective block (subblock transfer) size in bytes.
    pub fetch_bytes: usize,
    /// Projected hit ratio from \[Alpe83\].
    pub projected_hit: f64,
}

/// The three published projections.
pub const PROJECTIONS: [Projection; 3] = [
    Projection {
        fetch_bytes: 2,
        projected_hit: 0.62,
    },
    Projection {
        fetch_bytes: 4,
        projected_hit: 0.75,
    },
    Projection {
        fetch_bytes: 16,
        projected_hit: 0.88,
    },
];

/// The Z80000 cache storage size.
pub const CACHE_BYTES: usize = 256;
/// The Z80000 sector size.
pub const SECTOR_BYTES: usize = 16;

/// Smith's counter-prediction (§4.1): ≈30% miss for a 256-byte cache with
/// 16-byte blocks under a realistic 32-bit workload.
pub const SMITH_MISS_PREDICTION_16B: f64 = 0.30;

/// Looks up Alpert's projection for a transfer size.
pub fn projection_for(fetch_bytes: usize) -> Option<Projection> {
    PROJECTIONS.iter().copied().find(|p| p.fetch_bytes == fetch_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn projections_improve_with_block_size() {
        assert!(PROJECTIONS[0].projected_hit < PROJECTIONS[1].projected_hit);
        assert!(PROJECTIONS[1].projected_hit < PROJECTIONS[2].projected_hit);
    }

    #[test]
    fn smith_contradicts_alpert_at_16_bytes() {
        let alpert_miss = 1.0 - projection_for(16).unwrap().projected_hit;
        assert!(SMITH_MISS_PREDICTION_16B > 2.0 * alpert_miss);
    }

    #[test]
    fn lookup() {
        assert!(projection_for(4).is_some());
        assert!(projection_for(8).is_none());
    }
}
