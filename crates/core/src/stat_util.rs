//! Small statistical helpers: percentiles, mean, standard deviation.

/// Arithmetic mean (0 for an empty slice).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population standard deviation (0 for fewer than two values).
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// The `p`-th percentile (0-100) by linear interpolation between order
/// statistics — `percentile(xs, 85.0)` is the paper's "towards the worst of
/// the values observed, perhaps at the 85th percentile or so".
///
/// # Panics
///
/// Panics if `xs` is empty or `p` is outside `[0, 100]`.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    assert!(!xs.is_empty(), "percentile of an empty set");
    assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in percentile input"));
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Minimum and maximum of a non-empty slice.
///
/// # Panics
///
/// Panics if `xs` is empty.
pub fn min_max(xs: &[f64]) -> (f64, f64) {
    assert!(!xs.is_empty(), "min_max of an empty set");
    xs.iter().fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &x| {
        (lo.min(x), hi.max(x))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[]), 0.0);
        assert_eq!(std_dev(&[3.0]), 0.0);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 5.0);
        assert_eq!(percentile(&xs, 50.0), 3.0);
        assert!((percentile(&xs, 85.0) - 4.4).abs() < 1e-12);
    }

    #[test]
    fn percentile_is_order_free() {
        let a = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&a, 50.0), 3.0);
    }

    #[test]
    fn min_max_works() {
        assert_eq!(min_max(&[0.3, 0.1, 0.9]), (0.1, 0.9));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_rejects_empty() {
        percentile(&[], 50.0);
    }
}
