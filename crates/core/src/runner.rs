//! Checkpointed suite runner: every experiment, run to completion, with
//! resume.
//!
//! The full reproduction is a multi-minute (at paper scale, multi-hour)
//! batch job, and batch jobs die: a panicking experiment, a killed shell,
//! a full disk. This module makes the suite restartable. Each experiment
//! from [`registry`] runs inside [`std::panic::catch_unwind`]; its
//! rendered output is written **atomically** (tmp file, then rename) to
//! `<out>/<name>.json`, and a `manifest.json` summarising every
//! experiment's status, duration and error text is rewritten after each
//! one. A rerun with `resume = true` skips every experiment whose result
//! file already records a successful run under the *same configuration*
//! (hash of trace length and size sweep), so only failed or never-run
//! experiments execute again.
//!
//! Results are plain JSON written without a serializer dependency; the
//! format is documented in `EXPERIMENTS.md`.

use crate::experiments::{self, ExperimentConfig};
use std::fmt;
use std::fs;
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// One runnable experiment: a stable name and a render-to-text closure.
pub struct ExperimentEntry {
    /// Stable name, used for the result file and on `--resume`.
    pub name: &'static str,
    /// Runs the experiment and renders its paper-style output.
    pub run: fn(&ExperimentConfig) -> String,
}

/// Every experiment of the reproduction, in the paper's presentation
/// order (same order as `smith85-bench`'s `all_experiments`).
pub fn registry() -> Vec<ExperimentEntry> {
    macro_rules! entry {
        ($name:literal, $module:ident) => {
            ExperimentEntry {
                name: $name,
                run: |c| experiments::$module::run(c).render(),
            }
        };
    }
    vec![
        entry!("table2", table2),
        entry!("table1", table1),
        entry!("fig2", fig2),
        entry!("table3", table3),
        entry!("fig3_4", fig3_fig4),
        entry!("prefetch", prefetch),
        entry!("table5", table5),
        entry!("clark", clark_validation),
        entry!("z80000", z80000),
        entry!("m68020", m68020),
        entry!("traffic_ratio", traffic_ratio),
        entry!("design_grid", design_grid),
        entry!("trace_length", trace_length),
        entry!("multiprocessor", multiprocessor),
        entry!("calibration", calibration_report),
        entry!("multiprogramming", multiprogramming),
        entry!("line_size", line_size),
        entry!("fudge", fudge_validation),
        entry!("perturbations", perturbations),
        entry!("interface", interface_effects),
        entry!("ablations", ablations),
        entry!("family_conclusions", family_conclusions),
        entry!("conclusions", conclusions),
    ]
}

/// How a suite run treats its output directory.
#[derive(Debug, Clone)]
pub struct RunnerOptions {
    /// Directory for per-experiment results and `manifest.json`.
    pub out_dir: PathBuf,
    /// Skip experiments whose result file already records a successful
    /// run under the same configuration.
    pub resume: bool,
}

/// Final state of one experiment in a suite run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExperimentStatus {
    /// Ran and completed.
    Pass,
    /// Panicked; the manifest carries the message.
    Fail,
    /// Skipped on resume: a previous successful result was found.
    Skip,
}

impl ExperimentStatus {
    fn as_str(self) -> &'static str {
        match self {
            ExperimentStatus::Pass => "pass",
            ExperimentStatus::Fail => "fail",
            ExperimentStatus::Skip => "skip",
        }
    }
}

/// One experiment's outcome within a suite run.
#[derive(Debug, Clone)]
pub struct ExperimentOutcome {
    /// The experiment's registry name.
    pub name: &'static str,
    /// Pass, fail or skip.
    pub status: ExperimentStatus,
    /// Wall-clock milliseconds spent running (0 for skips).
    pub duration_ms: u64,
    /// The panic message, for failures.
    pub error: Option<String>,
}

/// The aggregate result of a suite run.
#[derive(Debug, Clone)]
pub struct SuiteReport {
    /// Per-experiment outcomes, in registry order.
    pub outcomes: Vec<ExperimentOutcome>,
    /// The configuration hash stamped on every result file.
    pub config_hash: String,
}

impl SuiteReport {
    /// Number of experiments with the given status.
    pub fn count(&self, status: ExperimentStatus) -> usize {
        self.outcomes.iter().filter(|o| o.status == status).count()
    }

    /// True when nothing failed.
    pub fn is_success(&self) -> bool {
        self.count(ExperimentStatus::Fail) == 0
    }
}

impl fmt::Display for SuiteReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "suite report (config {})", self.config_hash)?;
        for o in &self.outcomes {
            write!(f, "  {:<18} {:<5}", o.name, o.status.as_str())?;
            match (&o.error, o.status) {
                (Some(e), _) => writeln!(f, " {e}")?,
                (None, ExperimentStatus::Skip) => writeln!(f, " (cached)")?,
                (None, _) => writeln!(f, " {} ms", o.duration_ms)?,
            }
        }
        write!(
            f,
            "{} passed, {} failed, {} skipped",
            self.count(ExperimentStatus::Pass),
            self.count(ExperimentStatus::Fail),
            self.count(ExperimentStatus::Skip),
        )
    }
}

/// Runs the full [`registry`] with checkpointing; see the module docs.
///
/// # Errors
///
/// Returns an I/O error only for output-directory failures (creating it,
/// writing result files). Experiment panics are *not* errors: they are
/// recorded as [`ExperimentStatus::Fail`] outcomes.
pub fn run_suite(config: &ExperimentConfig, opts: &RunnerOptions) -> io::Result<SuiteReport> {
    run_suite_with(config, opts, &registry(), |_| {})
}

/// [`run_suite`] over a caller-supplied registry, reporting each outcome
/// to `progress` as it lands. Exposed so tests (and the CLI's fault
/// hooks) can inject deliberately failing experiments.
///
/// # Errors
///
/// See [`run_suite`].
pub fn run_suite_with(
    config: &ExperimentConfig,
    opts: &RunnerOptions,
    entries: &[ExperimentEntry],
    mut progress: impl FnMut(&ExperimentOutcome),
) -> io::Result<SuiteReport> {
    fs::create_dir_all(&opts.out_dir)?;
    let hash = config_hash(config);
    let suite_start = Instant::now();
    let mut outcomes: Vec<ExperimentOutcome> = Vec::with_capacity(entries.len());
    for entry in entries {
        let result_path = opts.out_dir.join(format!("{}.json", entry.name));
        let outcome = if opts.resume && has_fresh_result(&result_path, &hash) {
            ExperimentOutcome {
                name: entry.name,
                status: ExperimentStatus::Skip,
                duration_ms: 0,
                error: None,
            }
        } else {
            let start = Instant::now();
            let run = entry.run;
            let trace_ctx = smith85_tracelog::current();
            let span = trace_ctx.enabled().then(|| {
                trace_ctx.child(
                    "experiment",
                    vec![("name".to_string(), entry.name.into())],
                )
            });
            let _enter = span
                .as_ref()
                .map(|s| smith85_tracelog::enter(s.ctx().clone()));
            let caught = catch_unwind(AssertUnwindSafe(|| run(config)));
            if let (Some(span), Err(payload)) = (&span, &caught) {
                span.ctx().event(
                    smith85_tracelog::Severity::Error,
                    "experiment_panic",
                    vec![
                        ("name".to_string(), entry.name.into()),
                        (
                            "message".to_string(),
                            crate::sweep::panic_message(payload.as_ref()).into(),
                        ),
                    ],
                );
            }
            drop(_enter);
            drop(span);
            let duration_ms = start.elapsed().as_millis() as u64;
            match caught {
                Ok(rendered) => {
                    write_atomic(
                        &result_path,
                        &result_json(entry.name, &hash, duration_ms, &rendered),
                    )?;
                    ExperimentOutcome {
                        name: entry.name,
                        status: ExperimentStatus::Pass,
                        duration_ms,
                        error: None,
                    }
                }
                Err(payload) => {
                    // A stale success from an earlier configuration must
                    // not mask this failure on the next resume.
                    match fs::remove_file(&result_path) {
                        Ok(()) => {}
                        Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                        Err(e) => return Err(e),
                    }
                    ExperimentOutcome {
                        name: entry.name,
                        status: ExperimentStatus::Fail,
                        duration_ms,
                        error: Some(crate::sweep::panic_message(payload.as_ref())),
                    }
                }
            }
        };
        if outcome.status != ExperimentStatus::Skip {
            config.probe().count("suite_experiments_total", 1);
            config
                .probe()
                .observe("suite_experiment_ms", outcome.duration_ms as f64);
        }
        progress(&outcome);
        outcomes.push(outcome);
        // Rewriting the manifest after every experiment keeps it honest
        // even if the process dies mid-suite.
        write_atomic(
            &opts.out_dir.join("manifest.json"),
            &manifest_json(
                &hash,
                config.threads,
                &outcomes,
                suite_start.elapsed().as_millis() as u64,
            ),
        )?;
    }
    Ok(SuiteReport {
        outcomes,
        config_hash: hash,
    })
}

/// FNV-1a hash of the result-determining configuration fields. Thread
/// count is deliberately excluded: it changes speed, not results, so a
/// resume may continue under a different `--threads`.
pub fn config_hash(config: &ExperimentConfig) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(&(config.trace_len as u64).to_le_bytes());
    for &size in &config.sizes {
        eat(&(size as u64).to_le_bytes());
    }
    format!("{h:016x}")
}

/// True if `path` holds a successful result stamped with `hash`.
///
/// The check is a substring scan rather than a JSON parse — the runner
/// itself wrote the file, with known key order; anything unreadable or
/// unrecognized is simply treated as "no result, run it again".
/// Whether `path` holds a complete, parseable result for this config.
///
/// A checkpoint file can be corrupt — truncated by a crash mid-`fs::write`
/// on an older version, bit-rotted, or hand-edited. A resume must treat
/// such a file as "not done" and re-run the experiment rather than abort
/// the suite (or worse, trust the fragment); the damage is reported as a
/// `result_corrupt` warn event when a journal is attached.
fn has_fresh_result(path: &Path, hash: &str) -> bool {
    let text = match fs::read_to_string(path) {
        Ok(text) => text,
        Err(_) => return false,
    };
    let parsed = match smith85_tracelog::json::parse(&text) {
        Ok(parsed) => parsed,
        Err(err) => {
            let ctx = smith85_tracelog::current();
            if ctx.enabled() {
                ctx.event(
                    smith85_tracelog::Severity::Warn,
                    "result_corrupt",
                    vec![
                        ("path".to_string(), path.display().to_string().into()),
                        ("error".to_string(), err.to_string().into()),
                    ],
                );
            }
            return false;
        }
    };
    parsed.get("status").and_then(|v| v.as_str()) == Some("ok")
        && parsed.get("config_hash").and_then(|v| v.as_str()) == Some(hash)
}

/// Writes via a sibling `.tmp` file and an atomic rename, so readers (and
/// resumed runs) never observe a half-written result.
fn write_atomic(path: &Path, contents: &str) -> io::Result<()> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    fs::write(&tmp, contents)?;
    fs::rename(&tmp, path)
}

fn result_json(name: &str, hash: &str, duration_ms: u64, rendered: &str) -> String {
    format!(
        "{{\n  \"name\": \"{}\",\n  \"status\": \"ok\",\n  \"config_hash\": \"{}\",\n  \"duration_ms\": {},\n  \"rendered\": \"{}\"\n}}\n",
        json_escape(name),
        hash,
        duration_ms,
        json_escape(rendered),
    )
}

fn manifest_json(
    hash: &str,
    threads: usize,
    outcomes: &[ExperimentOutcome],
    total_wall_ms: u64,
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"config_hash\": \"{hash}\",\n"));
    s.push_str(&format!("  \"threads\": {threads},\n"));
    s.push_str("  \"timing\": {\n");
    s.push_str(&format!("    \"total_wall_ms\": {total_wall_ms},\n"));
    s.push_str("    \"phases\": [\n");
    for (i, o) in outcomes.iter().enumerate() {
        s.push_str(&format!(
            "      {{\"name\": \"{}\", \"wall_ms\": {}}}{}\n",
            json_escape(o.name),
            o.duration_ms,
            if i + 1 < outcomes.len() { "," } else { "" },
        ));
    }
    s.push_str("    ]\n");
    s.push_str("  },\n");
    s.push_str("  \"experiments\": [\n");
    for (i, o) in outcomes.iter().enumerate() {
        let error = match &o.error {
            Some(e) => format!("\"{}\"", json_escape(e)),
            None => "null".to_string(),
        };
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"status\": \"{}\", \"duration_ms\": {}, \"error\": {}}}{}\n",
            json_escape(o.name),
            o.status.as_str(),
            o.duration_ms,
            error,
            if i + 1 < outcomes.len() { "," } else { "" },
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Escapes a string for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> ExperimentConfig {
        ExperimentConfig::builder()
            .trace_len(500)
            .sizes(vec![256, 1024])
            .threads(1)
            .build()
            .unwrap()
    }

    fn temp_out(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "smith85-runner-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn fake_entries() -> Vec<ExperimentEntry> {
        vec![
            ExperimentEntry {
                name: "ok_a",
                run: |c| format!("a at {}", c.trace_len),
            },
            ExperimentEntry {
                name: "boom",
                run: |_| panic!("deliberate failure"),
            },
            ExperimentEntry {
                name: "ok_b",
                run: |_| "b".to_string(),
            },
        ]
    }

    #[test]
    fn registry_covers_every_experiment() {
        let names: Vec<_> = registry().iter().map(|e| e.name).collect();
        assert_eq!(names.len(), 23);
        let mut unique = names.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), names.len(), "duplicate registry names");
        for required in [
            "table1",
            "table2",
            "table3",
            "table5",
            "conclusions",
            "family_conclusions",
        ] {
            assert!(names.contains(&required), "missing {required}");
        }
    }

    #[test]
    fn panicking_experiment_does_not_abort_the_suite() {
        let out = temp_out("panic");
        let opts = RunnerOptions {
            out_dir: out.clone(),
            resume: false,
        };
        let report =
            run_suite_with(&tiny_config(), &opts, &fake_entries(), |_| {}).unwrap();
        assert!(!report.is_success());
        assert_eq!(report.count(ExperimentStatus::Pass), 2);
        assert_eq!(report.count(ExperimentStatus::Fail), 1);
        let failed = &report.outcomes[1];
        assert_eq!(failed.name, "boom");
        assert!(failed.error.as_deref().unwrap().contains("deliberate failure"));
        let manifest = fs::read_to_string(out.join("manifest.json")).unwrap();
        assert!(manifest.contains("\"status\": \"fail\""), "{manifest}");
        assert!(manifest.contains("deliberate failure"), "{manifest}");
        assert!(manifest.contains("\"threads\": 1"), "{manifest}");
        assert!(manifest.contains("\"total_wall_ms\":"), "{manifest}");
        assert!(
            manifest.contains("{\"name\": \"ok_a\", \"wall_ms\":"),
            "per-phase timing missing: {manifest}"
        );
        assert!(out.join("ok_a.json").exists());
        assert!(!out.join("boom.json").exists());
        fs::remove_dir_all(&out).unwrap();
    }

    #[test]
    fn resume_reruns_only_the_failed_entry() {
        let out = temp_out("resume");
        let opts = RunnerOptions {
            out_dir: out.clone(),
            resume: false,
        };
        let config = tiny_config();
        run_suite_with(&config, &opts, &fake_entries(), |_| {}).unwrap();

        // Second run, resuming, with the failure repaired.
        let mut repaired = fake_entries();
        repaired[1].run = |_| "fixed".to_string();
        let opts = RunnerOptions {
            out_dir: out.clone(),
            resume: true,
        };
        let mut ran: Vec<&str> = Vec::new();
        let report = run_suite_with(&config, &opts, &repaired, |o| {
            if o.status != ExperimentStatus::Skip {
                ran.push(o.name);
            }
        })
        .unwrap();
        assert_eq!(ran, vec!["boom"], "only the failed entry re-runs");
        assert!(report.is_success());
        assert_eq!(report.count(ExperimentStatus::Skip), 2);
        assert!(out.join("boom.json").exists());
        fs::remove_dir_all(&out).unwrap();
    }

    #[test]
    fn resume_reruns_a_corrupt_checkpoint_instead_of_trusting_it() {
        let out = temp_out("corrupt");
        let config = tiny_config();
        let opts = RunnerOptions {
            out_dir: out.clone(),
            resume: false,
        };
        let entries = vec![
            ExperimentEntry {
                name: "ok_a",
                run: |_| "a".to_string(),
            },
            ExperimentEntry {
                name: "ok_b",
                run: |_| "b".to_string(),
            },
        ];
        run_suite_with(&config, &opts, &entries, |_| {}).unwrap();

        // Crash damage: truncate one checkpoint mid-token (unparseable)
        // — the substring check alone would still have rejected an empty
        // file, but a truncation can keep both matching substrings, so
        // the resume gate must actually parse.
        let full = fs::read_to_string(out.join("ok_a.json")).unwrap();
        assert!(full.contains("\"status\": \"ok\""));
        let cut = (full.find("\"rendered\"").unwrap() + 20).min(full.len() - 3);
        fs::write(out.join("ok_a.json"), &full[..cut]).unwrap();

        let opts = RunnerOptions {
            out_dir: out.clone(),
            resume: true,
        };
        let mut ran: Vec<&str> = Vec::new();
        let report = run_suite_with(&config, &opts, &entries, |o| {
            if o.status != ExperimentStatus::Skip {
                ran.push(o.name);
            }
        })
        .unwrap();
        assert_eq!(ran, vec!["ok_a"], "corrupt checkpoint must re-run");
        assert!(report.is_success());
        assert_eq!(report.count(ExperimentStatus::Skip), 1);
        // The re-run rewrote a parseable checkpoint.
        let repaired = fs::read_to_string(out.join("ok_a.json")).unwrap();
        assert!(smith85_tracelog::json::parse(&repaired).is_ok());
        fs::remove_dir_all(&out).unwrap();
    }

    #[test]
    fn corrupt_checkpoint_warns_via_tracelog() {
        use smith85_tracelog::{RingJournal, SinkHandle};
        let out = temp_out("corruptwarn");
        fs::create_dir_all(&out).unwrap();
        fs::write(out.join("bad.json"), "{\"status\": \"ok\", \"config_hash\": \"x").unwrap();

        let journal = std::sync::Arc::new(RingJournal::new(1, 64));
        let sink = SinkHandle::new(journal.clone());
        let root = smith85_tracelog::TraceContext::root(sink, "test", Vec::new());
        {
            let _guard = smith85_tracelog::enter(root.ctx().clone());
            assert!(!has_fresh_result(&out.join("bad.json"), "x"));
        }
        drop(root);

        let events = journal.snapshot();
        assert!(
            events.iter().any(|e| e.name == "result_corrupt"),
            "expected a result_corrupt warn event, got {:?}",
            events.iter().map(|e| e.name.clone()).collect::<Vec<_>>()
        );
        fs::remove_dir_all(&out).unwrap();
    }

    #[test]
    fn config_change_invalidates_cached_results() {
        let out = temp_out("confighash");
        let config = tiny_config();
        let opts = RunnerOptions {
            out_dir: out.clone(),
            resume: true,
        };
        let entries = vec![ExperimentEntry {
            name: "ok_a",
            run: |c| format!("len {}", c.trace_len),
        }];
        run_suite_with(&config, &opts, &entries, |_| {}).unwrap();
        let mut bigger = config.clone();
        bigger.trace_len *= 2;
        let mut ran = 0;
        run_suite_with(&bigger, &opts, &entries, |o| {
            if o.status == ExperimentStatus::Pass {
                ran += 1;
            }
        })
        .unwrap();
        assert_eq!(ran, 1, "changed config must re-run");
        fs::remove_dir_all(&out).unwrap();
    }

    #[test]
    fn thread_count_does_not_change_the_hash() {
        let a = tiny_config();
        let mut b = tiny_config();
        b.threads = 97;
        assert_eq!(config_hash(&a), config_hash(&b));
        let mut c = tiny_config();
        c.sizes.push(4096);
        assert_ne!(config_hash(&a), config_hash(&c));
    }

    #[test]
    fn json_escape_handles_control_and_quotes() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn report_display_summarises() {
        let report = SuiteReport {
            outcomes: vec![
                ExperimentOutcome {
                    name: "x",
                    status: ExperimentStatus::Pass,
                    duration_ms: 5,
                    error: None,
                },
                ExperimentOutcome {
                    name: "y",
                    status: ExperimentStatus::Fail,
                    duration_ms: 1,
                    error: Some("boom".into()),
                },
            ],
            config_hash: "deadbeef".into(),
        };
        let text = report.to_string();
        assert!(text.contains("1 passed, 1 failed, 0 skipped"), "{text}");
        assert!(text.contains("boom"), "{text}");
    }
}
