//! CPU-performance model: turning miss ratios into instruction rates.
//!
//! The paper's introduction frames cache design as a cost/performance
//! trade ("a cache which achieves a 99% hit ratio may cost 80% more than
//! one which achieves 98% ... and may only boost overall CPU performance
//! by 8%"), and §1.2 quotes Merill's measurement that a 370/168 went from
//! 2.07 to 2.34 MIPS when its hit ratio rose from 0.969 to 0.988. This
//! module is the standard CPI decomposition those statements rest on:
//!
//! ```text
//! CPI = CPI_base + refs_per_instr × miss_ratio × miss_penalty
//! MIPS = 1000 / (CPI × cycle_ns)
//! ```

use serde::{Deserialize, Serialize};

/// A simple machine-performance model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MachineModel {
    /// Cycles per instruction with a perfect (always-hit) cache.
    pub base_cpi: f64,
    /// Memory references per instruction (the paper's rule of thumb for
    /// 370/VAX-class machines is 2).
    pub refs_per_instr: f64,
    /// Additional cycles per cache miss.
    pub miss_penalty: f64,
    /// Cycle time in nanoseconds.
    pub cycle_ns: f64,
}

impl MachineModel {
    /// A 370/168-class mainframe: the configuration that reproduces the
    /// Merill MIPS anecdote of §1.2 (≈2 MIPS at a ~0.93-hit cache era).
    pub const IBM_370_168: MachineModel = MachineModel {
        base_cpi: 5.0,
        refs_per_instr: 2.0,
        miss_penalty: 12.0,
        cycle_ns: 80.0,
    };

    /// A generic 32-bit microprocessor of the paper's era.
    pub const MICRO_32: MachineModel = MachineModel {
        base_cpi: 4.0,
        refs_per_instr: 2.0,
        miss_penalty: 8.0,
        cycle_ns: 100.0,
    };

    /// Cycles per instruction at a given miss ratio.
    ///
    /// # Panics
    ///
    /// Panics if `miss_ratio` is outside `[0, 1]`.
    pub fn cpi(&self, miss_ratio: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&miss_ratio),
            "miss ratio {miss_ratio} out of range"
        );
        self.base_cpi + self.refs_per_instr * miss_ratio * self.miss_penalty
    }

    /// Instruction rate in MIPS at a given miss ratio.
    ///
    /// # Panics
    ///
    /// Panics if `miss_ratio` is outside `[0, 1]`.
    pub fn mips(&self, miss_ratio: f64) -> f64 {
        1000.0 / (self.cpi(miss_ratio) * self.cycle_ns)
    }

    /// Relative speedup from improving the miss ratio from `worse` to
    /// `better` (> 1 means faster).
    ///
    /// # Panics
    ///
    /// Panics if either ratio is outside `[0, 1]`.
    pub fn speedup(&self, worse: f64, better: f64) -> f64 {
        self.cpi(worse) / self.cpi(better)
    }
}

/// The intro's worked example: how much performance a hit-ratio
/// improvement buys, as a percentage.
pub fn performance_gain_percent(model: &MachineModel, hit_from: f64, hit_to: f64) -> f64 {
    100.0 * (model.speedup(1.0 - hit_from, 1.0 - hit_to) - 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpi_grows_linearly_with_miss_ratio() {
        let m = MachineModel::MICRO_32;
        let lo = m.cpi(0.01);
        let hi = m.cpi(0.02);
        assert!((hi - lo - m.refs_per_instr * 0.01 * m.miss_penalty).abs() < 1e-12);
    }

    #[test]
    fn intro_example_98_to_99_is_single_digit_gain() {
        // "may only boost overall CPU performance by 8%".
        let gain = performance_gain_percent(&MachineModel::MICRO_32, 0.98, 0.99);
        assert!((2.0..=10.0).contains(&gain), "{gain}%");
    }

    #[test]
    fn intro_example_80_to_90_is_large_gain() {
        // "if the same two designs yield hit ratios of 90% and 80% ... the
        // performance increase would be 50%".
        let model = MachineModel {
            base_cpi: 2.0,
            refs_per_instr: 2.0,
            miss_penalty: 10.0,
            cycle_ns: 100.0,
        };
        let gain = performance_gain_percent(&model, 0.80, 0.90);
        assert!((30.0..=70.0).contains(&gain), "{gain}%");
    }

    #[test]
    fn merill_mips_anecdote_reproduces() {
        // §1.2: 2.07 → 2.34 MIPS as the hit ratio went 0.969 → 0.988.
        let m = MachineModel::IBM_370_168;
        let slow = m.mips(1.0 - 0.969);
        let fast = m.mips(1.0 - 0.988);
        assert!((1.7..=2.4).contains(&slow), "slow {slow}");
        assert!(fast > slow);
        let ratio = fast / slow;
        let merill = 2.34 / 2.07;
        assert!((ratio - merill).abs() < 0.08, "ratio {ratio} vs Merill {merill}");
    }

    #[test]
    fn speedup_is_reciprocal_consistent() {
        let m = MachineModel::MICRO_32;
        let s = m.speedup(0.2, 0.1);
        let r = m.speedup(0.1, 0.2);
        assert!((s * r - 1.0).abs() < 1e-12);
        assert!(s > 1.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_miss_ratio() {
        MachineModel::MICRO_32.cpi(1.5);
    }
}
