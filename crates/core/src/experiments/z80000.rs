//! **The Z80000 sector-cache study** (§1.2, §4.1) — the workload-selection
//! cautionary tale.
//!
//! Alpert et al. projected 0.62 / 0.75 / 0.88 hit ratios for the Z80000's
//! 256-byte on-chip cache (16-byte sectors, 2 / 4 / 16-byte transfers)
//! from Z8000 traces. This experiment runs the same sector cache against
//! (a) our Z8000-like workloads and (b) realistic 32-bit workloads (the
//! VAX and 370 profiles the paper says should have been used), showing how
//! workload choice flips the conclusion: the paper predicts ≈30% miss
//! (0.70 hit) at a 16-byte block.

use crate::alpert83;
use crate::experiments::ExperimentConfig;
use crate::report::TextTable;
use crate::stat_util::mean;
use crate::sweep::parallel_map;
use serde::{Deserialize, Serialize};
use smith85_cachesim::{SectorCache, SectorCacheConfig};
use smith85_synth::{catalog, TraceGroup};

/// Average hit ratio of one workload family at one transfer size.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FamilyHit {
    /// Transfer (subblock) size in bytes.
    pub fetch_bytes: usize,
    /// Mean hit ratio over the Z8000 workloads (Alpert's trace family).
    pub z8000_hit: f64,
    /// Mean hit ratio over the 32-bit workloads (VAX + IBM 370).
    pub thirty_two_bit_hit: f64,
    /// Alpert's published projection.
    pub alpert_projection: f64,
}

/// The Z80000 study result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Z80000Study {
    /// One row per transfer size (2, 4, 16).
    pub rows: Vec<FamilyHit>,
}

fn family_profiles(groups: &[TraceGroup]) -> Vec<smith85_synth::ProgramProfile> {
    catalog::all()
        .iter()
        .filter(|s| groups.contains(&s.group()))
        .map(|s| s.profile().clone())
        .collect()
}

/// Runs the study.
pub fn run(config: &ExperimentConfig) -> Z80000Study {
    let z_family = family_profiles(&[TraceGroup::Z8000]);
    let wide_family = family_profiles(&[TraceGroup::VaxUnix, TraceGroup::Ibm370]);
    let len = config.trace_len;
    let rows = alpert83::PROJECTIONS
        .iter()
        .map(|proj| {
            let hit_of = |profiles: &[smith85_synth::ProgramProfile]| {
                let hits = parallel_map(config.threads, profiles.to_vec(), |p| {
                    let trace = config.profile_trace(&p);
                    let mut cache = SectorCache::new(SectorCacheConfig::z80000(proj.fetch_bytes))
                        .expect("Z80000 sector configuration is valid");
                    cache.run_slice(&trace.as_slice()[..len]);
                    cache.stats().hit_ratio()
                });
                mean(&hits)
            };
            FamilyHit {
                fetch_bytes: proj.fetch_bytes,
                z8000_hit: hit_of(&z_family),
                thirty_two_bit_hit: hit_of(&wide_family),
                alpert_projection: proj.projected_hit,
            }
        })
        .collect();
    Z80000Study { rows }
}

impl Z80000Study {
    /// Renders the comparison.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec![
            "transfer",
            "Alpert (Z8000 traces)",
            "ours: Z8000 workloads",
            "ours: 32-bit workloads",
        ]);
        for r in &self.rows {
            t.row(vec![
                format!("{} B", r.fetch_bytes),
                format!("{:.2}", r.alpert_projection),
                format!("{:.2}", r.z8000_hit),
                format!("{:.2}", r.thirty_two_bit_hit),
            ]);
        }
        format!(
            "Z80000 256-byte sector cache: projected hit ratios by workload \
             family\n{}\nSmith's prediction for a 256 B cache with 16 B blocks \
             under a realistic 32-bit workload: miss ≈ {:.2} (hit ≈ {:.2})\n",
            t.render(),
            alpert83::SMITH_MISS_PREDICTION_16B,
            1.0 - alpert83::SMITH_MISS_PREDICTION_16B,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentConfig {
        ExperimentConfig::builder()
            .trace_len(20_000)
            .sizes(vec![256])
            .threads(4)
            .build()
            .unwrap()
    }

    #[test]
    fn three_transfer_sizes() {
        let s = run(&tiny());
        assert_eq!(s.rows.len(), 3);
        assert_eq!(s.rows[0].fetch_bytes, 2);
        assert_eq!(s.rows[2].fetch_bytes, 16);
    }

    #[test]
    fn hit_ratio_grows_with_transfer_size() {
        let s = run(&tiny());
        assert!(s.rows[0].z8000_hit < s.rows[2].z8000_hit);
        assert!(s.rows[0].thirty_two_bit_hit < s.rows[2].thirty_two_bit_hit);
    }

    #[test]
    fn workload_choice_flips_the_conclusion() {
        // The paper's headline: Z8000 workloads look far better in this
        // cache than realistic 32-bit workloads.
        let s = run(&tiny());
        for r in &s.rows {
            // Both families thrash at 2-byte transfers; the gap is clear
            // from 4 bytes up.
            let margin = if r.fetch_bytes == 2 { 0.0 } else { 0.05 };
            assert!(
                r.z8000_hit > r.thirty_two_bit_hit + margin,
                "{} B: z8000 {:.2} vs 32-bit {:.2}",
                r.fetch_bytes,
                r.z8000_hit,
                r.thirty_two_bit_hit
            );
        }
    }

    #[test]
    fn thirty_two_bit_hit_is_near_smith_prediction() {
        let s = run(&tiny());
        let hit_16 = s.rows[2].thirty_two_bit_hit;
        // Smith says ~0.70; accept a generous band around it.
        assert!((0.5..=0.85).contains(&hit_16), "{hit_16}");
    }

    #[test]
    fn render_quotes_all_sources() {
        let s = run(&tiny()).render();
        assert!(s.contains("Alpert"));
        assert!(s.contains("Smith's prediction"));
    }
}
