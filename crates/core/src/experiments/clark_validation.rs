//! **§4.1 validation against \[Clar83\]** — the paper checks its design
//! targets against Clark's hardware measurements of the VAX-11/780.
//!
//! We reproduce the chain of reasoning: take the design target at 8 KiB
//! (and 4 KiB) with 16-byte lines, convert to Clark's 8-byte-line regime
//! with the paper's halving rule, and compare with the measured miss
//! ratios — then do the same with our own simulated VAX workload.

use crate::clark83;
use crate::experiments::ExperimentConfig;
use crate::report::{fmt_ratio, TextTable};
use crate::stat_util::mean;
use crate::sweep::parallel_map;
use crate::targets::{design_target, CacheKind};
use serde::{Deserialize, Serialize};
use smith85_cachesim::StackAnalyzer;
use smith85_synth::{catalog, TraceGroup};

/// One comparison row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClarkRow {
    /// Cache size (bytes).
    pub size: usize,
    /// Clark's measured overall miss ratio (8-byte lines).
    pub clark_overall: f64,
    /// The paper's design target (16-byte lines) converted to 8-byte
    /// lines.
    pub target_as_8b: f64,
    /// Our simulated VAX workload's mean miss ratio (16-byte lines)
    /// converted to 8-byte lines.
    pub simulated_as_8b: f64,
}

/// The validation result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClarkValidation {
    /// The 8 KiB and 4 KiB rows.
    pub rows: Vec<ClarkRow>,
    /// §1.2's anecdote: the DEC trace-driven prediction vs measurement.
    pub dec_predicted_hit: f64,
}

/// Runs the validation.
pub fn run(config: &ExperimentConfig) -> ClarkValidation {
    let vax: Vec<_> = catalog::all()
        .into_iter()
        .filter(|s| s.group() == TraceGroup::VaxUnix)
        .collect();
    let len = config.trace_len;
    let profiles = parallel_map(config.threads, vax, |spec| {
        let trace = config.profile_trace(spec.profile());
        let mut a =
            StackAnalyzer::with_line_size_and_capacity(smith85_trace::PAPER_LINE_SIZE, len);
        a.observe_slice(&trace.as_slice()[..len]);
        a.finish()
    });
    let rows = [clark83::FULL_CACHE, clark83::HALF_CACHE]
        .iter()
        .map(|c| {
            let sim16 = mean(
                &profiles
                    .iter()
                    .map(|p| p.miss_ratio(c.cache_bytes))
                    .collect::<Vec<_>>(),
            );
            ClarkRow {
                size: c.cache_bytes,
                clark_overall: c.overall_miss,
                target_as_8b: clark83::to_8_byte_lines(design_target(
                    c.cache_bytes,
                    CacheKind::Unified,
                )),
                simulated_as_8b: clark83::to_8_byte_lines(sim16),
            }
        })
        .collect();
    ClarkValidation {
        rows,
        dec_predicted_hit: clark83::DEC_SIMULATION_PREDICTED_HIT,
    }
}

impl ClarkValidation {
    /// Renders the comparison.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec![
            "size",
            "Clark measured",
            "paper target (as 8B lines)",
            "our VAX sims (as 8B lines)",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.size.to_string(),
                fmt_ratio(r.clark_overall),
                fmt_ratio(r.target_as_8b),
                fmt_ratio(r.simulated_as_8b),
            ]);
        }
        format!(
            "§4.1 validation against Clark's VAX-11/780 measurements\n{}\n\
             (§1.2: DEC's own trace-driven study predicted a {:.1}% hit \
             ratio vs the ~89.7% measured — traces can mislead.)\n",
            t.render(),
            100.0 * self.dec_predicted_hit,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentConfig {
        ExperimentConfig::builder()
            .trace_len(20_000)
            .sizes(vec![8192])
            .threads(4)
            .build()
            .unwrap()
    }

    #[test]
    fn two_rows_8k_and_4k() {
        let v = run(&tiny());
        assert_eq!(v.rows.len(), 2);
        assert_eq!(v.rows[0].size, 8192);
        assert_eq!(v.rows[1].size, 4096);
    }

    #[test]
    fn paper_target_is_not_out_of_line_with_clark() {
        // §4.1's own standard: the converted target (0.16 at 8K) is within
        // ~60% of Clark's 0.103 measurement.
        let v = run(&tiny());
        let r = &v.rows[0];
        assert!(r.target_as_8b > r.clark_overall * 0.8);
        assert!(r.target_as_8b < r.clark_overall * 2.0);
    }

    #[test]
    fn simulations_track_measurement_order_of_magnitude() {
        let v = run(&tiny());
        for r in &v.rows {
            assert!(
                r.simulated_as_8b > r.clark_overall * 0.1
                    && r.simulated_as_8b < r.clark_overall * 4.0,
                "size {}: simulated {} vs measured {}",
                r.size,
                r.simulated_as_8b,
                r.clark_overall
            );
        }
    }

    #[test]
    fn render_tells_the_dec_anecdote() {
        assert!(run(&tiny()).render().contains("DEC"));
    }
}
