//! **Figure 2** — the \[Hard80\] supervisor- and problem-state miss-ratio
//! curves the paper reproduces for comparison with its MVS traces.

use crate::experiments::ExperimentConfig;
use crate::hard80;
use crate::report::render_series;
use serde::{Deserialize, Serialize};

/// The Figure 2 result: analytic curves evaluated at the swept sizes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig2 {
    /// Cache sizes (bytes).
    pub sizes: Vec<usize>,
    /// Supervisor-state miss ratios.
    pub supervisor: Vec<f64>,
    /// Problem-state miss ratios.
    pub problem: Vec<f64>,
    /// Cycle-weighted blend (73% supervisor, per \[Mil85\]).
    pub blended: Vec<f64>,
}

/// Runs the experiment (pure evaluation of the analytic model).
pub fn run(config: &ExperimentConfig) -> Fig2 {
    let sizes = config.sizes.clone();
    Fig2 {
        supervisor: sizes.iter().map(|&s| hard80::SUPERVISOR.miss_ratio(s)).collect(),
        problem: sizes.iter().map(|&s| hard80::PROBLEM.miss_ratio(s)).collect(),
        blended: sizes.iter().map(|&s| hard80::blended_miss_ratio(s)).collect(),
        sizes,
    }
}

impl Fig2 {
    /// Renders the series (table plus an ASCII plot).
    pub fn render(&self) -> String {
        let series = [
            ("supervisor".to_string(), self.supervisor.clone()),
            ("problem".to_string(), self.problem.clone()),
            ("blended 73/27".to_string(), self.blended.clone()),
        ];
        format!(
            "{}\n{}",
            render_series(
                "Figure 2: [Hard80] IBM 370/MVS miss ratios (32-byte lines)",
                &self.sizes,
                &series,
            ),
            crate::report::ascii_plot("Figure 2 (log y)", &self.sizes, &series)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curves_match_module_constants() {
        let f = run(&ExperimentConfig::quick());
        for (i, &s) in f.sizes.iter().enumerate() {
            assert_eq!(f.supervisor[i], crate::hard80::SUPERVISOR.miss_ratio(s));
            assert!(f.supervisor[i] > f.problem[i]);
            assert!(f.blended[i] < f.supervisor[i] && f.blended[i] > f.problem[i]);
        }
    }

    #[test]
    fn render_mentions_both_states() {
        let s = run(&ExperimentConfig::quick()).render();
        assert!(s.contains("supervisor"));
        assert!(s.contains("problem"));
    }
}
