//! **The M68020 on-chip instruction cache speculation** (§3.4).
//!
//! The paper extrapolates from Figure 3 to the Motorola 68020's 256-byte,
//! 4-byte-block instruction cache: because a 4-byte block captures almost
//! none of the ~21 bytes fetched sequentially between branches, it
//! predicts miss ratios of 0.2 - 0.6 for most workloads (and suggests 0.25
//! as a point estimate for 16-byte lines at 256 bytes). It also notes
//! instruction prefetching would help dramatically at small block sizes.
//! This experiment runs the instruction streams of the Table 3 workloads
//! through 256-byte instruction caches at 4- and 16-byte lines, with and
//! without prefetch.

use crate::experiments::{table3_workloads, ExperimentConfig};
use crate::report::{fmt_ratio, TextTable};
use crate::stat_util::{mean, min_max};
use crate::sweep::parallel_map;
use serde::{Deserialize, Serialize};
use smith85_cachesim::{Cache, CacheConfig, FetchPolicy};

/// The M68020 cache size.
pub const CACHE_BYTES: usize = 256;

/// One workload's miss ratios in the four cache variants.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct M68020Row {
    /// Workload name.
    pub name: String,
    /// 4-byte lines, demand fetch (the real 68020 design).
    pub line4_demand: f64,
    /// 4-byte lines with prefetch-always.
    pub line4_prefetch: f64,
    /// 16-byte lines, demand fetch (the paper's preferred design point).
    pub line16_demand: f64,
    /// 16-byte lines with prefetch-always.
    pub line16_prefetch: f64,
}

/// The study result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct M68020Study {
    /// Per-workload rows.
    pub rows: Vec<M68020Row>,
    /// (min, max) of the 4-byte-line demand miss ratios — the paper's
    /// "0.2 to 0.6 for most workloads" claim.
    pub line4_range: (f64, f64),
    /// Mean of the 16-byte-line demand miss ratios — the paper's 0.25
    /// point estimate.
    pub line16_mean: f64,
}

fn icache_miss(
    w: &crate::experiments::Workload,
    line: usize,
    fetch: FetchPolicy,
    ifetches: &[smith85_trace::MemoryAccess],
) -> f64 {
    let config = CacheConfig::builder(CACHE_BYTES)
        .line_size(line)
        .fetch_policy(fetch)
        .purge_interval(Some(w.purge_interval()))
        .build()
        .expect("valid M68020 configuration");
    let mut cache = Cache::new(config).expect("valid config");
    cache.run(ifetches);
    cache.stats().miss_ratio()
}

/// Runs the study.
pub fn run(config: &ExperimentConfig) -> M68020Study {
    let len = config.trace_len / 2; // instruction refs only
    let rows = parallel_map(config.threads, table3_workloads(), |w| {
        // The filtered stream is not a prefix of the full trace, so it
        // pools under its own key and is shared by all four variants.
        let trace = config.pool.ifetch_workload(&w, len);
        let ifetches = &trace.as_slice()[..len];
        M68020Row {
            name: w.name().to_string(),
            line4_demand: icache_miss(&w, 4, FetchPolicy::Demand, ifetches),
            line4_prefetch: icache_miss(&w, 4, FetchPolicy::PrefetchAlways, ifetches),
            line16_demand: icache_miss(&w, 16, FetchPolicy::Demand, ifetches),
            line16_prefetch: icache_miss(&w, 16, FetchPolicy::PrefetchAlways, ifetches),
        }
    });
    let line4: Vec<f64> = rows.iter().map(|r| r.line4_demand).collect();
    let line16: Vec<f64> = rows.iter().map(|r| r.line16_demand).collect();
    M68020Study {
        line4_range: min_max(&line4),
        line16_mean: mean(&line16),
        rows,
    }
}

impl M68020Study {
    /// Renders the study.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec![
            "workload",
            "4B demand",
            "4B prefetch",
            "16B demand",
            "16B prefetch",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.name.clone(),
                fmt_ratio(r.line4_demand),
                fmt_ratio(r.line4_prefetch),
                fmt_ratio(r.line16_demand),
                fmt_ratio(r.line16_prefetch),
            ]);
        }
        format!(
            "M68020 256-byte instruction cache (§3.4 speculation)\n{}\n\
             4-byte-line demand miss range: {:.2} - {:.2} (paper predicts \
             0.2 - 0.6 for most workloads)\n16-byte-line demand mean: {:.2} \
             (paper's point estimate: 0.25)\n",
            t.render(),
            self.line4_range.0,
            self.line4_range.1,
            self.line16_mean,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentConfig {
        ExperimentConfig::builder()
            .trace_len(30_000)
            .sizes(vec![256])
            .threads(4)
            .build()
            .unwrap()
    }

    #[test]
    fn small_lines_miss_more() {
        let s = run(&tiny());
        for r in &s.rows {
            assert!(
                r.line4_demand >= r.line16_demand,
                "{}: 4B {} vs 16B {}",
                r.name,
                r.line4_demand,
                r.line16_demand
            );
        }
    }

    #[test]
    fn prefetch_helps_small_lines_dramatically() {
        // §3.4: "with its small 4 byte line size, the M68000 instruction
        // cache could expect a dramatically lower miss ratio with
        // prefetching".
        let s = run(&tiny());
        let demand = mean(&s.rows.iter().map(|r| r.line4_demand).collect::<Vec<_>>());
        let prefetch = mean(&s.rows.iter().map(|r| r.line4_prefetch).collect::<Vec<_>>());
        assert!(prefetch < 0.6 * demand, "demand {demand}, prefetch {prefetch}");
    }

    #[test]
    fn ranges_are_in_the_papers_ballpark() {
        let s = run(&tiny());
        assert!(s.line4_range.1 > 0.15, "max {:?}", s.line4_range);
        assert!(s.line16_mean > 0.05 && s.line16_mean < 0.6, "{}", s.line16_mean);
    }

    #[test]
    fn render_quotes_the_paper() {
        let s = run(&tiny()).render();
        assert!(s.contains("0.2 - 0.6"));
        assert!(s.contains("0.25"));
    }
}
