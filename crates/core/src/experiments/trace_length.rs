//! **Trace-length sensitivity** — §3.2's methodological warning: "these
//! trace runs extend at most to 500,000 memory references ... with only a
//! few exceptions the traces reference less than 64K bytes of memory, and
//! it makes little sense to estimate miss ratios for caches over 32K with
//! this data."
//!
//! For each representative trace we compute the miss ratio at several
//! cache sizes from prefixes of increasing length. Small-cache estimates
//! stabilize quickly; large-cache estimates keep falling as the prefix
//! grows, because the cold-start transient dominates — exactly why the
//! paper refuses to trust its own ≥32 KiB numbers.

use crate::experiments::ExperimentConfig;
use crate::report::{fmt_ratio, TextTable};
use crate::sweep::parallel_map;
use serde::{Deserialize, Serialize};
use smith85_cachesim::StackAnalyzer;
use smith85_synth::catalog;

/// The prefix lengths swept, as fractions of the configured trace length.
pub const LENGTH_FRACTIONS: [f64; 4] = [0.125, 0.25, 0.5, 1.0];
/// Cache sizes whose estimates are tracked.
pub const WATCH_SIZES: [usize; 3] = [1024, 16 * 1024, 64 * 1024];

/// One trace's estimates at each (prefix, size).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceLengthRow {
    /// Trace name.
    pub name: String,
    /// Prefix lengths in references.
    pub lengths: Vec<usize>,
    /// `miss[i][j]` = miss ratio at `lengths[i]`, `WATCH_SIZES[j]`.
    pub miss: Vec<Vec<f64>>,
}

/// The study result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceLengthStudy {
    /// Per-trace rows.
    pub rows: Vec<TraceLengthRow>,
}

/// Runs the study.
pub fn run(config: &ExperimentConfig) -> TraceLengthStudy {
    let names = ["MVS1", "FCOMP1", "VCCOM", "TWOD"];
    let lengths: Vec<usize> = LENGTH_FRACTIONS
        .iter()
        .map(|f| ((config.trace_len as f64) * f) as usize)
        .collect();
    let specs: Vec<_> = names
        .iter()
        .map(|n| catalog::by_name(n).unwrap_or_else(|| panic!("{n} missing")))
        .collect();
    let lens = lengths.clone();
    let rows = parallel_map(config.threads, specs, move |spec| {
        // One pass at the longest prefix would not give prefix curves (the
        // histogram is cumulative), so run one analyzer per prefix — every
        // prefix is a slice of the same pooled trace.
        let longest = lens.last().copied().unwrap_or(0);
        let trace = config.pool.profile(spec.profile(), longest);
        let miss = lens
            .iter()
            .map(|&len| {
                let mut a = StackAnalyzer::with_line_size_and_capacity(
                    smith85_trace::PAPER_LINE_SIZE,
                    len,
                );
                a.observe_slice(&trace.as_slice()[..len]);
                let p = a.finish();
                WATCH_SIZES.iter().map(|&s| p.miss_ratio(s)).collect()
            })
            .collect();
        TraceLengthRow {
            name: spec.name().to_string(),
            lengths: lens.clone(),
            miss,
        }
    });
    TraceLengthStudy { rows }
}

impl TraceLengthStudy {
    /// Relative change of the estimate between the two longest prefixes,
    /// per watch size, for one row (how "settled" the estimate is).
    pub fn settling(&self, row: &TraceLengthRow) -> Vec<f64> {
        let n = row.lengths.len();
        (0..WATCH_SIZES.len())
            .map(|j| {
                let last = row.miss[n - 1][j];
                let prev = row.miss[n - 2][j];
                if last == 0.0 {
                    0.0
                } else {
                    (prev - last).abs() / last
                }
            })
            .collect()
    }

    /// Renders the study.
    pub fn render(&self) -> String {
        let mut headers = vec!["trace".to_string(), "prefix".to_string()];
        headers.extend(WATCH_SIZES.iter().map(|s| format!("miss@{s}")));
        let mut t = TextTable::new(headers);
        for r in &self.rows {
            for (i, &len) in r.lengths.iter().enumerate() {
                let mut cells = vec![
                    if i == 0 { r.name.clone() } else { String::new() },
                    len.to_string(),
                ];
                cells.extend(r.miss[i].iter().map(|m| fmt_ratio(*m)));
                t.row(cells);
            }
            t.rule();
        }
        format!(
            "Trace-length sensitivity (§3.2): miss-ratio estimates from \
             growing trace prefixes\n{}\nLarge-cache estimates keep moving \
             as the prefix grows — the paper's reason not to trust >32K \
             numbers from 250K-reference traces.\n",
            t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentConfig {
        ExperimentConfig::builder()
            .trace_len(80_000)
            .sizes(vec![1024])
            .threads(4)
            .build()
            .unwrap()
    }

    #[test]
    fn four_traces_four_prefixes() {
        let s = run(&tiny());
        assert_eq!(s.rows.len(), 4);
        for r in &s.rows {
            assert_eq!(r.lengths.len(), 4);
            assert_eq!(r.miss.len(), 4);
        }
    }

    #[test]
    fn small_cache_estimates_settle_faster_than_large() {
        let s = run(&tiny());
        // Averaged over traces: the 1K estimate moves less between the two
        // longest prefixes than the 64K estimate does.
        let mut small = 0.0;
        let mut large = 0.0;
        for r in &s.rows {
            let settle = s.settling(r);
            small += settle[0];
            large += settle[2];
        }
        assert!(
            small < large,
            "1K settling {small} should beat 64K settling {large}"
        );
    }

    #[test]
    fn longer_prefixes_lower_large_cache_estimates() {
        let s = run(&tiny());
        for r in &s.rows {
            let first = r.miss[0][2];
            let last = r.miss[r.miss.len() - 1][2];
            assert!(
                last <= first + 0.02,
                "{}: 64K estimate rose from {first} to {last}",
                r.name
            );
        }
    }

    #[test]
    fn render_explains_the_warning() {
        assert!(run(&tiny()).render().contains("32K"));
    }
}
