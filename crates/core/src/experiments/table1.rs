//! **Table 1 / Figure 1** — overall miss ratios for all 57 trace rows.
//!
//! Configuration (§3.1): fully associative, LRU replacement, demand fetch,
//! no task-switch purges, copy back with fetch on write, 16-byte lines.
//! One Mattson stack-analysis pass per trace yields the whole
//! miss-ratio-versus-size curve.

use crate::experiments::ExperimentConfig;
use crate::report::{fmt_ratio, TextTable};
use crate::stat_util;
use crate::sweep::parallel_map;
use serde::{Deserialize, Serialize};
use smith85_cachesim::StackAnalyzer;
use smith85_synth::catalog;

/// One row: a trace (or trace section) and its miss-ratio curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Row {
    /// Trace name (sections are suffixed, e.g. `VAXIMA3`).
    pub name: String,
    /// Workload group label.
    pub group: String,
    /// Miss ratio at each swept size.
    pub miss_ratios: Vec<f64>,
}

/// The full Table 1 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1 {
    /// Cache sizes swept (bytes).
    pub sizes: Vec<usize>,
    /// Per-trace rows (57 at full scale).
    pub rows: Vec<Table1Row>,
    /// Per-group average curves, in catalog group order.
    pub group_averages: Vec<(String, Vec<f64>)>,
}

/// Runs the experiment. The result is memoized in the config's shared
/// pool: `table5` and `conclusions` re-derive Table 1 under the same
/// configuration and get the stored result instead of re-simulating.
pub fn run(config: &ExperimentConfig) -> Table1 {
    let key = format!("table1/{}/{:?}", config.trace_len, config.sizes);
    (*config.pool.result(&key, || compute(config))).clone()
}

fn compute(config: &ExperimentConfig) -> Table1 {
    let jobs: Vec<(String, String, smith85_synth::ProgramProfile)> = catalog::all()
        .iter()
        .flat_map(|spec| {
            let group = spec.group().to_string();
            spec.section_profiles()
                .into_iter()
                .map(move |p| (p.name.clone(), group.clone(), p))
        })
        .collect();
    let sizes = config.sizes.clone();
    let len = config.trace_len;
    let rows = parallel_map(config.threads, jobs, |(name, group, profile)| {
        let trace = config.profile_trace(&profile);
        let mut analyzer =
            StackAnalyzer::with_line_size_and_capacity(smith85_trace::PAPER_LINE_SIZE, len);
        analyzer.observe_slice(&trace.as_slice()[..len]);
        let p = analyzer.finish();
        Table1Row {
            name,
            group,
            miss_ratios: p.miss_ratio_curve(&sizes),
        }
    });

    let mut group_averages = Vec::new();
    for g in smith85_synth::TraceGroup::ALL {
        let label = g.to_string();
        let members: Vec<&Table1Row> = rows.iter().filter(|r| r.group == label).collect();
        if members.is_empty() {
            continue;
        }
        let avg: Vec<f64> = (0..sizes.len())
            .map(|i| {
                stat_util::mean(&members.iter().map(|r| r.miss_ratios[i]).collect::<Vec<_>>())
            })
            .collect();
        group_averages.push((label, avg));
    }
    Table1 {
        sizes,
        rows,
        group_averages,
    }
}

impl Table1 {
    /// The miss-ratio values of every row at one swept size.
    ///
    /// # Panics
    ///
    /// Panics if `size` was not part of the sweep.
    pub fn column(&self, size: usize) -> Vec<f64> {
        let idx = self
            .sizes
            .iter()
            .position(|&s| s == size)
            .unwrap_or_else(|| panic!("size {size} not in sweep"));
        self.rows.iter().map(|r| r.miss_ratios[idx]).collect()
    }

    fn build_table(&self) -> TextTable {
        let mut headers = vec!["trace".to_string(), "group".to_string()];
        headers.extend(self.sizes.iter().map(|s| s.to_string()));
        let mut t = TextTable::new(headers);
        let mut aligns = vec![crate::report::Align::Left, crate::report::Align::Left];
        aligns.extend(vec![crate::report::Align::Right; self.sizes.len()]);
        t.aligns(aligns);
        for row in &self.rows {
            let mut cells = vec![row.name.clone(), row.group.clone()];
            cells.extend(row.miss_ratios.iter().map(|m| fmt_ratio(*m)));
            t.row(cells);
        }
        t
    }

    /// The 57 rows as CSV, for external plotting.
    pub fn to_csv(&self) -> String {
        self.build_table().render_csv()
    }

    /// Renders the paper-style table (rows grouped, group averages below).
    pub fn render(&self) -> String {
        let mut headers = vec!["trace".to_string(), "group".to_string()];
        headers.extend(self.sizes.iter().map(|s| s.to_string()));
        let mut t = TextTable::new(headers);
        let mut aligns = vec![crate::report::Align::Left, crate::report::Align::Left];
        aligns.extend(vec![crate::report::Align::Right; self.sizes.len()]);
        t.aligns(aligns);
        for row in &self.rows {
            let mut cells = vec![row.name.clone(), row.group.clone()];
            cells.extend(row.miss_ratios.iter().map(|m| fmt_ratio(*m)));
            t.row(cells);
        }
        t.rule();
        for (g, avg) in &self.group_averages {
            let mut cells = vec![format!("avg {g}"), String::new()];
            cells.extend(avg.iter().map(|m| fmt_ratio(*m)));
            t.row(cells);
        }
        let plot = crate::report::ascii_plot(
            "Figure 1: group-average miss ratio vs cache size (log y)",
            &self.sizes,
            &self.group_averages,
        );
        format!(
            "Table 1 / Figure 1: overall miss ratios (fully associative, LRU, \
             demand fetch, 16-byte lines, copy-back)\n{}\n{}",
            t.render(),
            plot
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentConfig {
        ExperimentConfig::builder()
            .trace_len(6_000)
            .sizes(vec![256, 1024, 8192])
            .threads(2)
            .build()
            .unwrap()
    }

    #[test]
    fn runs_all_57_rows() {
        let t = run(&tiny());
        assert_eq!(t.rows.len(), 57);
        assert_eq!(t.group_averages.len(), 8);
        for row in &t.rows {
            assert_eq!(row.miss_ratios.len(), 3);
            for w in row.miss_ratios.windows(2) {
                assert!(w[1] <= w[0] + 1e-12, "{} not monotone", row.name);
            }
        }
    }

    #[test]
    fn mvs_is_worst_m68000_best_at_1k() {
        let t = run(&tiny());
        let avg = |label: &str| {
            t.group_averages
                .iter()
                .find(|(g, _)| g == label)
                .map(|(_, v)| v[1])
                .unwrap()
        };
        assert!(avg("IBM 370 MVS") > avg("VAX"));
        assert!(avg("VAX") > avg("M68000"));
        assert!(avg("Z8000") < avg("IBM 370"));
    }

    #[test]
    fn render_contains_groups_and_sections() {
        let t = run(&tiny());
        let s = t.render();
        assert!(s.contains("MVS1"));
        assert!(s.contains("VAXIMA3"));
        assert!(s.contains("avg M68000"));
    }

    #[test]
    fn csv_has_all_rows() {
        let t = run(&tiny());
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), 58); // header + 57 rows
        assert!(csv.lines().nth(1).unwrap().starts_with("MVS1,"));
    }

    #[test]
    fn column_extraction() {
        let t = run(&tiny());
        assert_eq!(t.column(1024).len(), 57);
    }
}
