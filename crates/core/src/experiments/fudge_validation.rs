//! **§4.3 fudge-factor validation** — the paper's final deliverable is a
//! recipe: take numbers measured on machine M1 and "fudge" them into
//! estimates for an unbuilt machine M2. This experiment closes the loop
//! inside the reproduction: predict each architecture group's miss ratio
//! from another group's *measurement* times the
//! [`miss_ratio_fudge`](crate::fudge::miss_ratio_fudge) factor, then
//! compare against the simulation of the target group itself.

use crate::experiments::ExperimentConfig;
use crate::fudge;
use crate::report::{fmt_ratio, TextTable};
use crate::stat_util::mean;
use crate::sweep::parallel_map;
use serde::{Deserialize, Serialize};
use smith85_cachesim::StackAnalyzer;
use smith85_synth::{catalog, TraceGroup};
use smith85_trace::MachineArch;

/// Cache size at which the cross-architecture prediction is evaluated.
pub const EVAL_SIZE: usize = 1024;

/// One prediction: source group → target group.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FudgePrediction {
    /// Group whose measurement is the starting point.
    pub from: String,
    /// Group being predicted.
    pub to: String,
    /// Source group's measured mean miss ratio.
    pub measured_from: f64,
    /// Applied fudge factor.
    pub factor: f64,
    /// Predicted miss ratio for the target.
    pub predicted: f64,
    /// The target group's own measured mean miss ratio.
    pub measured_to: f64,
}

impl FudgePrediction {
    /// Ratio of prediction to measurement (1.0 = perfect).
    pub fn accuracy(&self) -> f64 {
        if self.measured_to == 0.0 {
            0.0
        } else {
            self.predicted / self.measured_to
        }
    }
}

/// The validation result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FudgeValidation {
    /// All evaluated (from, to) pairs.
    pub predictions: Vec<FudgePrediction>,
}

/// The (group, architecture) pairs the factors are evaluated over. The
/// groups chosen have one dominant architecture each.
const PAIRS: [(TraceGroup, MachineArch); 4] = [
    (TraceGroup::VaxUnix, MachineArch::Vax),
    (TraceGroup::Ibm370, MachineArch::Ibm370),
    (TraceGroup::Z8000, MachineArch::Z8000),
    (TraceGroup::Cdc6400, MachineArch::Cdc6400),
];

/// Runs the validation.
pub fn run(config: &ExperimentConfig) -> FudgeValidation {
    let len = config.trace_len;
    // Measure every group once.
    let measured: Vec<(TraceGroup, f64)> = parallel_map(
        config.threads,
        PAIRS.to_vec(),
        move |(group, _)| {
            let specs = catalog::group(group);
            let misses: Vec<f64> = specs
                .iter()
                .map(|s| {
                    let trace = config.profile_trace(s.profile());
                    let mut a = StackAnalyzer::with_line_size_and_capacity(
                        smith85_trace::PAPER_LINE_SIZE,
                        len,
                    );
                    a.observe_slice(&trace.as_slice()[..len]);
                    a.finish().miss_ratio(EVAL_SIZE)
                })
                .collect();
            (group, mean(&misses))
        },
    );
    let miss_of = |g: TraceGroup| {
        measured
            .iter()
            .find(|(gg, _)| *gg == g)
            .map(|(_, m)| *m)
            .expect("group measured")
    };
    let mut predictions = Vec::new();
    for &(from_g, from_a) in &PAIRS {
        for &(to_g, to_a) in &PAIRS {
            if from_g == to_g {
                continue;
            }
            let factor = fudge::miss_ratio_fudge(from_a, to_a);
            let measured_from = miss_of(from_g);
            predictions.push(FudgePrediction {
                from: from_g.to_string(),
                to: to_g.to_string(),
                measured_from,
                factor,
                predicted: measured_from * factor,
                measured_to: miss_of(to_g),
            });
        }
    }
    FudgeValidation { predictions }
}

impl FudgeValidation {
    /// Predictions where the 16↔32-bit width correction applies.
    pub fn width_corrections(&self) -> Vec<&FudgePrediction> {
        self.predictions
            .iter()
            .filter(|p| (p.factor - 1.0).abs() > 0.5)
            .collect()
    }

    /// Renders the comparison.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec![
            "from", "to", "measured(from)", "factor", "predicted", "measured(to)", "pred/meas",
        ]);
        for p in &self.predictions {
            t.row(vec![
                p.from.clone(),
                p.to.clone(),
                fmt_ratio(p.measured_from),
                format!("{:.2}", p.factor),
                fmt_ratio(p.predicted),
                fmt_ratio(p.measured_to),
                format!("{:.2}", p.accuracy()),
            ]);
        }
        format!(
            "§4.3 fudge-factor validation at {EVAL_SIZE} B: predicting one \
             architecture's miss ratio from another's\n{}\nThe width \
             correction (16-bit ↔ 32-bit) carries most of the signal — the \
             paper's Z80000 lesson; complexity-only corrections are \
             deliberately mild.\n",
            t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentConfig {
        ExperimentConfig::builder()
            .trace_len(25_000)
            .sizes(vec![EVAL_SIZE])
            .threads(crate::sweep::default_threads())
            .build()
            .unwrap()
    }

    #[test]
    fn all_ordered_pairs_predicted() {
        let v = run(&tiny());
        assert_eq!(v.predictions.len(), 12);
        for p in &v.predictions {
            assert!(p.predicted > 0.0, "{} -> {}", p.from, p.to);
        }
    }

    #[test]
    fn width_correction_improves_z8000_to_vax_prediction() {
        // Without the 2.5x factor, a Z8000 measurement wildly underpredicts
        // a 32-bit machine; with it, the prediction lands within ~2.5x.
        let v = run(&tiny());
        let p = v
            .predictions
            .iter()
            .find(|p| p.from == "Z8000" && p.to == "VAX")
            .unwrap();
        let uncorrected = p.measured_from / p.measured_to;
        assert!(uncorrected < 0.8, "uncorrected already fine: {uncorrected}");
        let corrected = p.accuracy();
        assert!(
            (corrected - 1.0).abs() < (uncorrected - 1.0).abs(),
            "correction made it worse: {uncorrected} -> {corrected}"
        );
    }

    #[test]
    fn same_width_predictions_are_order_of_magnitude() {
        let v = run(&tiny());
        let p = v
            .predictions
            .iter()
            .find(|p| p.from == "VAX" && p.to == "IBM 370")
            .unwrap();
        // Complexity-only factor is mild, so this prediction underestimates
        // the big-footprint 370 workload — but stays within ~10x.
        assert!(p.accuracy() > 0.1 && p.accuracy() < 10.0, "{}", p.accuracy());
    }

    #[test]
    fn width_corrections_identified() {
        let v = run(&tiny());
        // Every pair involving exactly one 16-bit machine carries the
        // width correction: Z8000 with each of VAX/370/CDC, both ways.
        assert_eq!(v.width_corrections().len(), 6);
    }

    #[test]
    fn render_mentions_the_z80000_lesson() {
        assert!(run(&tiny()).render().contains("Z80000"));
    }
}
