//! One module per reproduced table or figure.
//!
//! Every experiment follows the same shape: `run(&ExperimentConfig)`
//! produces a serializable result struct, and the result's `render()`
//! returns the plain-text table/series the paper printed. The binaries in
//! `smith85-bench` are thin wrappers over these.

pub mod ablations;
pub mod calibration_report;
pub mod clark_validation;
pub mod conclusions;
pub mod design_grid;
pub mod family_conclusions;
pub mod fig2;
pub mod fig3_fig4;
pub mod fudge_validation;
pub mod interface_effects;
pub mod line_size;
pub mod m68020;
pub mod multiprocessor;
pub mod multiprogramming;
pub mod perturbations;
pub mod prefetch;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table5;
pub mod trace_length;
pub mod traffic_ratio;
pub mod z80000;

use crate::session::ProbeHandle;
use crate::sweep;
use crate::trace_pool::TracePool;
use smith85_cachesim::PAPER_SIZES;
use smith85_families::FamilySpec;
use smith85_synth::{catalog, ProfileError, ProgramProfile};
use smith85_trace::mix::RoundRobinMix;
use smith85_trace::{
    MachineArch, MemoryAccess, Trace, PAPER_PURGE_INTERVAL, PAPER_PURGE_INTERVAL_M68000,
};
use std::fmt;
use std::sync::Arc;

/// Common experiment parameters.
///
/// Construct via [`ExperimentConfig::builder`] (validated), or the
/// [`paper`](Self::paper)/[`quick`](Self::quick) presets.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// References simulated per workload.
    pub trace_len: usize,
    /// Cache sizes swept.
    pub sizes: Vec<usize>,
    /// Worker threads for the simulation grid.
    pub threads: usize,
    /// Shared generate-once/replay-many trace cache. Cloning the config
    /// clones the *handle*: every experiment run from the same config (the
    /// whole suite) replays the same materialized traces.
    pub pool: TracePool,
    // Instrumentation sink for everything run under this config. Crate-
    // private so struct-literal construction outside the builder/presets
    // is impossible, which keeps validation mandatory for callers.
    pub(crate) probe: ProbeHandle,
}

/// A validation failure from [`ExperimentConfigBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// `trace_len` was zero.
    ZeroTraceLen,
    /// The size sweep was empty.
    EmptySizes,
    /// A swept cache size was not a power of two.
    SizeNotPowerOfTwo(usize),
    /// `threads` was zero.
    ZeroThreads,
    /// The persistent store could not be opened (the message carries the
    /// formatted I/O error).
    Store(String),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroTraceLen => write!(f, "trace_len must be at least 1"),
            ConfigError::EmptySizes => write!(f, "the size sweep must not be empty"),
            ConfigError::SizeNotPowerOfTwo(size) => {
                write!(f, "cache size {size} is not a power of two")
            }
            ConfigError::ZeroThreads => write!(f, "threads must be at least 1"),
            ConfigError::Store(message) => write!(f, "{message}"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Validated builder for [`ExperimentConfig`]; defaults match
/// [`ExperimentConfig::paper`].
#[derive(Debug, Clone)]
pub struct ExperimentConfigBuilder {
    trace_len: usize,
    sizes: Vec<usize>,
    threads: usize,
    pool: TracePool,
    probe: ProbeHandle,
}

impl Default for ExperimentConfigBuilder {
    fn default() -> Self {
        ExperimentConfigBuilder {
            trace_len: 250_000,
            sizes: PAPER_SIZES.to_vec(),
            threads: sweep::default_threads(),
            pool: TracePool::new(),
            probe: ProbeHandle::default(),
        }
    }
}

impl ExperimentConfigBuilder {
    /// Switches every field to the [`ExperimentConfig::quick`] preset.
    pub fn quick(mut self) -> Self {
        self.trace_len = 30_000;
        self.sizes = vec![64, 256, 1024, 4096, 16384];
        self
    }

    /// References simulated per workload.
    pub fn trace_len(mut self, trace_len: usize) -> Self {
        self.trace_len = trace_len;
        self
    }

    /// Cache sizes swept.
    pub fn sizes(mut self, sizes: Vec<usize>) -> Self {
        self.sizes = sizes;
        self
    }

    /// Worker threads for the simulation grid.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The shared trace pool (to share materializations across configs).
    pub fn pool(mut self, pool: TracePool) -> Self {
        self.pool = pool;
        self
    }

    /// The instrumentation sink (defaults to a no-op).
    pub fn probe(mut self, probe: ProbeHandle) -> Self {
        self.probe = probe;
        self
    }

    /// Validates and builds the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] for a zero trace length or thread
    /// count, an empty size sweep, or a non-power-of-two cache size.
    pub fn build(self) -> Result<ExperimentConfig, ConfigError> {
        if self.trace_len == 0 {
            return Err(ConfigError::ZeroTraceLen);
        }
        if self.sizes.is_empty() {
            return Err(ConfigError::EmptySizes);
        }
        if let Some(&bad) = self.sizes.iter().find(|s| !s.is_power_of_two()) {
            return Err(ConfigError::SizeNotPowerOfTwo(bad));
        }
        if self.threads == 0 {
            return Err(ConfigError::ZeroThreads);
        }
        Ok(ExperimentConfig {
            trace_len: self.trace_len,
            sizes: self.sizes,
            threads: self.threads,
            pool: self.pool,
            probe: self.probe,
        })
    }
}

impl ExperimentConfig {
    /// A validated builder, seeded with the [`paper`](Self::paper)
    /// defaults.
    pub fn builder() -> ExperimentConfigBuilder {
        ExperimentConfigBuilder::default()
    }

    /// The paper's scale: 250,000 references, the full 32 B – 64 KiB sweep.
    pub fn paper() -> Self {
        ExperimentConfig {
            trace_len: 250_000,
            sizes: PAPER_SIZES.to_vec(),
            threads: sweep::default_threads(),
            pool: TracePool::new(),
            probe: ProbeHandle::default(),
        }
    }

    /// A reduced configuration for tests and smoke runs.
    pub fn quick() -> Self {
        ExperimentConfig {
            trace_len: 30_000,
            sizes: vec![64, 256, 1024, 4096, 16384],
            threads: sweep::default_threads(),
            pool: TracePool::new(),
            probe: ProbeHandle::default(),
        }
    }

    /// The instrumentation sink attached to this configuration.
    pub fn probe(&self) -> &ProbeHandle {
        &self.probe
    }

    /// The pooled trace for `workload` at this config's
    /// [`trace_len`](Self::trace_len). Bit-identical to
    /// `workload.stream().take(trace_len)`; the buffer is shared, so treat
    /// it as read-only and slice to `trace_len`.
    pub fn workload_trace(&self, workload: &Workload) -> Arc<Trace> {
        self.pool.workload(workload, self.trace_len)
    }

    /// The pooled trace for a single `profile` at this config's
    /// [`trace_len`](Self::trace_len).
    pub fn profile_trace(&self, profile: &ProgramProfile) -> Arc<Trace> {
        self.pool.profile(profile, self.trace_len)
    }
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// A workload for the multiprogramming experiments: a single CPU trace,
/// a round-robin mix of several (Table 3's four "assorted" rows), or a
/// non-CPU family stream (storage-I/O block addresses, network
/// destination addresses).
#[derive(Debug, Clone)]
pub enum Workload {
    /// One program.
    Single(ProgramProfile),
    /// A round-robin multiprogramming mix.
    Mix {
        /// Display name, e.g. `"Z8000 - Assorted"`.
        name: String,
        /// The member programs.
        members: Vec<ProgramProfile>,
    },
    /// A non-CPU workload family profile (storage or network).
    Family(FamilySpec),
}

impl Workload {
    /// Display name.
    pub fn name(&self) -> &str {
        match self {
            Workload::Single(p) => &p.name,
            Workload::Mix { name, .. } => name,
            Workload::Family(spec) => spec.name(),
        }
    }

    /// The workload family this stream belongs to: `"cpu"` for the
    /// paper's traces and mixes, `"storage"` / `"network"` for the
    /// non-CPU families. Used in store keys, spans and counters.
    pub fn family_name(&self) -> &'static str {
        match self {
            Workload::Single(_) | Workload::Mix { .. } => "cpu",
            Workload::Family(spec) => spec.family().name(),
        }
    }

    /// The purge / task-switch interval the paper uses for this workload
    /// (15,000 for the short M68000 traces, 20,000 otherwise; family
    /// streams have no task switches and use the default interval, which
    /// only matters if a caller opts into purging).
    pub fn purge_interval(&self) -> u64 {
        let m68k = match self {
            Workload::Single(p) => p.arch == MachineArch::M68000,
            Workload::Mix { members, .. } => {
                members.iter().all(|p| p.arch == MachineArch::M68000)
            }
            Workload::Family(_) => false,
        };
        if m68k {
            PAPER_PURGE_INTERVAL_M68000
        } else {
            PAPER_PURGE_INTERVAL
        }
    }

    /// An infinite access stream (mixes switch programs every
    /// [`purge_interval`](Self::purge_interval) references, like the
    /// paper's simulator), or a typed error if a member profile is
    /// inconsistent. Use this for user-supplied workloads; the catalog's
    /// own profiles are valid by construction.
    ///
    /// # Errors
    ///
    /// Returns the first member's [`ProfileError`], or a wrapped family
    /// validation error for an out-of-range family profile.
    pub fn try_stream(
        &self,
    ) -> Result<Box<dyn Iterator<Item = MemoryAccess> + Send>, ProfileError> {
        match self {
            Workload::Single(p) => Ok(Box::new(p.try_generator()?)),
            Workload::Mix { members, .. } => {
                let mut streams = Vec::with_capacity(members.len());
                for p in members {
                    streams.push(p.try_generator()?);
                }
                Ok(Box::new(RoundRobinMix::new(streams, self.purge_interval())))
            }
            Workload::Family(spec) => spec.try_generator().map_err(ProfileError::custom),
        }
    }

    /// An infinite access stream (panicking form of
    /// [`try_stream`](Self::try_stream)).
    ///
    /// # Panics
    ///
    /// Panics if a profile is inconsistent (see
    /// [`ProgramProfile::generator`]).
    pub fn stream(&self) -> Box<dyn Iterator<Item = MemoryAccess> + Send> {
        self.try_stream()
            .unwrap_or_else(|e| panic!("workload {}: {e}", self.name()))
    }
}

/// The sixteen workloads of Table 3 and Figures 3-10: twelve single traces
/// plus the four multiprogramming mixes, in the paper's row order.
pub fn table3_workloads() -> Vec<Workload> {
    let mut ws: Vec<Workload> = catalog::table3_single_traces()
        .into_iter()
        .map(|s| Workload::Single(s.profile().clone()))
        .collect();
    ws.extend(
        catalog::table3_mixes()
            .into_iter()
            .map(|(name, members)| Workload::Mix { name, members }),
    );
    ws
}

/// Every servable workload name: the 49 CPU catalog traces, the four
/// Table 3 mixes, and the non-CPU family profiles, in catalog order.
pub fn workload_names() -> Vec<String> {
    let mut names: Vec<String> = catalog::all()
        .iter()
        .map(|s| s.profile().name.clone())
        .collect();
    names.extend(catalog::table3_mixes().into_iter().map(|(name, _)| name));
    names.extend(smith85_families::names());
    names
}

/// Looks a workload up by name across all three namespaces — the CPU
/// catalog, the Table 3 mixes, and the family catalog — and applies the
/// optional seed override (mix members get `seed ^ index` so they stay
/// distinct). Mix and family lookups are case-insensitive, matching the
/// catalogs they front.
pub fn resolve_named_workload(name: &str, seed: Option<u64>) -> Option<Workload> {
    if let Some(synthetic) = catalog::by_name(name) {
        let mut profile = synthetic.profile().clone();
        if let Some(seed) = seed {
            profile.seed = seed;
        }
        return Some(Workload::Single(profile));
    }
    for (mix_name, mut members) in catalog::table3_mixes() {
        if mix_name.eq_ignore_ascii_case(name) {
            if let Some(seed) = seed {
                for (i, member) in members.iter_mut().enumerate() {
                    member.seed = seed ^ i as u64;
                }
            }
            return Some(Workload::Mix { name: mix_name, members });
        }
    }
    smith85_families::by_name(name).map(|mut spec| {
        if let Some(seed) = seed {
            spec.set_seed(seed);
        }
        Some(Workload::Family(spec))
    })?
}

/// The catalog name closest to `wanted` by case-insensitive edit
/// distance — the "did you mean" half of an unknown-workload error.
/// `None` only when the catalogs are empty (never in practice).
pub fn nearest_workload_name(wanted: &str) -> Option<String> {
    let wanted_lower = wanted.to_ascii_lowercase();
    workload_names()
        .into_iter()
        .min_by_key(|candidate| edit_distance(&wanted_lower, &candidate.to_ascii_lowercase()))
}

/// Levenshtein distance over bytes (all catalog names are ASCII), via
/// the classic two-row dynamic program.
fn edit_distance(a: &str, b: &str) -> usize {
    let (a, b) = (a.as_bytes(), b.as_bytes());
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut row = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        row[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let subst = prev[j] + usize::from(ca != cb);
            row[j + 1] = subst.min(prev[j + 1] + 1).min(row[j] + 1);
        }
        std::mem::swap(&mut prev, &mut row);
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_match_paper() {
        let built = ExperimentConfig::builder().build().unwrap();
        let paper = ExperimentConfig::paper();
        assert_eq!(built.trace_len, paper.trace_len);
        assert_eq!(built.sizes, paper.sizes);
        assert_eq!(built.threads, paper.threads);
    }

    #[test]
    fn builder_quick_preset_matches_quick() {
        let built = ExperimentConfig::builder().quick().build().unwrap();
        let quick = ExperimentConfig::quick();
        assert_eq!(built.trace_len, quick.trace_len);
        assert_eq!(built.sizes, quick.sizes);
    }

    #[test]
    fn builder_rejects_invalid_configs() {
        assert_eq!(
            ExperimentConfig::builder().trace_len(0).build().unwrap_err(),
            ConfigError::ZeroTraceLen
        );
        assert_eq!(
            ExperimentConfig::builder().sizes(vec![]).build().unwrap_err(),
            ConfigError::EmptySizes
        );
        assert_eq!(
            ExperimentConfig::builder()
                .sizes(vec![1024, 1000])
                .build()
                .unwrap_err(),
            ConfigError::SizeNotPowerOfTwo(1000)
        );
        assert_eq!(
            ExperimentConfig::builder().threads(0).build().unwrap_err(),
            ConfigError::ZeroThreads
        );
        let err = ConfigError::SizeNotPowerOfTwo(1000).to_string();
        assert!(err.contains("1000"), "{err}");
    }

    #[test]
    fn builder_shares_a_supplied_pool() {
        let pool = TracePool::new();
        let config = ExperimentConfig::builder()
            .trace_len(1_000)
            .sizes(vec![256])
            .threads(1)
            .pool(pool.clone())
            .build()
            .unwrap();
        let w = Workload::Single(catalog::by_name("VCCOM").unwrap().profile().clone());
        let _ = config.workload_trace(&w);
        assert_eq!(pool.stats().entries, 1, "builder must keep the handle");
    }

    #[test]
    fn quick_config_is_smaller() {
        let q = ExperimentConfig::quick();
        let p = ExperimentConfig::paper();
        assert!(q.trace_len < p.trace_len);
        assert!(q.sizes.len() < p.sizes.len());
        assert_eq!(p.trace_len, 250_000);
    }

    #[test]
    fn sixteen_workloads() {
        let ws = table3_workloads();
        assert_eq!(ws.len(), 16);
        assert_eq!(ws.iter().filter(|w| matches!(w, Workload::Mix { .. })).count(), 4);
    }

    #[test]
    fn purge_intervals_follow_the_paper() {
        for w in table3_workloads() {
            assert_eq!(w.purge_interval(), PAPER_PURGE_INTERVAL, "{}", w.name());
        }
        let m68k = Workload::Single(
            catalog::by_name("PL0").unwrap().profile().clone(),
        );
        assert_eq!(m68k.purge_interval(), PAPER_PURGE_INTERVAL_M68000);
    }

    #[test]
    fn mix_stream_interleaves_members() {
        let ws = table3_workloads();
        let mix = ws.iter().find(|w| w.name().starts_with("Z8000")).unwrap();
        let n = mix.stream().take(1000).count();
        assert_eq!(n, 1000);
    }

    #[test]
    fn family_workloads_stream_and_carry_their_family() {
        let w = resolve_named_workload("S-KVSTORE", None).unwrap();
        assert_eq!(w.name(), "S-KVSTORE");
        assert_eq!(w.family_name(), "storage");
        assert_eq!(w.purge_interval(), PAPER_PURGE_INTERVAL);
        assert_eq!(w.stream().take(500).count(), 500);
        let n = resolve_named_workload("n-lan", None).unwrap();
        assert_eq!(n.family_name(), "network");
        let cpu = resolve_named_workload("VCCOM", None).unwrap();
        assert_eq!(cpu.family_name(), "cpu");
    }

    #[test]
    fn resolver_applies_seed_overrides_everywhere() {
        let base = resolve_named_workload("S-KVSTORE", None).unwrap();
        let reseeded = resolve_named_workload("S-KVSTORE", Some(99)).unwrap();
        let a: Vec<_> = base.stream().take(100).collect();
        let b: Vec<_> = reseeded.stream().take(100).collect();
        assert_ne!(a, b, "the seed override must change the family stream");
        match resolve_named_workload("VCCOM", Some(7)).unwrap() {
            Workload::Single(p) => assert_eq!(p.seed, 7),
            other => panic!("expected a single trace, got {other:?}"),
        }
    }

    #[test]
    fn workload_names_cover_all_three_namespaces() {
        let names = workload_names();
        assert!(names.iter().any(|n| n == "VCCOM"));
        assert!(names.iter().any(|n| n == "S-KVSTORE"));
        assert!(names.iter().any(|n| n == "N-BACKBONE"));
        assert!(names.iter().any(|n| n.contains("Assorted")));
        for name in &names {
            assert!(
                resolve_named_workload(name, None).is_some(),
                "{name} is listed but does not resolve"
            );
        }
    }

    #[test]
    fn nearest_name_suggests_plausible_fixes() {
        assert_eq!(nearest_workload_name("VCOM").as_deref(), Some("VCCOM"));
        assert_eq!(nearest_workload_name("s-kvstor").as_deref(), Some("S-KVSTORE"));
        assert_eq!(nearest_workload_name("N-LAN2").as_deref(), Some("N-LAN"));
        assert!(resolve_named_workload("VCOM", None).is_none());
    }

    #[test]
    fn edit_distance_is_the_textbook_metric() {
        assert_eq!(edit_distance("", "abc"), 3);
        assert_eq!(edit_distance("kitten", "sitting"), 3);
        assert_eq!(edit_distance("same", "same"), 0);
    }
}
