//! **Figures 5-10 and Table 4** — the prefetching study.
//!
//! For every workload and cache size, four simulations run: unified and
//! split organisations, each with demand fetch and with "prefetch always"
//! (§3.5). From them:
//!
//! * Figures 5/6/7 — the ratio of the prefetch miss ratio to the demand
//!   miss ratio (unified / instruction / data);
//! * Figures 8/9/10 — the factor by which memory traffic grows with
//!   prefetch (unified / instruction / data);
//! * Table 4 — workload-aggregate traffic factors (sum of prefetch
//!   traffic over sum of demand traffic, the paper's averaging rule).

use crate::experiments::{table3_workloads, ExperimentConfig, Workload};
use crate::report::{fmt_factor, render_series, TextTable};
use crate::targets::{self, CacheKind};
use crate::sweep::parallel_map;
use serde::{Deserialize, Serialize};
use smith85_cachesim::{
    CacheConfig, CacheStats, FetchPolicy, Simulator, SplitCache, UnifiedCache,
};

/// Miss and traffic numbers for one (workload, size, organisation) cell.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PolicyPair {
    /// Miss ratio under demand fetch.
    pub demand_miss: f64,
    /// Miss ratio under prefetch-always.
    pub prefetch_miss: f64,
    /// Memory traffic (bytes) under demand fetch.
    pub demand_traffic: u64,
    /// Memory traffic (bytes) under prefetch-always.
    pub prefetch_traffic: u64,
}

impl PolicyPair {
    /// Prefetch-to-demand miss-ratio factor (1.0 when the demand run had
    /// no misses).
    pub fn miss_factor(&self) -> f64 {
        if self.demand_miss == 0.0 {
            1.0
        } else {
            self.prefetch_miss / self.demand_miss
        }
    }

    /// Prefetch-to-demand traffic factor (1.0 when the demand run moved no
    /// bytes).
    pub fn traffic_factor(&self) -> f64 {
        if self.demand_traffic == 0 {
            1.0
        } else {
            self.prefetch_traffic as f64 / self.demand_traffic as f64
        }
    }
}

/// One workload's cells across the size sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrefetchRow {
    /// Workload name.
    pub name: String,
    /// Unified-cache cells per size.
    pub unified: Vec<PolicyPair>,
    /// Instruction-cache cells per size (split organisation).
    pub instruction: Vec<PolicyPair>,
    /// Data-cache cells per size (split organisation).
    pub data: Vec<PolicyPair>,
}

/// The full prefetch-study result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrefetchStudy {
    /// Cache sizes swept (bytes).
    pub sizes: Vec<usize>,
    /// Per-workload rows.
    pub rows: Vec<PrefetchRow>,
    /// Table 4: per size, aggregate (unified, instruction, data) traffic
    /// factors.
    pub table4: Vec<(usize, f64, f64, f64)>,
}

fn miss_of(stats: &CacheStats, kind: CacheKind) -> f64 {
    match kind {
        CacheKind::Unified => stats.miss_ratio(),
        CacheKind::Instruction => stats.instruction_miss_ratio(),
        CacheKind::Data => stats.data_miss_ratio(),
    }
}

struct Cell {
    unified: PolicyPair,
    instruction: PolicyPair,
    data: PolicyPair,
}

fn simulate_cell(w: &Workload, size: usize, trace: &[smith85_trace::MemoryAccess]) -> Cell {
    let purge = w.purge_interval();
    let config_for = |fetch: FetchPolicy, purged: bool| {
        CacheConfig::builder(size)
            .fetch_policy(fetch)
            .purge_interval(if purged { Some(purge) } else { None })
            .build()
            .expect("valid sweep configuration")
    };
    let run_unified = |fetch: FetchPolicy| {
        let mut c = UnifiedCache::new(config_for(fetch, true)).expect("valid config");
        c.run_slice(trace);
        *c.stats()
    };
    let run_split = |fetch: FetchPolicy| {
        let cfg = config_for(fetch, false);
        let mut c = SplitCache::new(cfg, cfg, Some(purge)).expect("valid config");
        c.run_slice(trace);
        (*c.instruction_stats(), *c.data_stats())
    };
    let ud = run_unified(FetchPolicy::Demand);
    let up = run_unified(FetchPolicy::PrefetchAlways);
    let (id, dd) = run_split(FetchPolicy::Demand);
    let (ip, dp) = run_split(FetchPolicy::PrefetchAlways);
    let pair = |d: &CacheStats, p: &CacheStats, kind: CacheKind| PolicyPair {
        demand_miss: miss_of(d, kind),
        prefetch_miss: miss_of(p, kind),
        demand_traffic: d.traffic_bytes(),
        prefetch_traffic: p.traffic_bytes(),
    };
    Cell {
        unified: pair(&ud, &up, CacheKind::Unified),
        instruction: pair(&id, &ip, CacheKind::Instruction),
        data: pair(&dd, &dp, CacheKind::Data),
    }
}

/// Runs the study. Memoized in the config's shared pool — the heaviest
/// simulation grid in the suite, and `conclusions` re-derives it.
pub fn run(config: &ExperimentConfig) -> PrefetchStudy {
    let key = format!("prefetch/{}/{:?}", config.trace_len, config.sizes);
    (*config.pool.result(&key, || compute(config))).clone()
}

fn compute(config: &ExperimentConfig) -> PrefetchStudy {
    let sizes = config.sizes.clone();
    let len = config.trace_len;
    let jobs: Vec<_> = table3_workloads()
        .into_iter()
        .flat_map(|w| sizes.iter().map(move |&s| (w.clone(), s)).collect::<Vec<_>>())
        .collect();
    let cells = parallel_map(config.threads, jobs, |(w, size)| {
        let trace = config.workload_trace(&w);
        let cell = simulate_cell(&w, size, &trace.as_slice()[..len]);
        (w.name().to_string(), size, cell)
    });

    let mut rows = Vec::new();
    for w in table3_workloads() {
        let name = w.name().to_string();
        let mut row = PrefetchRow {
            name: name.clone(),
            unified: Vec::new(),
            instruction: Vec::new(),
            data: Vec::new(),
        };
        for &s in &sizes {
            let cell = &cells
                .iter()
                .find(|(n, sz, _)| *n == name && *sz == s)
                .expect("every cell simulated")
                .2;
            row.unified.push(cell.unified);
            row.instruction.push(cell.instruction);
            row.data.push(cell.data);
        }
        rows.push(row);
    }

    // Table 4: the paper's averaging rule — sum prefetch traffic over sum
    // demand traffic, per organisation and size.
    let table4 = sizes
        .iter()
        .enumerate()
        .map(|(i, &s)| {
            let agg = |get: &dyn Fn(&PrefetchRow) -> &Vec<PolicyPair>| {
                let (p, d) = rows.iter().fold((0u64, 0u64), |(p, d), r| {
                    let cell = &get(r)[i];
                    (p + cell.prefetch_traffic, d + cell.demand_traffic)
                });
                if d == 0 {
                    1.0
                } else {
                    p as f64 / d as f64
                }
            };
            (
                s,
                agg(&|r: &PrefetchRow| &r.unified),
                agg(&|r: &PrefetchRow| &r.instruction),
                agg(&|r: &PrefetchRow| &r.data),
            )
        })
        .collect();

    PrefetchStudy {
        sizes,
        rows,
        table4,
    }
}

impl PrefetchStudy {
    /// Figure 5/6/7 series: per-workload miss-ratio factors.
    pub fn miss_factor_series(&self, kind: CacheKind) -> Vec<(String, Vec<f64>)> {
        self.rows
            .iter()
            .map(|r| {
                let cells = match kind {
                    CacheKind::Unified => &r.unified,
                    CacheKind::Instruction => &r.instruction,
                    CacheKind::Data => &r.data,
                };
                (r.name.clone(), cells.iter().map(PolicyPair::miss_factor).collect())
            })
            .collect()
    }

    /// Figure 8/9/10 series: per-workload traffic factors.
    pub fn traffic_factor_series(&self, kind: CacheKind) -> Vec<(String, Vec<f64>)> {
        self.rows
            .iter()
            .map(|r| {
                let cells = match kind {
                    CacheKind::Unified => &r.unified,
                    CacheKind::Instruction => &r.instruction,
                    CacheKind::Data => &r.data,
                };
                (
                    r.name.clone(),
                    cells.iter().map(PolicyPair::traffic_factor).collect(),
                )
            })
            .collect()
    }

    /// Renders Figures 5/6/7 (miss-ratio factors).
    pub fn render_miss_factors(&self) -> String {
        let mut out = String::new();
        for (fig, kind) in [
            ("Figure 5: unified", CacheKind::Unified),
            ("Figure 6: instruction", CacheKind::Instruction),
            ("Figure 7: data", CacheKind::Data),
        ] {
            let series = self.miss_factor_series(kind);
            out.push_str(&render_series(
                &format!("{fig} miss-ratio factor, prefetch / demand"),
                &self.sizes,
                &series,
            ));
            out.push('\n');
            out.push_str(&crate::report::ascii_plot(
                &format!("{fig} (log y)"),
                &self.sizes,
                &series,
            ));
            out.push('\n');
        }
        out
    }

    /// Renders Figures 8/9/10 and Table 4 (traffic factors).
    pub fn render_traffic_factors(&self) -> String {
        let mut out = String::new();
        for (fig, kind) in [
            ("Figure 8: unified", CacheKind::Unified),
            ("Figure 9: instruction", CacheKind::Instruction),
            ("Figure 10: data", CacheKind::Data),
        ] {
            out.push_str(&render_series(
                &format!("{fig} traffic factor, prefetch / demand"),
                &self.sizes,
                &self.traffic_factor_series(kind),
            ));
            out.push('\n');
        }
        let mut t = TextTable::new(vec![
            "size", "unified", "instr", "data", "paper-unified", "paper-instr", "paper-data",
        ]);
        for &(s, u, i, d) in &self.table4 {
            t.row(vec![
                s.to_string(),
                fmt_factor(u),
                fmt_factor(i),
                fmt_factor(d),
                fmt_factor(targets::traffic_factor(s, CacheKind::Unified)),
                fmt_factor(targets::traffic_factor(s, CacheKind::Instruction)),
                fmt_factor(targets::traffic_factor(s, CacheKind::Data)),
            ]);
        }
        out.push_str(&format!(
            "Table 4: aggregate traffic factor, prefetch / demand\n{}",
            t.render()
        ));
        out
    }

    /// Renders Figures 5-10 and Table 4.
    pub fn render(&self) -> String {
        format!("{}{}", self.render_miss_factors(), self.render_traffic_factors())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentConfig {
        ExperimentConfig::builder()
            .trace_len(25_000)
            .sizes(vec![512, 8192])
            .threads(4)
            .build()
            .unwrap()
    }

    #[test]
    fn study_covers_grid() {
        let s = run(&tiny());
        assert_eq!(s.rows.len(), 16);
        assert_eq!(s.table4.len(), 2);
        for r in &s.rows {
            assert_eq!(r.unified.len(), 2);
        }
    }

    #[test]
    fn prefetch_never_cuts_traffic() {
        let s = run(&tiny());
        for &(size, u, i, d) in &s.table4 {
            assert!(u >= 1.0 - 1e-9, "unified factor {u} at {size}");
            assert!(i >= 1.0 - 1e-9, "instruction factor {i} at {size}");
            assert!(d >= 1.0 - 1e-9, "data factor {d} at {size}");
        }
    }

    #[test]
    fn instruction_prefetch_helps_at_large_sizes() {
        let s = run(&tiny());
        // §3.5.1: at >2K, instruction prefetching always cuts the miss
        // ratio, usually by more than half. Check the workload mean at 8K.
        let factors: Vec<f64> = s
            .miss_factor_series(CacheKind::Instruction)
            .iter()
            .map(|(_, f)| f[1])
            .collect();
        let mean = crate::stat_util::mean(&factors);
        assert!(mean < 0.75, "mean instruction prefetch factor {mean}");
    }

    #[test]
    fn render_mentions_every_figure_and_table() {
        let s = run(&tiny()).render();
        for needle in ["Figure 5", "Figure 6", "Figure 7", "Figure 8", "Figure 9", "Figure 10", "Table 4"] {
            assert!(s.contains(needle), "missing {needle}");
        }
    }
}
