//! **Table 3** — the fraction of pushed data lines that are dirty.
//!
//! Configuration (§3.3): a 32 KiB memory split into a 16 KiB data cache
//! and a 16 KiB instruction cache, 16-byte lines, purged every 20,000
//! references to simulate multiprogramming; pushes counted from both
//! replacement and the purges. Four rows are round-robin multiprogramming
//! mixes.

use crate::experiments::{table3_workloads, ExperimentConfig, Workload};
use crate::fudge;
use crate::report::TextTable;
use crate::stat_util;
use crate::sweep::parallel_map;
use serde::{Deserialize, Serialize};
use smith85_cachesim::{Simulator, SplitCache};

/// Cache size of each half in the paper's Table 3 setup.
pub const HALF_SIZE: usize = 16 * 1024;

/// One row: workload and its dirty-push fraction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table3Row {
    /// Workload name.
    pub name: String,
    /// Fraction of pushed data lines that were dirty.
    pub dirty_fraction: f64,
    /// Total data-line pushes observed (context for the fraction).
    pub data_pushes: u64,
}

/// The full Table 3 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table3 {
    /// Per-workload rows (16 at full scale).
    pub rows: Vec<Table3Row>,
    /// Mean of the dirty fractions (the paper finds 0.47).
    pub mean: f64,
    /// Standard deviation (the paper finds 0.18).
    pub std_dev: f64,
    /// Observed range (the paper finds 0.22 – 0.80).
    pub range: (f64, f64),
}

/// Runs the experiment.
pub fn run(config: &ExperimentConfig) -> Table3 {
    run_with_half_size(config, HALF_SIZE)
}

/// Runs the experiment with a non-default cache half size (used by the
/// purge-interval and cache-size ablations). Memoized per half size in
/// the config's shared pool, so `conclusions` re-deriving the 4 KiB row
/// set does not re-simulate it.
pub fn run_with_half_size(config: &ExperimentConfig, half_size: usize) -> Table3 {
    let key = format!("table3/{half_size}/{}", config.trace_len);
    let shared = config.pool.result(&key, || {
        let len = config.trace_len;
        let rows = parallel_map(config.threads, table3_workloads(), |w| {
            let trace = config.workload_trace(&w);
            run_workload(&w, half_size, w.purge_interval(), &trace.as_slice()[..len])
        });
        summarize(rows)
    });
    (*shared).clone()
}

/// Simulates one workload's (pooled) trace and returns its row.
pub(crate) fn run_workload(
    workload: &Workload,
    half_size: usize,
    purge_interval: u64,
    trace: &[smith85_trace::MemoryAccess],
) -> Table3Row {
    let mut cache = SplitCache::paper_split(half_size, purge_interval)
        .expect("paper split configuration is valid");
    cache.run_slice(trace);
    let d = cache.data_stats();
    Table3Row {
        name: workload.name().to_string(),
        dirty_fraction: d.dirty_push_fraction(),
        data_pushes: d.pushes,
    }
}

pub(crate) fn summarize(rows: Vec<Table3Row>) -> Table3 {
    let fractions: Vec<f64> = rows.iter().map(|r| r.dirty_fraction).collect();
    Table3 {
        mean: stat_util::mean(&fractions),
        std_dev: stat_util::std_dev(&fractions),
        range: stat_util::min_max(&fractions),
        rows,
    }
}

impl Table3 {
    /// Renders the paper-style table with the summary statistics.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec!["trace(s)", "fraction data line pushes dirty", "pushes"]);
        for r in &self.rows {
            t.row(vec![
                r.name.clone(),
                format!("{:.2}", r.dirty_fraction),
                r.data_pushes.to_string(),
            ]);
        }
        t.rule();
        t.row(vec!["Average".to_string(), format!("{:.2}", self.mean), String::new()]);
        format!(
            "Table 3: probability a pushed data line is dirty (16K+16K split, \
             purge every 20,000 refs)\n{}\nstd dev {:.2}, range {:.2} - {:.2} \
             (paper: avg {:.2}, std {:.2}, range {:.2} - {:.2}; rule of thumb {})\n",
            t.render(),
            self.std_dev,
            self.range.0,
            self.range.1,
            fudge::DIRTY_PUSH_OBSERVED_MEAN,
            fudge::DIRTY_PUSH_OBSERVED_STD,
            fudge::DIRTY_PUSH_OBSERVED_RANGE.0,
            fudge::DIRTY_PUSH_OBSERVED_RANGE.1,
            fudge::DIRTY_PUSH_TARGET,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentConfig {
        ExperimentConfig::builder()
            .trace_len(45_000) // at least two purge cycles
            .sizes(vec![1024])
            .threads(4)
            .build()
            .unwrap()
    }

    #[test]
    fn sixteen_rows_with_fractions_in_range() {
        let t = run_with_half_size(&tiny(), 4 * 1024);
        assert_eq!(t.rows.len(), 16);
        for r in &t.rows {
            assert!((0.0..=1.0).contains(&r.dirty_fraction), "{}: {}", r.name, r.dirty_fraction);
            assert!(r.data_pushes > 0, "{} pushed nothing", r.name);
        }
        assert!(t.range.0 <= t.mean && t.mean <= t.range.1);
    }

    #[test]
    fn dirty_fraction_is_broadly_write_driven() {
        // Workloads write ~1/6 to 1/4 of data refs; with whole-line dirty
        // tracking the dirty fraction lands well above zero and below one.
        let t = run_with_half_size(&tiny(), 4 * 1024);
        assert!(t.mean > 0.15 && t.mean < 0.95, "mean {}", t.mean);
    }

    #[test]
    fn render_contains_summary() {
        let t = run_with_half_size(&tiny(), 4 * 1024);
        let s = t.render();
        assert!(s.contains("Average"));
        assert!(s.contains("std dev"));
        assert!(s.contains("MVS1"));
        assert!(s.contains("Z8000 - Assorted"));
    }
}
