//! **§5 conclusions, checked** — the paper's closing claims, each
//! re-derived from the reproduced experiments and reported as a pass/fail
//! checklist. This is the capstone binary: if these hold, the
//! reproduction carries the paper's message.

use crate::experiments::{prefetch, table1, table3, traffic_ratio, ExperimentConfig};
use crate::report::TextTable;
use crate::stat_util::{mean, percentile};
use crate::targets::CacheKind;
use serde::{Deserialize, Serialize};

/// One checked claim.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Claim {
    /// Where the paper makes it.
    pub source: String,
    /// The claim, paraphrased.
    pub claim: String,
    /// What we measured.
    pub evidence: String,
    /// Whether the reproduction supports it.
    pub holds: bool,
}

/// The checked conclusions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Conclusions {
    /// Every checked claim.
    pub claims: Vec<Claim>,
}

/// Runs the checks (internally runs Table 1, Table 3, the prefetch study
/// and the traffic-ratio study at the given configuration).
pub fn run(config: &ExperimentConfig) -> Conclusions {
    let mut claims = Vec::new();
    let t1 = table1::run(config);
    let t3 = table3::run_with_half_size(config, 4 * 1024);
    let pf = prefetch::run(config);
    let tr = traffic_ratio::run(config);

    // §5: "caches always work; a cache of any reasonable size always has
    // a hit ratio high enough to make it work well."
    if let Some(&big) = config.sizes.iter().filter(|&&s| s >= 4096).min() {
        let worst = t1
            .column(big)
            .into_iter()
            .fold(0.0f64, f64::max);
        claims.push(Claim {
            source: "§5".to_string(),
            claim: "caches always work (reasonable sizes reach useful hit ratios)".to_string(),
            evidence: format!("worst miss ratio at {big} B: {worst:.3}"),
            holds: worst < 0.5,
        });
    }

    // §5 / [Hil84]: "the traffic ratio, however, may not be lower than
    // 1.0 and needs to be carefully watched."
    let above_one = tr
        .rows
        .iter()
        .filter(|r| r.copy_back.first().is_some_and(|&x| x > 1.0))
        .count();
    claims.push(Claim {
        source: "§5 / [Hil84]".to_string(),
        claim: "small caches can raise bus traffic above the cacheless level".to_string(),
        evidence: format!(
            "{above_one} of {} workloads exceed traffic ratio 1.0 at {} B",
            tr.rows.len(),
            tr.sizes[0]
        ),
        holds: above_one > tr.rows.len() / 2,
    });

    // §1/§3.1: workload choice dominates the conclusions.
    if let Some(&mid) = config.sizes.iter().find(|&&s| s >= 1024) {
        let col = t1.column(mid);
        let best = col.iter().cloned().fold(f64::INFINITY, f64::min);
        let worst = col.iter().cloned().fold(0.0f64, f64::max);
        claims.push(Claim {
            source: "§1, §3.1".to_string(),
            claim: "workload choice changes miss ratios by an order of magnitude".to_string(),
            evidence: format!("at {mid} B: best {best:.4}, worst {worst:.4}"),
            holds: worst > 8.0 * best.max(1e-6),
        });
    }

    // §3.3 / Table 3: half the pushed data lines are dirty, spread wide.
    claims.push(Claim {
        source: "§3.3, Table 3".to_string(),
        claim: "about half of pushed data lines are dirty, with wide variation".to_string(),
        evidence: format!(
            "mean {:.2}, range {:.2} - {:.2}",
            t3.mean, t3.range.0, t3.range.1
        ),
        holds: (0.3..=0.7).contains(&t3.mean) && (t3.range.1 - t3.range.0) > 0.2,
    });

    // §3.5.1: instruction prefetching always helps, >50% at large caches.
    let last = config.sizes.len() - 1;
    let instr_factors: Vec<f64> = pf
        .miss_factor_series(CacheKind::Instruction)
        .iter()
        .map(|(_, f)| f[last])
        .collect();
    let instr_mean = mean(&instr_factors);
    claims.push(Claim {
        source: "§3.5.1, Figure 6".to_string(),
        claim: "instruction prefetching cuts the miss ratio by more than half at large caches"
            .to_string(),
        evidence: format!(
            "mean instruction factor at {} B: {:.2}",
            config.sizes[last], instr_mean
        ),
        holds: instr_mean < 0.5,
    });

    // §3.5.2: prefetch always buys its gains with extra traffic.
    let all_factors_above_one = pf
        .table4
        .iter()
        .all(|&(_, u, i, d)| u >= 1.0 - 1e-9 && i >= 1.0 - 1e-9 && d >= 1.0 - 1e-9);
    claims.push(Claim {
        source: "§3.5.2, Table 4".to_string(),
        claim: "prefetching always increases memory traffic".to_string(),
        evidence: format!(
            "aggregate factors at {} B: {:.2}/{:.2}/{:.2} (u/i/d)",
            pf.table4[0].0, pf.table4[0].1, pf.table4[0].2, pf.table4[0].3
        ),
        holds: all_factors_above_one,
    });

    // §4.1: the design targets are pessimistic (above the median workload).
    if let Some(&mid) = config.sizes.iter().find(|&&s| s >= 1024) {
        let col = t1.column(mid);
        let median = percentile(&col, 50.0);
        let p85 = percentile(&col, 85.0);
        claims.push(Claim {
            source: "§4.1, Table 5".to_string(),
            claim: "design targets sit toward the worst of the observed values".to_string(),
            evidence: format!("at {mid} B: median {median:.3}, 85th pct {p85:.3}"),
            holds: p85 > median,
        });
    }

    // §1.2/§3.1: the 16-bit and toy traces are the unrepresentative best.
    let group_at = |label: &str, size: usize| -> f64 {
        let idx = t1.sizes.iter().position(|&s| s == size).unwrap_or(0);
        t1.group_averages
            .iter()
            .find(|(g, _)| g == label)
            .map(|(_, v)| v[idx])
            .unwrap_or(1.0)
    };
    if let Some(&mid) = config.sizes.iter().find(|&&s| s >= 1024) {
        let z8000 = group_at("Z8000", mid);
        let m68k = group_at("M68000", mid);
        let vax = group_at("VAX", mid);
        claims.push(Claim {
            source: "§1.2, §3.1".to_string(),
            claim: "the Z8000 and M68000 trace sets are suspiciously well-behaved".to_string(),
            evidence: format!("at {mid} B: M68000 {m68k:.3}, Z8000 {z8000:.3}, VAX {vax:.3}"),
            holds: m68k < vax && z8000 < vax,
        });
    }

    Conclusions { claims }
}

impl Conclusions {
    /// Whether every claim held.
    pub fn all_hold(&self) -> bool {
        self.claims.iter().all(|c| c.holds)
    }

    /// Renders the checklist.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec!["", "source", "claim", "evidence"]);
        for c in &self.claims {
            t.row(vec![
                if c.holds { "PASS".to_string() } else { "FAIL".to_string() },
                c.source.clone(),
                c.claim.clone(),
                c.evidence.clone(),
            ]);
        }
        format!(
            "§5 conclusions, re-derived from the reproduction\n{}\n{}\n",
            t.render(),
            if self.all_hold() {
                "All of the paper's checked conclusions hold."
            } else {
                "Some conclusions FAILED — see above."
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentConfig {
        ExperimentConfig::builder()
            .trace_len(30_000)
            .sizes(vec![256, 1024, 8192])
            .threads(crate::sweep::default_threads())
            .build()
            .unwrap()
    }

    #[test]
    fn all_claims_hold_at_test_scale() {
        let c = run(&tiny());
        assert!(c.claims.len() >= 7, "{} claims", c.claims.len());
        for claim in &c.claims {
            assert!(claim.holds, "{}: {} ({})", claim.source, claim.claim, claim.evidence);
        }
        assert!(c.all_hold());
    }

    #[test]
    fn render_is_a_checklist() {
        let s = run(&tiny()).render();
        assert!(s.contains("PASS"));
        assert!(s.contains("All of the paper's checked conclusions hold."));
    }
}
