//! **Ablations** — the design-choice sensitivities the paper calls out but
//! does not tabulate, plus its announced future work:
//!
//! * line-size effect on miss ratio (§5: "needs to be quantified");
//! * mapping/associativity (§4.1 notes 2-way vs fully associative "should
//!   be small");
//! * replacement policy;
//! * write policy memory traffic (§3.3's write-through vs copy-back
//!   discussion);
//! * purge-interval sensitivity (§3.3: the dirty-push results "are
//!   definitely sensitive to that figure", 20,000).

use crate::experiments::{table3_workloads, ExperimentConfig, Workload};
use crate::report::{fmt_ratio, TextTable};
use crate::sweep::parallel_map;
use serde::{Deserialize, Serialize};
use smith85_cachesim::{
    Cache, CacheConfig, Mapping, Replacement, Simulator, SplitCache, StackAnalyzer, UnifiedCache,
    WriteBuffer, WritePolicy,
};
use smith85_synth::catalog;

/// Representative traces for the single-trace ablations: one per locality
/// regime (OS, compiler, utility, scientific).
pub const REPRESENTATIVES: [&str; 4] = ["MVS1", "FCOMP1", "VCCOM", "TWOD"];

/// Line-size sweep result for one trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LineSizeRow {
    /// Trace name.
    pub name: String,
    /// Line sizes swept (bytes).
    pub line_sizes: Vec<usize>,
    /// Miss ratio at a fixed 4 KiB cache for each line size.
    pub miss_ratios: Vec<f64>,
    /// Fetch traffic (bytes per reference) for each line size.
    pub traffic_per_ref: Vec<f64>,
}

/// Associativity sweep result for one trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AssocRow {
    /// Trace name.
    pub name: String,
    /// Miss ratios for direct, 2-, 4-, 8-way and fully associative
    /// mappings at a fixed 4 KiB cache.
    pub miss_ratios: Vec<f64>,
}

/// Replacement-policy sweep result for one trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplacementRow {
    /// Trace name.
    pub name: String,
    /// Miss ratios for LRU, tree-PLRU, FIFO and random replacement
    /// (4 KiB, 8-way).
    pub miss_ratios: Vec<f64>,
}

/// Write-policy traffic result for one trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WritePolicyRow {
    /// Trace name.
    pub name: String,
    /// Memory traffic in bytes per reference: copy-back w/ fetch-on-write.
    pub copy_back: f64,
    /// Write-through with allocation.
    pub write_through_allocate: f64,
    /// Write-through without allocation.
    pub write_through_no_allocate: f64,
}

/// Write-combining effectiveness for one trace (§3.3's exception).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WriteCombineRow {
    /// Trace name.
    pub name: String,
    /// Stores per 1,000 references.
    pub stores_per_1000: f64,
    /// Memory writes per 1,000 references through a 4-entry combining
    /// buffer, for each width in [`COMBINE_WIDTHS`].
    pub memory_writes_per_1000: Vec<f64>,
}

/// Purge-interval sensitivity for one workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PurgeRow {
    /// Workload name.
    pub name: String,
    /// Purge intervals swept (references).
    pub intervals: Vec<u64>,
    /// Dirty-push fraction at each interval.
    pub dirty_fractions: Vec<f64>,
    /// Overall miss ratio at each interval.
    pub miss_ratios: Vec<f64>,
}

/// All ablation results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ablations {
    /// Line-size sweep (4 KiB cache).
    pub line_size: Vec<LineSizeRow>,
    /// Associativity sweep (4 KiB cache, 16-byte lines).
    pub associativity: Vec<AssocRow>,
    /// Replacement sweep (4 KiB, 8-way).
    pub replacement: Vec<ReplacementRow>,
    /// Write-policy traffic (4 KiB, fully associative).
    pub write_policy: Vec<WritePolicyRow>,
    /// Write-combining buffer effectiveness (§3.3's exception).
    pub write_combining: Vec<WriteCombineRow>,
    /// Purge-interval sensitivity (Table 3 configuration).
    pub purge: Vec<PurgeRow>,
}

const ABLATION_CACHE: usize = 4 * 1024;
/// Line sizes swept by the line-size ablation.
pub const LINE_SIZES: [usize; 5] = [4, 8, 16, 32, 64];
/// Purge intervals swept by the purge ablation.
pub const PURGE_INTERVALS: [u64; 4] = [5_000, 10_000, 20_000, 40_000];
/// Combining-buffer widths swept by the write-combining ablation.
pub const COMBINE_WIDTHS: [u64; 3] = [4, 8, 16];

fn representative_profiles() -> Vec<smith85_synth::ProgramProfile> {
    REPRESENTATIVES
        .iter()
        .map(|n| {
            catalog::by_name(n)
                .unwrap_or_else(|| panic!("{n} missing from catalog"))
                .profile()
                .clone()
        })
        .collect()
}

/// Runs every ablation.
pub fn run(config: &ExperimentConfig) -> Ablations {
    let len = config.trace_len;
    let profiles = representative_profiles();

    let line_size = parallel_map(config.threads, profiles.clone(), |p| {
        let trace = config.pool.profile(&p, len);
        let replay = &trace.as_slice()[..len];
        let mut miss_ratios = Vec::new();
        let mut traffic = Vec::new();
        for &ls in &LINE_SIZES {
            let mut a = StackAnalyzer::with_line_size_and_capacity(ls, len);
            a.observe_slice(replay);
            let prof = a.finish();
            let m = prof.miss_ratio(ABLATION_CACHE);
            miss_ratios.push(m);
            traffic.push(m * ls as f64);
        }
        LineSizeRow {
            name: p.name.clone(),
            line_sizes: LINE_SIZES.to_vec(),
            miss_ratios,
            traffic_per_ref: traffic,
        }
    });

    let mappings = [
        Mapping::Direct,
        Mapping::SetAssociative(2),
        Mapping::SetAssociative(4),
        Mapping::SetAssociative(8),
        Mapping::FullyAssociative,
    ];
    let associativity = parallel_map(config.threads, profiles.clone(), |p| {
        let trace = config.pool.profile(&p, len);
        let replay = &trace.as_slice()[..len];
        AssocRow {
            miss_ratios: mappings
                .iter()
                .map(|&m| {
                    let cfg = CacheConfig::builder(ABLATION_CACHE).mapping(m).build().expect("valid");
                    let mut c = Cache::new(cfg).expect("valid");
                    c.run(replay);
                    c.stats().miss_ratio()
                })
                .collect(),
            name: p.name.clone(),
        }
    });

    let policies = [
        Replacement::Lru,
        Replacement::TreePlru,
        Replacement::Fifo,
        Replacement::Random { seed: 85 },
    ];
    let replacement = parallel_map(config.threads, profiles.clone(), |p| {
        let trace = config.pool.profile(&p, len);
        let replay = &trace.as_slice()[..len];
        ReplacementRow {
            miss_ratios: policies
                .iter()
                .map(|&r| {
                    let cfg = CacheConfig::builder(ABLATION_CACHE)
                        .mapping(Mapping::SetAssociative(8))
                        .replacement(r)
                        .build()
                        .expect("valid");
                    let mut c = Cache::new(cfg).expect("valid");
                    c.run(replay);
                    c.stats().miss_ratio()
                })
                .collect(),
            name: p.name.clone(),
        }
    });

    let write_policies = [
        WritePolicy::CopyBack {
            fetch_on_write: true,
        },
        WritePolicy::WriteThrough { allocate: true },
        WritePolicy::WriteThrough { allocate: false },
    ];
    let write_policy = parallel_map(config.threads, profiles, |p| {
        let trace = config.pool.profile(&p, len);
        let replay = &trace.as_slice()[..len];
        let traffic: Vec<f64> = write_policies
            .iter()
            .map(|&wp| {
                let cfg = CacheConfig::builder(ABLATION_CACHE).write_policy(wp).build().expect("valid");
                let mut c = UnifiedCache::new(cfg).expect("valid");
                c.run_slice(replay);
                c.stats().traffic_bytes() as f64 / len as f64
            })
            .collect();
        WritePolicyRow {
            name: p.name.clone(),
            copy_back: traffic[0],
            write_through_allocate: traffic[1],
            write_through_no_allocate: traffic[2],
        }
    });

    let write_combining = parallel_map(config.threads, representative_profiles(), |p| {
        let trace = config.pool.profile(&p, len);
        let replay = &trace.as_slice()[..len];
        let stores = replay.iter().filter(|a| a.kind.is_write()).count();
        let memory_writes_per_1000 = COMBINE_WIDTHS
            .iter()
            .map(|&width| {
                let mut wb = WriteBuffer::new(4, width);
                wb.run_slice(replay);
                1000.0 * wb.stats().memory_writes as f64 / len as f64
            })
            .collect();
        WriteCombineRow {
            name: p.name.clone(),
            stores_per_1000: 1000.0 * stores as f64 / len as f64,
            memory_writes_per_1000,
        }
    });

    let purge_workloads: Vec<Workload> = table3_workloads()
        .into_iter()
        .filter(|w| matches!(w, Workload::Mix { .. }))
        .collect();
    let purge = parallel_map(config.threads, purge_workloads, |w| {
        let trace = config.workload_trace(&w);
        let replay = &trace.as_slice()[..len];
        let mut dirty = Vec::new();
        let mut miss = Vec::new();
        for &q in &PURGE_INTERVALS {
            let mut c = SplitCache::paper_split(16 * 1024, q).expect("valid");
            c.run_slice(replay);
            dirty.push(c.data_stats().dirty_push_fraction());
            miss.push(c.total_stats().miss_ratio());
        }
        PurgeRow {
            name: w.name().to_string(),
            intervals: PURGE_INTERVALS.to_vec(),
            dirty_fractions: dirty,
            miss_ratios: miss,
        }
    });

    Ablations {
        line_size,
        associativity,
        replacement,
        write_policy,
        write_combining,
        purge,
    }
}

impl Ablations {
    /// Renders every ablation table.
    pub fn render(&self) -> String {
        let mut out = String::new();

        let mut t = TextTable::new(
            std::iter::once("trace".to_string())
                .chain(LINE_SIZES.iter().map(|l| format!("{l}B miss")))
                .chain(LINE_SIZES.iter().map(|l| format!("{l}B traf")))
                .collect::<Vec<_>>(),
        );
        for r in &self.line_size {
            let mut cells = vec![r.name.clone()];
            cells.extend(r.miss_ratios.iter().map(|m| fmt_ratio(*m)));
            cells.extend(r.traffic_per_ref.iter().map(|m| format!("{m:.2}")));
            t.row(cells);
        }
        out.push_str(&format!(
            "Ablation: line size at 4 KiB (miss ratio; fetch bytes/ref)\n{}\n",
            t.render()
        ));

        let mut t = TextTable::new(vec!["trace", "direct", "2-way", "4-way", "8-way", "full"]);
        for r in &self.associativity {
            let mut cells = vec![r.name.clone()];
            cells.extend(r.miss_ratios.iter().map(|m| fmt_ratio(*m)));
            t.row(cells);
        }
        out.push_str(&format!("Ablation: mapping at 4 KiB\n{}\n", t.render()));

        let mut t = TextTable::new(vec!["trace", "LRU", "PLRU", "FIFO", "random"]);
        for r in &self.replacement {
            let mut cells = vec![r.name.clone()];
            cells.extend(r.miss_ratios.iter().map(|m| fmt_ratio(*m)));
            t.row(cells);
        }
        out.push_str(&format!(
            "Ablation: replacement at 4 KiB, 8-way\n{}\n",
            t.render()
        ));

        let mut t = TextTable::new(vec![
            "trace",
            "copy-back B/ref",
            "wt+alloc B/ref",
            "wt no-alloc B/ref",
        ]);
        for r in &self.write_policy {
            t.row(vec![
                r.name.clone(),
                format!("{:.2}", r.copy_back),
                format!("{:.2}", r.write_through_allocate),
                format!("{:.2}", r.write_through_no_allocate),
            ]);
        }
        out.push_str(&format!("Ablation: write-policy traffic\n{}\n", t.render()));

        let mut t = TextTable::new(
            std::iter::once("trace".to_string())
                .chain(std::iter::once("stores/1000".to_string()))
                .chain(COMBINE_WIDTHS.iter().map(|w| format!("wr/1000 @{w}B")))
                .collect::<Vec<_>>(),
        );
        for r in &self.write_combining {
            let mut cells = vec![r.name.clone(), format!("{:.0}", r.stores_per_1000)];
            cells.extend(r.memory_writes_per_1000.iter().map(|m| format!("{m:.0}")));
            t.row(cells);
        }
        out.push_str(&format!(
            "Ablation: write-through combining buffer (4 entries) — §3.3's exception\n{}\n",
            t.render()
        ));

        let mut t = TextTable::new(
            std::iter::once("mix".to_string())
                .chain(PURGE_INTERVALS.iter().map(|q| format!("dirty@{q}")))
                .chain(PURGE_INTERVALS.iter().map(|q| format!("miss@{q}")))
                .collect::<Vec<_>>(),
        );
        for r in &self.purge {
            let mut cells = vec![r.name.clone()];
            cells.extend(r.dirty_fractions.iter().map(|m| format!("{m:.2}")));
            cells.extend(r.miss_ratios.iter().map(|m| fmt_ratio(*m)));
            t.row(cells);
        }
        out.push_str(&format!(
            "Ablation: purge-interval sensitivity (16K+16K split)\n{}",
            t.render()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    /// One shared run, long enough for two 40k purge cycles.
    fn shared() -> &'static Ablations {
        static CELL: OnceLock<Ablations> = OnceLock::new();
        CELL.get_or_init(|| {
            run(&ExperimentConfig::builder()
                .trace_len(90_000)
                .sizes(vec![4096])
                .threads(crate::sweep::default_threads())
                .build()
                .unwrap())
        })
    }

    #[test]
    fn all_ablations_have_representative_rows() {
        let a = shared();
        assert_eq!(a.line_size.len(), 4);
        assert_eq!(a.associativity.len(), 4);
        assert_eq!(a.replacement.len(), 4);
        assert_eq!(a.write_policy.len(), 4);
        assert_eq!(a.write_combining.len(), 4);
        assert_eq!(a.purge.len(), 4);
    }

    #[test]
    fn longer_lines_cut_misses_but_cost_traffic() {
        let a = shared();
        for r in &a.line_size {
            // Miss ratio shrinks from 4B to 16B lines for every trace.
            assert!(r.miss_ratios[2] < r.miss_ratios[0], "{}", r.name);
            // Traffic per reference grows from 16B to 64B lines.
            assert!(
                r.traffic_per_ref[4] > r.traffic_per_ref[2] * 0.9,
                "{}: {:?}",
                r.name,
                r.traffic_per_ref
            );
        }
    }

    #[test]
    fn associativity_helps_and_saturates() {
        let a = shared();
        for r in &a.associativity {
            let direct = r.miss_ratios[0];
            let full = r.miss_ratios[4];
            assert!(full <= direct + 0.01, "{}: {:?}", r.name, r.miss_ratios);
            // §4.1: 2-way vs fully associative effect "should be small".
            let two_way = r.miss_ratios[1];
            assert!((two_way - full).abs() < 0.08, "{}: {:?}", r.name, r.miss_ratios);
        }
    }

    #[test]
    fn lru_beats_or_matches_random() {
        let a = shared();
        for r in &a.replacement {
            // LRU <= random, and tree PLRU sits close to true LRU.
            assert!(
                r.miss_ratios[0] <= r.miss_ratios[3] + 0.02,
                "{}: {:?}",
                r.name,
                r.miss_ratios
            );
            assert!(
                (r.miss_ratios[1] - r.miss_ratios[0]).abs() < 0.05,
                "{}: PLRU far from LRU: {:?}",
                r.name,
                r.miss_ratios
            );
        }
    }

    #[test]
    fn combining_buffer_cuts_memory_writes() {
        let a = shared();
        for r in &a.write_combining {
            // A store of up to 8 bytes occupies at most ceil(8 / width)
            // units, so memory writes are bounded per width, and wider
            // units combine at least as well as narrow ones.
            for (i, &width) in COMBINE_WIDTHS.iter().enumerate() {
                let max_units = (8.0 / width as f64).ceil();
                assert!(
                    r.memory_writes_per_1000[i] <= r.stores_per_1000 * max_units + 1e-9,
                    "{} @{width}B: {:?}",
                    r.name,
                    r
                );
            }
            assert!(
                r.memory_writes_per_1000[2] <= r.memory_writes_per_1000[0] + 1e-9,
                "{}: {:?}",
                r.name,
                r.memory_writes_per_1000
            );
            // At 16-byte units (a full line) combining genuinely kicks in.
            assert!(
                r.memory_writes_per_1000[2] < r.stores_per_1000,
                "{}: no combining at 16B: {:?}",
                r.name,
                r
            );
        }
    }

    #[test]
    fn write_through_moves_more_bytes_for_writey_traces() {
        let a = shared();
        // Copy-back filters repeated writes; write-through pays per store.
        // This holds for the OS trace, which writes heavily.
        let mvs = a.write_policy.iter().find(|r| r.name == "MVS1").unwrap();
        assert!(mvs.write_through_allocate > mvs.copy_back * 0.8);
    }

    #[test]
    fn shorter_purge_intervals_mean_cleaner_pushes() {
        let a = shared();
        for r in &a.purge {
            // §3.3: longer residency → higher dirty probability. Allow
            // noise but demand the trend between the extremes.
            assert!(
                r.dirty_fractions[3] >= r.dirty_fractions[0] - 0.05,
                "{}: {:?}",
                r.name,
                r.dirty_fractions
            );
            // More frequent purging never lowers the miss ratio.
            assert!(r.miss_ratios[0] >= r.miss_ratios[3] - 0.02, "{}", r.name);
        }
    }

    #[test]
    fn render_contains_all_sections() {
        let s = shared().render();
        for needle in ["line size", "mapping", "replacement", "write-policy", "combining buffer", "purge-interval"] {
            assert!(s.contains(needle), "missing {needle}");
        }
    }
}
